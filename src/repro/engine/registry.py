"""First-class language backends: register once, lift everywhere.

A :class:`Backend` bundles everything the toolchain needs to know about
one object language — a parser, a pretty-printer, a stepper factory, and
its named sugar sets.  Backends live in a process-wide registry: the CLI
resolves ``--lang`` through :func:`get_backend`, and library users get a
ready :class:`~repro.confection.Confection` from
:meth:`Backend.make_confection`.

The bundled languages register themselves when their package is
imported (:mod:`repro.lambdacore` as ``"lambda"``,
:mod:`repro.pyretcore` as ``"pyret"``); :func:`get_backend` imports
them on demand so nothing heavy loads until a backend is actually used.
Third-party languages call :func:`register_backend` at import time and
immediately appear in ``python -m repro lift --lang <name>``.

Sugar factories are ``fn(**options) -> RuleList`` callables.  They
receive the full option set the caller assembled (the CLI passes e.g.
``transparent_recursion`` *and* ``op_desugaring`` to every backend
uniformly) and must ignore options they do not understand — that
contract is what makes backend-generic drivers possible.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.core.errors import ReproError

__all__ = [
    "Backend",
    "UnknownBackendError",
    "register_backend",
    "unregister_backend",
    "get_backend",
    "available_backends",
]


class UnknownBackendError(ReproError):
    """No backend is registered (or bundled) under the requested name."""


@dataclass(frozen=True)
class Backend:
    """Everything the toolchain needs to know about one object language.

    ``parse`` maps program text to a surface term; ``pretty`` renders a
    term back to program text; ``make_stepper`` builds a fresh
    :class:`~repro.core.lift.Stepper`; ``sugar_factories`` maps sugar-set
    names to ``fn(**options) -> RuleList`` factories (see the module
    docstring for the options contract).  ``default_sugar`` names the
    set used when the caller does not choose one (defaults to the first
    registered factory).
    """

    name: str
    parse: Callable[[str], Any]
    pretty: Callable[[Any], str]
    make_stepper: Callable[[], Any]
    sugar_factories: Mapping[str, Callable[..., Any]] = field(
        default_factory=dict
    )
    default_sugar: Optional[str] = None
    description: str = ""

    @property
    def sugar_names(self) -> Tuple[str, ...]:
        return tuple(self.sugar_factories)

    def make_rules(self, sugar: Optional[str] = None, **options: Any):
        """Build the named sugar set (or the default one) as a
        :class:`~repro.core.rules.RuleList`."""
        name = sugar or self.default_sugar
        if name is None:
            if not self.sugar_factories:
                raise ReproError(
                    f"backend {self.name!r} has no sugar sets; pass rules "
                    f"explicitly"
                )
            name = next(iter(self.sugar_factories))
        try:
            factory = self.sugar_factories[name]
        except KeyError:
            known = ", ".join(sorted(self.sugar_factories)) or "<none>"
            raise ReproError(
                f"unknown sugar set {name!r} for backend {self.name!r} "
                f"(choose from: {known})"
            ) from None
        return factory(**options)

    def make_confection(
        self,
        sugar: Optional[str] = None,
        rules: Any = None,
        **options: Any,
    ):
        """A ready :class:`~repro.confection.Confection`: the named (or
        default) sugar set — or explicit ``rules`` — plus a fresh
        stepper."""
        from repro.confection import Confection

        if rules is None:
            rules = self.make_rules(sugar, **options)
        return Confection(rules, self.make_stepper())


_BACKENDS: Dict[str, Backend] = {}

# Bundled backends, importable on demand; importing the module runs its
# register_backend() call.
_BUILTIN_MODULES: Dict[str, str] = {
    "lambda": "repro.lambdacore",
    "pyret": "repro.pyretcore",
}


def register_backend(backend: Backend, replace: bool = False) -> Backend:
    """Register ``backend`` under ``backend.name``.

    Re-registering an identical name raises unless ``replace=True``
    (idempotent re-imports of the same module are fine: registering the
    exact same names is only an error when the backend object differs).
    """
    existing = _BACKENDS.get(backend.name)
    if existing is not None and existing is not backend and not replace:
        raise ValueError(
            f"a backend named {backend.name!r} is already registered; "
            f"pass replace=True to override it"
        )
    _BACKENDS[backend.name] = backend
    return backend


def unregister_backend(name: str) -> None:
    """Remove a backend from the registry (no-op when absent)."""
    _BACKENDS.pop(name, None)


def get_backend(name: str) -> Backend:
    """Look up a backend by name, importing bundled ones on demand."""
    if name not in _BACKENDS:
        module = _BUILTIN_MODULES.get(name)
        if module is not None:
            importlib.import_module(module)
    try:
        return _BACKENDS[name]
    except KeyError:
        known = ", ".join(available_backends()) or "<none>"
        raise UnknownBackendError(
            f"unknown language backend {name!r} (known: {known})"
        ) from None


def available_backends() -> Tuple[str, ...]:
    """Names resolvable by :func:`get_backend`: everything registered
    plus the bundled backends (whether or not imported yet)."""
    return tuple(sorted(set(_BACKENDS) | set(_BUILTIN_MODULES)))
