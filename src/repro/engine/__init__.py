"""The streaming lift engine and the language-backend registry.

The paper's lifting loop (section 5.3) is inherently incremental — emit
a surface term, step the core, repeat — and this package exposes it that
way:

* :mod:`repro.engine.events` — the typed event vocabulary a lift
  produces (``CoreStepped``, ``SurfaceEmitted``, ``StepSkipped``,
  ``Deduped``, ``Halted``, ``BudgetExhausted``);
* :mod:`repro.engine.stream` — ``lift_stream`` / ``lift_tree_stream``
  generators that yield those events lazily under step-count and
  wall-clock budgets, plus the folds that reconstruct the batch
  ``LiftResult`` / ``SurfaceTree`` values from an event stream;
* :mod:`repro.engine.registry` — first-class language backends
  (parser + pretty-printer + stepper factory + sugar factories) with
  ``register_backend`` / ``get_backend``; the bundled ``lambda`` and
  ``pyret`` backends register themselves on import.

The batch entry points (:func:`repro.core.lift.lift_evaluation`,
:meth:`repro.confection.Confection.lift`) are thin eager folds over
these streams, so the two paths cannot drift apart.
"""

from repro.engine.events import (
    BudgetExhausted,
    CoreStepped,
    Deduped,
    Halted,
    LiftEvent,
    StepSkipped,
    SurfaceEmitted,
)
from repro.engine.registry import (
    Backend,
    UnknownBackendError,
    available_backends,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.engine.stream import (
    fold_lift,
    fold_tree,
    lift_stream,
    lift_tree_stream,
)

__all__ = [
    "LiftEvent",
    "CoreStepped",
    "SurfaceEmitted",
    "StepSkipped",
    "Deduped",
    "Halted",
    "BudgetExhausted",
    "lift_stream",
    "lift_tree_stream",
    "fold_lift",
    "fold_tree",
    "Backend",
    "UnknownBackendError",
    "register_backend",
    "unregister_backend",
    "get_backend",
    "available_backends",
]
