"""Streaming lift generators and the folds back to batch results.

:func:`lift_stream` is the paper's lifting loop (section 5.3) as a lazy
generator: desugar once, then *emit a surface term, step the core,
repeat* — yielding a typed :mod:`~repro.engine.events` event at every
juncture instead of materializing a :class:`~repro.core.lift.LiftResult`
up front.  Consumers see the first surface step as soon as it exists,
hold at most one event at a time, and can stop early by abandoning the
generator.  :func:`lift_tree_stream` does the same for nondeterministic
evaluation trees (breadth-first).

Both generators take budgets:

* ``max_steps`` / ``max_nodes`` — a step-count budget (how much core
  evaluation to explore);
* ``max_seconds`` — a wall-clock budget measured from the first event;

and an ``on_budget`` policy deciding what exhaustion means:

* ``"raise"`` (default) — raise :class:`~repro.core.errors.ReproError`,
  the historical batch behaviour;
* ``"truncate"`` — yield a terminal
  :class:`~repro.engine.events.BudgetExhausted` event and stop; every
  event already yielded is a valid prefix of the full lift.

Both generators also accept a persistent ``cache``
(:class:`repro.cache.LiftCache`).  With one attached, a lift first
consults the whole-lift tier: a hit replays the recorded event stream —
byte-identical frames, no desugaring, no stepping — and a cold run that
reaches its terminal event is recorded for next time.  Incremental runs
additionally hydrate their per-run
:class:`~repro.core.incremental.ResugarCache` from the memo tier and
persist it back after the terminal event.  Uncacheable requests
(unidentifiable stepper, wall-clock budgets — see
:meth:`repro.cache.LiftCache.lift_key`) run exactly as if no cache were
attached, and a lift that ends without a terminal event (cancellation,
``on_budget="raise"`` exhaustion, any raised error) never stores a
partial stream.

Both also take a *cooperative cancellation hook*: ``should_stop``, a
zero-argument callable polled once per core step.  When it returns
true the generator returns immediately — no terminal event, no more
stepping.  This exists for consumers that drive the generator from
another thread (the session server bridges :func:`lift_stream` over an
executor): the owning thread cannot ``close()`` a generator that a
worker thread is iterating, but it *can* flip a flag the hook reads, and
the abandoned lift then stops stepping promptly instead of running its
evaluation to completion for nobody.

:func:`fold_lift` and :func:`fold_tree` replay an event stream into the
batch :class:`~repro.core.lift.LiftResult` /
:class:`~repro.core.lift.SurfaceTree` values; the batch entry points in
:mod:`repro.core.lift` are exactly these folds, so streaming and batch
lifting cannot disagree.
"""

from __future__ import annotations

from collections import deque
from time import monotonic
from typing import Callable, Iterable, Iterator, Optional

from repro.core.desugar import desugar, resugar
from repro.core.errors import ReproError
from repro.core.incremental import ResugarCache
from repro.core.lenses import emulates
from repro.core.lift import (
    EmulationViolation,
    LiftedStep,
    LiftResult,
    Stepper,
    SurfaceTree,
)
from repro.core.recursion import deep_recursion
from repro.core.rules import RuleList
from repro.core.terms import Pattern
from repro.engine.events import (
    BudgetExhausted,
    CoreStepped,
    Deduped,
    Halted,
    LiftEvent,
    StepSkipped,
    SurfaceEmitted,
)
from repro.obs import _state as _obs
from repro.obs import provenance as _prov
from repro.obs.metrics import (
    LIFT_RUNS,
    LIFT_STEPS_DEDUPED,
    LIFT_STEPS_EMITTED,
    LIFT_STEPS_SKIPPED,
    LIFT_STEPS_TOTAL,
    MATCH_ATTEMPTS,
    MATCH_ATTEMPTS_PER_STEP,
)
from repro.obs.trace import span as _span

__all__ = [
    "ON_BUDGET_POLICIES",
    "lift_stream",
    "lift_tree_stream",
    "fold_lift",
    "fold_tree",
]

ON_BUDGET_POLICIES = ("raise", "truncate")


def _apply_stepper_mode(stepper: "Stepper", stepper_mode: Optional[str]):
    """Resolve the ``stepper_mode`` flag against a stepper.

    ``None`` keeps the stepper as configured (for a
    :class:`~repro.redex.reduction.RedexStepper` that means its own
    default, refocus).  Mode-aware steppers expose ``with_mode``;
    steppers without it (e.g. plain function steppers) are their own
    single mode and pass through unchanged.
    """
    if stepper_mode is None:
        return stepper
    from repro.redex.reduction import STEPPER_MODES

    if stepper_mode not in STEPPER_MODES:
        raise ValueError(
            f"stepper_mode must be one of {STEPPER_MODES}, "
            f"got {stepper_mode!r}"
        )
    with_mode = getattr(stepper, "with_mode", None)
    if with_mode is None:
        return stepper
    return with_mode(stepper_mode)

# Classification outcome -> the counter it moves (observability only).
_OUTCOME_COUNTERS = {
    "emitted": LIFT_STEPS_EMITTED,
    "deduped": LIFT_STEPS_DEDUPED,
    "skipped": LIFT_STEPS_SKIPPED,
}


def _check_policy(on_budget: str) -> None:
    if on_budget not in ON_BUDGET_POLICIES:
        raise ValueError(
            f"on_budget must be one of {ON_BUDGET_POLICIES}, "
            f"got {on_budget!r}"
        )


def _deadline(max_seconds: Optional[float]) -> Optional[float]:
    if max_seconds is None:
        return None
    if max_seconds < 0:
        raise ValueError(f"max_seconds must be >= 0, got {max_seconds!r}")
    return monotonic() + max_seconds


def _replay(recorded, mode: str, should_stop) -> Iterator[LiftEvent]:
    """Yield a recorded event stream (a whole-lift cache hit).

    The frames are exactly what the cold run yielded — terms re-interned
    at load, stats intact — so folds and renderers cannot tell the
    difference.  Cancellation is still honored between frames.  Per-step
    instrumentation does not re-fire (nothing was resugared); with
    observability on, the run appears as a single ``lift`` span marked
    ``cache="hit"``.
    """
    if _obs.enabled:
        with _span("lift", mode=mode, cache="hit"):
            pass
    for event in recorded:
        if should_stop is not None and should_stop():
            return
        yield event


def _recording(body, cache, cache_key: str) -> Iterator[LiftEvent]:
    """Pass ``body``'s events through, and store the whole stream iff it
    ended in a terminal event.  An abandoned generator, a cooperative
    cancellation, or any raised error leaves the loop before the
    terminal check — a partial stream is never persisted."""
    events = []
    for event in body:
        events.append(event)
        yield event
    if events and isinstance(events[-1], (Halted, BudgetExhausted)):
        cache.store_lift(cache_key, tuple(events))


def lift_stream(
    rules: RuleList,
    stepper: "Stepper",
    surface_term: Pattern,
    *,
    max_steps: int = 100_000,
    max_seconds: Optional[float] = None,
    on_budget: str = "raise",
    dedup: bool = True,
    check_emulation: bool = True,
    incremental: bool = True,
    stepper_mode: Optional[str] = None,
    should_stop: Optional[Callable[[], bool]] = None,
    cache=None,
) -> Iterator[LiftEvent]:
    """Lazily lift ``surface_term``'s evaluation, yielding events.

    Per core step: a :class:`CoreStepped`, then exactly one of
    :class:`SurfaceEmitted` / :class:`Deduped` / :class:`StepSkipped`.
    Terminal event: :class:`Halted`, or :class:`BudgetExhausted` when a
    budget runs out under ``on_budget="truncate"``.

    ``dedup``, ``check_emulation``, and ``incremental`` mean exactly
    what they mean on :func:`repro.core.lift.lift_evaluation` — that
    function *is* :func:`fold_lift` over this generator.
    ``stepper_mode`` (``"refocus"`` / ``"naive"`` / ``None``) selects
    the decomposition engine on mode-aware steppers; ``None`` keeps the
    stepper's own configuration.  ``should_stop`` is the cooperative
    cancellation hook (see the module docstring): polled before every
    core step, and a true return ends the stream with no terminal
    event.  ``cache`` attaches a persistent
    :class:`repro.cache.LiftCache` (see the module docstring): a
    whole-lift hit replays the recorded frames; a cold terminal-reaching
    run records them.

    With observability on (:mod:`repro.obs`), the run is wrapped in a
    ``lift`` span, every core step gets a ``lift.step`` child span
    carrying its index and outcome, and the ``lift.steps_*`` counters
    move per event; disabled, the loop pays one branch per step.
    """
    _check_policy(on_budget)
    stepper = _apply_stepper_mode(stepper, stepper_mode)
    cache_key = None
    if cache is not None:
        # Keyed after stepper_mode resolution, so an explicit mode and
        # a stepper configured with that same mode share entries.
        cache_key = cache.lift_key(
            rules, stepper, surface_term, mode="sequence",
            dedup=dedup, check_emulation=check_emulation,
            incremental=incremental, on_budget=on_budget,
            max_steps=max_steps, max_seconds=max_seconds,
        )
        if cache_key is not None:
            recorded = cache.lookup_lift(cache_key)
            if recorded is not None:
                yield from _replay(recorded, "sequence", should_stop)
                return
    # The provenance run scope opens before desugaring so the initial
    # expansions are attributed to this run too.  The run's per-rule
    # totals are attached while the lift span is still open (attrs must
    # land before the span is emitted); the outer finally also covers a
    # desugar-time failure or an abandoned generator.
    run = _prov.begin_run(rules) if _obs.enabled else None
    try:
        with deep_recursion(), _span(
            "lift", mode="sequence", incremental=incremental, dedup=dedup
        ) as lift_span:
            try:
                body = _lift_stream_body(
                    rules, stepper, surface_term, max_steps, max_seconds,
                    on_budget, dedup, check_emulation, incremental,
                    lift_span, should_stop,
                    cache if incremental else None,
                )
                if cache_key is not None:
                    yield from _recording(body, cache, cache_key)
                else:
                    yield from body
            finally:
                if run is not None and lift_span is not None:
                    lift_span.attrs["rule_stats"] = run.rule_stats()
    finally:
        if run is not None:
            _prov.end_run(run)


def _lift_stream_body(
    rules, stepper, surface_term, max_steps, max_seconds,
    on_budget, dedup, check_emulation, incremental, lift_span,
    should_stop, lift_cache=None,
):
    core = desugar(rules, surface_term)
    state = stepper.load(core)
    cache = ResugarCache(rules) if incremental else None
    stats = cache.stats if cache else None
    if cache is not None and lift_cache is not None:
        lift_cache.hydrate(cache)

    def persist_memo():
        # Before the terminal yield, not after: a consumer that stops
        # at the terminal event never resumes the generator.
        if cache is not None and lift_cache is not None:
            lift_cache.persist_memo(cache)

    deadline = _deadline(max_seconds)
    last_emitted: Optional[Pattern] = None
    index = 0

    def classify(term: Pattern):
        """Resugar one core term and decide its event + outcome."""
        nonlocal last_emitted
        surface = cache.resugar(term) if cache else resugar(rules, term)
        if surface is None:
            return StepSkipped(index, term), "skipped"
        if check_emulation:
            faithful = (
                cache.emulates(surface, term)
                if cache
                else emulates(rules, surface, term)
            )
            if not faithful:
                raise EmulationViolation(
                    f"surface step {surface} does not desugar into "
                    f"the core term it represents: {term}"
                )
        if dedup and surface == last_emitted:
            return Deduped(index, term, surface), "deduped"
        last_emitted = surface
        return SurfaceEmitted(index, term, surface), "emitted"

    if _obs.enabled:
        LIFT_RUNS.inc()
    while True:
        if should_stop is not None and should_stop():
            if lift_span is not None:
                lift_span.attrs["cancelled"] = True
            return
        if index > max_steps:
            if on_budget == "raise":
                raise ReproError(
                    f"evaluation did not finish within {max_steps} steps"
                )
            if lift_span is not None:
                lift_span.attrs["truncated"] = "steps"
            persist_memo()
            yield BudgetExhausted(index, stats, "steps", max_steps)
            return
        if deadline is not None and monotonic() >= deadline:
            if on_budget == "raise":
                raise ReproError(
                    f"evaluation exceeded the {max_seconds:g}s time "
                    f"budget after {index} core steps"
                )
            if lift_span is not None:
                lift_span.attrs["truncated"] = "seconds"
            persist_memo()
            yield BudgetExhausted(index, stats, "seconds", max_seconds)
            return

        term = stepper.term(state)
        yield CoreStepped(index, term)
        if _obs.enabled:
            LIFT_STEPS_TOTAL.inc()
            attempts_before = MATCH_ATTEMPTS.value
            with _span("lift.step", index=index) as step_span:
                with _prov.step_scope(step_span):
                    event, outcome = classify(term)
                    if outcome == "deduped":
                        _prov.on_dedup()
                if step_span is not None:
                    step_span.attrs["outcome"] = outcome
            MATCH_ATTEMPTS_PER_STEP.observe(
                MATCH_ATTEMPTS.value - attempts_before
            )
            _OUTCOME_COUNTERS[outcome].inc()
        else:
            event, _ = classify(term)
        yield event

        successors = stepper.step(state)
        if not successors:
            if lift_span is not None:
                lift_span.attrs["core_steps"] = index + 1
            persist_memo()
            yield Halted(index + 1, stats)
            return
        if len(successors) > 1:
            raise ReproError(
                "nondeterministic step during sequence lifting; use "
                "lift_evaluation_tree for languages with amb"
            )
        state = successors[0]
        index += 1


def lift_tree_stream(
    rules: RuleList,
    stepper: "Stepper",
    surface_term: Pattern,
    *,
    max_nodes: int = 100_000,
    max_seconds: Optional[float] = None,
    on_budget: str = "raise",
    check_emulation: bool = True,
    incremental: bool = True,
    stepper_mode: Optional[str] = None,
    should_stop: Optional[Callable[[], bool]] = None,
    cache=None,
) -> Iterator[LiftEvent]:
    """Lazily lift a nondeterministic evaluation tree, breadth-first.

    ``core_index`` on the yielded events is the exploration order of the
    core state; :class:`SurfaceEmitted` carries ``node_id``/``parent_id``
    so :func:`fold_tree` can rebuild the
    :class:`~repro.core.lift.SurfaceTree` from events alone.  The budget
    is ``max_nodes`` explored core states (terminal event budget kind:
    ``"nodes"``) plus the optional wall clock.  ``should_stop`` is the
    cooperative cancellation hook, polled once per explored node.
    ``cache`` attaches a persistent :class:`repro.cache.LiftCache`,
    exactly as on :func:`lift_stream` (tree and sequence lifts key into
    disjoint namespaces via the engine fingerprint's ``mode``).
    """
    _check_policy(on_budget)
    stepper = _apply_stepper_mode(stepper, stepper_mode)
    cache_key = None
    if cache is not None:
        cache_key = cache.lift_key(
            rules, stepper, surface_term, mode="tree",
            check_emulation=check_emulation, incremental=incremental,
            on_budget=on_budget, max_nodes=max_nodes,
            max_seconds=max_seconds,
        )
        if cache_key is not None:
            recorded = cache.lookup_lift(cache_key)
            if recorded is not None:
                yield from _replay(recorded, "tree", should_stop)
                return
    # Same scoping as lift_stream: run provenance opens before
    # desugaring, rule_stats attach while the lift span is open.
    run = _prov.begin_run(rules) if _obs.enabled else None
    try:
        with deep_recursion(), _span(
            "lift", mode="tree", incremental=incremental
        ) as lift_span:
            try:
                body = _lift_tree_stream_body(
                    rules, stepper, surface_term, max_nodes, max_seconds,
                    on_budget, check_emulation, incremental, lift_span,
                    should_stop,
                    cache if incremental else None,
                )
                if cache_key is not None:
                    yield from _recording(body, cache, cache_key)
                else:
                    yield from body
            finally:
                if run is not None and lift_span is not None:
                    lift_span.attrs["rule_stats"] = run.rule_stats()
    finally:
        if run is not None:
            _prov.end_run(run)


def _lift_tree_stream_body(
    rules, stepper, surface_term, max_nodes, max_seconds,
    on_budget, check_emulation, incremental, lift_span,
    should_stop, lift_cache=None,
):
    core = desugar(rules, surface_term)
    cache = ResugarCache(rules) if incremental else None
    stats = cache.stats if cache else None
    if cache is not None and lift_cache is not None:
        lift_cache.hydrate(cache)

    def persist_memo():
        # Before the terminal yield, as in _lift_stream_body.
        if cache is not None and lift_cache is not None:
            lift_cache.persist_memo(cache)

    deadline = _deadline(max_seconds)
    # Queue holds (state, nearest surface ancestor id or None).
    queue: deque = deque([(stepper.load(core), None)])
    next_id = 0
    explored = 0

    def classify(term, index, parent):
        """Resugar one explored core state; returns the event to yield,
        the outcome, and the surface node id successors attach under."""
        surface = cache.resugar(term) if cache else resugar(rules, term)
        if surface is None:
            return StepSkipped(index, term), "skipped", parent
        if check_emulation:
            faithful = (
                cache.emulates(surface, term)
                if cache
                else emulates(rules, surface, term)
            )
            if not faithful:
                raise EmulationViolation(
                    f"surface node {surface} does not desugar into "
                    f"the core term it represents: {term}"
                )
        event = SurfaceEmitted(
            index, term, surface, node_id=next_id, parent_id=parent
        )
        return event, "emitted", next_id

    if _obs.enabled:
        LIFT_RUNS.inc()
    while queue:
        if should_stop is not None and should_stop():
            if lift_span is not None:
                lift_span.attrs["cancelled"] = True
            return
        if explored >= max_nodes:
            if on_budget == "raise":
                raise ReproError(
                    f"evaluation tree exceeded {max_nodes} core nodes"
                )
            if lift_span is not None:
                lift_span.attrs["truncated"] = "nodes"
            persist_memo()
            yield BudgetExhausted(explored, stats, "nodes", max_nodes)
            return
        if deadline is not None and monotonic() >= deadline:
            if on_budget == "raise":
                raise ReproError(
                    f"evaluation tree exceeded the {max_seconds:g}s time "
                    f"budget after {explored} core nodes"
                )
            if lift_span is not None:
                lift_span.attrs["truncated"] = "seconds"
            persist_memo()
            yield BudgetExhausted(explored, stats, "seconds", max_seconds)
            return

        state, parent = queue.popleft()
        index = explored
        explored += 1
        term = stepper.term(state)
        yield CoreStepped(index, term)
        if _obs.enabled:
            LIFT_STEPS_TOTAL.inc()
            attempts_before = MATCH_ATTEMPTS.value
            with _span("lift.step", index=index) as step_span:
                with _prov.step_scope(step_span):
                    event, outcome, parent = classify(term, index, parent)
                if step_span is not None:
                    step_span.attrs["outcome"] = outcome
            MATCH_ATTEMPTS_PER_STEP.observe(
                MATCH_ATTEMPTS.value - attempts_before
            )
            _OUTCOME_COUNTERS[outcome].inc()
        else:
            event, outcome, parent = classify(term, index, parent)
        if outcome == "emitted":
            next_id += 1
        yield event

        for successor in stepper.step(state):
            queue.append((successor, parent))
    if lift_span is not None:
        lift_span.attrs["core_nodes"] = explored
    persist_memo()
    yield Halted(explored, stats)


def fold_lift(events: Iterable[LiftEvent]) -> LiftResult:
    """Replay a :func:`lift_stream` event stream into the batch
    :class:`~repro.core.lift.LiftResult` (byte-identical to what the
    historical in-place loop produced)."""
    result = LiftResult()
    for event in events:
        if isinstance(event, SurfaceEmitted):
            result.surface_sequence.append(event.surface_term)
            result.steps.append(
                LiftedStep(
                    event.core_index, event.core_term, event.surface_term, True
                )
            )
        elif isinstance(event, Deduped):
            result.steps.append(
                LiftedStep(
                    event.core_index, event.core_term, event.surface_term, False
                )
            )
        elif isinstance(event, StepSkipped):
            result.steps.append(
                LiftedStep(event.core_index, event.core_term, None, False)
            )
        elif isinstance(event, Halted):
            result.cache_stats = event.cache_stats
        elif isinstance(event, BudgetExhausted):
            result.cache_stats = event.cache_stats
            result.truncated = True
    return result


def fold_tree(events: Iterable[LiftEvent]) -> SurfaceTree:
    """Replay a :func:`lift_tree_stream` event stream into the batch
    :class:`~repro.core.lift.SurfaceTree`."""
    tree = SurfaceTree()
    for event in events:
        if isinstance(event, CoreStepped):
            tree.core_node_count += 1
        elif isinstance(event, SurfaceEmitted):
            tree.nodes[event.node_id] = event.surface_term
            if event.parent_id is None:
                tree.root = event.node_id
            else:
                tree.edges.append((event.parent_id, event.node_id))
        elif isinstance(event, StepSkipped):
            tree.skipped_count += 1
        elif isinstance(event, BudgetExhausted):
            tree.truncated = True
    return tree
