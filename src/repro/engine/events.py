"""Typed events produced by the streaming lift engine.

A lift is a sequence of events, in core-evaluation order.  For every
core step the stream yields a :class:`CoreStepped` announcing the core
term, followed by exactly one *classification* event:

* :class:`SurfaceEmitted` — the term resugared and the surface term is
  new output (this is what a user-facing stepper displays);
* :class:`Deduped` — the term resugared but to the same surface term as
  the previously emitted one (consecutive core steps can differ only in
  machine state invisible at the surface);
* :class:`StepSkipped` — the term has no faithful surface representation
  (an unexpansion failed or an opaque body tag survived).

The stream ends with exactly one *terminal* event:

* :class:`Halted` — evaluation finished (the stepper returned no
  successor);
* :class:`BudgetExhausted` — a step-count or wall-clock budget ran out
  under the ``on_budget="truncate"`` policy (under ``"raise"`` the
  stream raises :class:`~repro.core.errors.ReproError` instead).

Tree lifts (:func:`repro.engine.stream.lift_tree_stream`) reuse the same
vocabulary: ``core_index`` is the breadth-first exploration order of the
core state, and :class:`SurfaceEmitted` additionally carries ``node_id``
and ``parent_id`` so the surface tree can be reconstructed from the
events alone.

Batch lifts (:mod:`repro.parallel`) lift a whole *corpus* of programs
and speak a coarser vocabulary: one :class:`BatchLifted` per finished
job, or one :class:`JobError` when that job's lift raised or exhausted
its budget under the ``"raise"`` policy.  A batch stream yields exactly
one of the two per job, in submission order, regardless of which worker
finished first — the determinism guarantee the parallel engine is
tested against.

Events are frozen dataclasses: safe to store, hash, and ship across
threads or serialization boundaries.  (:class:`BatchLifted` and
:class:`JobError` carry aggregate payloads — a result, a metrics
snapshot — so they are the exception: picklable and immutable, but not
hashable.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional, Tuple, Union

from repro.core.incremental import CacheStats
from repro.core.terms import Pattern

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.lift import LiftResult

__all__ = [
    "LiftEvent",
    "CoreStepped",
    "SurfaceEmitted",
    "StepSkipped",
    "Deduped",
    "Halted",
    "BudgetExhausted",
    "BatchLifted",
    "JobError",
]


class LiftEvent:
    """Marker base class for every event a lift stream yields."""

    __slots__ = ()


@dataclass(frozen=True)
class CoreStepped(LiftEvent):
    """The stepper reached core state ``core_index`` (0 is the desugared
    input program).  Always followed by a classification event for the
    same index."""

    core_index: int
    core_term: Pattern


@dataclass(frozen=True)
class SurfaceEmitted(LiftEvent):
    """Core step ``core_index`` has a (new) surface representation —
    display it.

    For tree lifts, ``node_id`` is the id of the surface node this event
    created and ``parent_id`` the id of its nearest resugarable ancestor
    (``None`` for a root).  Sequence lifts leave both ``None``.
    """

    core_index: int
    core_term: Pattern
    surface_term: Pattern
    node_id: Optional[int] = None
    parent_id: Optional[int] = None


@dataclass(frozen=True)
class Deduped(LiftEvent):
    """Core step ``core_index`` resugars to the same surface term as the
    previously emitted step; it is recorded but not displayed."""

    core_index: int
    core_term: Pattern
    surface_term: Pattern


@dataclass(frozen=True)
class StepSkipped(LiftEvent):
    """Core step ``core_index`` has no faithful surface representation
    (the paper's Abstraction property in action)."""

    core_index: int
    core_term: Pattern


@dataclass(frozen=True)
class Halted(LiftEvent):
    """Evaluation finished normally after ``core_step_count`` core
    steps.  ``cache_stats`` is the live per-run
    :class:`~repro.core.incremental.CacheStats` when the lift ran
    incrementally, ``None`` on the naive path."""

    core_step_count: int
    cache_stats: Optional[CacheStats] = None


@dataclass(frozen=True)
class BudgetExhausted(LiftEvent):
    """A budget ran out before evaluation finished (only under
    ``on_budget="truncate"``; the ``"raise"`` policy raises instead).

    ``budget`` names the exhausted budget: ``"steps"`` (sequence lifts),
    ``"nodes"`` (tree lifts), or ``"seconds"`` (wall clock).  ``limit``
    is the configured bound.  Everything yielded before this event is a
    valid, well-formed prefix of the full lift.
    """

    core_step_count: int
    cache_stats: Optional[CacheStats] = None
    budget: str = "steps"
    limit: Union[int, float] = 0

    def describe(self) -> str:
        """A human-readable one-liner for CLIs and logs."""
        unit = {"steps": "core steps", "nodes": "core nodes"}.get(
            self.budget, self.budget
        )
        return (
            f"{self.budget} budget exhausted after {self.core_step_count} "
            f"core steps (limit: {self.limit:g} {unit})"
        )


@dataclass(frozen=True, eq=False)
class BatchLifted(LiftEvent):
    """Job ``job_index`` of a batch lift finished successfully.

    ``result`` is the job's :class:`~repro.core.lift.LiftResult`
    (``None`` when the batch ran with ``payload="rendered"``, which
    ships only the pretty-printed surface sequence to keep the
    cross-process payload small).  ``rendered`` is that pretty-printed
    sequence when a renderer was supplied.  ``worker`` is the pid of the
    process that ran the job, and ``metrics`` its per-job
    :func:`repro.obs.metrics_snapshot` when the batch collected metrics
    (merge them with :meth:`repro.obs.metrics.MetricsRegistry.merge`).
    ``spans`` is the job's span tree when the batch collected traces
    (``collect_spans=True``): a tuple of the JSONL-schema record dicts
    the job's :class:`repro.obs.SpanCollector` gathered, each stamped
    with the batch's trace id and this job's attribution; merge the
    per-job tuples with :func:`repro.parallel.aggregate_trace`.
    """

    job_index: int
    result: Optional["LiftResult"] = None
    rendered: Optional[Tuple[str, ...]] = None
    worker: Optional[int] = None
    metrics: Optional[Mapping[str, object]] = None
    spans: Optional[Tuple[Mapping[str, object], ...]] = None


@dataclass(frozen=True, eq=False)
class JobError(LiftEvent):
    """Job ``job_index`` of a batch lift failed; its siblings did not.

    The failure is *contained*: the stepper raising mid-evaluation, an
    :class:`~repro.core.lift.EmulationViolation`, or an exhausted budget
    under ``on_budget="raise"`` all surface here as a structured record
    — ``error_type`` is the original exception class name,
    ``error_message`` its text, ``traceback`` the worker-side formatted
    traceback — and the batch carries on with the remaining jobs.  When
    the batch collected traces, ``spans`` carries the spans the job
    finished before failing (its open spans are lost), so a failed job
    still contributes a partial trace.
    """

    job_index: int
    error_type: str
    error_message: str
    traceback: str = ""
    worker: Optional[int] = None
    spans: Optional[Tuple[Mapping[str, object], ...]] = None

    def describe(self) -> str:
        """A human-readable one-liner for CLIs and logs."""
        return (
            f"job {self.job_index} failed: "
            f"{self.error_type}: {self.error_message}"
        )
