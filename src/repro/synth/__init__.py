"""Desugaring-rule synthesis from (surface, core) example pairs.

The paper assumes hand-written desugaring rules that satisfy the lens
laws of section 6.1.  This package closes the loop in the other
direction, in the spirit of "One Down, 699 to Go": given only concrete
(surface, core) example pairs — harvested from the golden corpus and
from randomly grown variants — it re-discovers pattern -> template rules
by anti-unification, filters them through the engine's own
well-formedness, disjointness, and lens-law checks, and validates the
synthesized ruleset by re-lifting the golden traces byte-for-byte
against the hand-written rules.

The same machinery doubles as a fuzzer: perturbing candidate rules
(swapped holes, dropped ellipses, captured binders) and pushing them
through the full pipeline asserts that the engine either rejects them
statically or lifts safely — any crash or law-violating acceptance is a
real engine bug.

Pipeline stages (one module each):

* :mod:`repro.synth.harvest`    — examples from programs
* :mod:`repro.synth.antiunify`  — examples -> candidate rules
* :mod:`repro.synth.filter`     — candidates -> checked candidates
* :mod:`repro.synth.validate`   — ruleset vs. reference, byte-compared
* :mod:`repro.synth.fuzz`       — perturbation fuzzing of the engine
* :mod:`repro.synth.pipeline`   — ties the stages together
"""

from repro.synth.antiunify import (
    Candidate,
    anti_unify_all,
    canonical_patterns,
    rules_alpha_equal,
)
from repro.synth.harvest import harvest_examples
from repro.synth.filter import CheckedCandidate, assemble_ruleset, check_candidate
from repro.synth.fuzz import FuzzReport, fuzz_backend
from repro.synth.pipeline import SynthesisReport, synthesize
from repro.synth.validate import validate_against_reference

__all__ = [
    "Candidate",
    "anti_unify_all",
    "canonical_patterns",
    "rules_alpha_equal",
    "harvest_examples",
    "CheckedCandidate",
    "check_candidate",
    "assemble_ruleset",
    "FuzzReport",
    "fuzz_backend",
    "SynthesisReport",
    "synthesize",
    "validate_against_reference",
]
