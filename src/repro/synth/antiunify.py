"""Anti-unification: from concrete example pairs to candidate rules.

Given ``n`` concrete (surface, core) pairs that are all believed to be
instances of one sugar, compute their *least general generalization*:
the most specific pattern -> template pair of which every example is an
instance.  Positions where the examples agree stay concrete; positions
where they differ become pattern variables ("holes"); list positions
whose lengths differ become ellipses.

Two decisions make this the rule-synthesis flavor of lgg rather than the
textbook one:

* **A shared hole table.**  The LHS and RHS are generalized by one
  generalizer, and a hole is keyed by the per-example tuple of concrete
  values it abstracts.  When the surface and core sides disagree *in the
  same way* — example i puts ``vi`` here on both sides — they receive
  the *same* variable, which is exactly what links a pattern variable to
  its template occurrence.  The key groups values by example index, so
  the linkage survives through ellipses (where one example binds a hole
  to several values).

* **Replayable choice sites.**  When list lengths differ, any split of
  the shared prefix from the repeated tail is a valid generalization
  (``[x, y, zs ...]`` vs. ``[x, zs ...]`` vs. ``[zs ...]``).  Each such
  split is a *choice site*; :func:`anti_unify_all` enumerates the
  alternatives Hypothesis-style, by re-running the generalizer with a
  prescribed prefix of choices and collecting the distinct rules that
  fall out.  The default choice is the longest shared prefix — the most
  specific rule — which is also what the hand-written multi-arm rules
  (``And``, ``Or``, ``Let``) look like.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.terms import (
    Const,
    Node,
    Pattern,
    PList,
    PVar,
    pattern_variables,
)
from repro.core.unification import rename_variables_map

__all__ = [
    "Candidate",
    "Example",
    "anti_unify",
    "anti_unify_all",
    "canonical_patterns",
    "rules_alpha_equal",
    "hole_name",
]

Example = Tuple[Pattern, Pattern]
"""One (surface term, core term) pair.  Both sides are concrete."""

_Row = Tuple[int, Pattern]
"""A subterm tagged with the index of the example it came from."""

_LETTERS = "abcdefghijklmnopqrstuvwxyz"


def hole_name(i: int) -> str:
    """Canonical name of the ``i``-th hole: ``a`` .. ``z``, then ``v26``,
    ``v27``, ..."""
    return _LETTERS[i] if i < len(_LETTERS) else f"v{i}"


@dataclass(frozen=True)
class Candidate:
    """One synthesized pattern -> template rule, plus the examples that
    produced it (kept for the lens-law filter)."""

    lhs: Pattern
    rhs: Pattern
    atomic_vars: Tuple[str, ...]
    examples: Tuple[Example, ...]

    @property
    def label(self) -> str:
        return self.lhs.label if isinstance(self.lhs, Node) else "?"


@dataclass
class _Replay:
    """Prescribed-prefix chooser for enumerating ambiguous splits.

    ``choose`` follows ``prescribed`` while it lasts, then defaults to
    the last option (the longest shared prefix).  The trail records
    every decision with its alternatives so the caller can schedule the
    paths not taken.
    """

    prescribed: Tuple[int, ...] = ()
    trail: List[Tuple[int, Tuple[int, ...]]] = field(default_factory=list)

    def choose(self, options: Sequence[int]) -> int:
        opts = tuple(options)
        i = len(self.trail)
        chosen = self.prescribed[i] if i < len(self.prescribed) and self.prescribed[i] in opts else opts[-1]
        self.trail.append((chosen, opts))
        return chosen


class _Generalizer:
    """Computes the lgg of rows of concrete subterms, sharing one hole
    table across every call (i.e. across the LHS and RHS)."""

    def __init__(self, n_examples: int, replay: _Replay):
        self.n = n_examples
        self.replay = replay
        self._holes: Dict[Tuple, str] = {}
        self.hole_values: Dict[str, Tuple[Pattern, ...]] = {}

    def lgg(self, rows: Sequence[_Row]) -> Pattern:
        terms = [t for _, t in rows]
        first = terms[0]
        # Identical everywhere -> keep concrete, but only when the rows
        # span at least two distinct examples.  Rows drawn from a single
        # example carry no evidence that the position is fixed (it may
        # just be that one example's value), so they fall through to a
        # hole or a structural split.
        if all(t == first for t in terms) and len({i for i, _ in rows}) >= 2:
            return first
        if all(isinstance(t, Node) for t in terms):
            if (
                len({t.label for t in terms}) == 1
                and len({len(t.children) for t in terms}) == 1
            ):
                return Node(
                    first.label,
                    tuple(
                        self.lgg([(i, t.children[k]) for i, t in rows])
                        for k in range(len(first.children))
                    ),
                )
        if all(isinstance(t, PList) for t in terms):
            lengths = {len(t.items) for t in terms}
            if len(lengths) == 1:
                return PList(
                    tuple(
                        self.lgg([(i, t.items[k]) for i, t in rows])
                        for k in range(lengths.pop())
                    )
                )
            # Differing lengths: split a shared prefix from a repeated
            # tail.  Every split point 0..min_len is sound; which one is
            # *right* is a choice site.
            k = self.replay.choose(range(min(lengths) + 1))
            prefix = tuple(
                self.lgg([(i, t.items[j]) for i, t in rows]) for j in range(k)
            )
            tail_rows = [(i, item) for i, t in rows for item in t.items[k:]]
            return PList(prefix, self.lgg(tail_rows))
        return self._hole(rows)

    def _hole(self, rows: Sequence[_Row]) -> PVar:
        groups: Dict[int, List[Pattern]] = {}
        for i, t in rows:
            groups.setdefault(i, []).append(t)
        key = tuple(tuple(groups.get(i, ())) for i in range(self.n))
        name = self._holes.get(key)
        if name is None:
            name = f"~h{len(self._holes)}"
            self._holes[key] = name
            self.hole_values[name] = tuple(t for _, t in rows)
        return PVar(name)


def anti_unify(
    examples: Sequence[Example], prescribed: Tuple[int, ...] = ()
) -> Tuple[Candidate, _Replay]:
    """One lgg pass over ``examples`` with the given choice prefix.

    Returns the candidate (holes canonically renamed by first occurrence,
    LHS before RHS; atomic variables inferred) and the replay trail."""
    replay = _Replay(prescribed)
    gen = _Generalizer(len(examples), replay)
    lhs = gen.lgg([(i, s) for i, (s, _) in enumerate(examples)])
    rhs = gen.lgg([(i, c) for i, (_, c) in enumerate(examples)])

    order: List[str] = []
    for name in pattern_variables(lhs) + pattern_variables(rhs):
        if name not in order:
            order.append(name)
    mapping = {name: hole_name(i) for i, name in enumerate(order)}
    lhs = rename_variables_map(lhs, mapping)
    rhs = rename_variables_map(rhs, mapping)

    # A hole that recurs on one side violates linearity (criterion 2)
    # unless declared atomic; declare it when the evidence supports it —
    # every concrete value it abstracted was an atom.  Otherwise leave
    # it undeclared and let the well-formedness filter reject the rule.
    atomic = []
    for side in (lhs, rhs):
        names = pattern_variables(side)
        for name in dict.fromkeys(names):
            if names.count(name) > 1:
                values = gen.hole_values.get(_preimage(mapping, name), ())
                if values and all(isinstance(v, Const) for v in values):
                    atomic.append(name)
    candidate = Candidate(
        lhs=lhs,
        rhs=rhs,
        atomic_vars=tuple(dict.fromkeys(atomic)),
        examples=tuple(examples),
    )
    return candidate, replay


def _preimage(mapping: Dict[str, str], name: str) -> Optional[str]:
    for old, new in mapping.items():
        if new == name:
            return old
    return None


def anti_unify_all(
    examples: Sequence[Example], max_candidates: int = 64
) -> List[Candidate]:
    """Every distinct generalization of ``examples`` reachable by varying
    the prefix/tail splits, breadth-first, most specific first.

    The first result is always the default (longest shared prefixes).
    Enumeration is capped at ``max_candidates`` distinct rules; the
    filter stage prunes further.
    """
    examples = tuple(examples)
    results: List[Candidate] = []
    seen_rules = set()
    tried = set()
    queue: deque[Tuple[int, ...]] = deque([()])
    while queue and len(results) < max_candidates:
        prescribed = queue.popleft()
        if prescribed in tried:
            continue
        tried.add(prescribed)
        candidate, replay = anti_unify(examples, prescribed)
        sig = (candidate.lhs, candidate.rhs, candidate.atomic_vars)
        if sig not in seen_rules:
            seen_rules.add(sig)
            results.append(candidate)
        # Schedule the paths not taken: for each choice site, keep the
        # prefix of decisions before it and flip that one decision.
        for i, (chosen, options) in enumerate(replay.trail):
            prefix = tuple(c for c, _ in replay.trail[:i])
            for alt in options:
                if alt != chosen and prefix + (alt,) not in tried:
                    queue.append(prefix + (alt,))
    return results


def canonical_patterns(lhs: Pattern, rhs: Pattern) -> Tuple[Pattern, Pattern]:
    """Alpha-canonical form of a rule: variables renamed ``a``, ``b``,
    ... by first occurrence (LHS pre-order, then RHS)."""
    order: List[str] = []
    for name in pattern_variables(lhs) + pattern_variables(rhs):
        if name not in order:
            order.append(name)
    mapping = {name: hole_name(i) for i, name in enumerate(order)}
    return rename_variables_map(lhs, mapping), rename_variables_map(rhs, mapping)


def rules_alpha_equal(a, b) -> bool:
    """Do two rules (anything with ``.lhs`` / ``.rhs``) coincide up to
    renaming of pattern variables?"""
    return canonical_patterns(a.lhs, a.rhs) == canonical_patterns(b.lhs, b.rhs)
