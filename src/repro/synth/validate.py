"""Validating a synthesized ruleset against the reference rules.

The acceptance bar is byte-identity of *lifted output*: every seed
program is lifted through both engines and the rendered surface
sequences are compared line for line.  Identical rendered traces mean
the synthesized rules are observationally indistinguishable from the
hand-written ones over the corpus — the strongest end-to-end evidence
synthesis can offer short of rule-for-rule alpha-equality (which
:func:`repro.synth.antiunify.rules_alpha_equal` measures separately).

Lifting is batched through :class:`repro.parallel.WarmPool`, one warm
pool per engine, so a large validation corpus pays rule-table
construction once per worker rather than once per program.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.engine.events import BatchLifted
from repro.parallel.jobs import LiftJob
from repro.parallel.pool import WarmPool

__all__ = ["ValidationReport", "validate_against_reference"]


@dataclass(frozen=True)
class ValidationReport:
    """Per-corpus outcome of reference-vs-synthesized comparison."""

    programs: int
    matched: int
    mismatches: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return self.matched == self.programs


def _outcome_key(outcome) -> Tuple:
    """What we compare per program: the rendered trace for a lifted
    program, or the contained error's identity for a failed one (two
    engines failing identically — e.g. both stuck on the same unbound
    name — still agree)."""
    if isinstance(outcome, BatchLifted):
        return ("lifted", outcome.rendered)
    return ("error", outcome.error_type, outcome.error_message)


def validate_against_reference(
    reference_engine,
    synthesized_engine,
    programs: Sequence,
    pretty,
    *,
    jobs: int = 1,
    max_steps: int = 200,
) -> ValidationReport:
    """Lift ``programs`` through both engines and byte-compare the
    rendered traces.

    ``reference_engine`` / ``synthesized_engine`` are engine specs in
    the :class:`WarmPool` sense (Confection, ``(rules, stepper)`` pair,
    or factory).  Budgets are truncated, not raised, so a diverging
    program (e.g. ``while`` with a constant condition) compares by its
    identical finite prefix."""
    jobs_list = [
        LiftJob(
            program,
            name=f"validate-{i}",
            max_steps=max_steps,
            on_budget="truncate",
        )
        for i, program in enumerate(programs)
    ]
    outcomes: List[List] = []
    for engine in (reference_engine, synthesized_engine):
        with WarmPool(
            engine, jobs=jobs, payload="rendered", pretty=pretty
        ) as pool:
            outcomes.append(list(pool.run(jobs_list)))
    reference, synthesized = outcomes
    mismatches: List[str] = []
    matched = 0
    for i, (ref, syn) in enumerate(zip(reference, synthesized)):
        if _outcome_key(ref) == _outcome_key(syn):
            matched += 1
        else:
            mismatches.append(
                f"program {i} ({jobs_list[i].name}): "
                f"reference={_outcome_key(ref)!r} "
                f"synthesized={_outcome_key(syn)!r}"
            )
    return ValidationReport(
        programs=len(jobs_list),
        matched=matched,
        mismatches=tuple(mismatches),
    )
