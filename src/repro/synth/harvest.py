"""Harvesting (surface, core) example pairs from seed programs.

The harvester treats an existing backend's desugarer as a *black-box
oracle*: feed it a surface term, get back which rule fired and the core
term it produced.  From a handful of seed programs it manufactures the
example sets the anti-unifier needs, in three moves:

1. **Skeletonization.**  For every subterm of a seed program that the
   oracle expands, greedily replace its subtrees with fresh *markers*
   (unique atoms / unique ``Id`` references) as long as the same rule
   keeps firing.  What survives is the sugar's fixed syntactic shape
   (keyword wrappers like ``Else`` or ``Binding``); what was replaced is
   exactly the rule's variable positions.

2. **List-shape variants.**  A single program only witnesses one length
   for each list position.  Growing and shrinking the skeleton's lists
   (drop-first, drop-last, clone-the-first-item-to-the-front) — keeping
   only variants the oracle still expands — produces the neighboring
   lengths, which is what lets the anti-unifier see that ``And`` takes
   *any* number of arms and where its prefix/tail split lies.

3. **Instantiation.**  Each distinct shape is instantiated a few times
   with freshly renamed markers and desugared; the resulting concrete
   (surface, core) pairs form one :class:`HarvestedBucket`.  Distinct
   examples per bucket is what powers the anti-unifier's
   "identical-across-examples means concrete" rule.

Everything here is deterministic: no randomness, and iteration order
follows the seed programs.  Randomized seeds enter only through the
caller (Hypothesis strategies in the test suite, perturbations in fuzz
mode).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.rules import RuleList
from repro.core.terms import Const, Node, Pattern, PList, strip_tags
from repro.synth.antiunify import Example

__all__ = [
    "MARKER_PREFIX",
    "HarvestedBucket",
    "harvest_examples",
    "is_marker",
    "shape_signature",
    "SEED_PROGRAMS",
]

MARKER_PREFIX = "~m"

Path = Tuple[int, ...]

SEED_PROGRAMS: Dict[str, Tuple[str, ...]] = {
    # One representative program per sugar; list-shape variants derive
    # the neighboring arities automatically.  Mirrors the golden corpus.
    "lambda": (
        "(and 1 2 3)",
        "(or 1 2 3)",
        "(let ((x 1) (y 2)) 3)",
        "(letrec ((x 1) (y 2)) 3)",
        "(function (x y) 1)",
        "(list 1 2)",
        "(thunk 1)",
        "(force 1)",
        "(when 1 2)",
        "(while 1 2)",
        "(cond (1 2) (else 3))",
        "(lambda (x) (+ x 1))",
    ),
    "pyret": (
        "fun f(a, b): a + b end 1",
        "fun(a, b): a + b end",
        "when 1 > 2: 3 end",
        "if 1 > 2: 1 else if 2 > 1: 2 else: 3 end",
        "if 1 > 2: 1 else: 2 end",
        "cases(List) x: | link(f, r) => f | empty() => 0 end",
        "cases(List) x: | link(f, r) => f | else => 99 end",
        "for map(x from y): x + 1 end",
        "not(true)",
        "true and false",
        "true or false",
        "(1)",
        "x ^ f(1)",
        "[1, 2]",
        "x.f(1)",
        "o.[y]",
        "1 + 2",
    ),
}
"""Built-in seed banks, one per registered backend."""


def is_marker(p: Pattern) -> bool:
    """Is ``p`` a harvest marker atom (possibly wrapped in ``Id``)?"""
    if isinstance(p, Node) and p.label == "Id" and len(p.children) == 1:
        return is_marker(p.children[0])
    return (
        isinstance(p, Const)
        and isinstance(p.value, str)
        and p.value.startswith(MARKER_PREFIX)
    )


class _Gensym:
    def __init__(self) -> None:
        self.n = 0

    def __call__(self) -> str:
        name = f"{MARKER_PREFIX}{self.n}"
        self.n += 1
        return name

    def fresh_int(self) -> int:
        # Unique integer literals, far from anything a seed program uses.
        self.n += 1
        return 7_000_000 + self.n


def _children(term: Pattern) -> Tuple[Pattern, ...]:
    if isinstance(term, Node):
        return term.children
    if isinstance(term, PList):
        return term.items
    return ()


def _replace_child(term: Pattern, k: int, new: Pattern) -> Pattern:
    if isinstance(term, Node):
        kids = term.children
        return Node(term.label, kids[:k] + (new,) + kids[k + 1 :])
    assert isinstance(term, PList)
    items = term.items
    return PList(items[:k] + (new,) + items[k + 1 :], term.ellipsis)


def get_at(term: Pattern, path: Path) -> Pattern:
    for k in path:
        term = _children(term)[k]
    return term


def replace_at(term: Pattern, path: Path, new: Pattern) -> Pattern:
    if not path:
        return new
    k = path[0]
    return _replace_child(
        term, k, replace_at(_children(term)[k], path[1:], new)
    )


def walk_paths(term: Pattern) -> Iterator[Tuple[Path, Pattern]]:
    """Every proper subterm position of ``term``, pre-order."""
    stack: List[Tuple[Path, Pattern]] = [
        ((k,), c) for k, c in enumerate(_children(term))
    ]
    while stack:
        path, sub = stack.pop(0)
        yield path, sub
        stack[:0] = [(path + (k,), c) for k, c in enumerate(_children(sub))]


def shape_signature(p: Pattern):
    """Structural fingerprint of a shape with markers normalized, so two
    skeletons differing only in marker names collapse together."""
    if is_marker(p):
        return ("m",)
    if isinstance(p, Node):
        return (p.label, tuple(shape_signature(c) for c in p.children))
    if isinstance(p, PList):
        return ("()", tuple(shape_signature(i) for i in p.items))
    if isinstance(p, Const):
        return ("atom", type(p.value).__name__, p.value)
    return ("?", repr(p))


def _freshen(p: Pattern, gensym: _Gensym, mapping: Dict[str, str]) -> Pattern:
    """Consistently rename every marker atom in ``p`` to a fresh one."""
    if isinstance(p, Const):
        if isinstance(p.value, str) and p.value.startswith(MARKER_PREFIX):
            if p.value not in mapping:
                mapping[p.value] = gensym()
            return Const(mapping[p.value])
        return p
    if isinstance(p, Node):
        return Node(p.label, tuple(_freshen(c, gensym, mapping) for c in p.children))
    if isinstance(p, PList):
        return PList(
            tuple(_freshen(i, gensym, mapping) for i in p.items), p.ellipsis
        )
    return p


def _marker_replacements(sub: Pattern, gensym: _Gensym) -> Tuple[Pattern, ...]:
    """Candidate marker stand-ins for one subterm, most faithful first:
    a name position gets a fresh atom, an expression position a fresh
    ``Id`` reference."""
    if isinstance(sub, Const) and isinstance(sub.value, str):
        return (Const(gensym()), Node("Id", (Const(gensym()),)))
    if isinstance(sub, Const):
        return (Node("Id", (Const(gensym()),)), Const(gensym()))
    if isinstance(sub, Node):
        return (Node("Id", (Const(gensym()),)),)
    return ()  # PLists are varied by the shape stage, not replaced


def skeletonize(
    rules: RuleList, term: Pattern, gensym: _Gensym
) -> Optional[Pattern]:
    """Greedily abstract ``term``'s subtrees into markers while the same
    rule keeps expanding it.  ``None`` when no rule expands ``term``."""
    base = rules.expand(term)
    if base is None:
        return None
    skel = term
    worklist: List[Path] = [(k,) for k in range(len(_children(term)))]
    while worklist:
        path = worklist.pop(0)
        sub = get_at(skel, path)
        if is_marker(sub):
            continue
        replaced = False
        for marker in _marker_replacements(sub, gensym):
            candidate = replace_at(skel, path, marker)
            expansion = rules.expand(candidate)
            if expansion is not None and expansion.index == base.index:
                skel = candidate
                replaced = True
                break
        if not replaced:
            # The position is part of the sugar's fixed shape; descend.
            worklist.extend(
                path + (k,) for k in range(len(_children(sub)))
            )
    return skel


def _list_variants(
    rules: RuleList,
    skeleton: Pattern,
    gensym: _Gensym,
    *,
    max_list_len: int,
    max_shapes: int,
) -> List[Pattern]:
    """Grow/shrink every list position of ``skeleton``, breadth-first,
    keeping variants some rule still expands.  The expanding rule may
    differ from the skeleton's — that is the point: each arity that
    selects a different rule lands in its own bucket."""
    out = [skeleton]
    seen = {shape_signature(skeleton)}
    queue = [skeleton]
    while queue and len(out) < max_shapes:
        current = queue.pop(0)
        for path, sub in walk_paths(current):
            if not isinstance(sub, PList) or not sub.items:
                continue
            variants = [PList(sub.items[1:]), PList(sub.items[:-1])]
            if len(sub.items) < max_list_len:
                clone = _freshen(sub.items[0], gensym, {})
                variants.append(PList((clone,) + sub.items))
            for variant in variants:
                candidate = replace_at(current, path, variant)
                signature = shape_signature(candidate)
                if signature in seen:
                    continue
                seen.add(signature)
                if rules.expand(candidate) is None:
                    continue
                out.append(candidate)
                queue.append(candidate)
    return out


@dataclass(frozen=True)
class HarvestedBucket:
    """All harvested examples for one syntactic shape: the instances of
    (what the synthesizer will hopefully discover is) one rule at one
    arity."""

    label: str
    signature: object
    examples: Tuple[Example, ...]


def harvest_examples(
    rules: RuleList,
    programs: Sequence[Pattern],
    *,
    max_list_len: int = 5,
    instances_per_shape: int = 3,
    max_shapes_per_program: int = 48,
    recurse_cores: bool = True,
) -> List[HarvestedBucket]:
    """Harvest example buckets from ``programs`` against the reference
    ``rules`` (the oracle).  Deterministic; order follows the programs.

    With ``recurse_cores`` the core side of each expansion is mined too
    (one level deep), so sugar-defined-in-terms-of-sugar — e.g. a
    ``While`` whose core reintroduces application of a recursive
    function — contributes shapes even when no seed program spells the
    inner sugar directly.
    """
    gensym = _Gensym()
    buckets: List[HarvestedBucket] = []
    seen_shapes = set()

    def mine(term: Pattern, depth: int) -> None:
        for sub in [term] + [s for _, s in walk_paths(term)]:
            if not isinstance(sub, Node):
                continue
            expansion = rules.expand(sub)
            if expansion is None:
                continue
            skeleton = skeletonize(rules, sub, gensym)
            if skeleton is None:
                continue
            for shape in _list_variants(
                rules,
                skeleton,
                gensym,
                max_list_len=max_list_len,
                max_shapes=max_shapes_per_program,
            ):
                signature = shape_signature(shape)
                if signature in seen_shapes:
                    continue
                seen_shapes.add(signature)
                examples = _instantiate(
                    rules, shape, gensym, instances_per_shape
                )
                if examples:
                    buckets.append(
                        HarvestedBucket(
                            label=shape.label,
                            signature=signature,
                            examples=examples,
                        )
                    )
            if recurse_cores and depth == 0:
                mine(strip_tags(expansion.term), depth + 1)

    for program in programs:
        mine(program, 0)
    return buckets


def _realize(
    p: Pattern, gensym: _Gensym, mapping: Dict[str, Pattern], style: int
) -> Pattern:
    """Instantiate a shape's markers with fresh concrete terms.

    Style 0 realizes expression markers as ``Id`` references; style 1 as
    integer literals.  Mixing styles across a bucket's instances is what
    keeps the anti-unifier from baking the marker's own syntax (the
    ``Id`` wrapper) into the rule: a position whose values differ *in
    structure* across examples must become a bare hole."""
    if isinstance(p, Node) and p.label == "Id" and len(p.children) == 1:
        inner = p.children[0]
        if isinstance(inner, Const) and isinstance(inner.value, str) and (
            inner.value.startswith(MARKER_PREFIX)
        ):
            if inner.value not in mapping:
                mapping[inner.value] = (
                    Const(gensym.fresh_int())
                    if style == 1
                    else Node("Id", (Const(gensym()),))
                )
            return mapping[inner.value]
    if isinstance(p, Const):
        if isinstance(p.value, str) and p.value.startswith(MARKER_PREFIX):
            if p.value not in mapping:
                mapping[p.value] = Const(gensym())
            return mapping[p.value]
        return p
    if isinstance(p, Node):
        return Node(
            p.label, tuple(_realize(c, gensym, mapping, style) for c in p.children)
        )
    if isinstance(p, PList):
        return PList(
            tuple(_realize(i, gensym, mapping, style) for i in p.items), p.ellipsis
        )
    return p


def _instantiate(
    rules: RuleList, shape: Pattern, gensym: _Gensym, count: int
) -> Tuple[Example, ...]:
    examples: List[Example] = []
    for k in range(count):
        instance = _realize(shape, gensym, {}, style=k % 2)
        expansion = rules.expand(instance)
        if expansion is None and k % 2 == 1:
            # The literal realization broke matching (a position that
            # demands a reference); fall back to the faithful style.
            instance = _realize(shape, gensym, {}, style=0)
            expansion = rules.expand(instance)
        if expansion is None:
            return ()
        examples.append((instance, strip_tags(expansion.term)))
    return tuple(examples)
