"""Perturbation fuzzing: the synthesis harness as an engine test.

Take a rule the pipeline synthesized and verified, break it on purpose
— swap two template holes, drop an ellipsis, freeze a repetition at a
fixed length, capture a binder, make it self-recursive — and push the
broken rule through the whole stack: well-formedness, disjointness,
the lens-law filter, and finally real lifts with the emulation check
on.  The engine's contract is that every such rule is either *rejected*
(a clean :class:`~repro.core.errors.ReproError` from some layer) or
*harmless* (the lift completes and emulation holds).  Any other
exception escaping the stack is an engine bug — the fuzzer records it
as a crash, and the regression corpus under ``tests/synth/regressions``
replays it forever after.

Trial verdicts:

``rejected-static``   well-formedness or disjointness said no
``rejected-filter``   the rule can't reproduce its examples / breaks a lens law
``rejected-runtime``  desugar fuel, substitution, or the emulation check said no mid-lift
``accepted-safe``     the perturbation was harmless; lifts completed, laws held,
                      and the mutant demonstrably fired during the lifts
``inert``             the lifts completed, but per-rule provenance shows the
                      mutant never participated — a vacuous pass, not a safe one
``crash``             a non-``ReproError`` escaped — an engine bug

The ``inert`` cross-check closes a soundness hole in the old report:
``accepted-safe`` used to mean only "nothing blew up", which a mutant
that never matches anything achieves trivially.  Every trial's verdict
is now checked against the :mod:`repro.obs.provenance` ``rule_stats``
table of its own example lifts — the spliced mutant sits at rule index
0, so a missing ``0:``-keyed row means the dynamic stage proved
nothing about it.
"""

from __future__ import annotations

import random
import traceback as _traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.confection import Confection
from repro.core.errors import DisjointnessError, ReproError
from repro.core.rules import RuleList
from repro.core.terms import Const, Node, Pattern, PList, PVar, Symbol
from repro.core.wellformed import DisjointnessMode
from repro.engine.registry import get_backend
from repro.obs import metrics as _metrics
from repro.synth.antiunify import Candidate
from repro.synth.filter import check_candidate, check_candidates
from repro.synth.harvest import SEED_PROGRAMS, harvest_examples

__all__ = [
    "FuzzOutcome",
    "FuzzReport",
    "PERTURBATIONS",
    "candidate_from_json",
    "candidate_to_json",
    "fuzz_backend",
    "minimize_candidate",
    "pattern_from_json",
    "pattern_to_json",
    "run_trial",
]

Path = Tuple[int, ...]


# --------------------------------------------------------------------------
# Pattern surgery (ellipsis-aware, unlike the harvester's concrete walker)

def _kids(p: Pattern) -> Tuple[Pattern, ...]:
    if isinstance(p, Node):
        return p.children
    if isinstance(p, PList):
        items = p.items
        return items + (p.ellipsis,) if p.ellipsis is not None else items
    return ()


def _with_kid(p: Pattern, k: int, new: Pattern) -> Pattern:
    if isinstance(p, Node):
        return Node(p.label, p.children[:k] + (new,) + p.children[k + 1 :])
    assert isinstance(p, PList)
    if p.ellipsis is not None and k == len(p.items):
        return PList(p.items, new)
    return PList(p.items[:k] + (new,) + p.items[k + 1 :], p.ellipsis)


def _paths(p: Pattern) -> List[Tuple[Path, Pattern]]:
    out: List[Tuple[Path, Pattern]] = []
    stack: List[Tuple[Path, Pattern]] = [((), p)]
    while stack:
        path, sub = stack.pop(0)
        out.append((path, sub))
        stack.extend(
            (path + (k,), c) for k, c in enumerate(_kids(sub))
        )
    return out


def _get(p: Pattern, path: Path) -> Pattern:
    for k in path:
        p = _kids(p)[k]
    return p


def _put(p: Pattern, path: Path, new: Pattern) -> Pattern:
    if not path:
        return new
    return _with_kid(p, path[0], _put(_kids(p)[path[0]], path[1:], new))


def _var_paths(p: Pattern) -> List[Path]:
    return [path for path, sub in _paths(p) if isinstance(sub, PVar)]


def _plist_paths(p: Pattern) -> List[Path]:
    return [path for path, sub in _paths(p) if isinstance(sub, PList)]


# --------------------------------------------------------------------------
# Perturbation operators.  Each takes (candidate, rng) and returns a
# mutated candidate, or None when inapplicable to this rule's shape.

def _swap_holes_rhs(c: Candidate, rng: random.Random) -> Optional[Candidate]:
    """Exchange two different template holes — values land in the wrong
    positions, which the lens laws (or emulation) must notice."""
    paths = _var_paths(c.rhs)
    named = [(p, _get(c.rhs, p).name) for p in paths]
    distinct = [
        (p1, n1, p2, n2)
        for i, (p1, n1) in enumerate(named)
        for (p2, n2) in named[i + 1 :]
        if n1 != n2
    ]
    if not distinct:
        return None
    p1, n1, p2, n2 = rng.choice(distinct)
    rhs = _put(_put(c.rhs, p1, PVar(n2)), p2, PVar(n1))
    return Candidate(c.lhs, rhs, c.atomic_vars, c.examples)


def _rename_rhs_hole_fresh(c: Candidate, rng: random.Random) -> Optional[Candidate]:
    """Point a template hole at a variable the pattern never binds."""
    paths = _var_paths(c.rhs)
    if not paths:
        return None
    path = rng.choice(paths)
    rhs = _put(c.rhs, path, PVar("~unbound"))
    return Candidate(c.lhs, rhs, c.atomic_vars, c.examples)


def _duplicate_rhs_hole(c: Candidate, rng: random.Random) -> Optional[Candidate]:
    """Use one bound hole twice in the template (breaks linearity unless
    it was declared atomic)."""
    paths = _var_paths(c.rhs)
    if len(paths) < 2:
        return None
    src, dst = rng.sample(paths, 2)
    rhs = _put(c.rhs, dst, PVar(_get(c.rhs, src).name))
    return Candidate(c.lhs, rhs, c.atomic_vars, c.examples)


def _drop_ellipsis(c: Candidate, rng: random.Random) -> Optional[Candidate]:
    """Forget a repetition: the rule freezes at the prefix arity."""
    for side_name in rng.sample(("lhs", "rhs"), 2):
        side = getattr(c, side_name)
        ells = [
            p for p in _plist_paths(side) if _get(side, p).ellipsis is not None
        ]
        if ells:
            path = rng.choice(ells)
            plist = _get(side, path)
            mutated = _put(side, path, PList(plist.items, None))
            if side_name == "lhs":
                return Candidate(mutated, c.rhs, c.atomic_vars, c.examples)
            return Candidate(c.lhs, mutated, c.atomic_vars, c.examples)
    return None


def _freeze_ellipsis(c: Candidate, rng: random.Random) -> Optional[Candidate]:
    """Inline a repetition element as one fixed trailing item — its
    variables now sit at the wrong ellipsis depth."""
    for side_name in rng.sample(("lhs", "rhs"), 2):
        side = getattr(c, side_name)
        ells = [
            p for p in _plist_paths(side) if _get(side, p).ellipsis is not None
        ]
        if ells:
            path = rng.choice(ells)
            plist = _get(side, path)
            mutated = _put(
                side, path, PList(plist.items + (plist.ellipsis,), None)
            )
            if side_name == "lhs":
                return Candidate(mutated, c.rhs, c.atomic_vars, c.examples)
            return Candidate(c.lhs, mutated, c.atomic_vars, c.examples)
    return None


def _capture_binder(c: Candidate, rng: random.Random) -> Optional[Candidate]:
    """Replace a template hole with a name the template already uses
    concretely (e.g. the ``"%t"`` the multi-arm ``Or`` binds) — the
    classic capture bug hygiene exists to prevent."""
    names = [
        sub.value
        for _, sub in _paths(c.rhs)
        if isinstance(sub, Const) and isinstance(sub.value, str)
    ]
    paths = _var_paths(c.rhs)
    if not paths:
        return None
    name = rng.choice(names) if names else "~captured"
    rhs = _put(c.rhs, rng.choice(paths), Const(name))
    return Candidate(c.lhs, rhs, c.atomic_vars, c.examples)


def _mutate_const_type(c: Candidate, rng: random.Random) -> Optional[Candidate]:
    """Flip a template constant's type (string name -> number, ...)."""
    consts = [
        (p, sub) for p, sub in _paths(c.rhs) if isinstance(sub, Const)
    ]
    if not consts:
        return None
    path, const = rng.choice(consts)
    flipped = Const(13) if isinstance(const.value, str) else Const("thirteen")
    rhs = _put(c.rhs, path, flipped)
    return Candidate(c.lhs, rhs, c.atomic_vars, c.examples)


def _swap_sides(c: Candidate, rng: random.Random) -> Optional[Candidate]:
    """Run the rule backwards: often an ill-formed LHS (criterion 4) or
    an un-explanatory rule; never a crash."""
    return Candidate(c.rhs, c.lhs, c.atomic_vars, c.examples)


def _self_recurse(c: Candidate, rng: random.Random) -> Optional[Candidate]:
    """Make the rule expand to itself — desugaring diverges and must hit
    the expansion fuel, not the process's recursion limit."""
    return Candidate(c.lhs, c.lhs, c.atomic_vars, c.examples)


def _shuffle_lhs_children(c: Candidate, rng: random.Random) -> Optional[Candidate]:
    """Permute the pattern's fields — holes bind the wrong subterms."""
    if not isinstance(c.lhs, Node) or len(c.lhs.children) < 2:
        return None
    order = list(range(len(c.lhs.children)))
    rng.shuffle(order)
    lhs = Node(c.lhs.label, tuple(c.lhs.children[i] for i in order))
    if lhs == c.lhs:
        return None
    return Candidate(lhs, c.rhs, c.atomic_vars, c.examples)


def _add_rhs_ellipsis_nonvar(c: Candidate, rng: random.Random) -> Optional[Candidate]:
    """Attach a variable-free repetition — its length is undetermined
    (criterion 3 territory)."""
    plists = [
        p for p in _plist_paths(c.rhs) if _get(c.rhs, p).ellipsis is None
    ]
    if not plists:
        return None
    path = rng.choice(plists)
    plist = _get(c.rhs, path)
    rhs = _put(c.rhs, path, PList(plist.items, Const("~junk")))
    return Candidate(c.lhs, rhs, c.atomic_vars, c.examples)


def _depth_shift(c: Candidate, rng: random.Random) -> Optional[Candidate]:
    """Use an under-ellipsis variable at depth zero — a substitution
    depth mismatch the engine must contain."""
    ells = [
        p for p in _plist_paths(c.lhs) if _get(c.lhs, p).ellipsis is not None
    ]
    for path in ells:
        inner_vars = _var_paths(_get(c.lhs, path).ellipsis)
        if not inner_vars:
            continue
        name = _get(_get(c.lhs, path).ellipsis, rng.choice(inner_vars)).name
        targets = _var_paths(c.rhs)
        if not targets:
            return None
        rhs = _put(c.rhs, rng.choice(targets), PVar(name))
        return Candidate(c.lhs, rhs, c.atomic_vars, c.examples)
    return None


PERTURBATIONS: Tuple[Tuple[str, Callable], ...] = (
    ("swap-holes-rhs", _swap_holes_rhs),
    ("rename-rhs-hole-fresh", _rename_rhs_hole_fresh),
    ("duplicate-rhs-hole", _duplicate_rhs_hole),
    ("drop-ellipsis", _drop_ellipsis),
    ("freeze-ellipsis", _freeze_ellipsis),
    ("capture-binder", _capture_binder),
    ("mutate-const-type", _mutate_const_type),
    ("swap-sides", _swap_sides),
    ("self-recurse", _self_recurse),
    ("shuffle-lhs-children", _shuffle_lhs_children),
    ("add-rhs-ellipsis-nonvar", _add_rhs_ellipsis_nonvar),
    ("depth-shift", _depth_shift),
)


# --------------------------------------------------------------------------
# Trial execution

@dataclass(frozen=True)
class FuzzOutcome:
    """One perturbed candidate's journey through the stack."""

    op: str
    verdict: str
    detail: str = ""
    candidate: Optional[Candidate] = None


@dataclass
class FuzzReport:
    """Aggregate of one fuzzing run."""

    backend: str
    seed: int
    trials: int
    verdicts: Dict[str, int] = field(default_factory=dict)
    crashes: List[FuzzOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.crashes


def _mutant_fired(records) -> bool:
    """Did rule index 0 (the spliced mutant) do anything, per the
    ``rule_stats`` tables on the collected lift spans?  All-zero rows
    are elided at the source, so key presence is participation."""
    for record in records:
        attrs = record.get("attrs")
        stats = attrs.get("rule_stats") if isinstance(attrs, dict) else None
        if isinstance(stats, dict) and any(
            key.partition(":")[0] == "0" for key in stats
        ):
            return True
    return False


def run_trial(
    reference: RuleList,
    stepper_factory: Callable,
    mutated: Candidate,
    op: str,
    *,
    max_steps: int = 40,
) -> FuzzOutcome:
    """Push one perturbed candidate through filter + spliced lifts.

    The perturbed rule is spliced *ahead* of the reference rules so it
    shadows the rule it was derived from; when the overlap is caught
    statically we retry with disjointness off — the paper's own mode
    for demonstrating dynamic Emulation enforcement — so the lift path
    gets exercised too.  Rules the filter rejects for *semantic*
    reasons (wrong examples, broken laws) are still spliced and lifted:
    a user can install such a rule by hand, so the engine must survive
    it; only rules too ill-formed to construct skip the dynamic stage."""
    try:
        checked = check_candidate(mutated)
    except ReproError as exc:
        return FuzzOutcome(
            op, "rejected-static", f"{type(exc).__name__}: {exc}", mutated
        )
    except Exception:
        return FuzzOutcome(op, "crash", _traceback.format_exc(), mutated)
    if checked.verdict == "wellformedness" or checked.rule is None:
        return FuzzOutcome(op, "rejected-static", checked.detail, mutated)

    lift_error = ""
    mutant_fired = False
    try:
        try:
            spliced = RuleList(
                (checked.rule,) + tuple(reference.rules), reference.disjointness
            )
        except DisjointnessError:
            spliced = RuleList(
                (checked.rule,) + tuple(reference.rules), DisjointnessMode.OFF
            )
        engine = Confection(spliced, stepper_factory())
        # The lifts run under a span collector (reset_metrics=False: the
        # fuzz loop's own synth.* counters must survive) so the mutant's
        # participation is provable from rule_stats afterwards.
        from repro.obs import Observability, SpanCollector

        collector = SpanCollector()
        with Observability(sinks=[collector], reset_metrics=False):
            for surface, _ in mutated.examples[:2]:
                engine.lift(
                    surface,
                    max_steps=max_steps,
                    on_budget="truncate",
                    check_emulation=True,
                )
        mutant_fired = _mutant_fired(collector.records)
    except ReproError as exc:
        lift_error = f"{type(exc).__name__}: {exc}"
    except Exception:
        return FuzzOutcome(op, "crash", _traceback.format_exc(), mutated)

    if checked.verdict in ("laws", "explains-nothing"):
        return FuzzOutcome(op, "rejected-filter", checked.detail, mutated)
    if lift_error:
        return FuzzOutcome(op, "rejected-runtime", lift_error, mutated)
    if not mutant_fired:
        return FuzzOutcome(
            op,
            "inert",
            "mutant rule recorded no expansions, unexpansions, or "
            "unexpand failures during its example lifts",
            mutated,
        )
    return FuzzOutcome(op, "accepted-safe", candidate=mutated)


def fuzz_backend(
    backend_name: str,
    *,
    seed: int = 0,
    trials: int = 500,
    sugar: Optional[str] = None,
    backend_options: Optional[Dict] = None,
    max_list_len: int = 4,
) -> FuzzReport:
    """Run ``trials`` perturbation trials against one backend.

    Deterministic in ``seed``: the base rules are synthesized from the
    built-in seed bank (itself deterministic) and every random choice —
    base candidate, operator, operator's own picks — draws from one
    seeded generator."""
    from repro.synth.pipeline import enumerate_candidates, resolve_backend_name

    backend = get_backend(resolve_backend_name(backend_name))
    reference = backend.make_rules(sugar, **dict(backend_options or {}))
    programs = [
        backend.parse(source) for source in SEED_PROGRAMS.get(backend.name, ())
    ]
    buckets = harvest_examples(reference, programs, max_list_len=max_list_len)
    candidates = enumerate_candidates(buckets)
    bases = [c.candidate for c in check_candidates(candidates) if c.ok]
    if not bases:
        raise ReproError(
            f"fuzz: no well-formed base candidates for backend "
            f"{backend.name!r}; nothing to perturb"
        )

    rng = random.Random(seed)
    report = FuzzReport(backend=backend.name, seed=seed, trials=0)
    while report.trials < trials:
        base = rng.choice(bases)
        op_name, op = rng.choice(PERTURBATIONS)
        mutated = op(base, rng)
        if mutated is None or (
            mutated.lhs == base.lhs
            and mutated.rhs == base.rhs
            and mutated.atomic_vars == base.atomic_vars
        ):
            continue  # inapplicable; redraw (does not consume a trial)
        outcome = run_trial(reference, backend.make_stepper, mutated, op_name)
        report.trials += 1
        report.verdicts[outcome.verdict] = (
            report.verdicts.get(outcome.verdict, 0) + 1
        )
        _metrics.SYNTH_FUZZ_TRIALS.inc()
        if outcome.verdict == "crash":
            report.crashes.append(outcome)
            _metrics.SYNTH_FUZZ_CRASHES.inc()
    return report


# --------------------------------------------------------------------------
# Serialization + minimization (the regression-corpus toolkit)

def pattern_to_json(p: Pattern):
    if isinstance(p, PVar):
        return {"var": p.name}
    if isinstance(p, Const):
        if isinstance(p.value, Symbol):
            return {"const": {"type": "Symbol", "value": p.value.name}}
        return {"const": {"type": type(p.value).__name__, "value": p.value}}
    if isinstance(p, Node):
        return {"node": p.label, "children": [pattern_to_json(c) for c in p.children]}
    if isinstance(p, PList):
        return {
            "list": [pattern_to_json(i) for i in p.items],
            "ellipsis": pattern_to_json(p.ellipsis) if p.ellipsis is not None else None,
        }
    raise TypeError(f"not a serializable pattern: {p!r}")


_CONST_TYPES = {
    "int": int,
    "float": float,
    "str": str,
    "bool": bool,
    "Symbol": Symbol,
}


def pattern_from_json(data) -> Pattern:
    if "var" in data:
        return PVar(data["var"])
    if "const" in data:
        spec = data["const"]
        if spec["type"] == "NoneType":
            return Const(None)
        return Const(_CONST_TYPES[spec["type"]](spec["value"]))
    if "node" in data:
        return Node(
            data["node"], tuple(pattern_from_json(c) for c in data["children"])
        )
    if "list" in data:
        ell = (
            pattern_from_json(data["ellipsis"])
            if data.get("ellipsis") is not None
            else None
        )
        return PList(tuple(pattern_from_json(i) for i in data["list"]), ell)
    raise ValueError(f"not a pattern record: {data!r}")


def candidate_to_json(c: Candidate):
    return {
        "lhs": pattern_to_json(c.lhs),
        "rhs": pattern_to_json(c.rhs),
        "atomic_vars": list(c.atomic_vars),
        "examples": [
            [pattern_to_json(s), pattern_to_json(core)] for s, core in c.examples
        ],
    }


def candidate_from_json(data) -> Candidate:
    return Candidate(
        lhs=pattern_from_json(data["lhs"]),
        rhs=pattern_from_json(data["rhs"]),
        atomic_vars=tuple(data["atomic_vars"]),
        examples=tuple(
            (pattern_from_json(s), pattern_from_json(core))
            for s, core in data["examples"]
        ),
    )


def _shrink_steps(c: Candidate) -> List[Candidate]:
    """Single-step structural simplifications, smallest-first-ish."""
    out: List[Candidate] = []
    if len(c.examples) > 1:
        out.append(Candidate(c.lhs, c.rhs, c.atomic_vars, c.examples[:1]))
    for side_name in ("rhs", "lhs"):
        side = getattr(c, side_name)
        for path, sub in _paths(side):
            if path == () and side_name == "lhs":
                continue  # the LHS root must stay a labeled node
            replacements: List[Pattern] = list(_kids(sub))
            if isinstance(sub, PList) and sub.ellipsis is not None:
                replacements.append(PList(sub.items, None))
            if isinstance(sub, PList) and sub.items:
                replacements.append(PList(sub.items[:-1], sub.ellipsis))
            for new in replacements:
                mutated = _put(side, path, new)
                if side_name == "lhs":
                    out.append(Candidate(mutated, c.rhs, c.atomic_vars, c.examples))
                else:
                    out.append(Candidate(c.lhs, mutated, c.atomic_vars, c.examples))
    return out


def minimize_candidate(
    candidate: Candidate, still_fails: Callable[[Candidate], bool]
) -> Candidate:
    """Greedy structural minimizer: repeatedly apply the first single
    simplification step that preserves ``still_fails``, until none does.
    ``still_fails`` must be true of ``candidate`` itself."""
    current = candidate
    progress = True
    while progress:
        progress = False
        for smaller in _shrink_steps(current):
            try:
                if still_fails(smaller):
                    current = smaller
                    progress = True
                    break
            except Exception:
                continue  # a shrink that breaks the predicate harness
    return current
