"""``repro synth`` — the synthesis pipeline and fuzzer as a command.

Split out of :mod:`repro.cli` so the synthesis machinery stays an
optional import: the main CLI only loads this module when the ``synth``
subcommand is actually invoked.
"""

from __future__ import annotations

import argparse
import sys

from repro.synth.pipeline import BACKEND_ALIASES, synthesize

__all__ = ["add_synth_arguments", "run_synth"]


def add_synth_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        default="lambdacore",
        help="backend to synthesize rules for: lambdacore/pyretcore "
        "(aliases: %s) or any registered backend name"
        % ", ".join(f"{k}->{v}" for k, v in BACKEND_ALIASES.items()),
    )
    parser.add_argument(
        "--sugar",
        default=None,
        help="bundled sugar set to harvest from (default: the backend's "
        "standard set)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="random seed (the synthesis pipeline itself is "
        "deterministic; the seed drives --fuzz)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for candidate checking and validation "
        "lifts (default: 1 = in-process)",
    )
    parser.add_argument(
        "--program",
        action="append",
        default=None,
        metavar="SRC",
        help="replace the built-in seed bank with these surface "
        "programs (repeatable)",
    )
    parser.add_argument(
        "--max-list-len",
        type=int,
        default=5,
        help="longest list shape grown while harvesting (default: 5)",
    )
    parser.add_argument(
        "--no-validate",
        action="store_true",
        help="skip the golden re-lift comparison against the reference "
        "rules",
    )
    parser.add_argument(
        "--dump-rules",
        action="store_true",
        help="print every synthesized rule",
    )
    parser.add_argument(
        "--fuzz",
        type=int,
        default=0,
        metavar="TRIALS",
        help="instead of reporting a synthesized ruleset, run TRIALS "
        "perturbed-candidate trials through the engine and report the "
        "verdict histogram; exits non-zero on any engine crash",
    )


def _run_fuzz(args) -> int:
    from repro.synth.fuzz import fuzz_backend

    report = fuzz_backend(
        args.backend,
        seed=args.seed,
        trials=args.fuzz,
        sugar=args.sugar,
        max_list_len=min(args.max_list_len, 4),
    )
    print(
        f"fuzz: backend={report.backend} seed={report.seed} "
        f"trials={report.trials}"
    )
    for verdict in sorted(report.verdicts):
        print(f"  {verdict:18} {report.verdicts[verdict]}")
    if report.crashes:
        print(f"{len(report.crashes)} ENGINE CRASH(ES):", file=sys.stderr)
        for crash in report.crashes:
            print(f"-- op {crash.op}", file=sys.stderr)
            print(crash.detail, file=sys.stderr)
        return 1
    print("no engine crashes")
    return 0


def run_synth(args) -> int:
    if args.fuzz:
        return _run_fuzz(args)

    report = synthesize(
        args.backend,
        sugar=args.sugar,
        programs=args.program,
        jobs=args.jobs,
        max_list_len=args.max_list_len,
        validate=not args.no_validate,
    )
    print(
        f"synth: backend={report.backend} programs={report.programs} "
        f"buckets={report.buckets} examples={report.examples}"
    )
    print(
        f"  candidates={report.candidates} accepted={report.accepted} "
        "rejected="
        + (
            ", ".join(
                f"{verdict}:{count}"
                for verdict, count in sorted(report.rejections.items())
            )
            or "none"
        )
    )
    print(
        f"  installed {len(report.ruleset.rules)} rule(s), "
        f"{len(report.dropped)} dropped by disjointness"
    )
    print(
        f"  rediscovered {len(report.rediscovered)} hand-written rule(s): "
        + (", ".join(report.rediscovered) or "none")
    )
    if args.dump_rules:
        from repro.lang.render import render

        for rule in report.ruleset.rules:
            print(f"  {rule.name}: {render(rule.lhs)} => {render(rule.rhs)}")
    if report.validation is not None:
        v = report.validation
        status = "ok" if v.ok else "MISMATCH"
        print(
            f"  validation: {status} ({v.matched}/{v.programs} golden "
            "traces byte-identical)"
        )
        for mismatch in v.mismatches:
            print(f"    mismatch: {mismatch}", file=sys.stderr)
        if not v.ok:
            return 1
    return 0
