"""The synthesis pipeline: harvest -> enumerate -> filter -> validate.

:func:`synthesize` runs the full loop for one backend and returns a
:class:`SynthesisReport`.  The pipeline never looks inside the
reference rules — they are used strictly as a desugaring oracle during
harvest and as the comparison target during validation — so a
successful run *re-discovers* the backend's sugar from examples alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.confection import Confection
from repro.core.rules import RuleList
from repro.core.terms import term_size
from repro.engine.registry import get_backend
from repro.obs import metrics as _metrics
from repro.parallel.pool import WarmPool
from repro.synth.antiunify import (
    Candidate,
    anti_unify_all,
    rules_alpha_equal,
)
from repro.synth.filter import (
    CheckedCandidate,
    assemble_ruleset,
    check_candidates,
    select_rules,
)
from repro.synth.harvest import (
    SEED_PROGRAMS,
    HarvestedBucket,
    harvest_examples,
)
from repro.synth.validate import ValidationReport, validate_against_reference

__all__ = [
    "BACKEND_ALIASES",
    "SynthesisReport",
    "enumerate_candidates",
    "resolve_backend_name",
    "synthesize",
]

BACKEND_ALIASES: Dict[str, str] = {
    "lambdacore": "lambda",
    "pyretcore": "pyret",
}
"""Long-form backend names accepted by ``repro synth``."""


def resolve_backend_name(name: str) -> str:
    return BACKEND_ALIASES.get(name, name)


def enumerate_candidates(
    buckets: Sequence[HarvestedBucket], *, max_per_group: int = 64
) -> List[Candidate]:
    """Anti-unify within each bucket (exact-arity rules) and across
    every same-label bucket pair (ellipsis rules), deduplicated."""
    by_label: Dict[str, List[HarvestedBucket]] = {}
    for bucket in buckets:
        by_label.setdefault(bucket.label, []).append(bucket)
    out: List[Candidate] = []
    seen = set()
    for label_buckets in by_label.values():
        example_groups = [b.examples for b in label_buckets]
        # Cross-arity merges take two representatives from each bucket:
        # enough that per-position agreement within one example never
        # masquerades as a constant of the rule.  Only near-neighbours
        # in size are merged — the informative pairs differ by one list
        # item (length k with length k+1 teaches the prefix/tail split);
        # merging a 1-arm shape with a 5-arm shape adds nothing that the
        # chain of adjacent merges doesn't, and the full quadratic sweep
        # dominates synthesis time on branch-heavy grammars.
        ordered = sorted(
            label_buckets, key=lambda b: term_size(b.examples[0][0])
        )
        for i in range(len(ordered)):
            for j in (i + 1, i + 2):
                if j < len(ordered):
                    example_groups.append(
                        ordered[i].examples[:2] + ordered[j].examples[:2]
                    )
        for examples in example_groups:
            for candidate in anti_unify_all(examples, max_candidates=max_per_group):
                signature = (candidate.lhs, candidate.rhs, candidate.atomic_vars)
                if signature not in seen:
                    seen.add(signature)
                    out.append(candidate)
    return out


@dataclass
class SynthesisReport:
    """Everything one synthesis run learned."""

    backend: str
    sugar: Optional[str]
    programs: int
    buckets: int
    examples: int
    candidates: int
    accepted: int
    rejections: Dict[str, int]
    selected: List[CheckedCandidate]
    dropped: List[CheckedCandidate]
    ruleset: RuleList
    rediscovered: Tuple[str, ...] = ()
    validation: Optional[ValidationReport] = None
    checked: List[CheckedCandidate] = field(default_factory=list, repr=False)

    @property
    def ok(self) -> bool:
        return self.validation is None or self.validation.ok


def _rediscovered(reference: RuleList, synthesized: RuleList) -> Tuple[str, ...]:
    """Names of hand-written rules that reappear, alpha-equal, in the
    synthesized set."""
    names: List[str] = []
    for hand in reference.rules:
        if any(rules_alpha_equal(hand, synth) for synth in synthesized.rules):
            names.append(hand.name)
    return tuple(names)


def synthesize(
    backend_name: str,
    *,
    sugar: Optional[str] = None,
    programs: Optional[Sequence[str]] = None,
    jobs: int = 1,
    max_list_len: int = 5,
    validate: bool = True,
    backend_options: Optional[Dict] = None,
) -> SynthesisReport:
    """Synthesize a ruleset for ``backend_name`` from examples alone.

    ``programs`` overrides the built-in seed bank (source strings in
    the backend's surface syntax).  ``jobs`` batches candidate checking
    and validation lifts over a :class:`WarmPool` of that many workers;
    ``jobs=1`` runs everything in-process.
    """
    backend = get_backend(resolve_backend_name(backend_name))
    options = dict(backend_options or {})
    reference = backend.make_rules(sugar, **options)
    sources = tuple(
        programs
        if programs is not None
        else SEED_PROGRAMS.get(backend.name, ())
    )
    parsed = [backend.parse(source) for source in sources]

    buckets = harvest_examples(reference, parsed, max_list_len=max_list_len)
    all_examples: List = []
    seen_examples = set()
    for bucket in buckets:
        for example in bucket.examples:
            if example not in seen_examples:
                seen_examples.add(example)
                all_examples.append(example)
    _metrics.SYNTH_EXAMPLES_HARVESTED.inc(len(all_examples))

    candidates = enumerate_candidates(buckets)
    _metrics.SYNTH_CANDIDATES.inc(len(candidates))

    pool = None
    if jobs > 1:
        pool = WarmPool(
            Confection(reference, backend.make_stepper()), jobs=jobs
        )
    try:
        checked = check_candidates(candidates, pool=pool)
    finally:
        if pool is not None:
            pool.shutdown()

    accepted = [c for c in checked if c.ok]
    rejections: Dict[str, int] = {}
    for c in checked:
        if not c.ok:
            rejections[c.verdict] = rejections.get(c.verdict, 0) + 1
    _metrics.SYNTH_ACCEPTED.inc(len(accepted))
    _metrics.SYNTH_REJECTED.inc(len(checked) - len(accepted))

    selected = select_rules(accepted, all_examples)
    ruleset, dropped = assemble_ruleset(selected, mode=reference.disjointness)
    _metrics.SYNTH_RULES_INSTALLED.inc(len(ruleset.rules))

    validation = None
    if validate and parsed:
        validation = validate_against_reference(
            (reference, backend.make_stepper()),
            (ruleset, backend.make_stepper()),
            parsed,
            backend.pretty,
            jobs=jobs,
        )

    return SynthesisReport(
        backend=backend.name,
        sugar=sugar,
        programs=len(parsed),
        buckets=len(buckets),
        examples=len(all_examples),
        candidates=len(candidates),
        accepted=len(accepted),
        rejections=rejections,
        selected=selected,
        dropped=dropped,
        ruleset=ruleset,
        rediscovered=_rediscovered(reference, ruleset),
        validation=validation,
        checked=checked,
    )
