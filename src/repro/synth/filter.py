"""Filtering candidate rules through the engine's own checks.

A candidate survives only if it passes, in order:

1. **Well-formedness** — criteria 1-4 of section 5.1.3, via
   :func:`repro.core.wellformed.wellformedness_violation`.
2. **Disjointness** (optional) — its LHS must not overlap an existing
   ruleset's LHSs (Definition 1), when one is given to check against.
3. **Explanatory power** — as a one-rule rulelist it must expand every
   example's surface term to exactly that example's core term.
4. **The lens laws** — GetPut and PutGet must hold at every example,
   via :func:`repro.core.lenses.check_rule_laws`.

Candidates that pass become :class:`~repro.core.rules.Rule` objects;
:func:`select_rules` then picks a covering subset (greedy set cover,
most-specific-first tie-break) and :func:`assemble_ruleset` installs
them into a :class:`~repro.core.rules.RuleList`, dropping any candidate
whose LHS breaks the list's disjointness invariant.

Checking is embarrassingly parallel, so :func:`check_candidates` can
batch over a warm :class:`repro.parallel.WarmPool` (the candidate rides
to a warmed worker, the verdict rides back).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.core.errors import DisjointnessError, WellFormednessError
from repro.core.rules import Rule, RuleList
from repro.core.lenses import check_rule_laws
from repro.core.terms import strip_tags, term_size
from repro.core.wellformed import DisjointnessMode, wellformedness_violation
from repro.synth.antiunify import Candidate, Example

__all__ = [
    "CheckedCandidate",
    "check_candidate",
    "check_candidates",
    "select_rules",
    "assemble_ruleset",
]

VERDICTS = ("ok", "wellformedness", "disjointness", "explains-nothing", "laws", "error")


@dataclass(frozen=True)
class CheckedCandidate:
    """A candidate plus the filter's verdict on it."""

    candidate: Candidate
    verdict: str
    detail: str = ""
    rule: Optional[Rule] = None

    @property
    def ok(self) -> bool:
        return self.verdict == "ok"


def check_candidate(
    candidate: Candidate, against: Optional[RuleList] = None
) -> CheckedCandidate:
    """Run one candidate through the filter gauntlet (see the module
    docstring for the stages).  Engine exceptions other than the checks'
    own :class:`WellFormednessError` / :class:`DisjointnessError` are
    *not* contained here — in fuzz mode an unexpected exception is
    precisely the bug being hunted."""
    label = candidate.label
    violation = wellformedness_violation(
        candidate.lhs, candidate.rhs, candidate.atomic_vars, f"synth-{label}"
    )
    if violation is not None:
        return CheckedCandidate(candidate, "wellformedness", violation)
    try:
        rule = Rule(
            candidate.lhs,
            candidate.rhs,
            name=f"synth-{label}",
            atomic_vars=candidate.atomic_vars,
        )
    except WellFormednessError as exc:
        return CheckedCandidate(candidate, "wellformedness", str(exc))

    if against is not None:
        try:
            RuleList(tuple(against.rules) + (rule,), against.disjointness)
        except DisjointnessError as exc:
            return CheckedCandidate(candidate, "disjointness", str(exc), rule)

    single = RuleList((rule,), DisjointnessMode.OFF)
    for surface, core in candidate.examples:
        expansion = single.expand(surface)
        if expansion is None or strip_tags(expansion.term) != core:
            return CheckedCandidate(
                candidate,
                "explains-nothing",
                "rule does not reproduce its own example",
                rule,
            )
    for surface, _ in candidate.examples:
        if check_rule_laws(single, surface) is not True:
            return CheckedCandidate(
                candidate, "laws", "GetPut/PutGet violated at an example", rule
            )
    return CheckedCandidate(candidate, "ok", rule=rule)


def _pool_check(engine, payload) -> CheckedCandidate:
    """Worker-side candidate check for :meth:`WarmPool.map_engine`: the
    warmed engine supplies the reference ruleset when the caller asked
    for disjointness-against-reference."""
    candidate, against_reference = payload
    against = engine.rules if against_reference else None
    return check_candidate(candidate, against=against)


def check_candidates(
    candidates: Sequence[Candidate],
    *,
    against: Optional[RuleList] = None,
    pool=None,
) -> List[CheckedCandidate]:
    """Check every candidate, optionally batched over a warm pool.

    With ``pool`` the candidates ship to the pool's warmed workers
    (``against`` then means the *pool engine's* ruleset when true-ish);
    without it they run in-process.  Results keep submission order
    either way."""
    if pool is None:
        return [check_candidate(c, against=against) for c in candidates]
    payloads = [(c, against is not None) for c in candidates]
    out: List[CheckedCandidate] = []
    for result in pool.map_engine(_pool_check, payloads):
        if result.ok:
            out.append(result.value)
        else:
            index = result.index
            out.append(
                CheckedCandidate(
                    candidates[index],
                    "error",
                    f"{result.error_type}: {result.error_message}",
                )
            )
    return out


def _explains(rule: Rule, example: Example) -> bool:
    surface, core = example
    single = RuleList((rule,), DisjointnessMode.OFF)
    expansion = single.expand(surface)
    return expansion is not None and strip_tags(expansion.term) == core


def _coverage(rule: Rule, examples: Sequence[Example]) -> Set[int]:
    single = RuleList((rule,), DisjointnessMode.OFF)
    covered = set()
    for i, (surface, core) in enumerate(examples):
        expansion = single.expand(surface)
        if expansion is not None and strip_tags(expansion.term) == core:
            covered.add(i)
    return covered


def select_rules(
    checked: Sequence[CheckedCandidate],
    examples: Sequence[Example],
) -> List[CheckedCandidate]:
    """Greedy set cover: repeatedly take the surviving candidate that
    explains the most still-unexplained examples, breaking ties toward
    the more specific LHS (larger pattern).  Specificity-first is what
    reproduces the hand-written split between exact-arity rules and the
    general recursive rule."""
    survivors = [c for c in checked if c.ok and c.rule is not None]
    remaining: Set[int] = set(range(len(examples)))
    coverage = [_coverage(c.rule, examples) for c in survivors]
    chosen: List[CheckedCandidate] = []
    taken = [False] * len(survivors)
    while remaining:
        best, best_key = None, None
        for k, c in enumerate(survivors):
            if taken[k]:
                continue
            gain = len(coverage[k] & remaining)
            if gain == 0:
                continue
            key = (gain, term_size(c.rule.lhs))
            if best_key is None or key > best_key:
                best, best_key = k, key
        if best is None:
            break
        taken[best] = True
        chosen.append(survivors[best])
        remaining -= coverage[best]
    return chosen


def assemble_ruleset(
    selected: Sequence[CheckedCandidate],
    mode: DisjointnessMode = DisjointnessMode.STRICT,
) -> Tuple[RuleList, List[CheckedCandidate]]:
    """Install the selected rules into one rulelist, most specific
    first, dropping any rule whose LHS breaks disjointness with the
    rules already admitted.  Returns (ruleset, dropped)."""
    ordered = sorted(
        selected,
        key=lambda c: (c.rule.label, -term_size(c.rule.lhs)),
    )
    admitted: List[Rule] = []
    dropped: List[CheckedCandidate] = []
    for checked in ordered:
        # Give every installed rule a stable, position-independent name.
        rule = Rule(
            checked.rule.lhs,
            checked.rule.rhs,
            name=f"synth-{checked.rule.label}-{len(admitted)}",
            atomic_vars=checked.rule.atomic_vars,
        )
        try:
            RuleList(tuple(admitted) + (rule,), mode)
        except DisjointnessError as exc:
            dropped.append(
                CheckedCandidate(
                    checked.candidate, "disjointness", str(exc), checked.rule
                )
            )
            continue
        admitted.append(rule)
    return RuleList(tuple(admitted), mode), dropped
