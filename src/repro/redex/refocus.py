"""Refocusing decomposition: reified contexts and the machine stepper.

The naive stepper re-decomposes the whole program from the root on every
step.  Danvy's refocusing observation ("A Deforestation of Reducts:
Refocusing"; "Generic Reduction-Based Interpreters") is that after
contracting a redex the next decomposition can *resume at the
contraction site*: when the contractum is a value, pop context frames
and rescan the enclosing node's declared evaluation positions; when it
is not, decompose downward from the contractum in place.  Either way the
work per step is proportional to the context the step actually touches,
not to the size of the program — the reduction-based stepper becomes an
abstract-machine-style one.

This module reifies evaluation contexts as zippers.  Three frame
constructors cover every :class:`~repro.redex.strategy.EvalStrategy`
congruence position form (``i``, ``("list", i)``, ``("nth", i, j)``,
``("list_child", i, j)``)::

    C ::= []                            empty context
        | C . Tag(tag)                  origin tag above the hole
        | C . Child(label, left, right) hole at a node child
        | C . Elem(left, right)         hole at a list element

A plain child descent pushes one ``Child`` frame; a list descent pushes
``Child`` + the list's tags + ``Elem``; a ``list_child`` descent pushes
``Child`` + tags + ``Elem`` + tags + ``Child``.  Origin tags are
transparent: tags *above* a descent become ``Tag`` frames, while the
tags directly above the redex travel with it into the rule — the frame
below a redex is therefore never a ``Tag`` frame (the *refocus
invariant*), exactly mirroring the naive decomposition's origin
discipline.

:class:`RefocusMachine` drives the machine: states keep ``(context,
focus, store)`` alive between steps, :func:`refocus` resumes
decomposition from the last contraction, and whole-term snapshots are
materialized by plugging the context.  Frames and contexts are
hash-consed per machine (keyed on the interned identity of their
components), so equal contexts are pointer-identical and plugging a
snapshot costs one intern-table probe per frame — O(context) per step
instead of O(term).

End-of-program refinements and stuck terms are delegated to the
owning :class:`~repro.redex.reduction.ReductionSemantics` (and thus to
any language-specific ``step`` override such as the lambda core's
cell resolution or Pyret's final ``Error`` states), so the machine's
observable behaviour is identical to root-restart stepping.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.errors import LanguageError
from repro.core.intern import (
    intern,
    intern_generation,
    intern_node,
    intern_plist,
    intern_tagged,
    is_interned,
)
from repro.core.recursion import deep_recursion
from repro.core.terms import Node, Pattern, PList, Tagged
from repro.obs import _state as _obs
from repro.obs.metrics import REDEX_DECOMPOSE_DEPTH

__all__ = [
    "TagFrame",
    "ChildFrame",
    "ListFrame",
    "Context",
    "RefocusState",
    "RefocusMachine",
    "find_redex",
    "refocus",
    "plug_context",
]


# ---------------------------------------------------------------------------
# Frames and contexts
# ---------------------------------------------------------------------------


class TagFrame:
    """An origin tag above the hole: ``fill(t) = Tagged(tag, t)``."""

    __slots__ = ("tag",)

    def __init__(self, tag) -> None:
        self.tag = tag

    def fill(self, term: Pattern) -> Pattern:
        return Tagged(self.tag, term)

    def fill_interned(self, term: Pattern) -> Pattern:
        return intern_tagged(self.tag, term)

    def key(self) -> tuple:
        return ("t", self.tag)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TagFrame({self.tag!r})"


class ChildFrame:
    """A node with the hole at one child:
    ``fill(t) = Node(label, left + (t,) + right)``."""

    __slots__ = ("label", "left", "right")

    def __init__(
        self,
        label: str,
        left: Tuple[Pattern, ...],
        right: Tuple[Pattern, ...],
    ) -> None:
        self.label = label
        self.left = left
        self.right = right

    def fill(self, term: Pattern) -> Pattern:
        return Node(self.label, self.left + (term,) + self.right)

    def fill_interned(self, term: Pattern) -> Pattern:
        return intern_node(self.label, self.left + (term,) + self.right)

    def key(self) -> tuple:
        return (
            "n",
            self.label,
            tuple(map(id, self.left)),
            tuple(map(id, self.right)),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChildFrame({self.label!r}, {len(self.left)}+[]+{len(self.right)})"


class ListFrame:
    """A list with the hole at one element:
    ``fill(t) = PList(left + (t,) + right)``."""

    __slots__ = ("left", "right")

    def __init__(
        self, left: Tuple[Pattern, ...], right: Tuple[Pattern, ...]
    ) -> None:
        self.left = left
        self.right = right

    def fill(self, term: Pattern) -> Pattern:
        return PList(self.left + (term,) + self.right)

    def fill_interned(self, term: Pattern) -> Pattern:
        return intern_plist(self.left + (term,) + self.right)

    def key(self) -> tuple:
        return ("l", tuple(map(id, self.left)), tuple(map(id, self.right)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ListFrame({len(self.left)}+[]+{len(self.right)})"


class Context:
    """An evaluation context: a linked stack of frames, innermost first.

    The empty context is ``None``.  ``depth`` counts frames to the root.
    """

    __slots__ = ("frame", "parent", "depth")

    def __init__(self, frame, parent: Optional["Context"]) -> None:
        self.frame = frame
        self.parent = parent
        self.depth = 1 if parent is None else parent.depth + 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Context(depth={self.depth}, frame={self.frame!r})"


def _push_plain(parent: Optional[Context], frame) -> Context:
    return Context(frame, parent)


def _fill_plain(frame, term: Pattern) -> Pattern:
    return frame.fill(term)


def _fill_interned(frame, term: Pattern) -> Pattern:
    return frame.fill_interned(term)


def plug_context(ctx: Optional[Context], term: Pattern) -> Pattern:
    """Rebuild the whole term with ``term`` in the context's hole."""
    while ctx is not None:
        term = ctx.frame.fill(term)
        ctx = ctx.parent
    return term


# ---------------------------------------------------------------------------
# Decomposition: interpreting congruence declarations into frames
# ---------------------------------------------------------------------------


def _child(node: Node, index: int) -> Pattern:
    try:
        return node.children[index]
    except IndexError:
        raise LanguageError(
            f"congruence position {index} out of range for "
            f"{node.label} with arity {len(node.children)}"
        ) from None


def _child_frame(node: Node, index: int) -> ChildFrame:
    children = node.children
    return ChildFrame(node.label, children[:index], children[index + 1 :])


def _strip_tag_frames(term: Pattern):
    frames: List[TagFrame] = []
    while isinstance(term, Tagged):
        frames.append(TagFrame(term.tag))
        term = term.term
    return frames, term


def _try_position(node: Node, position, is_value):
    """One congruence position of ``node``: ``(frames, target)`` for a
    descent (frames ordered outermost first), or ``None`` when the
    position holds a value (or does not apply)."""
    if isinstance(position, int):
        child = _child(node, position)
        if is_value(child):
            return None
        return (_child_frame(node, position),), child

    kind = position[0]
    if kind == "list":
        return _descend_list(node, position[1], None, is_value, 0)
    if kind == "nth":
        min_len = position[3] if len(position) > 3 else 0
        return _descend_list(node, position[1], position[2], is_value, min_len)
    if kind == "list_child":
        return _descend_list_child(node, position[1], position[2], is_value)
    raise LanguageError(f"unknown evaluation position {position!r}")


def _descend_list(node, child_index, only, is_value, min_len):
    child = _child(node, child_index)
    tag_frames, bare = _strip_tag_frames(child)
    if isinstance(bare, PList) and len(bare.items) < min_len:
        return None
    if not isinstance(bare, PList):
        # Not a list (yet): treat the child as an ordinary position.
        if is_value(child):
            return None
        return (_child_frame(node, child_index),), child
    items = bare.items
    indices = range(len(items)) if only is None else (only,)
    for j in indices:
        if j >= len(items):
            continue
        element = items[j]
        if is_value(element):
            continue
        frames = (
            _child_frame(node, child_index),
            *tag_frames,
            ListFrame(items[:j], items[j + 1 :]),
        )
        return frames, element
    return None


def _descend_list_child(node, child_index, inner_index, is_value):
    child = _child(node, child_index)
    tag_frames, bare = _strip_tag_frames(child)
    if not isinstance(bare, PList):
        return None
    items = bare.items
    for j, element in enumerate(items):
        elem_tag_frames, elem_bare = _strip_tag_frames(element)
        if not isinstance(elem_bare, Node):
            continue
        if inner_index >= len(elem_bare.children):
            continue
        target = elem_bare.children[inner_index]
        if is_value(target):
            continue
        frames = (
            _child_frame(node, child_index),
            *tag_frames,
            ListFrame(items[:j], items[j + 1 :]),
            *elem_tag_frames,
            _child_frame(elem_bare, inner_index),
        )
        return frames, target
    return None


def find_redex(
    strategy,
    ctx: Optional[Context],
    term: Pattern,
    is_value: Callable[[Pattern], bool],
    push=_push_plain,
    fill=_fill_plain,
) -> Tuple[Optional[Context], Pattern, int]:
    """Decompose downward from the non-value focus ``term`` under ``ctx``.

    Returns ``(context, redex, frames_moved)``.  The redex carries its
    own outer tags; contiguous ``Tag`` frames directly above it are
    folded back in (so the frame below a redex is never a tag — the
    refocus invariant).
    """
    moves = 0
    while True:
        bare = term
        while isinstance(bare, Tagged):
            bare = bare.term
        hit = None
        if type(bare) is Node:
            for position in strategy.positions(bare.label):
                hit = _try_position(bare, position, is_value)
                if hit is not None:
                    break
        if hit is None:
            # ``term`` is the redex.  Tags directly above it travel with
            # it into the rule, exactly as in root decomposition.
            while ctx is not None and type(ctx.frame) is TagFrame:
                term = fill(ctx.frame, term)
                ctx = ctx.parent
                moves += 1
            return ctx, term, moves
        frames, target = hit
        if bare is not term:
            inner = term
            while isinstance(inner, Tagged):
                ctx = push(ctx, TagFrame(inner.tag))
                moves += 1
                inner = inner.term
        for frame in frames:
            ctx = push(ctx, frame)
            moves += 1
        term = target


def refocus(
    strategy,
    ctx: Optional[Context],
    term: Pattern,
    is_value: Callable[[Pattern], bool],
    push=_push_plain,
    fill=_fill_plain,
) -> Tuple[Optional[Context], Pattern, bool, int]:
    """Resume decomposition from a contraction site.

    ``term`` is the contractum sitting in ``ctx``.  When it is a value,
    frames are popped and the enclosing node's evaluation positions are
    rescanned; otherwise decomposition proceeds downward in place.

    Returns ``(context, focus, done, frames_moved)``: ``done`` means the
    whole program is a value and ``focus`` is that (fully plugged)
    value; otherwise ``focus`` is the next redex in ``context``.
    """
    moves = 0
    while True:
        if not is_value(term):
            ctx, redex, inner_moves = find_redex(
                strategy, ctx, term, is_value, push, fill
            )
            return ctx, redex, False, moves + inner_moves
        if ctx is None:
            return None, term, True, moves
        # Pop to the nearest enclosing node level: tag frames are
        # transparent and a list is only ever scanned through its node,
        # so only a rebuilt node can change the verdict.
        while True:
            frame = ctx.frame
            ctx = ctx.parent
            term = fill(frame, term)
            moves += 1
            if type(frame) is ChildFrame:
                break
            if ctx is None:
                return None, term, True, moves


# ---------------------------------------------------------------------------
# The machine stepper
# ---------------------------------------------------------------------------


class RefocusState:
    """A machine state between steps: the focused (undecomposed)
    contractum, the reified context it sits in, and the store.

    ``focus`` is interned; the whole-term snapshot is plugged lazily and
    cached (it is itself interned, so downstream identity-keyed caches
    see canonical terms)."""

    __slots__ = ("focus", "context", "store", "_snapshot")

    def __init__(self, focus: Pattern, context: Optional[Context], store) -> None:
        self.focus = focus
        self.context = context
        self.store = store
        self._snapshot: Optional[Pattern] = None


class RefocusMachine:
    """Drive a :class:`~repro.redex.reduction.ReductionSemantics` with
    refocusing: the context stays alive across steps and decomposition
    resumes at the last contraction site.

    Contexts are hash-consed per machine: pushing a frame whose
    components are pointer-identical onto the same parent yields the
    same :class:`Context` object, so contexts are pointer-comparable and
    snapshot plugging is a table probe per frame.  The tables key on
    interned term identity and are wiped whenever
    :func:`repro.core.intern.clear_intern_caches` bumps the generation
    (do not clear intern caches in the middle of a run — the same
    contract as :class:`~repro.core.incremental.ResugarCache`).
    """

    def __init__(self, semantics) -> None:
        self.semantics = semantics
        self._contexts: Dict[tuple, Context] = {}
        self._generation: Optional[int] = None

    # -- bookkeeping ---------------------------------------------------

    def _check_generation(self) -> None:
        generation = intern_generation()
        if generation != self._generation:
            self._contexts.clear()
            self._generation = generation

    def _push(self, parent: Optional[Context], frame) -> Context:
        key = (0 if parent is None else id(parent), *frame.key())
        found = self._contexts.get(key)
        if found is not None:
            return found
        ctx = Context(frame, parent)
        self._contexts[key] = ctx
        return ctx

    def _state(self, contractum: Pattern, context: Optional[Context], store):
        """A successor for ``contractum`` in ``context``.

        Falls back to a plain (naive) :class:`MachineState` for the
        pathological case of a non-ground contractum, which cannot be
        interned and therefore cannot key the hash-consing tables."""
        from repro.redex.reduction import MachineState

        focus = intern(contractum)
        if is_interned(focus):
            return RefocusState(focus, context, store)
        return MachineState(plug_context(context, contractum), store)

    # -- the Stepper-shaped machine interface --------------------------

    def load(self, core_term: Pattern):
        with deep_recursion():
            return self._fresh(core_term, None)

    def _fresh(self, term: Pattern, store):
        from repro.redex.reduction import EMPTY_STORE, MachineState

        store = EMPTY_STORE if store is None else store
        focus = intern(term)
        if is_interned(focus):
            return RefocusState(focus, None, store)
        return MachineState(term, store)

    def term(self, state: RefocusState) -> Pattern:
        snapshot = state._snapshot
        if snapshot is None:
            term = state.focus
            ctx = state.context
            while ctx is not None:
                term = ctx.frame.fill_interned(term)
                ctx = ctx.parent
            state._snapshot = snapshot = term
        return snapshot

    def step(self, state: RefocusState) -> list:
        """All successor states, observably identical to root-restart
        stepping (raises :class:`~repro.core.errors.StuckError` exactly
        when the naive stepper would)."""
        from repro.redex.patterns import redex_match
        from repro.redex.reduction import MachineState, _tag_wrapper

        self._check_generation()
        semantics = self.semantics
        with deep_recursion():
            ctx, focus, done, moves = refocus(
                semantics.strategy,
                state.context,
                state.focus,
                semantics.is_value,
                self._push,
                _fill_interned,
            )
            if _obs.enabled:
                REDEX_DECOMPOSE_DEPTH.observe(moves)
            if done:
                # The whole program is a value: hand the final state to
                # the semantics so language-specific end-of-program
                # refinements (cell resolution, tag shedding, final
                # errors) apply exactly as on the naive path.
                state._snapshot = focus
                return self._delegate(focus, state.store)

            for rule in semantics._candidate_rules(focus):
                env = redex_match(focus, rule.lhs, semantics.grammar)
                if env is None:
                    continue
                if rule.control:
                    # Control-rule results replace the whole program;
                    # re-decompose them from the root next step.
                    def plug(contractum, _ctx=ctx):
                        return plug_context(_ctx, contractum)

                    return [
                        self._fresh(term, store)
                        for term, store in rule.apply(env, state.store, plug)
                    ]
                rewrap = _tag_wrapper(focus) if rule.preserve_redex_tags else None
                return [
                    self._state(
                        rewrap(term) if rewrap else term, ctx, store
                    )
                    for term, store in rule.apply(env, state.store)
                ]

            # No rule matched the redex: delegate the whole term so the
            # naive path's stuck handling (including any language pre-
            # refinement, e.g. final Error states) decides — and raises
            # the exact same StuckError when the term really is stuck.
            return self._delegate(self.term(state), state.store)

    def _delegate(self, whole_term: Pattern, store) -> list:
        from repro.redex.reduction import MachineState

        successors = self.semantics.step(MachineState(whole_term, store))
        return [self._fresh(s.term, s.store) for s in successors]
