"""Evaluation strategies: where may reduction happen inside a term?

PLT Redex specifies this with evaluation-context grammars (``E ::= (if E
e e) | ...``).  Our engine uses the equivalent *congruence declaration*
form: for each node label, an ordered list of evaluation positions.
Decomposition descends into the first declared position holding a
non-value; when every declared position holds a value (or there are
none), the node itself is the redex.

Positions:

* ``i`` (int) — the node's ``i``-th child;
* ``("list", i)`` — the ``i``-th child is a list whose elements are
  evaluated left to right;
* ``("nth", i, j)`` — only element ``j`` of list child ``i`` is an
  evaluation position (e.g. sequencing evaluates only the first
  expression of its body list); an optional fourth component
  ``("nth", i, j, n)`` restricts the position to lists of length >= n
  (so a one-element ``begin`` is an immediate redex rather than
  evaluating inside its tail expression);
* ``("list_child", i, j)`` — the ``i``-th child is a list of *nodes*,
  and child ``j`` of each node is an evaluation position (object
  literals evaluating each field's value expression, left to right).

Origin tags are transparent throughout: the path *through* tags is part
of the context (tags above the redex are preserved by ``plug``), while
the redex's own tags travel with it into the rule — whose contractum,
built from captured subterms and fresh structure, naturally drops the
tags of consumed syntax and keeps the tags of captured code
(Definition 4's origin semantics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.core.errors import LanguageError
from repro.core.terms import Node, Pattern, PList, Tagged

__all__ = ["EvalStrategy", "Decomposition"]

Position = Union[int, Tuple[str, int], Tuple[str, int, int]]


@dataclass(frozen=True)
class Decomposition:
    """A split of a term into an evaluation context and a redex.

    ``plug(contractum)`` rebuilds the whole term with the redex replaced.
    The redex carries its own tags; the context keeps every tag above it.
    """

    redex: Pattern
    plug: Callable[[Pattern], Pattern]
    depth: int


class EvalStrategy:
    """Per-label congruence declarations (see module docstring)."""

    def __init__(self) -> None:
        self._positions: Dict[str, Tuple[Position, ...]] = {}

    def congruence(self, label: str, *positions: Position) -> "EvalStrategy":
        """Declare the evaluation positions of nodes labeled ``label``.

        Declaring no positions makes such nodes immediate redexes (the
        default for undeclared labels as well, so this is only useful for
        documentation).
        """
        self._positions[label] = positions
        return self

    def positions(self, label: str) -> Tuple[Position, ...]:
        return self._positions.get(label, ())

    def decompose(
        self, term: Pattern, is_value: Callable[[Pattern], bool]
    ) -> Optional[Decomposition]:
        """Find the redex under this strategy, or ``None`` for a value."""
        if is_value(term):
            return None
        return self._decompose(term, is_value, 0)

    def _decompose(self, term, is_value, depth) -> Decomposition:
        # Tags above the eventual redex belong to the context -- unless
        # the redex turns out to be this very term, in which case they
        # travel with it (and are consumed by the rule).
        if isinstance(term, Tagged):
            inner = self._decompose(term.term, is_value, depth)
            if inner.depth == depth:
                # Redex is the whole (tagged) term.
                return Decomposition(term, lambda c: c, depth)
            tag = term.tag
            inner_plug = inner.plug
            return Decomposition(
                inner.redex, lambda c: Tagged(tag, inner_plug(c)), inner.depth
            )

        if isinstance(term, Node):
            for position in self.positions(term.label):
                hit = self._try_position(term, position, is_value, depth)
                if hit is not None:
                    return hit
        return Decomposition(term, lambda c: c, depth)

    def _try_position(self, node, position, is_value, depth):
        if isinstance(position, int):
            child = self._child(node, position)
            if is_value(child):
                return None
            inner = self._decompose(child, is_value, depth + 1)
            return self._wrap_child(node, position, inner)

        kind = position[0]
        if kind == "list":
            _, child_index = position
            return self._descend_list(node, child_index, None, is_value, depth)
        if kind == "nth":
            child_index, element_index = position[1], position[2]
            min_len = position[3] if len(position) > 3 else 0
            return self._descend_list(
                node, child_index, element_index, is_value, depth, min_len
            )
        if kind == "list_child":
            _, child_index, inner_index = position
            return self._descend_list_child(
                node, child_index, inner_index, is_value, depth
            )
        raise LanguageError(f"unknown evaluation position {position!r}")

    def _descend_list_child(self, node, child_index, inner_index, is_value, depth):
        child = self._child(node, child_index)
        bare = child
        tags: List = []
        while isinstance(bare, Tagged):
            tags.append(bare.tag)
            bare = bare.term
        if not isinstance(bare, PList):
            return None
        for j, element in enumerate(bare.items):
            elem_bare = element
            elem_tags: List = []
            while isinstance(elem_bare, Tagged):
                elem_tags.append(elem_bare.tag)
                elem_bare = elem_bare.term
            if not isinstance(elem_bare, Node):
                continue
            if inner_index >= len(elem_bare.children):
                continue
            target = elem_bare.children[inner_index]
            if is_value(target):
                continue
            inner = self._decompose(target, is_value, depth + 1)
            inner_plug = inner.plug

            def plug(contractum, _j=j, _elem=elem_bare, _etags=tuple(elem_tags),
                     _lst=bare, _ltags=tuple(tags), _ip=inner_plug):
                children = list(_elem.children)
                children[inner_index] = _ip(contractum)
                rebuilt_elem: Pattern = Node(_elem.label, tuple(children))
                for tag in reversed(_etags):
                    rebuilt_elem = Tagged(tag, rebuilt_elem)
                items = list(_lst.items)
                items[_j] = rebuilt_elem
                rebuilt: Pattern = PList(tuple(items))
                for tag in reversed(_ltags):
                    rebuilt = Tagged(tag, rebuilt)
                outer = list(node.children)
                outer[child_index] = rebuilt
                return Node(node.label, tuple(outer))

            return Decomposition(inner.redex, plug, inner.depth)
        return None

    def _descend_list(self, node, child_index, only, is_value, depth, min_len=0):
        child = self._child(node, child_index)
        bare = child
        tags: List = []
        while isinstance(bare, Tagged):
            tags.append(bare.tag)
            bare = bare.term
        if isinstance(bare, PList) and len(bare.items) < min_len:
            return None
        if not isinstance(bare, PList):
            # Not a list (yet): treat the child as an ordinary position.
            if is_value(child):
                return None
            inner = self._decompose(child, is_value, depth + 1)
            return self._wrap_child(node, child_index, inner)
        indices = range(len(bare.items)) if only is None else [only]
        for j in indices:
            if j >= len(bare.items):
                continue
            element = bare.items[j]
            if is_value(element):
                continue
            inner = self._decompose(element, is_value, depth + 1)
            return self._wrap_list_element(node, child_index, tags, bare, j, inner)
        return None

    @staticmethod
    def _child(node: Node, index: int) -> Pattern:
        try:
            return node.children[index]
        except IndexError:
            raise LanguageError(
                f"congruence position {index} out of range for "
                f"{node.label} with arity {len(node.children)}"
            ) from None

    @staticmethod
    def _wrap_child(node: Node, index: int, inner: Decomposition) -> Decomposition:
        inner_plug = inner.plug

        def plug(contractum: Pattern) -> Pattern:
            children = list(node.children)
            children[index] = inner_plug(contractum)
            return Node(node.label, tuple(children))

        return Decomposition(inner.redex, plug, inner.depth)

    @staticmethod
    def _wrap_list_element(
        node: Node, child_index: int, tags, lst: PList, j: int, inner: Decomposition
    ) -> Decomposition:
        inner_plug = inner.plug

        def plug(contractum: Pattern) -> Pattern:
            items = list(lst.items)
            items[j] = inner_plug(contractum)
            rebuilt: Pattern = PList(tuple(items))
            for tag in reversed(tags):
                rebuilt = Tagged(tag, rebuilt)
            children = list(node.children)
            children[child_index] = rebuilt
            return Node(node.label, tuple(children))

        return Decomposition(inner.redex, plug, inner.depth)
