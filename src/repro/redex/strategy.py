"""Evaluation strategies: where may reduction happen inside a term?

PLT Redex specifies this with evaluation-context grammars (``E ::= (if E
e e) | ...``).  Our engine uses the equivalent *congruence declaration*
form: for each node label, an ordered list of evaluation positions.
Decomposition descends into the first declared position holding a
non-value; when every declared position holds a value (or there are
none), the node itself is the redex.

Positions:

* ``i`` (int) — the node's ``i``-th child;
* ``("list", i)`` — the ``i``-th child is a list whose elements are
  evaluated left to right;
* ``("nth", i, j)`` — only element ``j`` of list child ``i`` is an
  evaluation position (e.g. sequencing evaluates only the first
  expression of its body list); an optional fourth component
  ``("nth", i, j, n)`` restricts the position to lists of length >= n
  (so a one-element ``begin`` is an immediate redex rather than
  evaluating inside its tail expression);
* ``("list_child", i, j)`` — the ``i``-th child is a list of *nodes*,
  and child ``j`` of each node is an evaluation position (object
  literals evaluating each field's value expression, left to right).

Origin tags are transparent throughout: the path *through* tags is part
of the context (tags above the redex are preserved by ``plug``), while
the redex's own tags travel with it into the rule — whose contractum,
built from captured subterms and fresh structure, naturally drops the
tags of consumed syntax and keeps the tags of captured code
(Definition 4's origin semantics).

Decomposition is implemented by the zipper traversal in
:mod:`repro.redex.refocus`: the context is *reified* as a stack of
frames rather than captured in closures, so a
:class:`Decomposition` can be resumed (refocused) after contraction by
the machine stepper as well as plugged.  ``depth`` counts context
frames (tags, node hops, and list hops each contribute one frame).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Union

from repro.core.terms import Pattern
from repro.redex.refocus import Context, find_redex, plug_context

__all__ = ["EvalStrategy", "Decomposition"]

Position = Union[int, Tuple[str, int], Tuple[str, int, int]]


@dataclass(frozen=True)
class Decomposition:
    """A split of a term into an evaluation context and a redex.

    ``context`` is the reified frame stack above the redex (``None`` at
    the root); ``plug(contractum)`` rebuilds the whole term with the
    redex replaced.  The redex carries its own tags; the context keeps
    every tag above it.  ``depth`` is the number of context frames.
    """

    redex: Pattern
    context: Optional[Context]
    depth: int

    def plug(self, contractum: Pattern) -> Pattern:
        return plug_context(self.context, contractum)


class EvalStrategy:
    """Per-label congruence declarations (see module docstring)."""

    def __init__(self) -> None:
        self._positions: Dict[str, Tuple[Position, ...]] = {}

    def congruence(self, label: str, *positions: Position) -> "EvalStrategy":
        """Declare the evaluation positions of nodes labeled ``label``.

        Declaring no positions makes such nodes immediate redexes (the
        default for undeclared labels as well, so this is only useful for
        documentation).
        """
        self._positions[label] = positions
        return self

    def positions(self, label: str) -> Tuple[Position, ...]:
        return self._positions.get(label, ())

    def decompose(
        self, term: Pattern, is_value: Callable[[Pattern], bool]
    ) -> Optional[Decomposition]:
        """Find the redex under this strategy, or ``None`` for a value."""
        if is_value(term):
            return None
        context, redex, _moves = find_redex(self, None, term, is_value)
        return Decomposition(
            redex, context, 0 if context is None else context.depth
        )
