"""Grammars for reduction semantics: named nonterminals over patterns.

A :class:`Grammar` maps nonterminal names to alternative productions
(redex patterns).  ``matches(term, nt)`` asks whether a term is derivable
from a nonterminal — the workhorse behind "is this a value?" during
decomposition.  Matching sees through origin tags and memoizes per
``(nonterminal, term)``, with a visiting set to cut cycles through
non-productive nonterminal chains.

The memo table is the hottest dictionary in the engine: every
decomposition probes it for every subterm along the evaluation spine.
Term hashes are cached on the term objects themselves (see
:mod:`repro.core.terms`), so probing costs one cached-hash lookup; equal
keys short-circuit on pointer identity for the shared substructure that
evaluation preserves from step to step.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.core.errors import LanguageError
from repro.core.terms import Const, Node, Pattern, PList, PVar, Tagged

__all__ = ["Grammar"]


class Grammar:
    """A set of nonterminal definitions.

    >>> g = Grammar()
    >>> g.define("v", AtomPred("number"), Node("Lam", (PVar("x"), PVar("e"))))
    >>> g.matches(Const(3), "v")
    True
    """

    def __init__(self) -> None:
        self._productions: Dict[str, Tuple[Pattern, ...]] = {}
        self._memo: Dict[Tuple[str, Pattern], bool] = {}

    def define(self, name: str, *alternatives: Pattern) -> "Grammar":
        """Define (or extend) nonterminal ``name``.  Returns self so
        definitions chain."""
        if not alternatives:
            raise LanguageError(f"nonterminal {name!r} needs >= 1 production")
        existing = self._productions.get(name, ())
        self._productions[name] = existing + tuple(alternatives)
        self._memo.clear()
        return self

    def nonterminals(self) -> Tuple[str, ...]:
        return tuple(self._productions)

    def productions(self, name: str) -> Tuple[Pattern, ...]:
        try:
            return self._productions[name]
        except KeyError:
            raise LanguageError(f"undefined nonterminal {name!r}") from None

    def matches(self, term: Pattern, nonterminal: str) -> bool:
        """Is ``term`` derivable from ``nonterminal``?  Tags transparent."""
        return self._matches(term, nonterminal, set())

    def _matches(self, term: Pattern, nonterminal: str, visiting: Set) -> bool:
        from repro.redex.patterns import strip_outer_tags

        bare = strip_outer_tags(term)
        key = (nonterminal, bare)
        memo = self._memo
        cached = memo.get(key)
        if cached is not None:
            return cached
        probe = (nonterminal, id(bare))
        if probe in visiting:
            # A cycle through nonterminal chains on the same term cannot
            # produce a new derivation.
            return False
        visiting.add(probe)
        try:
            result = False
            for production in self.productions(nonterminal):
                if _production_matches(bare, production, self, visiting):
                    result = True
                    break
        finally:
            visiting.discard(probe)
        memo[key] = result
        return result


def _production_matches(term, production, grammar, visiting) -> bool:
    """Like redex_match but threading the cycle-detection set through
    nonterminal checks."""
    from repro.redex.patterns import AtomPred, NTRef, strip_outer_tags

    bare = strip_outer_tags(term)
    if isinstance(production, PVar):
        return True
    if isinstance(production, NTRef):
        return grammar._matches(bare, production.nonterminal, visiting)
    if isinstance(production, AtomPred):
        return production.accepts(bare)
    if isinstance(production, Const):
        return isinstance(bare, Const) and bare == production
    if isinstance(production, Node):
        return (
            isinstance(bare, Node)
            and bare.label == production.label
            and len(bare.children) == len(production.children)
            and all(
                _production_matches(t, p, grammar, visiting)
                for t, p in zip(bare.children, production.children)
            )
        )
    if isinstance(production, PList):
        if not isinstance(bare, PList) or bare.ellipsis is not None:
            return False
        n = len(production.items)
        if production.ellipsis is None:
            if len(bare.items) != n:
                return False
        elif len(bare.items) < n:
            return False
        if not all(
            _production_matches(t, p, grammar, visiting)
            for t, p in zip(bare.items[:n], production.items)
        ):
            return False
        if production.ellipsis is not None:
            return all(
                _production_matches(t, production.ellipsis, grammar, visiting)
                for t in bare.items[n:]
            )
        return True
    if isinstance(production, Tagged):
        return _production_matches(bare, production.term, grammar, visiting)
    raise LanguageError(f"not a grammar production: {production!r}")
