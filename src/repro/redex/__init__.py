"""A small reduction-semantics engine in the spirit of PLT Redex.

The paper builds its section-8.1 evaluation substrate in PLT Redex and
notes that "obtaining a core stepper from PLT Redex is trivial because
the tool already provides a function that performs a single evaluation
step."  This package is our from-scratch equivalent: define a grammar
(:class:`Grammar`), an evaluation strategy (:class:`EvalStrategy` —
congruence declarations standing in for evaluation-context grammars),
and an ordered list of :class:`ReductionRule`; the resulting
:class:`ReductionSemantics` steps machine states ``(term, store)`` and
:class:`RedexStepper` plugs straight into CONFECTION's lifting loop.

Origin tags flow through reduction untouched in captured subterms and
are consumed with the syntax a rule consumes, which is exactly the
origin discipline Definition 4 of the paper requires.
"""

from repro.redex.grammar import Grammar
from repro.redex.patterns import AtomPred, NTRef, redex_match, strip_outer_tags
from repro.redex.reduction import (
    EMPTY_STORE,
    MachineState,
    RedexStepper,
    ReductionRule,
    ReductionSemantics,
    make_store,
)
from repro.redex.strategy import Decomposition, EvalStrategy

__all__ = [
    "Grammar",
    "NTRef",
    "AtomPred",
    "redex_match",
    "strip_outer_tags",
    "EvalStrategy",
    "Decomposition",
    "ReductionRule",
    "ReductionSemantics",
    "MachineState",
    "RedexStepper",
    "EMPTY_STORE",
    "make_store",
]
