"""Reduction rules, the reduction relation, and the stepper adapter.

A :class:`ReductionRule` rewrites a redex: its LHS is a redex pattern
(core patterns + nonterminal references + atom predicates) and its RHS is
either a template pattern (substituted with the match bindings) or a
Python function — the analogue of Redex rules with metafunctions.  RHS
functions receive the match environment and the current store and return
one or more ``(contractum, store)`` results, which is how primitives
(delta rules), mutation, and nondeterminism (``amb``) are expressed.

:class:`ReductionSemantics` packages a grammar (with a designated value
nonterminal), an evaluation strategy, and an ordered rule list into a
single-step function over machine states ``(term, store)``.
:class:`RedexStepper` adapts it to the :class:`repro.core.lift.Stepper`
protocol so CONFECTION can lift its evaluation sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.bindings import Env
from repro.core.errors import StuckError
from repro.core.intern import intern_generation
from repro.core.substitution import subst
from repro.core.terms import Node, Pattern, Tagged
from repro.obs import _state as _obs
from repro.obs.metrics import REDEX_DECOMPOSE_DEPTH
from repro.redex.grammar import Grammar
from repro.redex.patterns import redex_match
from repro.redex.strategy import EvalStrategy

__all__ = [
    "Store",
    "EMPTY_STORE",
    "ReductionRule",
    "ReductionSemantics",
    "MachineState",
    "RedexStepper",
    "STEPPER_MODES",
]

STEPPER_MODES: Tuple[str, ...] = ("refocus", "naive")

Store = MappingProxyType
EMPTY_STORE: "Store" = MappingProxyType({})


def make_store(mapping: Dict) -> "Store":
    return MappingProxyType(dict(mapping))


def _tag_wrapper(redex: Pattern):
    """A function rewrapping a contractum in ``redex``'s outer tags."""
    tags = []
    while isinstance(redex, Tagged):
        tags.append(redex.tag)
        redex = redex.term
    if not tags:
        return None

    def rewrap(term: Pattern) -> Pattern:
        for tag in reversed(tags):
            term = Tagged(tag, term)
        return term

    return rewrap


RuleResult = Union[Pattern, Tuple[Pattern, "Store"]]
RhsFunction = Callable[[Env, "Store"], Union[RuleResult, List[RuleResult]]]


@dataclass(frozen=True)
class ReductionRule:
    """One notion of reduction, e.g. ``beta`` or ``if-true``.

    Ordinary rules rewrite the redex locally; the contractum is plugged
    back into the evaluation context.  *Control* rules (``control=True``)
    are Redex's context-sensitive rules ``E[redex] -> program``: their RHS
    function receives a third argument, ``plug``, with which it can
    materialize the current continuation (``plug(HOLE)``) or discard it —
    this is how ``call/cc`` and continuation invocation are expressed.
    A control rule's results replace the whole program.
    """

    name: str
    lhs: Pattern
    rhs: Union[Pattern, RhsFunction]
    control: bool = False
    preserve_redex_tags: bool = False
    """Rewrap the contractum in the redex's outer tags.  For rules where
    the construct *persists* across the step (e.g. sequencing popping a
    finished expression), the paper's origin discipline says the term
    maintains its origin (Definition 4); consuming rules (beta, if)
    leave this False and the redex's tags disappear with it."""

    def apply(
        self,
        env: Env,
        store: "Store",
        plug: Optional[Callable[[Pattern], Pattern]] = None,
    ) -> List[Tuple[Pattern, "Store"]]:
        if self.control:
            if not callable(self.rhs):
                raise StuckError(
                    f"control rule {self.name!r} requires a callable RHS"
                )
            raw = self.rhs(env, store, plug)
        elif callable(self.rhs):
            raw = self.rhs(env, store)
        else:
            raw = subst(env, self.rhs)
        if not isinstance(raw, list):
            raw = [raw]
        out = []
        for item in raw:
            if isinstance(item, tuple):
                term, new_store = item
            else:
                term, new_store = item, store
            out.append((term, new_store))
        return out


@dataclass(frozen=True)
class MachineState:
    """A machine state: the focused term plus the (immutable) store."""

    term: Pattern
    store: "Store" = field(default_factory=lambda: EMPTY_STORE)

    def with_term(self, term: Pattern) -> "MachineState":
        return MachineState(term, self.store)


class ReductionSemantics:
    """A grammar + strategy + rules = a small-step semantics."""

    def __init__(
        self,
        grammar: Grammar,
        strategy: EvalStrategy,
        rules: Sequence[ReductionRule],
        value_nonterminal: str = "v",
        name: str = "language",
    ) -> None:
        self.grammar = grammar
        self.strategy = strategy
        self.rules: Tuple[ReductionRule, ...] = tuple(rules)
        self.value_nonterminal = value_nonterminal
        self.name = name
        self._value_memo: Dict[int, bool] = {}
        self._value_memo_generation: Optional[int] = None
        # Label-indexed dispatch: a rule whose LHS is a labeled node can
        # only match a redex with that label, so bucket rules by label at
        # construction and consult one bucket per step instead of trying
        # every rule.  Rules with a non-node LHS go into a wildcard
        # bucket; merging by original index preserves priority order.
        self._by_label: Dict[str, List[int]] = {}
        self._wildcard: List[int] = []
        for i, rule in enumerate(self.rules):
            lhs = rule.lhs
            while isinstance(lhs, Tagged):
                lhs = lhs.term
            if isinstance(lhs, Node):
                self._by_label.setdefault(lhs.label, []).append(i)
            else:
                self._wildcard.append(i)

    def _candidate_rules(self, redex: Pattern) -> List[ReductionRule]:
        """The rules whose LHS could possibly match ``redex``, in
        priority order."""
        bare = redex
        while isinstance(bare, Tagged):
            bare = bare.term
        if not isinstance(bare, Node):
            indices = self._wildcard
        else:
            labeled = self._by_label.get(bare.label, ())
            if not self._wildcard:
                indices = labeled
            elif not labeled:
                indices = self._wildcard
            else:
                indices = sorted((*labeled, *self._wildcard))
        return [self.rules[i] for i in indices]

    def is_value(self, term: Pattern) -> bool:
        # Interned terms are pointer-canonical, so their value verdicts
        # memoize by identity — decomposition re-checks the same shared
        # subtrees constantly (every list element left of the hole, every
        # rescan after a refocus pop), and the grammar walk is the single
        # hottest pure function in the stepper.  The memo lives and dies
        # with the intern table: a generation bump invalidates it
        # wholesale, since ids of dead canonical terms may be reused.
        generation = intern_generation()
        if getattr(term, "_interned", None) == generation:
            memo = self._value_memo
            if self._value_memo_generation != generation:
                memo.clear()
                self._value_memo_generation = generation
            key = id(term)
            cached = memo.get(key)
            if cached is None:
                cached = self.grammar.matches(term, self.value_nonterminal)
                memo[key] = cached
            return cached
        return self.grammar.matches(term, self.value_nonterminal)

    def step(self, state: MachineState) -> List[MachineState]:
        """All successor states (empty when ``state.term`` is a value).

        Raises :class:`StuckError` when a non-value term has no
        applicable reduction — a runtime type error in the object
        language.
        """
        decomposition = self.strategy.decompose(state.term, self.is_value)
        if decomposition is None:
            return []
        if _obs.enabled:
            REDEX_DECOMPOSE_DEPTH.observe(decomposition.depth)
        redex, plug = decomposition.redex, decomposition.plug
        for rule in self._candidate_rules(redex):
            env = redex_match(redex, rule.lhs, self.grammar)
            if env is None:
                continue
            if rule.control:
                # The rule's results are whole programs, not contractums.
                return [
                    MachineState(term, store)
                    for term, store in rule.apply(env, state.store, plug)
                ]
            rewrap = _tag_wrapper(redex) if rule.preserve_redex_tags else None
            return [
                MachineState(
                    plug(rewrap(term) if rewrap else term), store
                )
                for term, store in rule.apply(env, state.store)
            ]
        from repro.lang.render import render

        raise StuckError(
            f"{self.name}: no reduction applies to redex "
            f"{render(redex, show_tags=False)}"
        )

    def trace(
        self, term: Pattern, max_steps: int = 100_000
    ) -> List[MachineState]:
        """The (deterministic) evaluation sequence starting at ``term``.

        Raises on nondeterministic branching; use :meth:`trace_tree`.
        """
        state = MachineState(term)
        out = [state]
        for _ in range(max_steps):
            successors = self.step(state)
            if not successors:
                return out
            if len(successors) > 1:
                raise StuckError(
                    f"{self.name}: nondeterministic step during trace(); "
                    f"use trace_tree()"
                )
            state = successors[0]
            out.append(state)
        raise StuckError(f"{self.name}: trace exceeded {max_steps} steps")

    def trace_tree(
        self, term: Pattern, max_nodes: int = 100_000
    ) -> Tuple[List[MachineState], List[Tuple[int, int]]]:
        """Breadth-first evaluation tree: (states, edges by index)."""
        states = [MachineState(term)]
        edges: List[Tuple[int, int]] = []
        queue = [0]
        while queue:
            index = queue.pop(0)
            for successor in self.step(states[index]):
                if len(states) >= max_nodes:
                    raise StuckError(
                        f"{self.name}: evaluation tree exceeded {max_nodes} nodes"
                    )
                states.append(successor)
                edges.append((index, len(states) - 1))
                queue.append(len(states) - 1)
        return states, edges

    def normal_form(self, term: Pattern, max_steps: int = 100_000) -> Pattern:
        """Evaluate to a value (deterministically) and return it."""
        return self.trace(term, max_steps)[-1].term


class RedexStepper:
    """Adapt a :class:`ReductionSemantics` to the lifting loop's
    :class:`~repro.core.lift.Stepper` protocol.

    ``on_stuck`` selects what a stuck term means: ``"halt"`` treats it as
    a final state (the lifted sequence simply ends there, mirroring a
    crashed program), ``"raise"`` propagates :class:`StuckError`.

    ``mode`` selects the decomposition engine: ``"refocus"`` (the
    default) drives a :class:`~repro.redex.refocus.RefocusMachine` that
    keeps the evaluation context alive across steps and resumes
    decomposition at the contraction site; ``"naive"`` re-decomposes
    from the root every step.  The two produce byte-identical traces —
    the naive mode survives as the differential-testing oracle and for
    stepping non-ground (uninternable) terms.
    """

    def __init__(
        self,
        semantics: ReductionSemantics,
        on_stuck: str = "halt",
        mode: str = "refocus",
    ) -> None:
        if on_stuck not in ("halt", "raise"):
            raise ValueError(f"on_stuck must be 'halt' or 'raise', not {on_stuck!r}")
        if mode not in STEPPER_MODES:
            raise ValueError(
                f"mode must be one of {STEPPER_MODES}, not {mode!r}"
            )
        self.semantics = semantics
        self.on_stuck = on_stuck
        self.mode = mode
        if mode == "refocus":
            from repro.redex.refocus import RefocusMachine

            self._machine: Optional["RefocusMachine"] = RefocusMachine(
                semantics
            )
        else:
            self._machine = None

    def with_mode(self, mode: str) -> "RedexStepper":
        """This stepper, or a copy of it running in ``mode``."""
        if mode == self.mode:
            return self
        return RedexStepper(self.semantics, self.on_stuck, mode=mode)

    def load(self, core_term: Pattern):
        if self._machine is not None:
            return self._machine.load(core_term)
        return MachineState(core_term)

    def step(self, state) -> List[MachineState]:
        try:
            if self._machine is not None and not isinstance(
                state, MachineState
            ):
                return self._machine.step(state)
            return self.semantics.step(state)
        except StuckError:
            if self.on_stuck == "halt":
                return []
            raise

    def term(self, state) -> Pattern:
        if self._machine is not None and not isinstance(state, MachineState):
            return self._machine.term(state)
        return state.term
