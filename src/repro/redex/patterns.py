"""Patterns for reduction semantics: core patterns plus nonterminals.

The paper's section 8.1 builds its evaluation substrate in PLT Redex;
this package is our from-scratch equivalent.  Redex patterns extend the
core pattern language (Figure 1) with two forms Redex needs:

* :class:`NTRef` — a reference to a grammar nonterminal, optionally
  binding the matched term (Redex's ``e_1``, ``v_x`` convention);
* :class:`AtomPred` — a predicate over atomic constants (number, string,
  boolean, symbol), standing in for Redex's built-in ``number`` etc.

Matching (:func:`redex_match`) mirrors core matching but *always* sees
through tags on the term: reduction is the object language's business and
origin tags must never block it (Definition 4: terms maintain their
origin through evaluation — which also means pattern variables capture
terms with tags intact, so captured subterms keep their origins).
"""

from __future__ import annotations

from dataclasses import dataclass
from numbers import Number
from typing import TYPE_CHECKING, Optional

from repro.core.bindings import Env, merge
from repro.core.errors import PatternError
from repro.core.terms import (
    Const,
    Node,
    Pattern,
    PList,
    PVar,
    Symbol,
    Tagged,
    pattern_variables as core_pattern_variables,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.redex.grammar import Grammar

__all__ = ["NTRef", "AtomPred", "redex_match", "strip_outer_tags"]


@dataclass(frozen=True, slots=True)
class NTRef(Pattern):
    """A grammar-nonterminal reference, e.g. ``NTRef("e", "body")``.

    Matches any term the grammar derives from ``nonterminal``; when
    ``name`` is given, the matched term is bound to it (Redex's
    subscript convention, ``e_body``).
    """

    nonterminal: str
    name: Optional[str] = None

    def __repr__(self) -> str:
        if self.name:
            return f"NTRef({self.nonterminal!r}, {self.name!r})"
        return f"NTRef({self.nonterminal!r})"


_ATOM_KINDS = ("number", "integer", "string", "boolean", "symbol", "atom")


@dataclass(frozen=True, slots=True)
class AtomPred(Pattern):
    """A predicate over constants: ``AtomPred("number", "n")`` matches any
    numeric constant and binds it to ``n``."""

    kind: str
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in _ATOM_KINDS:
            raise PatternError(
                f"unknown atom predicate {self.kind!r}; choose from {_ATOM_KINDS}"
            )

    def accepts(self, term: Pattern) -> bool:
        if not isinstance(term, Const):
            return False
        v = term.value
        if self.kind == "number":
            return isinstance(v, Number) and not isinstance(v, bool)
        if self.kind == "integer":
            return isinstance(v, int) and not isinstance(v, bool)
        if self.kind == "string":
            return isinstance(v, str)
        if self.kind == "boolean":
            return isinstance(v, bool)
        if self.kind == "symbol":
            return isinstance(v, Symbol)
        return True  # "atom"

    def __repr__(self) -> str:
        if self.name:
            return f"AtomPred({self.kind!r}, {self.name!r})"
        return f"AtomPred({self.kind!r})"


def strip_outer_tags(t: Pattern) -> Pattern:
    """Remove tags wrapped around the outside of ``t`` (inner tags stay)."""
    while isinstance(t, Tagged):
        t = t.term
    return t


def redex_match(
    term: Pattern, pattern: Pattern, grammar: "Grammar"
) -> Optional[Env]:
    """Match ``term`` against a redex pattern, consulting ``grammar`` for
    nonterminal references.  Tags on the term are transparent; pattern
    variables and nonterminal bindings capture the *tagged* term."""
    if isinstance(pattern, PVar):
        return {pattern.name: term}
    if isinstance(pattern, NTRef):
        if not grammar.matches(term, pattern.nonterminal):
            return None
        return {pattern.name: term} if pattern.name else {}
    if isinstance(pattern, AtomPred):
        bare = strip_outer_tags(term)
        if not pattern.accepts(bare):
            return None
        return {pattern.name: bare} if pattern.name else {}

    bare = strip_outer_tags(term)

    if isinstance(pattern, Const):
        return {} if (isinstance(bare, Const) and bare == pattern) else None

    if isinstance(pattern, Node):
        if (
            not isinstance(bare, Node)
            or bare.label != pattern.label
            or len(bare.children) != len(pattern.children)
        ):
            return None
        out: Env = {}
        for t_child, p_child in zip(bare.children, pattern.children):
            sub = redex_match(t_child, p_child, grammar)
            if sub is None:
                return None
            out.update(sub)
        return out

    if isinstance(pattern, PList):
        if not isinstance(bare, PList) or bare.ellipsis is not None:
            return None
        n = len(pattern.items)
        if pattern.ellipsis is None:
            if len(bare.items) != n:
                return None
        elif len(bare.items) < n:
            return None
        out = {}
        for t_item, p_item in zip(bare.items[:n], pattern.items):
            sub = redex_match(t_item, p_item, grammar)
            if sub is None:
                return None
            out.update(sub)
        if pattern.ellipsis is not None:
            rep_envs = []
            for t_item in bare.items[n:]:
                sub = redex_match(t_item, pattern.ellipsis, grammar)
                if sub is None:
                    return None
                rep_envs.append(sub)
            out.update(merge(rep_envs, _ellipsis_variables(pattern.ellipsis)))
        return out

    if isinstance(pattern, Tagged):
        # Reduction-rule patterns are tag-free by construction; accept a
        # tagged pattern defensively by ignoring the tag.
        return redex_match(term, pattern.term, grammar)

    raise PatternError(f"not a redex pattern: {pattern!r}")


def _ellipsis_variables(pattern: Pattern) -> tuple:
    names = list(core_pattern_variables(_erase_extensions(pattern)))
    return tuple(dict.fromkeys(names))


def _erase_extensions(pattern: Pattern) -> Pattern:
    """Rewrite NTRef/AtomPred into plain variables or throwaway constants
    so core helpers (pattern_variables) can traverse the pattern."""
    if isinstance(pattern, NTRef) or isinstance(pattern, AtomPred):
        return PVar(pattern.name) if pattern.name else Const(0)
    if isinstance(pattern, Node):
        return Node(pattern.label, tuple(_erase_extensions(c) for c in pattern.children))
    if isinstance(pattern, PList):
        ell = (
            _erase_extensions(pattern.ellipsis)
            if pattern.ellipsis is not None
            else None
        )
        return PList(tuple(_erase_extensions(c) for c in pattern.items), ell)
    if isinstance(pattern, Tagged):
        return _erase_extensions(pattern.term)
    return pattern
