"""Trace visualization: side-by-side core/surface views.

Figure 4 of the paper is a screenshot of Redex's evaluation visualizer;
this module provides the equivalent for lifted traces — a two-column
text rendering and a standalone HTML report showing, for every core
step, whether it was shown, deduplicated, or skipped, and what surface
term represents it.

Every renderer accepts either a batch result
(:class:`~repro.core.lift.LiftResult` / ``SurfaceTree``) or a lift
*event stream* straight from
:func:`~repro.engine.stream.lift_stream` /
:meth:`~repro.confection.Confection.lift_stream` — streams are folded
internally, so no intermediate result object is needed.  Truncated
lifts (``on_budget="truncate"``) are flagged in the summary line.

::

    from repro.viz import render_text, render_html
    print(render_text(confection.lift(program), pretty))
    print(render_text(confection.lift_stream(program), pretty))
    open("trace.html", "w").write(render_html(confection.lift(program), pretty))
"""

from __future__ import annotations

import html
from typing import Callable, Iterable, List, Optional, Union

from repro.core.lift import LiftResult, SurfaceTree
from repro.core.terms import Pattern

__all__ = ["render_text", "render_html", "render_tree_text"]

Renderer = Callable[[Pattern], str]

Liftable = Union[LiftResult, Iterable]
Treeable = Union[SurfaceTree, Iterable]


def _default_renderer() -> Renderer:
    from repro.lang.render import render

    return lambda t: render(t, show_tags=False)


def _coerce_result(result: Liftable) -> LiftResult:
    if isinstance(result, LiftResult):
        return result
    from repro.engine.stream import fold_lift

    return fold_lift(result)


def _coerce_tree(tree: Treeable) -> SurfaceTree:
    if isinstance(tree, SurfaceTree):
        return tree
    from repro.engine.stream import fold_tree

    return fold_tree(tree)


def render_text(
    result: Liftable,
    pretty: Optional[Renderer] = None,
    width: int = 60,
) -> str:
    """A two-column plain-text view: core step | surface representation.

    Shown steps carry ``=>``, deduplicated ones ``==`` (same surface as
    the previous step), skipped ones a blank surface column.
    """
    result = _coerce_result(result)
    pretty = pretty or _default_renderer()
    lines: List[str] = []
    header = f"{'core step':<{width}} | surface"
    lines.append(header)
    lines.append("-" * len(header))
    for step in result.steps:
        core = _clip(pretty(step.core_term), width)
        if step.skipped:
            marker, surface = "  ", ""
        elif step.emitted:
            marker, surface = "=>", pretty(step.surface_term)
        else:
            marker, surface = "==", "(as above)"
        lines.append(f"{core:<{width}} {marker} {surface}")
    lines.append("-" * len(header))
    lines.append(_summary(result))
    return "\n".join(lines)


def _summary(result: LiftResult) -> str:
    text = (
        f"{result.core_step_count} core steps, "
        f"{result.shown_count} shown, "
        f"{result.skipped_count} skipped "
        f"(coverage {result.coverage:.0%})"
    )
    if result.truncated:
        text += " [truncated: budget exhausted]"
    return text


def _clip(text: str, width: int) -> str:
    if len(text) <= width:
        return text
    return text[: width - 1] + "…"


_HTML_STYLE = """
body { font-family: ui-monospace, monospace; margin: 2rem; }
h1 { font-size: 1.1rem; }
table { border-collapse: collapse; width: 100%; }
td, th { border: 1px solid #ccc; padding: 0.3rem 0.6rem;
         text-align: left; vertical-align: top; }
tr.shown   { background: #eaf7ea; }
tr.dedup   { background: #f4f4f4; color: #666; }
tr.skipped { background: #fbecec; color: #888; }
.summary { margin-top: 1rem; color: #333; }
"""


def render_html(
    result: Liftable,
    pretty: Optional[Renderer] = None,
    title: str = "Lifted evaluation sequence",
) -> str:
    """A standalone HTML report of the lifted trace."""
    result = _coerce_result(result)
    pretty = pretty or _default_renderer()
    rows: List[str] = []
    for step in result.steps:
        if step.skipped:
            cls, surface = "skipped", "— skipped —"
        elif step.emitted:
            cls, surface = "shown", pretty(step.surface_term)
        else:
            cls, surface = "dedup", "(unchanged)"
        rows.append(
            f'<tr class="{cls}">'
            f"<td>{step.core_index}</td>"
            f"<td>{html.escape(pretty(step.core_term))}</td>"
            f"<td>{html.escape(surface)}</td>"
            f"</tr>"
        )
    body = "\n".join(rows)
    summary = _summary(result)
    return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{html.escape(title)}</title>
<style>{_HTML_STYLE}</style></head>
<body>
<h1>{html.escape(title)}</h1>
<table>
<tr><th>#</th><th>core term</th><th>surface representation</th></tr>
{body}
</table>
<p class="summary">{html.escape(summary)}</p>
</body></html>
"""


def render_tree_text(
    tree: Treeable, pretty: Optional[Renderer] = None
) -> str:
    """An indented text view of a lifted evaluation tree."""
    tree = _coerce_tree(tree)
    pretty = pretty or _default_renderer()
    lines: List[str] = []

    def walk(node_id: int, depth: int) -> None:
        lines.append("  " * depth + pretty(tree.nodes[node_id]))
        for child in tree.children(node_id):
            walk(child, depth + 1)

    if tree.root is not None:
        walk(tree.root, 0)
    summary = (
        f"[{len(tree.nodes)} surface nodes over {tree.core_node_count} "
        f"core states; {tree.skipped_count} skipped"
    )
    summary += "; truncated]" if tree.truncated else "]"
    lines.append(summary)
    return "\n".join(lines)
