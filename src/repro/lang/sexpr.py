"""A small s-expression reader and writer.

The lambda-core language (section 8.1 of the paper) uses a parenthesized
concrete syntax — ``(let ((x 1)) (+ x 2))`` — and the paper's lifting
pipeline needs ``s->t`` / ``t->s`` style bridges between concrete syntax
and the term language.  This module supplies the concrete half: reading
source text into nested Python lists of atoms and writing them back.

Atoms are ints, floats, booleans (``#t`` / ``#f``), strings (double
quoted), and :class:`~repro.core.terms.Symbol` for everything else.
"""

from __future__ import annotations

import re
from typing import List, Union

from repro.core.errors import ParseError
from repro.core.terms import Symbol

__all__ = ["SExpr", "read_sexpr", "read_sexprs", "write_sexpr"]

SExpr = Union[int, float, bool, str, Symbol, List["SExpr"]]

_SEXPR_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>;[^\n]*)
  | (?P<open>[(\[])
  | (?P<close>[)\]])
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<atom>[^\s()\[\];"]+)
    """,
    re.VERBOSE,
)


def _tokenize(source: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(source):
        m = _SEXPR_TOKEN_RE.match(source, pos)
        if m is None:
            raise ParseError(f"unexpected character {source[pos]!r} at {pos}")
        if m.lastgroup not in ("ws", "comment"):
            tokens.append(m.group())
        pos = m.end()
    return tokens


def _parse_atom(token: str) -> SExpr:
    if token == "#t":
        return True
    if token == "#f":
        return False
    if token.startswith('"'):
        return token[1:-1].replace('\\"', '"').replace("\\\\", "\\")
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return Symbol(token)


def read_sexprs(source: str) -> List[SExpr]:
    """Read every s-expression in ``source``."""
    tokens = _tokenize(source)
    out: List[SExpr] = []
    stack: List[List[SExpr]] = []
    for token in tokens:
        if token in "([":
            stack.append([])
        elif token in ")]":
            if not stack:
                raise ParseError("unbalanced closing parenthesis")
            done = stack.pop()
            if stack:
                stack[-1].append(done)
            else:
                out.append(done)
        else:
            atom = _parse_atom(token)
            if stack:
                stack[-1].append(atom)
            else:
                out.append(atom)
    if stack:
        raise ParseError("unbalanced opening parenthesis")
    return out


def read_sexpr(source: str) -> SExpr:
    """Read exactly one s-expression from ``source``."""
    exprs = read_sexprs(source)
    if len(exprs) != 1:
        raise ParseError(f"expected one s-expression, found {len(exprs)}")
    return exprs[0]


def write_sexpr(expr: SExpr) -> str:
    """Render an s-expression back into source text."""
    if isinstance(expr, bool):
        return "#t" if expr else "#f"
    if isinstance(expr, (int, float)):
        return repr(expr)
    if isinstance(expr, Symbol):
        return expr.name
    if isinstance(expr, str):
        escaped = expr.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(expr, list):
        return "(" + " ".join(write_sexpr(e) for e in expr) + ")"
    raise ParseError(f"cannot write {expr!r} as an s-expression")
