"""Parser for the CONFECTION rule-definition DSL (section 3.1).

The notation is the paper's, inspired by Stratego::

    Or([x, y]) -> Let([Binding("t", x)], If(Id("t"), Id("t"), y));
    Or([x, y, ys ...]) ->
        Let([Binding("t", x)], If(Id("t"), Id("t"), !Or([y, ys ...])));

* node names are title-case identifiers followed by parenthesized
  subpatterns (a bare title-case identifier is a zero-arity node);
* variables are lowercase identifiers;
* lists are bracketed; ``P ...`` as the final list element makes ``P``
  an ellipsis pattern (zero or more repetitions);
* constants are numbers, double-quoted strings, ``true``, ``false``,
  ``none``, ``infinity``/``-infinity``, and `````name`` symbols;
* ``!`` marks an RHS subterm transparent (section 3.4);
* each rule ends with ``;``; ``#`` and ``//`` start line comments.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.errors import ParseError
from repro.core.rules import Rule, RuleList
from repro.core.tags import transparent
from repro.core.terms import (
    Const,
    Node,
    Pattern,
    PList,
    PVar,
    Symbol,
    is_term,
)
from repro.core.wellformed import DisjointnessMode

__all__ = ["parse_rules", "parse_rulelist", "parse_pattern", "parse_term"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*|//[^\n]*)
  | (?P<arrow>->)
  | (?P<ellipsis>\.\.\.)
  | (?P<number>-?\d+\.\d+|-?\d+|-?infinity\b)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<symbol>`[A-Za-z_][A-Za-z0-9_/?!*+<>=-]*)
  | (?P<ident>[A-Za-z_%][A-Za-z0-9_%/?!*+<>=-]*)
  | (?P<punct>[()\[\],;!])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    pos: int
    line: int


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    line = 1
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise ParseError(
                f"line {line}: unexpected character {source[pos]!r}"
            )
        kind = m.lastgroup
        text = m.group()
        if kind not in ("ws", "comment"):
            tokens.append(_Token(kind, text, pos, line))
        line += text.count("\n")
        pos = m.end()
    tokens.append(_Token("eof", "", pos, line))
    return tokens


class _Parser:
    def __init__(self, source: str) -> None:
        self.tokens = _tokenize(source)
        self.i = 0

    def peek(self) -> _Token:
        return self.tokens[self.i]

    def next(self) -> _Token:
        tok = self.tokens[self.i]
        self.i += 1
        return tok

    def expect(self, text: str) -> _Token:
        tok = self.next()
        if tok.text != text:
            got = repr(tok.text) if tok.text else "end of input"
            raise ParseError(f"line {tok.line}: expected {text!r}, got {got}")
        return tok

    def at_end(self) -> bool:
        return self.peek().kind == "eof"

    # --- grammar -----------------------------------------------------

    def parse_rules(self) -> List[Tuple[Pattern, Pattern]]:
        rules = []
        while not self.at_end():
            lhs = self.parse_pattern()
            self.expect("->")
            rhs = self.parse_pattern()
            self.expect(";")
            rules.append((lhs, rhs))
        return rules

    def parse_pattern(self) -> Pattern:
        tok = self.peek()
        if tok.text == "!":
            self.next()
            return transparent(self.parse_pattern())
        return self._parse_primary()

    def _parse_primary(self) -> Pattern:
        tok = self.next()
        if tok.kind == "number":
            return Const(_parse_number(tok.text))
        if tok.kind == "string":
            return Const(_unescape(tok.text[1:-1]))
        if tok.kind == "symbol":
            return Const(Symbol(tok.text[1:]))
        if tok.kind == "ident":
            return self._parse_ident(tok)
        if tok.text == "[":
            return self._parse_list(tok)
        raise ParseError(
            f"line {tok.line}: expected a pattern, got {tok.text!r}"
        )

    def _parse_ident(self, tok: _Token) -> Pattern:
        if tok.text == "true":
            return Const(True)
        if tok.text == "false":
            return Const(False)
        if tok.text == "none":
            return Const(None)
        if tok.text == "infinity":
            return Const(float("inf"))
        if tok.text[0].isupper():
            children: List[Pattern] = []
            if self.peek().text == "(":
                self.next()
                if self.peek().text != ")":
                    children.append(self.parse_pattern())
                    while self.peek().text == ",":
                        self.next()
                        children.append(self.parse_pattern())
                self.expect(")")
            return Node(tok.text, tuple(children))
        return PVar(tok.text)

    def _parse_list(self, open_tok: _Token) -> Pattern:
        items: List[Pattern] = []
        ellipsis: Optional[Pattern] = None
        if self.peek().text != "]":
            while True:
                p = self.parse_pattern()
                if self.peek().kind == "ellipsis":
                    self.next()
                    ellipsis = p
                    break
                items.append(p)
                if self.peek().text != ",":
                    break
                self.next()
        self.expect("]")
        return PList(tuple(items), ellipsis)


def _parse_number(text: str):
    if text.endswith("infinity"):
        return float("-inf") if text.startswith("-") else float("inf")
    if "." in text:
        return float(text)
    return int(text)


def _unescape(text: str) -> str:
    return text.replace('\\"', '"').replace("\\\\", "\\")


def parse_pattern(source: str) -> Pattern:
    """Parse a single pattern from ``source``."""
    parser = _Parser(source)
    pattern = parser.parse_pattern()
    tok = parser.peek()
    if tok.kind != "eof":
        raise ParseError(f"line {tok.line}: trailing input {tok.text!r}")
    return pattern


def parse_term(source: str) -> Pattern:
    """Parse a single *term*: a pattern without variables or ellipses."""
    pattern = parse_pattern(source)
    if not is_term(pattern):
        raise ParseError(
            f"expected a term but {source!r} contains pattern variables "
            f"or ellipses (lowercase identifiers are variables)"
        )
    return pattern


def parse_rules(source: str, atomic_vars: Tuple[str, ...] = ()) -> List[Rule]:
    """Parse a sequence of ``LHS -> RHS;`` rules into :class:`Rule`
    objects (running the per-rule well-formedness checks)."""
    pairs = _Parser(source).parse_rules()
    return [Rule(lhs, rhs, atomic_vars=atomic_vars) for lhs, rhs in pairs]


def parse_rulelist(
    source: str,
    disjointness: DisjointnessMode = DisjointnessMode.PRIORITIZED,
    atomic_vars: Tuple[str, ...] = (),
) -> RuleList:
    """Parse rules and assemble a checked :class:`RuleList`."""
    return RuleList(parse_rules(source, atomic_vars), disjointness)
