"""Rendering terms and patterns back into the rule-DSL notation.

The output round-trips through :func:`repro.lang.rule_parser.parse_pattern`
for tag-free patterns.  Tags have no source notation (they are inserted
by the system), so they render in a debug form by default and can be
hidden entirely with ``show_tags=False`` — the form used when presenting
surface steps to users.
"""

from __future__ import annotations

from repro.core.terms import (
    BodyTag,
    Const,
    HeadTag,
    Node,
    Pattern,
    PList,
    PVar,
    Symbol,
    Tagged,
)

__all__ = ["render"]


def render(p: Pattern, show_tags: bool = True) -> str:
    """Pretty-print a pattern or term in rule-DSL notation.

    Head tags render as ``{#i: ...}``, opaque body tags as ``⟨...⟩``, and
    transparent body tags as ``!⟨...⟩``; with ``show_tags=False`` all
    three vanish.
    """
    if isinstance(p, PVar):
        return p.name
    if isinstance(p, Const):
        return _render_const(p)
    if isinstance(p, Node):
        inner = ", ".join(render(c, show_tags) for c in p.children)
        return f"{p.label}({inner})"
    if isinstance(p, PList):
        parts = [render(c, show_tags) for c in p.items]
        if p.ellipsis is not None:
            parts.append(render(p.ellipsis, show_tags) + " ...")
        return "[" + ", ".join(parts) + "]"
    if isinstance(p, Tagged):
        inner = render(p.term, show_tags)
        if not show_tags:
            return inner
        if isinstance(p.tag, HeadTag):
            return f"{{#{p.tag.index}: {inner}}}"
        if isinstance(p.tag, BodyTag):
            mark = "!" if p.tag.transparent else ""
            return f"{mark}⟨{inner}⟩"
    raise TypeError(f"cannot render {p!r}")


def _render_const(c: Const) -> str:
    v = c.value
    if isinstance(v, Symbol):
        # The backtick keeps symbols distinct from pattern variables so
        # rendered patterns re-parse faithfully.
        return f"`{v.name}"
    if isinstance(v, bool):
        return "true" if v else "false"
    if v is None:
        return "none"
    if isinstance(v, str):
        escaped = v.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(v, float):
        if v == float("inf"):
            return "infinity"
        if v == float("-inf"):
            return "-infinity"
    return repr(v)
