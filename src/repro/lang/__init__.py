"""Concrete syntax: the rule-definition DSL, s-expressions, rendering.

The paper's CONFECTION reads a grammar file defining surface and core
concrete syntax plus a set of rewrite rules in a Stratego-inspired
notation (section 3.1).  This package provides:

* :mod:`repro.lang.rule_parser` — the rule DSL
  (``Or([x, y]) -> Let([Binding("t", x)], ...);``), including ``!``
  transparency marks and ``...`` ellipses;
* :mod:`repro.lang.sexpr` — an s-expression reader/writer used by the
  lambda-core language's concrete syntax;
* :mod:`repro.lang.render` — generic pretty-printing of terms and
  patterns back into the rule-DSL notation.
"""

from repro.lang.render import render
from repro.lang.rule_parser import parse_pattern, parse_rulelist, parse_rules, parse_term
from repro.lang.sexpr import read_sexpr, read_sexprs, write_sexpr

__all__ = [
    "render",
    "parse_pattern",
    "parse_rules",
    "parse_rulelist",
    "parse_term",
    "read_sexpr",
    "read_sexprs",
    "write_sexpr",
]
