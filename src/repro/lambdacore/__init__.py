"""The stateful lambda-calculus core language of section 8.1.

"It contains only single-argument functions, application, if statements,
mutation, sequencing, and amb (which nondeterministically chooses among
its arguments), and some primitive values and operations" — plus
``call/cc`` for section 8.2's ``return`` sugar.  Defined as a reduction
semantics in :mod:`repro.redex`, exactly as the paper defined it in PLT
Redex, so a single-step function comes for free.

Use :func:`make_stepper` to obtain a CONFECTION-compatible stepper, and
:mod:`repro.sugars.scheme_sugars` for the sugar that the paper layers on
top (Let, Letrec, And, Or, Cond, Thunk/Force, multi-argument functions,
the Automaton macro, and Return).
"""

from repro.lambdacore import ast
from repro.lambdacore.ast import (
    HOLE,
    amb,
    app,
    boolean,
    callcc_val,
    cont,
    deref,
    idref,
    iff,
    lam,
    loc,
    num,
    op,
    seq,
    setloc,
    setvar,
    string,
    undefined,
    unit,
)
from repro.lambdacore.prims import PRIMITIVE_NAMES, apply_primitive
from repro.lambdacore.semantics import (
    alloc,
    make_semantics,
    make_stepper,
    plug_hole,
)
from repro.lambdacore.substitute import is_assigned, substitute, substitute_boxed
from repro.lambdacore.syntax import from_sexpr, parse_program, pretty, to_sexpr

__all__ = [
    "ast",
    "make_semantics",
    "make_stepper",
    "parse_program",
    "pretty",
    "from_sexpr",
    "to_sexpr",
    "substitute",
    "substitute_boxed",
    "is_assigned",
    "apply_primitive",
    "PRIMITIVE_NAMES",
    "alloc",
    "plug_hole",
    "HOLE",
    # constructors
    "lam", "app", "iff", "seq", "setvar", "setloc", "deref", "loc", "op",
    "amb", "idref", "unit", "undefined", "callcc_val", "cont", "num",
    "string", "boolean",
]


# --- backend registration -----------------------------------------------
#
# Importing this package makes the language available to every
# backend-generic driver (CLI, benchmarks, services) under the name
# "lambda".  Sugar factories take the full option set a driver
# assembles and pick out what they understand (the registry contract).


def _scheme_sugar(**options):
    from repro.sugars.scheme_sugars import make_scheme_rules

    return make_scheme_rules(
        transparent_recursion=options.get("transparent_recursion", False)
    )


def _automaton_sugar(**options):
    from repro.sugars.automaton import make_automaton_rules

    return make_automaton_rules(
        transparent_recursion=options.get("transparent_recursion", False)
    )


def _return_sugar(**options):
    from repro.sugars.returns import make_return_rules

    return make_return_rules(
        transparent_recursion=options.get("transparent_recursion", False)
    )


def _register() -> None:
    from repro.engine.registry import Backend, register_backend

    register_backend(
        Backend(
            name="lambda",
            parse=parse_program,
            pretty=pretty,
            make_stepper=make_stepper,
            sugar_factories={
                "scheme": _scheme_sugar,
                "automaton": _automaton_sugar,
                "return": _return_sugar,
            },
            default_sugar="scheme",
            description="stateful lambda-calculus core (section 8.1)",
        )
    )


_register()
