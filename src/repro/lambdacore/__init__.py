"""The stateful lambda-calculus core language of section 8.1.

"It contains only single-argument functions, application, if statements,
mutation, sequencing, and amb (which nondeterministically chooses among
its arguments), and some primitive values and operations" — plus
``call/cc`` for section 8.2's ``return`` sugar.  Defined as a reduction
semantics in :mod:`repro.redex`, exactly as the paper defined it in PLT
Redex, so a single-step function comes for free.

Use :func:`make_stepper` to obtain a CONFECTION-compatible stepper, and
:mod:`repro.sugars.scheme_sugars` for the sugar that the paper layers on
top (Let, Letrec, And, Or, Cond, Thunk/Force, multi-argument functions,
the Automaton macro, and Return).
"""

from repro.lambdacore import ast
from repro.lambdacore.ast import (
    HOLE,
    amb,
    app,
    boolean,
    callcc_val,
    cont,
    deref,
    idref,
    iff,
    lam,
    loc,
    num,
    op,
    seq,
    setloc,
    setvar,
    string,
    undefined,
    unit,
)
from repro.lambdacore.prims import PRIMITIVE_NAMES, apply_primitive
from repro.lambdacore.semantics import (
    alloc,
    make_semantics,
    make_stepper,
    plug_hole,
)
from repro.lambdacore.substitute import is_assigned, substitute, substitute_boxed
from repro.lambdacore.syntax import from_sexpr, parse_program, pretty, to_sexpr

__all__ = [
    "ast",
    "make_semantics",
    "make_stepper",
    "parse_program",
    "pretty",
    "from_sexpr",
    "to_sexpr",
    "substitute",
    "substitute_boxed",
    "is_assigned",
    "apply_primitive",
    "PRIMITIVE_NAMES",
    "alloc",
    "plug_hole",
    "HOLE",
    # constructors
    "lam", "app", "iff", "seq", "setvar", "setloc", "deref", "loc", "op",
    "amb", "idref", "unit", "undefined", "callcc_val", "cont", "num",
    "string", "boolean",
]
