"""Concrete syntax for the lambda language: the ``s->t`` / ``t->s``
bridges of section 5.3, over s-expressions.

The *surface* language includes every sugar of section 8.1 (let, letrec,
multi-argument ``function``, thunk/force, multi-arm and/or, cond, the
automaton macro) and section 8.2 (``return``); the *core* subset is what
:mod:`repro.lambdacore.semantics` reduces.  One reader handles both,
since the surface is a superset of the core.

Examples::

    (let ((x 1)) (+ x 2))
    (or (not #t) (not #f))
    (function (x y) (+ x y))
    (automaton init (init : ("c" -> more)) (more : ("a" -> more)))
"""

from __future__ import annotations

from typing import List

from repro.core.errors import ParseError
from repro.core.terms import Const, Node, Pattern, PList, Symbol, Tagged, strip_tags
from repro.lambdacore.prims import PRIMITIVE_NAMES
from repro.lang.sexpr import SExpr, read_sexpr, write_sexpr

__all__ = ["from_sexpr", "to_sexpr", "parse_program", "pretty"]


def parse_program(source: str) -> Pattern:
    """Parse one surface program from s-expression source text."""
    return from_sexpr(read_sexpr(source))


def pretty(term: Pattern) -> str:
    """Render a (possibly tagged) term back to s-expression syntax."""
    return write_sexpr(to_sexpr(strip_tags(term)))


# --- s -> t -----------------------------------------------------------

def from_sexpr(expr: SExpr) -> Pattern:
    if isinstance(expr, bool) or isinstance(expr, (int, float, str)):
        return Const(expr)
    if isinstance(expr, Symbol):
        if expr.name == "nil":
            return Node("Nil", ())
        return Node("Id", (Const(expr.name),))
    if not isinstance(expr, list):
        raise ParseError(f"cannot parse {expr!r}")
    if not expr:
        raise ParseError("empty application ()")

    head = expr[0]
    if isinstance(head, Symbol):
        handler = _FORMS.get(head.name)
        if handler is not None:
            return handler(expr)
        if head.name in PRIMITIVE_NAMES:
            return Node(
                "Op",
                (Const(head.name), PList(tuple(from_sexpr(a) for a in expr[1:]))),
            )
    return _application(expr)


def _application(expr: List[SExpr]) -> Pattern:
    if len(expr) < 2:
        raise ParseError(f"application needs an argument: {expr!r}")
    out = from_sexpr(expr[0])
    for arg in expr[1:]:
        out = Node("App", (out, from_sexpr(arg)))
    return out


def _want(expr, n, form):
    if len(expr) != n:
        raise ParseError(f"({form} ...): expected {n - 1} part(s), got {len(expr) - 1}")


def _name_of(part, form) -> str:
    if not isinstance(part, Symbol):
        raise ParseError(f"({form} ...): expected an identifier, got {part!r}")
    return part.name


def _parse_lambda(expr):
    _want(expr, 3, "lambda")
    params = expr[1]
    if not isinstance(params, list) or len(params) != 1:
        raise ParseError(
            "(lambda ...): the core has single-argument functions only; "
            "use (function (x y ...) body) for the multi-argument sugar"
        )
    return Node(
        "Lam", (Const(_name_of(params[0], "lambda")), from_sexpr(expr[2]))
    )


def _parse_function(expr):
    _want(expr, 3, "function")
    params = expr[1]
    if not isinstance(params, list):
        raise ParseError("(function ...): expected a parameter list")
    names = PList(tuple(Const(_name_of(p, "function")) for p in params))
    return Node("Fun", (names, from_sexpr(expr[2])))


def _parse_if(expr):
    _want(expr, 4, "if")
    return Node("If", tuple(from_sexpr(e) for e in expr[1:]))


def _parse_when(expr):
    _want(expr, 3, "when")
    return Node("When", (from_sexpr(expr[1]), from_sexpr(expr[2])))


def _parse_begin(expr):
    if len(expr) < 2:
        raise ParseError("(begin ...): needs at least one expression")
    return Node("Seq", (PList(tuple(from_sexpr(e) for e in expr[1:])),))


def _parse_set(expr):
    _want(expr, 3, "set!")
    return Node("Set", (Const(_name_of(expr[1], "set!")), from_sexpr(expr[2])))


def _parse_amb(expr):
    if len(expr) < 2:
        raise ParseError("(amb ...): needs at least one choice")
    return Node("Amb", (PList(tuple(from_sexpr(e) for e in expr[1:])),))


def _parse_bindings(parts, form):
    if not isinstance(parts, list):
        raise ParseError(f"({form} ...): expected a binding list")
    bindings = []
    for part in parts:
        if not isinstance(part, list) or len(part) != 2:
            raise ParseError(f"({form} ...): bindings have the form (name expr)")
        bindings.append(
            Node("Binding", (Const(_name_of(part[0], form)), from_sexpr(part[1])))
        )
    return PList(tuple(bindings))


def _parse_let(expr):
    _want(expr, 3, "let")
    return Node("Let", (_parse_bindings(expr[1], "let"), from_sexpr(expr[2])))


def _parse_letrec(expr):
    _want(expr, 3, "letrec")
    return Node("Letrec", (_parse_bindings(expr[1], "letrec"), from_sexpr(expr[2])))


def _parse_and(expr):
    return Node("And", (PList(tuple(from_sexpr(e) for e in expr[1:])),))


def _parse_or(expr):
    return Node("Or", (PList(tuple(from_sexpr(e) for e in expr[1:])),))


def _parse_cond(expr):
    clauses = []
    for part in expr[1:]:
        if not isinstance(part, list) or len(part) != 2:
            raise ParseError("(cond ...): clauses have the form (test expr)")
        if isinstance(part[0], Symbol) and part[0].name == "else":
            clauses.append(Node("Else", (from_sexpr(part[1]),)))
        else:
            clauses.append(
                Node("Clause", (from_sexpr(part[0]), from_sexpr(part[1])))
            )
    return Node("Cond", (PList(tuple(clauses)),))


def _parse_thunk(expr):
    _want(expr, 2, "thunk")
    return Node("Thunk", (from_sexpr(expr[1]),))


def _parse_force(expr):
    _want(expr, 2, "force")
    return Node("Force", (from_sexpr(expr[1]),))


def _parse_return(expr):
    _want(expr, 2, "return")
    return Node("Return", (from_sexpr(expr[1]),))


def _parse_list(expr):
    return Node("ListE", (PList(tuple(from_sexpr(e) for e in expr[1:])),))


def _parse_while(expr):
    if len(expr) < 3:
        raise ParseError("(while cond body ...): needs a body")
    body = (
        from_sexpr(expr[2])
        if len(expr) == 3
        else Node("Seq", (PList(tuple(from_sexpr(e) for e in expr[2:])),))
    )
    return Node("While", (from_sexpr(expr[1]), body))


def _parse_apply(expr):
    if len(expr) < 3:
        raise ParseError("(apply f arg ...): needs a function and arguments")
    return _application(expr[1:])


def _parse_automaton(expr):
    if len(expr) < 3:
        raise ParseError("(automaton init state ...): needs states")
    init = Const(_name_of(expr[1], "automaton"))
    states = []
    for part in expr[2:]:
        if (
            not isinstance(part, list)
            or len(part) < 3
            or not isinstance(part[1], Symbol)
            or part[1].name != ":"
        ):
            raise ParseError(
                "(automaton ...): states have the form (name : arm ...)"
            )
        name = Const(_name_of(part[0], "automaton"))
        arms = []
        for arm in part[2:]:
            if arm == "accept" or (
                isinstance(arm, Symbol) and arm.name == "accept"
            ):
                arms.append(Node("Accept", ()))
            elif (
                isinstance(arm, list)
                and len(arm) == 3
                and isinstance(arm[1], Symbol)
                and arm[1].name == "->"
            ):
                if not isinstance(arm[0], str):
                    raise ParseError(
                        "(automaton ...): arm labels are strings"
                    )
                arms.append(
                    Node(
                        "Arm",
                        (Const(arm[0]), Const(_name_of(arm[2], "automaton"))),
                    )
                )
            else:
                raise ParseError(
                    f"(automaton ...): bad arm {arm!r}; expected "
                    f'("label" -> state) or "accept"'
                )
        states.append(Node("State", (name, PList(tuple(arms)))))
    return Node("Automaton", (init, PList(tuple(states))))


_FORMS = {
    "lambda": _parse_lambda,
    "function": _parse_function,
    "if": _parse_if,
    "when": _parse_when,
    "begin": _parse_begin,
    "set!": _parse_set,
    "amb": _parse_amb,
    "let": _parse_let,
    "letrec": _parse_letrec,
    "and": _parse_and,
    "or": _parse_or,
    "cond": _parse_cond,
    "thunk": _parse_thunk,
    "force": _parse_force,
    "return": _parse_return,
    "while": _parse_while,
    "list": _parse_list,
    "apply": _parse_apply,
    "automaton": _parse_automaton,
}


# --- t -> s -----------------------------------------------------------

def to_sexpr(term: Pattern) -> SExpr:
    """Convert a tag-free term back to an s-expression."""
    if isinstance(term, Const):
        if isinstance(term.value, Symbol):
            return term.value
        return term.value
    if isinstance(term, PList):
        return [to_sexpr(t) for t in term.items]
    if not isinstance(term, Node):
        raise ParseError(f"cannot render {term!r} as an s-expression")

    label = term.label
    printer = _PRINTERS.get(label)
    if printer is not None:
        return printer(term)
    # Generic fallback: (label child ...).
    return [Symbol(label.lower()), *(to_sexpr(c) for c in term.children)]


def _const_str(t: Pattern) -> str:
    assert isinstance(t, Const) and isinstance(t.value, str)
    return t.value


def _list_items(t: Pattern):
    assert isinstance(t, PList)
    return t.items


def _print_id(t):
    return Symbol(_const_str(t.children[0]))


def _print_lam(t):
    return [Symbol("lambda"), [Symbol(_const_str(t.children[0]))],
            to_sexpr(t.children[1])]


def _print_app(t):
    # Flatten curried applications for readability.
    parts = [t.children[1]]
    fn = t.children[0]
    while isinstance(fn, Node) and fn.label == "App":
        parts.append(fn.children[1])
        fn = fn.children[0]
    parts.append(fn)
    return [to_sexpr(p) for p in reversed(parts)]


def _print_if(t):
    return [Symbol("if"), *(to_sexpr(c) for c in t.children)]


def _print_seq(t):
    return [Symbol("begin"), *(to_sexpr(c) for c in _list_items(t.children[0]))]


def _print_set(t):
    return [Symbol("set!"), Symbol(_const_str(t.children[0])),
            to_sexpr(t.children[1])]


def _print_setloc(t):
    return [Symbol("set-loc!"), to_sexpr(t.children[0]), to_sexpr(t.children[1])]


def _print_deref(t):
    return [Symbol("deref"), to_sexpr(t.children[0])]


def _print_loc(t):
    return Symbol(f"@{t.children[0].value}")


def _print_pair(t):
    # Print proper list chains as (list 1 2 3); improper pairs as
    # (cons a b).
    items = []
    cursor = t
    while isinstance(cursor, Node) and cursor.label == "Pair":
        items.append(to_sexpr(cursor.children[0]))
        nxt = cursor.children[1]
        while isinstance(nxt, Tagged):
            nxt = nxt.term
        cursor = nxt
    if isinstance(cursor, Node) and cursor.label == "Nil":
        return [Symbol("list"), *items]
    return [Symbol("cons"), to_sexpr(t.children[0]), to_sexpr(t.children[1])]


def _print_nil(t):
    return Symbol("nil")


def _print_liste(t):
    return [Symbol("list"), *(to_sexpr(c) for c in t.children[0].items)]


def _print_cell(t):
    # A named cell displays as the bare variable name: the running term
    # keeps identifiers visible, which is what lets Figure 4's trace
    # read (more "adr") rather than a resolved closure.
    return Symbol(_const_str(t.children[0]))


def _print_op(t):
    return [Symbol(_const_str(t.children[0])),
            *(to_sexpr(c) for c in _list_items(t.children[1]))]


def _print_amb(t):
    return [Symbol("amb"), *(to_sexpr(c) for c in _list_items(t.children[0]))]


def _print_bindings(t):
    out = []
    for b in _list_items(t):
        assert isinstance(b, Node) and b.label == "Binding"
        out.append([Symbol(_const_str(b.children[0])), to_sexpr(b.children[1])])
    return out


def _print_let(t):
    return [Symbol("let"), _print_bindings(t.children[0]), to_sexpr(t.children[1])]


def _print_letrec(t):
    return [Symbol("letrec"), _print_bindings(t.children[0]),
            to_sexpr(t.children[1])]


def _print_fun(t):
    params = [Symbol(_const_str(p)) for p in _list_items(t.children[0])]
    return [Symbol("function"), params, to_sexpr(t.children[1])]


def _print_and(t):
    return [Symbol("and"), *(to_sexpr(c) for c in _list_items(t.children[0]))]


def _print_or(t):
    return [Symbol("or"), *(to_sexpr(c) for c in _list_items(t.children[0]))]


def _print_cond(t):
    out = [Symbol("cond")]
    for c in _list_items(t.children[0]):
        assert isinstance(c, Node)
        if c.label == "Else":
            out.append([Symbol("else"), to_sexpr(c.children[0])])
        else:
            out.append([to_sexpr(c.children[0]), to_sexpr(c.children[1])])
    return out


def _print_when(t):
    return [Symbol("when"), to_sexpr(t.children[0]), to_sexpr(t.children[1])]


def _print_while(t):
    return [Symbol("while"), to_sexpr(t.children[0]), to_sexpr(t.children[1])]


def _print_unary(name):
    return lambda t: [Symbol(name), to_sexpr(t.children[0])]


def _print_unit(t):
    return Symbol("<void>")


def _print_undefined(t):
    return Symbol("<undefined>")


def _print_callcc(t):
    return Symbol("call/cc")


def _print_cont(t):
    return Symbol("<cont>")


def _print_hole(t):
    return Symbol("<hole>")


def _print_automaton(t):
    out = [Symbol("automaton"), Symbol(_const_str(t.children[0]))]
    for state in _list_items(t.children[1]):
        assert isinstance(state, Node) and state.label == "State"
        parts = [Symbol(_const_str(state.children[0])), Symbol(":")]
        for arm in _list_items(state.children[1]):
            assert isinstance(arm, Node)
            if arm.label == "Accept":
                parts.append("accept")
            else:
                parts.append(
                    [
                        arm.children[0].value,
                        Symbol("->"),
                        Symbol(_const_str(arm.children[1])),
                    ]
                )
        out.append(parts)
    return out


_PRINTERS = {
    "Id": _print_id,
    "Lam": _print_lam,
    "App": _print_app,
    "If": _print_if,
    "Seq": _print_seq,
    "Set": _print_set,
    "SetLoc": _print_setloc,
    "Deref": _print_deref,
    "Loc": _print_loc,
    "Cell": _print_cell,
    "Pair": _print_pair,
    "Nil": _print_nil,
    "ListE": _print_liste,
    "Op": _print_op,
    "Amb": _print_amb,
    "Let": _print_let,
    "Letrec": _print_letrec,
    "Fun": _print_fun,
    "And": _print_and,
    "Or": _print_or,
    "Cond": _print_cond,
    "When": _print_when,
    "While": _print_while,
    "Thunk": _print_unary("thunk"),
    "Force": _print_unary("force"),
    "Return": _print_unary("return"),
    "Unit": _print_unit,
    "Undefined": _print_undefined,
    "CallCC": _print_callcc,
    "Cont": _print_cont,
    "Hole": _print_hole,
    "Automaton": _print_automaton,
}
