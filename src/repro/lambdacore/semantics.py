"""The reduction semantics of the stateful lambda core (section 8.1).

Built on :mod:`repro.redex`, exactly as the paper built its language in
PLT Redex.  Values are numbers, strings, booleans, unit, undefined,
single-argument functions, ``call/cc``, captured continuations, store
locations, and *named cells*; the reduction rules are call-by-value beta
(with cell allocation for assigned parameters), conditionals over
booleans, sequencing, store reads/writes, primitive delta rules,
nondeterministic ``amb``, and the two context-sensitive control rules
for ``call/cc``.

Mutation design.  A parameter that is ``set!`` somewhere in its body
cannot be substituted by value.  At application time it is allocated a
*named cell*: references become ``Cell("x")`` (a value, displayed as the
bare identifier ``x``) and assignments become ``SetCell("x", e)``.
Cells resolve lazily, one visible step at a time, in elimination
positions (function of an application, argument of an application,
condition of an ``if``, arguments of a primitive) — and ``SetCell``
stores its right-hand side *without* resolving it, so
``(letrec ((x y) (y 2)) (+ x y))`` evaluates to 4 with the surface steps
``(+ x y) -> (+ 2 2) -> 4``, exactly the behaviour section 8.1 reports.
Keeping the variable's name in the running term is also what makes the
Figure 4 automaton trace show ``(apply more "adr")``: the name is a
value until application forces it, and the closure it resolves to is
opaque sugar-constructed code, so resolved states are skipped.
"""

from __future__ import annotations

from types import MappingProxyType

from repro.core.errors import StuckError
from repro.core.terms import (
    Const,
    Node,
    Pattern,
    PList,
    PVar,
    Tagged,
    strip_tags,
)
from repro.lambdacore.ast import HOLE
from repro.lambdacore.prims import apply_primitive
from repro.lambdacore.substitute import (
    is_assigned,
    substitute,
    substitute_assigned,
)
from repro.redex import (
    AtomPred,
    EvalStrategy,
    Grammar,
    NTRef,
    RedexStepper,
    ReductionRule,
    ReductionSemantics,
)

__all__ = ["make_semantics", "make_stepper", "plug_hole", "alloc"]


def _grammar() -> Grammar:
    g = Grammar()
    g.define(
        "v",
        AtomPred("number"),
        AtomPred("string"),
        AtomPred("boolean"),
        Node("Unit", ()),
        Node("Undefined", ()),
        Node("Lam", (AtomPred("string"), PVar("_body"))),
        Node("CallCC", ()),
        Node("Cont", (PVar("_k"),)),
        Node("Loc", (AtomPred("integer"),)),
        Node("Cell", (AtomPred("string"),)),
        Node("Pair", (NTRef("v"), NTRef("v"))),
        Node("Nil", ()),
    )
    g.define(
        "e",
        NTRef("v"),
        Node("Id", (AtomPred("string"),)),
        Node("App", (NTRef("e"), NTRef("e"))),
        Node("If", (NTRef("e"), NTRef("e"), NTRef("e"))),
        Node("Seq", (PList((), NTRef("e")),)),
        Node("Set", (AtomPred("string"), NTRef("e"))),
        Node("SetLoc", (NTRef("e"), NTRef("e"))),
        Node("Deref", (NTRef("e"),)),
        Node("Op", (AtomPred("string"), PList((), NTRef("e")))),
        Node("Amb", (PList((), NTRef("e")),)),
        Node("SetCell", (AtomPred("string"), NTRef("e"))),
    )
    return g


def _strategy() -> EvalStrategy:
    return (
        EvalStrategy()
        .congruence("App", 0, 1)
        .congruence("If", 0)
        .congruence("Seq", ("nth", 0, 0, 2))
        .congruence("Set", 1)
        .congruence("SetLoc", 1)
        .congruence("SetCell", 1)
        .congruence("Deref", 0)
        .congruence("Op", ("list", 1))
        .congruence("Amb")  # immediate redex: choices stay unevaluated
    )


def alloc(store, value: Pattern):
    """Allocate a fresh store location holding ``value``."""
    n = max(store.keys(), default=-1) + 1
    updated = dict(store)
    updated[n] = value
    return n, MappingProxyType(updated)


def plug_hole(context: Pattern, value: Pattern) -> Pattern:
    """Replace the hole in a captured continuation with ``value``."""
    if isinstance(context, Node):
        if context.label == "Hole" and not context.children:
            return value
        return Node(
            context.label, tuple(plug_hole(c, value) for c in context.children)
        )
    if isinstance(context, PList):
        ell = (
            plug_hole(context.ellipsis, value)
            if context.ellipsis is not None
            else None
        )
        return PList(tuple(plug_hole(c, value) for c in context.items), ell)
    if isinstance(context, Tagged):
        return Tagged(context.tag, plug_hole(context.term, value))
    return context


def _fresh_cell_name(store, base: str) -> str:
    name = base
    while name in store:
        name += "'"
    return name


def _beta(env, store):
    param = env["x"].value
    body = env["body"]
    arg = env["arg"]
    if is_assigned(body, param):
        cell_name = _fresh_cell_name(store, param)
        updated = dict(store)
        updated[cell_name] = arg
        return (
            substitute_assigned(body, param, cell_name),
            MappingProxyType(updated),
        )
    return substitute(body, param, arg)


def _cell_name(t: Pattern):
    """The cell's name when ``t`` is (a tagged) ``Cell``, else None."""
    while isinstance(t, Tagged):
        t = t.term
    if isinstance(t, Node) and t.label == "Cell" and len(t.children) == 1:
        name = t.children[0]
        while isinstance(name, Tagged):
            name = name.term
        if isinstance(name, Const) and isinstance(name.value, str):
            return name.value
    return None


def resolve_cell(store, term: Pattern) -> Pattern:
    """Follow a chain of cells to a non-cell value (one visible step
    resolves the whole chain, so ``(+ x y)`` goes straight to
    ``(+ 2 2)``)."""
    seen = set()
    while True:
        name = _cell_name(term)
        if name is None:
            return term
        if name in seen:
            raise StuckError(f"cyclic cell chain through {name!r}")
        seen.add(name)
        try:
            term = store[name]
        except KeyError:
            raise StuckError(f"unbound variable {name!r}") from None


def _resolve_app_fn(env, store):
    cell = Node("Cell", (env["cn"],))
    return Node("App", (resolve_cell(store, cell), env["rest"]))


def _resolve_if(env, store):
    cell = Node("Cell", (env["cn"],))
    return Node("If", (resolve_cell(store, cell), env["t"], env["e"]))


def _resolve_id(env, store):
    cell = Node("Cell", (env["cn"],))
    return resolve_cell(store, cell)


def _setcell(env, store):
    updated = dict(store)
    updated[env["name"].value] = env["val"]
    return (Node("Unit", ()), MappingProxyType(updated))


def _callcc(env, store, plug):
    continuation = Node("Cont", (plug(HOLE),))
    return plug(Node("App", (env["f"], continuation)))


def _invoke_cont(env, store, plug):
    return plug_hole(env["k"], env["arg"])


def _setloc(env, store):
    n = env["n"].value
    updated = dict(store)
    updated[n] = env["val"]
    return (Node("Unit", ()), MappingProxyType(updated))


def _deref(env, store):
    n = env["n"].value
    try:
        return store[n]
    except KeyError:
        raise StuckError(f"dereference of unallocated location {n}") from None


def _delta(env, store):
    args_term = env["args"]
    while isinstance(args_term, Tagged):
        args_term = args_term.term
    if not isinstance(args_term, PList):
        raise StuckError("primitive applied to a non-list argument vector")
    if any(_cell_name(a) is not None for a in args_term.items):
        # Resolve every cell argument in one visible step, so that
        # (+ x y) steps to (+ 2 2) before computing 4.
        resolved = tuple(resolve_cell(store, a) for a in args_term.items)
        return Node("Op", (env["op"], PList(resolved)))
    return apply_primitive(env["op"].value, list(args_term.items))


def _amb(env, store):
    choices = env["choices"]
    while isinstance(choices, Tagged):
        choices = choices.term
    if not isinstance(choices, PList) or not choices.items:
        raise StuckError("amb: needs at least one choice")
    return list(choices.items)


def _rules():
    v = NTRef("v", "arg")
    return [
        ReductionRule(
            "id-call/cc",
            Node("Id", (Const("call/cc"),)),
            Node("CallCC", ()),
        ),
        ReductionRule(
            # A free identifier in evaluation position resolves through
            # the named store (global cells created by set! on a free
            # variable; see the Return sugar).  Unbound names are stuck.
            "id-resolve",
            Node("Id", (AtomPred("string", "cn"),)),
            _resolve_id,
        ),
        ReductionRule(
            "app-resolve-fn",
            Node(
                "App",
                (Node("Cell", (AtomPred("string", "cn"),)), PVar("rest")),
            ),
            _resolve_app_fn,
        ),
        ReductionRule(
            "beta",
            Node(
                "App",
                (
                    Node("Lam", (AtomPred("string", "x"), PVar("body"))),
                    v,
                ),
            ),
            _beta,
        ),
        ReductionRule(
            "call/cc",
            Node("App", (Node("CallCC", ()), NTRef("v", "f"))),
            _callcc,
            control=True,
        ),
        ReductionRule(
            "invoke-continuation",
            Node("App", (Node("Cont", (PVar("k"),)), v)),
            _invoke_cont,
            control=True,
        ),
        ReductionRule(
            "if-resolve",
            Node(
                "If",
                (
                    Node("Cell", (AtomPred("string", "cn"),)),
                    PVar("t"),
                    PVar("e"),
                ),
            ),
            _resolve_if,
        ),
        ReductionRule(
            "if-true",
            Node("If", (Const(True), PVar("t"), PVar("e"))),
            PVar("t"),
        ),
        ReductionRule(
            "if-false",
            Node("If", (Const(False), PVar("t"), PVar("e"))),
            PVar("e"),
        ),
        ReductionRule(
            # (begin e) is e, evaluated in tail position -- the begin
            # disappears before e runs, as in Racket.
            "seq-done",
            Node("Seq", (PList((PVar("last"),)),)),
            PVar("last"),
        ),
        ReductionRule(
            "seq-step",
            Node("Seq", (PList((NTRef("v"), PVar("e2")), PVar("rest")),)),
            Node("Seq", (PList((PVar("e2"),), PVar("rest")),)),
            preserve_redex_tags=True,
        ),
        ReductionRule(
            # set! on a variable no binder claimed: a *global* named
            # cell.  (set! on an assigned local becomes SetCell during
            # beta, so any Set alive at run time is on a free name.)
            "set-free-variable",
            Node("Set", (AtomPred("string", "name"), NTRef("v", "val"))),
            _setcell,
        ),
        ReductionRule(
            "set-cell",
            Node(
                "SetCell",
                (AtomPred("string", "name"), NTRef("v", "val")),
            ),
            _setcell,
        ),
        ReductionRule(
            "set-loc",
            Node(
                "SetLoc",
                (Node("Loc", (AtomPred("integer", "n"),)), NTRef("v", "val")),
            ),
            _setloc,
        ),
        ReductionRule(
            "deref",
            Node("Deref", (Node("Loc", (AtomPred("integer", "n"),)),)),
            _deref,
        ),
        ReductionRule(
            "delta",
            Node("Op", (AtomPred("string", "op"), PVar("args"))),
            _delta,
        ),
        ReductionRule(
            "amb",
            Node("Amb", (PVar("choices"),)),
            _amb,
        ),
    ]


class LambdaSemantics(ReductionSemantics):
    """The lambda-core semantics, with two end-of-program refinements:

    * a whole program that has evaluated to a bare cell takes one last
      step resolving it (the value of a mutable variable, not its name,
      is the answer);
    * a whole program that has evaluated to a *tagged* value takes one
      last step shedding the tags — a sugar-constructed constant (e.g.
      ``Or([]) -> false``) is still the value ``false``, and the lifted
      trace should end with it.
    """

    def step(self, state):
        successors = super().step(state)
        if successors:
            return successors
        if _cell_name(state.term) is not None:
            resolved = resolve_cell(state.store, state.term)
            return [state.__class__(resolved, state.store)]
        if isinstance(state.term, Tagged):
            stripped = strip_tags(state.term)
            if self.is_value(stripped) and stripped != state.term:
                return [state.__class__(stripped, state.store)]
        return []


def make_semantics() -> ReductionSemantics:
    """Build the lambda-core reduction semantics (a fresh instance)."""
    return LambdaSemantics(
        _grammar(), _strategy(), _rules(), name="lambdacore"
    )


def make_stepper(on_stuck: str = "halt") -> RedexStepper:
    """A :class:`~repro.core.lift.Stepper` for the lambda core."""
    return RedexStepper(make_semantics(), on_stuck=on_stuck)
