"""Capture-avoiding-enough substitution for the lambda core.

Evaluation is substitution-based (that is what makes every machine state
a *term* the resugarer can process).  Because the language is
call-by-value and programs are closed, every substituted value is closed
— except captured continuations, which are also closed — so plain
shadow-respecting substitution suffices; no alpha-renaming is needed.

Origin discipline: a variable *reference* that gets replaced disappears,
taking its tags with it (the value that replaces it keeps its own tags);
all other structure is rebuilt with tags preserved (Definition 4).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.terms import Const, Node, Pattern, PList, Tagged

__all__ = ["substitute", "substitute_boxed", "substitute_assigned", "is_assigned"]


def _bare(t: Pattern) -> Pattern:
    while isinstance(t, Tagged):
        t = t.term
    return t


def _param_of(lam_node: Node) -> Optional[str]:
    bare = _bare(lam_node.children[0])
    if isinstance(bare, Const) and isinstance(bare.value, str):
        return bare.value
    return None


def _target_name(node: Node) -> Optional[str]:
    bare = _bare(node.children[0])
    if isinstance(bare, Const) and isinstance(bare.value, str):
        return bare.value
    return None


def substitute(term: Pattern, name: str, value: Pattern) -> Pattern:
    """Replace free references ``Id(name)`` in ``term`` by ``value``."""
    return _walk(
        term,
        name,
        on_ref=lambda: value,
        on_set=None,
    )


def substitute_boxed(term: Pattern, name: str, location: Pattern) -> Pattern:
    """Box an assigned variable: references become ``Deref(location)``
    and assignments become ``SetLoc(location, e)``."""
    return _walk(
        term,
        name,
        on_ref=lambda: Node("Deref", (location,)),
        on_set=lambda rhs: Node("SetLoc", (location, rhs)),
    )


def substitute_assigned(term: Pattern, name: str, cell_name: str) -> Pattern:
    """Rewrite an assigned variable to a named cell: references become
    ``Cell(cell_name)`` and assignments ``SetCell(cell_name, e)``.

    Named cells are how assigned variables keep their *names* in the
    running term (cells display as the bare identifier), which is what
    lets lifted traces show ``(apply more "adr")`` rather than a resolved
    closure — the effect the paper achieves in Figure 4.
    """
    return _walk(
        term,
        name,
        on_ref=lambda: Node("Cell", (Const(cell_name),)),
        on_set=lambda rhs: Node("SetCell", (Const(cell_name), rhs)),
    )


def _walk(
    term: Pattern,
    name: str,
    on_ref: Callable[[], Pattern],
    on_set: Optional[Callable[[Pattern], Pattern]],
) -> Pattern:
    if isinstance(term, Tagged):
        bare = _bare(term)
        if _is_ref(bare, name):
            # The reference node is consumed; its tags go with it.
            return on_ref()
        return Tagged(term.tag, _walk(term.term, name, on_ref, on_set))

    if isinstance(term, Node):
        if _is_ref(term, name):
            return on_ref()
        if term.label == "Set" and _target_name(term) == name:
            rhs = _walk(term.children[1], name, on_ref, on_set)
            if on_set is None:
                # A Set on a variable we substitute by value: the static
                # boxing analysis should have prevented this.
                raise AssertionError(
                    f"substituting by value into assignment of {name!r}"
                )
            return on_set(rhs)
        if term.label == "Lam" and _param_of(term) == name:
            return term  # shadowed
        return Node(
            term.label,
            tuple(_walk(c, name, on_ref, on_set) for c in term.children),
        )

    if isinstance(term, PList):
        return PList(tuple(_walk(c, name, on_ref, on_set) for c in term.items))

    return term


def _is_ref(bare: Pattern, name: str) -> bool:
    return (
        isinstance(bare, Node)
        and bare.label == "Id"
        and len(bare.children) == 1
        and _bare(bare.children[0]) == Const(name)
    )


def is_assigned(term: Pattern, name: str) -> bool:
    """Does ``term`` contain a ``Set`` of ``name`` outside any shadowing
    binder?  Decides whether a parameter must be boxed at application."""
    bare = _bare(term)
    if isinstance(bare, Node):
        if bare.label == "Set" and _target_name(bare) == name:
            return True
        if bare.label == "Lam" and _param_of(bare) == name:
            return False
        return any(is_assigned(c, name) for c in bare.children)
    if isinstance(bare, PList):
        return any(is_assigned(c, name) for c in bare.items)
    return False
