"""Primitive operations (delta rules) for the lambda core language.

Arithmetic and comparison over numbers, boolean negation, and the string
operations the Automaton macro needs to process its input stream
(``first``, ``rest``, ``empty?``).
"""

from __future__ import annotations

from numbers import Number
from typing import Callable, Dict, List

from repro.core.errors import StuckError
from repro.core.terms import Const, Node, Pattern, Tagged

__all__ = ["apply_primitive", "PRIMITIVE_NAMES"]


def _bare(t: Pattern) -> Pattern:
    while isinstance(t, Tagged):
        t = t.term
    return t


def _number(name: str, t: Pattern):
    bare = _bare(t)
    if isinstance(bare, Const) and isinstance(bare.value, Number) \
            and not isinstance(bare.value, bool):
        return bare.value
    raise StuckError(f"{name}: expected a number, got {bare}")


def _string(name: str, t: Pattern) -> str:
    bare = _bare(t)
    if isinstance(bare, Const) and isinstance(bare.value, str):
        return bare.value
    raise StuckError(f"{name}: expected a string, got {bare}")


def _boolean(name: str, t: Pattern) -> bool:
    bare = _bare(t)
    if isinstance(bare, Const) and isinstance(bare.value, bool):
        return bare.value
    raise StuckError(f"{name}: expected a boolean, got {bare}")


def _arity(name: str, args: List[Pattern], n: int) -> None:
    if len(args) != n:
        raise StuckError(f"{name}: expected {n} argument(s), got {len(args)}")


def _numeric_fold(fn, unit=None):
    def run(name: str, args: List[Pattern]) -> Const:
        if not args:
            if unit is None:
                raise StuckError(f"{name}: expected >= 1 argument")
            return Const(unit)
        acc = _number(name, args[0])
        for a in args[1:]:
            acc = fn(acc, _number(name, a))
        return Const(acc)

    return run


def _comparison(fn):
    def run(name: str, args: List[Pattern]) -> Const:
        _arity(name, args, 2)
        return Const(bool(fn(_number(name, args[0]), _number(name, args[1]))))

    return run


def _equal(name: str, args: List[Pattern]) -> Const:
    _arity(name, args, 2)
    from repro.core.terms import strip_tags

    return Const(strip_tags(args[0]) == strip_tags(args[1]))


def _not(name: str, args: List[Pattern]) -> Const:
    _arity(name, args, 1)
    return Const(not _boolean(name, args[0]))


def _zero(name: str, args: List[Pattern]) -> Const:
    _arity(name, args, 1)
    return Const(_number(name, args[0]) == 0)


def _divide(name: str, args: List[Pattern]) -> Const:
    _arity(name, args, 2)
    denominator = _number(name, args[1])
    if denominator == 0:
        raise StuckError("/: division by zero")
    return Const(_number(name, args[0]) / denominator)


def _first(name: str, args: List[Pattern]) -> Const:
    _arity(name, args, 1)
    s = _string(name, args[0])
    if not s:
        raise StuckError("first: empty string")
    return Const(s[0])


def _rest(name: str, args: List[Pattern]) -> Const:
    _arity(name, args, 1)
    s = _string(name, args[0])
    if not s:
        raise StuckError("rest: empty string")
    return Const(s[1:])


def _empty(name: str, args: List[Pattern]) -> Const:
    _arity(name, args, 1)
    return Const(_string(name, args[0]) == "")


def _string_append(name: str, args: List[Pattern]) -> Const:
    return Const("".join(_string(name, a) for a in args))


def _modulo(name: str, args: List[Pattern]) -> Const:
    _arity(name, args, 2)
    divisor = _number(name, args[1])
    if divisor == 0:
        raise StuckError("modulo: division by zero")
    return Const(_number(name, args[0]) % divisor)


def _abs(name: str, args: List[Pattern]) -> Const:
    _arity(name, args, 1)
    return Const(abs(_number(name, args[0])))


def _string_length(name: str, args: List[Pattern]) -> Const:
    _arity(name, args, 1)
    return Const(len(_string(name, args[0])))


def _nil(name: str, args: List[Pattern]) -> Node:
    _arity(name, args, 0)
    return Node("Nil", ())


def _cons(name: str, args: List[Pattern]) -> Node:
    _arity(name, args, 2)
    return Node("Pair", (args[0], args[1]))


def _pair_part(index: int):
    def run(name: str, args: List[Pattern]) -> Pattern:
        _arity(name, args, 1)
        bare = _bare(args[0])
        if isinstance(bare, Node) and bare.label == "Pair":
            return bare.children[index]
        raise StuckError(f"{name}: expected a pair, got {bare}")

    return run


def _null(name: str, args: List[Pattern]) -> Const:
    _arity(name, args, 1)
    bare = _bare(args[0])
    return Const(isinstance(bare, Node) and bare.label == "Nil")


def _pair_pred(name: str, args: List[Pattern]) -> Const:
    _arity(name, args, 1)
    bare = _bare(args[0])
    return Const(isinstance(bare, Node) and bare.label == "Pair")


def _heavy_work(name: str, args: List[Pattern]) -> Const:
    # A deliberately work-heavy primitive standing in for uninstrumented
    # runtime-library work in the section 7 overhead experiment.
    _arity(name, args, 1)
    return Const(sum(range(int(_number(name, args[0])))) % 97)


_TABLE: Dict[str, Callable[[str, List[Pattern]], Pattern]] = {
    "+": _numeric_fold(lambda a, b: a + b, unit=0),
    "-": _numeric_fold(lambda a, b: a - b),
    "*": _numeric_fold(lambda a, b: a * b, unit=1),
    "/": _divide,
    "<": _comparison(lambda a, b: a < b),
    ">": _comparison(lambda a, b: a > b),
    "<=": _comparison(lambda a, b: a <= b),
    ">=": _comparison(lambda a, b: a >= b),
    "=": _equal,
    "equal?": _equal,
    "not": _not,
    "zero?": _zero,
    "first": _first,
    "rest": _rest,
    "empty?": _empty,
    "string-append": _string_append,
    "min": _numeric_fold(min),
    "max": _numeric_fold(max),
    "abs": _abs,
    "modulo": _modulo,
    "string-length": _string_length,
    "nil": _nil,
    "cons": _cons,
    "car": _pair_part(0),
    "cdr": _pair_part(1),
    "null?": _null,
    "pair?": _pair_pred,
    "heavy-work": _heavy_work,
}

PRIMITIVE_NAMES = frozenset(_TABLE)


def apply_primitive(name: str, args: List[Pattern]) -> Pattern:
    """Apply primitive ``name`` to fully evaluated arguments."""
    try:
        fn = _TABLE[name]
    except KeyError:
        raise StuckError(f"unknown primitive operation {name!r}") from None
    return fn(name, args)
