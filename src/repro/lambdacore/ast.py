"""Term constructors for the stateful lambda core language (section 8.1).

The core contains exactly what the paper lists: single-argument
functions, application, if, mutation, sequencing, ``amb``, plus some
primitive values and operations — and ``call/cc`` (section 8.2).

Mutation is on variables (``set!``): at application time, a parameter
that is assigned anywhere in the function body is *boxed* — allocated a
store location, with references rewritten to ``Deref(Loc n)`` and
assignments to ``SetLoc(Loc n, e)``.  Unassigned parameters substitute
by value as usual, so immutable programs never see locations.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.terms import Const, Node, Pattern, PList

__all__ = [
    "lam", "app", "iff", "seq", "setvar", "setloc", "deref", "loc",
    "op", "amb", "idref", "unit", "undefined", "callcc_val", "cont",
    "HOLE", "num", "string", "boolean",
    # surface (sugar) constructors
    "let", "letrec", "binding", "fun", "and_", "or_", "cond", "clause",
    "else_clause", "thunk", "force", "ret",
]


# --- core forms ------------------------------------------------------

def lam(param: str, body: Pattern) -> Node:
    """A single-argument function ``Lam("x", body)``."""
    return Node("Lam", (Const(param), body))


def app(fn: Pattern, arg: Pattern) -> Node:
    return Node("App", (fn, arg))


def iff(cond_: Pattern, then: Pattern, els: Pattern) -> Node:
    return Node("If", (cond_, then, els))


def seq(*exprs: Pattern) -> Node:
    """Sequencing ``Seq([e1, ..., en])``; evaluates left to right and
    yields the last value."""
    return Node("Seq", (PList(tuple(exprs)),))


def setvar(name: str, expr: Pattern) -> Node:
    """``set!`` on a lambda-bound variable."""
    return Node("Set", (Const(name), expr))


def setloc(location: Pattern, expr: Pattern) -> Node:
    return Node("SetLoc", (location, expr))


def deref(location: Pattern) -> Node:
    return Node("Deref", (location,))


def loc(n: int) -> Node:
    return Node("Loc", (Const(n),))


def op(name: str, *args: Pattern) -> Node:
    """A primitive operation, e.g. ``op("+", num(1), num(2))``."""
    return Node("Op", (Const(name), PList(tuple(args))))


def amb(*choices: Pattern) -> Node:
    """Nondeterministic choice among unevaluated subexpressions."""
    return Node("Amb", (PList(tuple(choices)),))


def idref(name: str) -> Node:
    """A variable reference ``Id("x")``."""
    return Node("Id", (Const(name),))


def unit() -> Node:
    """The result of ``set!``/``SetLoc`` (Scheme's void)."""
    return Node("Unit", ())


def undefined() -> Node:
    """The pre-initialization value of ``letrec`` bindings."""
    return Node("Undefined", ())


def callcc_val() -> Node:
    """The ``call/cc`` primitive as a value."""
    return Node("CallCC", ())


def cont(context: Pattern) -> Node:
    """A captured continuation: the evaluation context with a hole."""
    return Node("Cont", (context,))


HOLE = Node("Hole", ())
"""The hole marking the focus position inside a captured continuation."""


def num(n) -> Const:
    return Const(n)


def string(s: str) -> Const:
    return Const(s)


def boolean(b: bool) -> Const:
    return Const(b)


# --- surface (sugar) forms -------------------------------------------

def binding(name: str, expr: Pattern) -> Node:
    return Node("Binding", (Const(name), expr))


def let(bindings: Iterable[Node], body: Pattern) -> Node:
    return Node("Let", (PList(tuple(bindings)), body))


def letrec(bindings: Iterable[Node], body: Pattern) -> Node:
    return Node("Letrec", (PList(tuple(bindings)), body))


def fun(params: Iterable[str], body: Pattern) -> Node:
    """Multi-argument function sugar (curried into single-arg Lams)."""
    return Node("Fun", (PList(tuple(Const(p) for p in params)), body))


def and_(*exprs: Pattern) -> Node:
    return Node("And", (PList(tuple(exprs)),))


def or_(*exprs: Pattern) -> Node:
    return Node("Or", (PList(tuple(exprs)),))


def clause(test: Pattern, result: Pattern) -> Node:
    return Node("Clause", (test, result))


def else_clause(result: Pattern) -> Node:
    return Node("Else", (result,))


def cond(*clauses: Pattern) -> Node:
    return Node("Cond", (PList(tuple(clauses)),))


def thunk(expr: Pattern) -> Node:
    return Node("Thunk", (expr,))


def force(expr: Pattern) -> Node:
    return Node("Force", (expr,))


def ret(expr: Pattern) -> Node:
    """Early return (section 8.2), defined via call/cc."""
    return Node("Return", (expr,))
