"""Obtaining core-language steppers from black-box evaluators (section 7).

The reduction-semantics languages in this repository are steppers
natively, but the paper's point is that *any* evaluator can be turned
into one: instrument it with a shadow stack of A-normal frames, pause at
every step, and reconstruct the current continuation as source.  This
package demonstrates the technique on a plain big-step interpreter and
measures its cost — the reproduction of the paper's "5-40% overhead"
performance note.
"""

from repro.stepper.anf import anf, is_anf, is_trivial
from repro.stepper.bigstep import Closure, evaluate
from repro.stepper.instrument import (
    Frame,
    InstrumentedEvaluator,
    OverheadReport,
    ShadowStack,
    measure_overhead,
)

__all__ = [
    "anf",
    "is_anf",
    "is_trivial",
    "evaluate",
    "Closure",
    "InstrumentedEvaluator",
    "ShadowStack",
    "Frame",
    "measure_overhead",
    "OverheadReport",
]
