"""A big-step (environment-based) evaluator for the lambda core.

Section 7 of the paper starts from the observation that "typical
evaluators" do not produce term-per-step traces: they are recursive
interpreters or compiled code.  This module is our stand-in for such a
production evaluator — a plain, fast, environment-passing big-step
interpreter over the pure subset of the lambda core (no tags, no amb).
:mod:`repro.stepper.instrument` then shows how the paper's techniques
(a shadow stack of A-normal frames, pausing at each step) recover a
stepper from it, and at what cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.core.errors import StuckError
from repro.core.terms import Const, Node, Pattern, Tagged

__all__ = ["Closure", "evaluate", "Value"]


@dataclass(frozen=True)
class Closure:
    """A function value: parameter, body, captured environment."""

    param: str
    body: Pattern
    env: "Env"

    def __repr__(self) -> str:
        return f"<closure {self.param}>"


Value = object  # int | float | str | bool | Closure
Env = Tuple  # persistent assoc list: (name, value, rest) or ()

_PRIM_TABLE: Dict[str, Callable] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
    "=": lambda a, b: a == b,
    "equal?": lambda a, b: a == b,
    "zero?": lambda a: a == 0,
    "not": lambda a: not a,
    "first": lambda s: s[0],
    "rest": lambda s: s[1:],
    "empty?": lambda s: s == "",
    # A deliberately work-heavy primitive standing in for uninstrumented
    # runtime-library work (the paper's overhead "depends on ... the
    # relative mix of instrumented and uninstrumented calls").
    "heavy-work": lambda n: sum(range(int(n))) % 97,
}


def _lookup(env: Env, name: str):
    while env:
        if env[0] == name:
            return env[1]
        env = env[2]
    raise StuckError(f"unbound variable {name!r}")


def _bare(t: Pattern) -> Pattern:
    while isinstance(t, Tagged):
        t = t.term
    return t


def evaluate(
    term: Pattern,
    env: Env = (),
    hook: Optional[Callable[[], None]] = None,
) -> Value:
    """Evaluate a pure lambda-core term to a Python value.

    ``hook``, when given, is invoked once per evaluation step (each
    recursive visit) — the "pause at every evaluation step" of
    section 7, reduced to its cost skeleton so instrumentation overhead
    can be measured against the uninstrumented evaluator.
    """
    if hook is not None:
        hook()
    t = _bare(term)
    if isinstance(t, Const):
        return t.value
    if not isinstance(t, Node):
        raise StuckError(f"cannot evaluate {t!r}")
    label = t.label
    if label == "Id":
        return _lookup(env, _bare(t.children[0]).value)
    if label == "Lam":
        return Closure(_bare(t.children[0]).value, t.children[1], env)
    if label == "App":
        fn = evaluate(t.children[0], env, hook)
        arg = evaluate(t.children[1], env, hook)
        if not isinstance(fn, Closure):
            raise StuckError(f"cannot apply {fn!r}")
        return evaluate(fn.body, (fn.param, arg, fn.env), hook)
    if label == "If":
        cond = evaluate(t.children[0], env, hook)
        if cond is True:
            return evaluate(t.children[1], env, hook)
        if cond is False:
            return evaluate(t.children[2], env, hook)
        raise StuckError(f"if: not a boolean: {cond!r}")
    if label == "Seq":
        body = _bare(t.children[0])
        result = None
        for expr in body.items:
            result = evaluate(expr, env, hook)
        return result
    if label == "Op":
        name = _bare(t.children[0]).value
        args = [
            evaluate(a, env, hook) for a in _bare(t.children[1]).items
        ]
        try:
            fn = _PRIM_TABLE[name]
        except KeyError:
            raise StuckError(f"unknown primitive {name!r}") from None
        try:
            return fn(*args)
        except (TypeError, IndexError) as exc:
            raise StuckError(f"{name}: {exc}") from None
    raise StuckError(f"big-step evaluator does not handle {label!r}")
