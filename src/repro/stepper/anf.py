"""A-normalization (section 7).

The paper's steppers use "a more efficient transformation — based on
A-normalization — to obtain a representation of each stack frame": in
A-normal form every intermediate result is named, so the continuation at
any point of evaluation is a simple chain of let-frames, trivially
reconstructable as source.

``anf`` rewrites a pure lambda-core term so that every application,
conditional test, and primitive argument is either a constant, a
variable, or a lambda; compound subexpressions are bound to fresh
``%anfN`` temporaries with ``Let``-sugar shaped nodes (the shape the
shadow stack records).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.terms import Const, Node, Pattern, PList, Tagged

__all__ = ["anf", "is_anf", "is_trivial"]


def _bare(t: Pattern) -> Pattern:
    while isinstance(t, Tagged):
        t = t.term
    return t


def is_trivial(t: Pattern) -> bool:
    """Constants, variables, and lambdas need no naming."""
    b = _bare(t)
    if isinstance(b, Const):
        return True
    return isinstance(b, Node) and b.label in ("Id", "Lam", "Unit", "Undefined")


def anf(term: Pattern) -> Pattern:
    """A-normalize a pure lambda-core term."""
    counter = [0]

    def fresh() -> str:
        counter[0] += 1
        return f"%anf{counter[0]}"

    def norm(t: Pattern) -> Pattern:
        """Normalize to an ANF *expression* (lets may appear at the top)."""
        bindings: List[Tuple[str, Pattern]] = []
        result = norm_into(t, bindings)
        for name, value in reversed(bindings):
            result = Node(
                "Let",
                (
                    PList((Node("Binding", (Const(name), value)),)),
                    result,
                ),
            )
        return result

    def norm_into(t: Pattern, bindings) -> Pattern:
        """Produce a trivial-or-head expression, emitting bindings for
        compound subterms."""
        b = _bare(t)
        if is_trivial(b):
            if isinstance(b, Node) and b.label == "Lam":
                return Node("Lam", (b.children[0], norm(b.children[1])))
            return b
        assert isinstance(b, Node)
        if b.label == "App":
            fn = atomize(b.children[0], bindings)
            arg = atomize(b.children[1], bindings)
            return Node("App", (fn, arg))
        if b.label == "If":
            cond = atomize(b.children[0], bindings)
            return Node(
                "If", (cond, norm(b.children[1]), norm(b.children[2]))
            )
        if b.label == "Op":
            args = _bare(b.children[1])
            atoms = tuple(atomize(a, bindings) for a in args.items)
            return Node("Op", (b.children[0], PList(atoms)))
        if b.label == "Seq":
            body = _bare(b.children[0])
            exprs = tuple(norm(e) for e in body.items)
            return Node("Seq", (PList(exprs),))
        # Anything else passes through with normalized children.
        return Node(b.label, tuple(norm(c) for c in b.children))

    def atomize(t: Pattern, bindings) -> Pattern:
        """Force ``t`` into a trivial expression, binding it if needed."""
        b = _bare(t)
        if is_trivial(b):
            return norm_into(b, bindings)
        head = norm_into(b, bindings)
        name = fresh()
        bindings.append((name, head))
        return Node("Id", (Const(name),))

    return norm(term)


def is_anf(term: Pattern) -> bool:
    """Is ``term`` in A-normal form (all redex operands trivial)?"""
    b = _bare(term)
    if is_trivial(b):
        if isinstance(b, Node) and b.label == "Lam":
            return is_anf(b.children[1])
        return True
    if not isinstance(b, Node):
        return False
    if b.label == "App":
        return all(is_trivial(c) for c in b.children)
    if b.label == "If":
        return (
            is_trivial(b.children[0])
            and is_anf(b.children[1])
            and is_anf(b.children[2])
        )
    if b.label == "Op":
        args = _bare(b.children[1])
        return all(is_trivial(a) for a in args.items)
    if b.label == "Seq":
        body = _bare(b.children[0])
        return all(is_anf(e) for e in body.items)
    if b.label == "Let":
        bindings = _bare(b.children[0])
        for binding in bindings.items:
            bb = _bare(binding)
            if not is_anf(bb.children[1]):
                return False
        return is_anf(b.children[1])
    return all(is_anf(c) for c in b.children)
