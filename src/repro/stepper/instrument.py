"""Shadow-stack instrumentation (section 7).

"Our steppers simply instrument the code to maintain a global stateful
stack onto which they push and pop frames.  In addition, our core
steppers instrument the code so that it pauses at every evaluation step
to emit the representation of the current continuation."

This module applies that technique to the big-step evaluator: an
instrumented evaluation maintains a :class:`ShadowStack` of frames (one
per pending application/conditional/primitive), can reconstruct the
current continuation as a source term at any pause, and counts the work
so the overhead of instrumentation can be measured against the plain
evaluator — the experiment behind the paper's "5-40% overhead" claim.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.errors import StuckError
from repro.core.terms import Const, Node, Pattern, PList, Tagged
from repro.stepper.bigstep import Closure, Value, _PRIM_TABLE, _bare, _lookup

__all__ = [
    "Frame",
    "ShadowStack",
    "InstrumentedEvaluator",
    "measure_overhead",
    "OverheadReport",
]

HOLE = Node("Hole", ())


Frame = tuple
"""One pending computation, stored *lazily* as ``(kind, pieces)``.

Pushing must be cheap — the paper's 5-40% overhead is for frame
bookkeeping, with term reconstruction deferred to the moments a stepper
actually emits — so frames are bare tuples and no term is built until
:meth:`ShadowStack.reconstruct`.
"""


def _frame_term(frame: Frame) -> Pattern:
    kind, pieces = frame
    if kind == "app-fn":
        (arg,) = pieces
        return Node("App", (HOLE, arg))
    if kind == "app-arg":
        (fn_value,) = pieces
        return Node("App", (_value_to_term(fn_value), HOLE))
    if kind == "if-test":
        then, els = pieces
        return Node("If", (HOLE, then, els))
    if kind == "op-arg":
        op, done, rest = pieces
        done_terms = tuple(_value_to_term(v) for v in done)
        return Node("Op", (op, PList(done_terms + (HOLE,) + tuple(rest))))
    raise AssertionError(f"unknown frame kind {kind!r}")


class ShadowStack:
    """The global stateful stack of section 7."""

    def __init__(self) -> None:
        self.frames: List[Frame] = []
        self.max_depth = 0
        self.pushes = 0

    def push(self, kind: str, *pieces) -> None:
        frames = self.frames
        frames.append((kind, pieces))
        self.pushes += 1
        if len(frames) > self.max_depth:
            self.max_depth = len(frames)

    def pop(self) -> Frame:
        return self.frames.pop()

    def reconstruct(self, focus: Pattern) -> Pattern:
        """The current continuation as source: plug the focus into each
        frame, innermost first."""
        term = focus
        for frame in reversed(self.frames):
            term = _plug(_frame_term(frame), term)
        return term


def _plug(context: Pattern, value: Pattern) -> Pattern:
    if isinstance(context, Node):
        if context.label == "Hole" and not context.children:
            return value
        return Node(
            context.label, tuple(_plug(c, value) for c in context.children)
        )
    if isinstance(context, PList):
        return PList(tuple(_plug(c, value) for c in context.items))
    if isinstance(context, Tagged):
        return Tagged(context.tag, _plug(context.term, value))
    return context


def _value_to_term(v: Value) -> Pattern:
    if isinstance(v, Closure):
        return Node("Lam", (Const(v.param), Const("<...>")))
    return Const(v)


class InstrumentedEvaluator:
    """The big-step evaluator plus (optional) shadow stack and pauses.

    The instrumentation dials mirror the paper's cost components:

    * ``shadow_stack=False`` disables everything — the *uninstrumented
      baseline* of the overhead experiment (same code path, so the
      measured difference is the instrumentation, not interpreter
      style);
    * ``shadow_stack=True, reconstruct=False`` maintains frames and
      pauses but never builds terms — the paper's measured 5-40%
      configuration;
    * ``reconstruct=True`` additionally rebuilds the continuation as a
      source term at every step, the cost the paper attributes to
      serialization and notes "can obviously be eliminated" by emitting
      inside the host runtime.

    ``on_step``, when given, receives the reconstructed continuation at
    every step — what a resugarer would consume.
    """

    def __init__(
        self,
        on_step: Optional[Callable[[Pattern], None]] = None,
        reconstruct: bool = True,
        shadow_stack: bool = True,
    ) -> None:
        self.shadow_stack = shadow_stack and True
        self.stack = ShadowStack()
        self.on_step = on_step
        self.reconstruct = reconstruct and shadow_stack
        self.steps = 0

    def _pause(self, focus: Pattern) -> None:
        self.steps += 1
        if self.reconstruct:
            continuation = self.stack.reconstruct(focus)
            if self.on_step is not None:
                self.on_step(continuation)

    def evaluate(self, term: Pattern, env=()) -> Value:
        stack = self.stack if self.shadow_stack else None
        if stack is not None:
            self.steps += 1
            if self.reconstruct:
                self._pause(term)
        t = _bare(term)
        if isinstance(t, Const):
            return t.value
        if not isinstance(t, Node):
            raise StuckError(f"cannot evaluate {t!r}")
        label = t.label
        if label == "Id":
            return _lookup(env, _bare(t.children[0]).value)
        if label == "Lam":
            return Closure(_bare(t.children[0]).value, t.children[1], env)
        if label == "App":
            if stack is not None:
                stack.push("app-fn", t.children[1])
            fn = self.evaluate(t.children[0], env)
            if stack is not None:
                stack.pop()
                stack.push("app-arg", fn)
            arg = self.evaluate(t.children[1], env)
            if stack is not None:
                stack.pop()
            if not isinstance(fn, Closure):
                raise StuckError(f"cannot apply {fn!r}")
            return self.evaluate(fn.body, (fn.param, arg, fn.env))
        if label == "If":
            if stack is not None:
                stack.push("if-test", t.children[1], t.children[2])
            cond = self.evaluate(t.children[0], env)
            if stack is not None:
                stack.pop()
            if cond is True:
                return self.evaluate(t.children[1], env)
            if cond is False:
                return self.evaluate(t.children[2], env)
            raise StuckError(f"if: not a boolean: {cond!r}")
        if label == "Seq":
            body = _bare(t.children[0])
            result = None
            for expr in body.items:
                result = self.evaluate(expr, env)
            return result
        if label == "Op":
            name = _bare(t.children[0]).value
            args = []
            arg_terms = list(_bare(t.children[1]).items)
            for i, a in enumerate(arg_terms):
                if stack is not None:
                    stack.push(
                        "op-arg",
                        t.children[0],
                        tuple(args),
                        tuple(arg_terms[i + 1:]),
                    )
                args.append(self.evaluate(a, env))
                if stack is not None:
                    stack.pop()
            try:
                fn = _PRIM_TABLE[name]
            except KeyError:
                raise StuckError(f"unknown primitive {name!r}") from None
            try:
                return fn(*args)
            except (TypeError, IndexError) as exc:
                raise StuckError(f"{name}: {exc}") from None
        raise StuckError(f"instrumented evaluator does not handle {label!r}")


@dataclass
class OverheadReport:
    """Timings of one workload, plain versus instrumented."""

    workload: str
    plain_seconds: float
    stack_only_seconds: float
    full_seconds: float
    steps: int
    max_stack_depth: int

    @property
    def stack_overhead(self) -> float:
        """Relative overhead of shadow-stack bookkeeping alone."""
        return self.stack_only_seconds / self.plain_seconds - 1.0

    @property
    def full_overhead(self) -> float:
        """Relative overhead including continuation reconstruction."""
        return self.full_seconds / self.plain_seconds - 1.0


def measure_overhead(
    workload: str, term: Pattern, repetitions: int = 5
) -> OverheadReport:
    """Run ``term`` uninstrumented, stack-only-instrumented, and fully
    instrumented; report best-of-N timings (the section 7 experiment).

    The baseline runs the *same* evaluator code with instrumentation
    switched off, so the measured overhead is the instrumentation
    itself — the quantity the paper reports as 5-40%.
    """

    def best(fn) -> float:
        times = []
        for _ in range(repetitions):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        return min(times)

    def plain_run():
        InstrumentedEvaluator(shadow_stack=False).evaluate(term)

    plain = best(plain_run)

    def stack_only():
        InstrumentedEvaluator(reconstruct=False).evaluate(term)

    stack = best(stack_only)

    probe = InstrumentedEvaluator(reconstruct=True)
    probe.evaluate(term)

    def full():
        InstrumentedEvaluator(reconstruct=True).evaluate(term)

    full_time = best(full)

    return OverheadReport(
        workload=workload,
        plain_seconds=plain,
        stack_only_seconds=stack,
        full_seconds=full_time,
        steps=probe.steps,
        max_stack_depth=probe.stack.max_depth,
    )
