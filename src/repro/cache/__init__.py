"""Persistent content-addressed caching for lifted evaluation.

Resugaring is deterministic: the surface trace of a (program, ruleset,
engine-config) triple never changes.  This package makes that pay across
processes and runs — a :class:`LiftCache` directory holds recorded lift
event streams plus :class:`~repro.core.incremental.ResugarCache` memo
snapshots, keyed by content digests so a stale or wrong hit is
structurally impossible (see :mod:`repro.cache.keys` for the key schema
and :mod:`repro.cache.store` for the corruption contract).

Entry points: pass ``cache=`` to the :class:`~repro.confection.Confection`
constructor or to the :mod:`repro.engine.stream` generators, ``--cache
DIR`` on the ``lift`` / ``lift-batch`` / ``serve`` CLI, or ``cache_dir=``
on :class:`~repro.parallel.WarmPool`.  ``repro cache stats|clear``
inspects and empties a directory.  ``docs/caching.md`` documents the
invalidation contract.
"""

from repro.cache.keys import (
    KEY_SCHEMA,
    engine_fingerprint,
    lift_key,
    ruleset_fingerprint,
    stepper_fingerprint,
    term_digest,
)
from repro.cache.lift import DEFAULT_MAX_MEMO_ENTRIES, LiftCache
from repro.cache.store import FORMAT_VERSION, MAGIC, CacheStore

__all__ = [
    "KEY_SCHEMA",
    "MAGIC",
    "FORMAT_VERSION",
    "DEFAULT_MAX_MEMO_ENTRIES",
    "CacheStore",
    "LiftCache",
    "engine_fingerprint",
    "lift_key",
    "ruleset_fingerprint",
    "stepper_fingerprint",
    "term_digest",
]
