"""The two-tier lift cache the engine talks to.

A :class:`LiftCache` wraps one :class:`~repro.cache.store.CacheStore`
directory with the two tiers the streaming engine uses:

* **Whole-lift tier** (``lift/``): the full recorded event stream of a
  completed lift, keyed by (program digest, ruleset fingerprint, engine
  fingerprint).  A hit means the engine replays the recorded frames and
  never steps at all; a repeated corpus costs disk reads.
* **Memo tier** (``memo/``): a :class:`~repro.core.incremental.ResugarCache`
  snapshot keyed by ruleset fingerprint alone — every entry is a pure
  per-subterm function of the rules, so a *new* program still warm-starts
  from every subterm any earlier program shared.

What is deliberately NOT cacheable:

* lifts through a stepper with no stable identity
  (:func:`~repro.cache.keys.stepper_fingerprint` returned ``None``);
* lifts with a wall-clock budget (``max_seconds``): where such a lift
  truncates depends on machine speed, so two runs with the same key can
  legitimately differ — caching one would break cold==warm equivalence.

Both refusals surface as :meth:`lift_key` returning ``None``, which the
engine treats as "run cold, store nothing".  Storing is further gated by
the engine on having seen a *terminal* event (Halted/BudgetExhausted):
a lift abandoned mid-stream, cancelled via ``should_stop``, or ended by
an exception must never populate the cache with a partial stream.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.cache.keys import lift_key as _lift_key
from repro.cache.keys import ruleset_fingerprint
from repro.cache.store import CacheStore
from repro.core.incremental import ResugarCache
from repro.core.rules import RuleList
from repro.core.terms import Pattern
from repro.engine.events import BudgetExhausted, Halted, LiftEvent
from repro.obs.metrics import (
    CACHE_CORRUPT,
    CACHE_LIFT_HITS,
    CACHE_LIFT_MISSES,
    CACHE_MEMO_HYDRATED,
)

__all__ = ["LiftCache", "DEFAULT_MAX_MEMO_ENTRIES"]

LIFT_TIER = "lift"
MEMO_TIER = "memo"

# Memo blobs above this many entries stop growing on disk: hydration
# cost would start rivaling the work saved, and a runaway workload must
# not turn the cache directory into a term-table dump.
DEFAULT_MAX_MEMO_ENTRIES = 200_000


class LiftCache:
    """Persistent lift cache over one directory (see module docstring).

    Cheap to construct — state is a path plus counters — so workers can
    each build their own against a shared directory.  All I/O and
    corruption handling is delegated to :class:`CacheStore`: any broken
    entry reads as a cold miss, never an exception.
    """

    def __init__(
        self,
        root: Union[str, Path],
        *,
        max_memo_entries: int = DEFAULT_MAX_MEMO_ENTRIES,
    ) -> None:
        self.store = CacheStore(root)
        self.max_memo_entries = max_memo_entries
        self.lift_hits = 0
        self.lift_misses = 0
        # memo key -> entry count already persisted/hydrated, so
        # persist_memo can skip rewriting a blob that learned nothing.
        self._memo_seen: Dict[str, int] = {}

    @property
    def root(self) -> Path:
        return self.store.root

    # --- whole-lift tier ---------------------------------------------

    def lift_key(
        self,
        rules: RuleList,
        stepper,
        surface_term: Pattern,
        *,
        mode: str,
        dedup: Optional[bool] = None,
        check_emulation: bool = True,
        incremental: bool = True,
        on_budget: str = "raise",
        max_steps: Optional[int] = None,
        max_nodes: Optional[int] = None,
        max_seconds: Optional[float] = None,
    ) -> Optional[str]:
        """The cache key for one lift request, or ``None`` when the
        request must not be cached (unidentifiable stepper, or a
        wall-clock budget whose truncation point is machine-dependent).
        """
        if max_seconds is not None:
            return None
        return _lift_key(
            rules,
            stepper,
            surface_term,
            mode=mode,
            dedup=dedup,
            check_emulation=check_emulation,
            incremental=incremental,
            on_budget=on_budget,
            max_steps=max_steps,
            max_nodes=max_nodes,
            max_seconds=max_seconds,
        )

    def lookup_lift(self, key: str) -> Optional[Tuple[LiftEvent, ...]]:
        """The recorded event stream for ``key``, or ``None`` (cold).

        The payload is shape-checked on top of the store's checksum: it
        must be a tuple of lift events ending in a terminal.  Anything
        else is treated exactly like file corruption — evicted, counted,
        and reported cold.
        """
        value = self.store.get(LIFT_TIER, key)
        if value is None:
            self.lift_misses += 1
            CACHE_LIFT_MISSES.inc()
            return None
        if not (
            isinstance(value, tuple)
            and value
            and all(isinstance(ev, LiftEvent) for ev in value)
            and isinstance(value[-1], (Halted, BudgetExhausted))
        ):
            self.store._quarantine(self.store.path_for(LIFT_TIER, key))
            self.store.counters["corrupt"] += 1
            CACHE_CORRUPT.inc()
            self.lift_misses += 1
            CACHE_LIFT_MISSES.inc()
            return None
        self.lift_hits += 1
        CACHE_LIFT_HITS.inc()
        return value

    def store_lift(self, key: str, events: Tuple[LiftEvent, ...]) -> bool:
        """Record a *completed* event stream.  Callers must only pass
        streams that ended in a terminal event."""
        return self.store.put(LIFT_TIER, key, tuple(events))

    # --- memo tier ---------------------------------------------------

    def memo_key(self, rules: RuleList) -> str:
        return ruleset_fingerprint(rules)

    def hydrate(self, cache: ResugarCache) -> int:
        """Preload a fresh :class:`ResugarCache` from the persisted memo
        snapshot for its rulelist; entries added (0 when cold)."""
        key = self.memo_key(cache.rules)
        exported = self.store.get(MEMO_TIER, key)
        if not isinstance(exported, dict):
            if exported is not None:
                self.store._quarantine(self.store.path_for(MEMO_TIER, key))
                self.store.counters["corrupt"] += 1
                CACHE_CORRUPT.inc()
            return 0
        try:
            added = cache.hydrate_memo(exported)
        except Exception:
            # A snapshot that will not hydrate (malformed shapes that
            # survived unpickling) is corruption by another name.
            self.store._quarantine(self.store.path_for(MEMO_TIER, key))
            self.store.counters["corrupt"] += 1
            CACHE_CORRUPT.inc()
            return 0
        if added:
            CACHE_MEMO_HYDRATED.inc(added)
        self._memo_seen[key] = cache.memo_size()
        return added

    def persist_memo(self, cache: ResugarCache) -> bool:
        """Write back a run's memo tables, merged over what is on disk.

        Skipped when the run learned nothing new since hydration or the
        blob would exceed :attr:`max_memo_entries` (growth stops, the
        existing blob stays).  Two concurrent writers race benignly:
        both snapshots are valid, :func:`os.replace` keeps whichever
        lands last, and the loser's *novel* entries are recomputed and
        re-merged by a later run.
        """
        size = cache.memo_size()
        key = self.memo_key(cache.rules)
        if size == 0 or size == self._memo_seen.get(key):
            return False
        if size > self.max_memo_entries:
            return False
        exported = cache.export_memo()
        existing = self.store.get(MEMO_TIER, key)
        if isinstance(existing, dict):
            # Keep disk entries this run did not recompute: merge is
            # last-writer-wins per entry, and every entry for one
            # ruleset fingerprint is deterministic, so order is moot.
            merged = {}
            for name in ("raw", "bad", "strip", "desugar", "skel"):
                table = {}
                for k, v in existing.get(name, ()):
                    table[k] = v
                for k, v in exported.get(name, ()):
                    table[k] = v
                merged[name] = list(table.items())
            total = sum(len(v) for v in merged.values())
            if total > self.max_memo_entries:
                return False
            exported = merged
        ok = self.store.put(MEMO_TIER, key, exported)
        if ok:
            self._memo_seen[key] = size
        return ok

    # --- bookkeeping -------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """This instance's runtime counters plus the store's."""
        out: Dict[str, object] = dict(self.store.counters)
        out["lift_hits"] = self.lift_hits
        out["lift_misses"] = self.lift_misses
        out["root"] = str(self.root)
        return out
