"""The on-disk content-addressed store: atomic writes, paranoid reads.

One :class:`CacheStore` owns a directory tree ``root/<tier>/<aa>/<key>.bin``
(two-hex-char sharding keeps directories small).  Entries are immutable:
a key is a content digest (:mod:`repro.cache.keys`), so two writers for
the same key are writing the same bytes, and the *only* interesting
failure mode is a damaged or mismatched file.

Every read therefore re-verifies the whole entry before trusting a byte
of it.  The file format is::

    MAGIC (4B)  VERSION (2B BE)  key_len (2B BE)  key (ascii)
    payload_len (8B BE)  sha256(payload) (32B)  payload (pickle)

and :meth:`CacheStore.get` checks, in order: magic, version, that the
stored key equals the requested key (a rename/collision guard — a hash
prefix in the path is *not* proof of identity), the length, and the
checksum — only then unpickling.  Any failure at any stage means the
entry is deleted best-effort, the ``cache.corrupt`` counter moves, and
the caller sees ``None``: a broken cache file can only ever mean "cold",
never an exception and never wrong bytes.

Writes go to a uniquely named temp file in the same directory and land
with :func:`os.replace`, so readers never observe a torn entry under
the final name; a crash mid-write leaves only a ``.tmp-*`` orphan that
:meth:`clear` (and best-effort garbage collection on :meth:`put`)
removes.  Every I/O or pickling error on the write path is contained
into a ``False`` return and a ``cache.errors`` bump — a cache must
degrade, not break the lift that was merely trying to save work.
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
import struct
import uuid
from pathlib import Path
from typing import Dict, Optional, Union

from repro.obs.metrics import CACHE_CORRUPT, CACHE_ERRORS, CACHE_STORES

__all__ = ["CacheStore", "MAGIC", "FORMAT_VERSION"]

MAGIC = b"RPC1"
FORMAT_VERSION = 1

_HEADER = struct.Struct(">4sHH")  # magic, version, key length
_LENGTHS = struct.Struct(">Q32s")  # payload length, payload sha256

# Refuse absurd payloads outright instead of handing a corrupted length
# field to a multi-gigabyte read().
_MAX_PAYLOAD = 1 << 31


class CacheStore:
    """A directory of checksummed, content-addressed pickle blobs.

    ``get``/``put`` never raise for cache-file or I/O problems; they
    return ``None``/``False`` and move the ``cache.corrupt`` /
    ``cache.errors`` counters instead.  Per-instance counts are kept on
    :attr:`counters` so tests and ``repro cache stats`` can read one
    store's history without snapshotting the global registry.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.counters: Dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "stores": 0,
            "corrupt": 0,
            "errors": 0,
        }

    # --- paths -------------------------------------------------------

    def path_for(self, tier: str, key: str) -> Path:
        return self.root / tier / key[:2] / f"{key}.bin"

    # --- read --------------------------------------------------------

    def get(self, tier: str, key: str) -> Optional[object]:
        """The verified payload for ``key``, or ``None`` (cold)."""
        path = self.path_for(tier, key)
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except FileNotFoundError:
            self.counters["misses"] += 1
            return None
        except OSError:
            self.counters["errors"] += 1
            CACHE_ERRORS.inc()
            return None
        payload = self._verify(data, key)
        if payload is None:
            self._quarantine(path)
            self.counters["corrupt"] += 1
            CACHE_CORRUPT.inc()
            return None
        try:
            value = pickle.loads(payload)
        except Exception:
            self._quarantine(path)
            self.counters["corrupt"] += 1
            CACHE_CORRUPT.inc()
            return None
        self.counters["hits"] += 1
        return value

    @staticmethod
    def _verify(data: bytes, key: str) -> Optional[bytes]:
        """Validate header + checksum; the raw payload bytes or None."""
        if len(data) < _HEADER.size:
            return None
        magic, version, key_len = _HEADER.unpack_from(data)
        if magic != MAGIC or version != FORMAT_VERSION:
            return None
        offset = _HEADER.size
        stored_key = data[offset : offset + key_len]
        if stored_key.decode("ascii", errors="replace") != key:
            return None
        offset += key_len
        if len(data) < offset + _LENGTHS.size:
            return None
        payload_len, checksum = _LENGTHS.unpack_from(data, offset)
        offset += _LENGTHS.size
        if payload_len > _MAX_PAYLOAD:
            return None
        payload = data[offset:]
        if len(payload) != payload_len:
            return None
        if hashlib.sha256(payload).digest() != checksum:
            return None
        return payload

    @staticmethod
    def _quarantine(path: Path) -> None:
        """Best-effort removal of a bad entry so the next run recomputes
        and overwrites it rather than tripping on it forever."""
        try:
            path.unlink()
        except OSError:
            pass

    # --- write -------------------------------------------------------

    def put(self, tier: str, key: str, value: object) -> bool:
        """Atomically write ``value`` under ``key``; False on failure."""
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            key_bytes = key.encode("ascii")
            buf = io.BytesIO()
            buf.write(_HEADER.pack(MAGIC, FORMAT_VERSION, len(key_bytes)))
            buf.write(key_bytes)
            buf.write(_LENGTHS.pack(len(payload), hashlib.sha256(payload).digest()))
            buf.write(payload)
            path = self.path_for(tier, key)
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.parent / f".tmp-{os.getpid()}-{uuid.uuid4().hex}"
            with open(tmp, "wb") as fh:
                fh.write(buf.getvalue())
            os.replace(tmp, path)
        except Exception:
            self.counters["errors"] += 1
            CACHE_ERRORS.inc()
            return False
        self.counters["stores"] += 1
        CACHE_STORES.inc()
        return True

    # --- maintenance -------------------------------------------------

    def scan(self) -> Dict[str, Dict[str, int]]:
        """Walk the store on disk: per-tier entry counts and byte
        totals (the ``repro cache stats`` view)."""
        tiers: Dict[str, Dict[str, int]] = {}
        if not self.root.is_dir():
            return tiers
        for tier_dir in sorted(p for p in self.root.iterdir() if p.is_dir()):
            entries = 0
            size = 0
            for path in tier_dir.rglob("*.bin"):
                try:
                    size += path.stat().st_size
                except OSError:
                    continue
                entries += 1
            tiers[tier_dir.name] = {"entries": entries, "bytes": size}
        return tiers

    def clear(self) -> int:
        """Delete every entry (and orphaned temp file); entries removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in list(self.root.rglob("*")):
            if path.is_file():
                try:
                    path.unlink()
                except OSError:
                    continue
                if path.suffix == ".bin":
                    removed += 1
        for path in sorted(
            (p for p in self.root.rglob("*") if p.is_dir()),
            key=lambda p: len(p.parts),
            reverse=True,
        ):
            try:
                path.rmdir()
            except OSError:
                pass
        return removed
