"""Content-addressed cache keys: term digests and config fingerprints.

A cached lift is only reusable when *everything* that determines its
output is part of the key.  Lifting is a deterministic function of three
inputs — the surface program, the rulelist, and the engine configuration
— so the persistent cache (:mod:`repro.cache.store`) keys every entry on
the triple::

    (term_digest(program), ruleset_fingerprint(rules), engine_fingerprint(...))

All three are hex blake2b digests of a canonical byte serialization:

* :func:`term_digest` walks the term structurally, so the digest is a
  property of the term's *value*, not of the process that built it — it
  is invariant under ``clear_intern_caches()``, pickling round-trips,
  and rebuilding the term from source.  Hash-consed terms are DAGs
  (doubling-chain programs share subtrees exponentially), so the walk
  memoizes per object and costs O(distinct subterms).
* :func:`ruleset_fingerprint` digests every rule (name, patterns,
  atomic variables) plus the disjointness mode, so *any* edit to any
  rule changes the fingerprint — the invalidation contract is "new
  rules, new namespace", never "stale hit".
* :func:`engine_fingerprint` covers the stepper identity and every
  lift option that can change the event stream: sequence vs tree mode,
  ``stepper_mode``, dedup, emulation checking, incrementality, and the
  budgets.  Steppers may expose a ``cache_fingerprint()`` hook; steppers
  with no recognizable identity (an arbitrary function stepper) yield
  ``None``, which callers must treat as *uncacheable*.

The serialization starts every entry with :data:`KEY_SCHEMA` so a change
to the encoding itself retires all old keys wholesale.
"""

from __future__ import annotations

import weakref
from hashlib import blake2b
from typing import Dict, List, Optional

from repro.core.rules import RuleList
from repro.core.terms import (
    BodyTag,
    Const,
    HeadTag,
    Node,
    Pattern,
    PList,
    PVar,
    Symbol,
    Tagged,
)

__all__ = [
    "KEY_SCHEMA",
    "term_digest",
    "ruleset_fingerprint",
    "stepper_fingerprint",
    "engine_fingerprint",
    "lift_key",
]

# Bump when the byte serialization below changes shape: every digest is
# prefixed with it, so old cache entries become unreachable, not wrong.
KEY_SCHEMA = b"repro-cache-key/1"

_DIGEST_SIZE = 16  # 128-bit; collisions are out of reach for a cache


def _hash(parts) -> str:
    h = blake2b(KEY_SCHEMA, digest_size=_DIGEST_SIZE)
    for part in parts:
        h.update(part)
    return h.hexdigest()


def _atom_bytes(value) -> bytes:
    """Serialize one atomic constant, type-faithfully: ``Const(True)``,
    ``Const(1)``, and ``Const(1.0)`` are distinct terms and must digest
    distinctly (term equality is by value *and* type)."""
    if isinstance(value, Symbol):
        return b"sym:" + value.name.encode()
    return type(value).__name__.encode() + b":" + repr(value).encode()


def _binding_parts(binding, digest) -> List[bytes]:
    """Serialize one stand-in binding (pattern / list / ellipsis
    binding) using ``digest`` for the pattern leaves."""
    from repro.core.bindings import EllipsisBinding, ListBinding

    if isinstance(binding, ListBinding):
        out = [b"[|"]
        for item in binding.items:
            out.extend(_binding_parts(item, digest))
        out.append(b"|]")
        return out
    if isinstance(binding, EllipsisBinding):
        out = [b"[|"]
        for item in binding.items:
            out.extend(_binding_parts(item, digest))
        out.append(b"*")
        out.extend(_binding_parts(binding.tail, digest))
        out.append(b"|]")
        return out
    return [b"p:", digest(binding).encode()]


def _tag_parts(tag, digest) -> List[bytes]:
    if isinstance(tag, HeadTag):
        out = [b"H:", str(tag.index).encode()]
        for name, binding in tag.stand_in:
            out.append(b"(" + name.encode() + b"=")
            out.extend(_binding_parts(binding, digest))
            out.append(b")")
        return out
    if isinstance(tag, BodyTag):
        return [b"B:1" if tag.transparent else b"B:0"]
    return [b"T:", type(tag).__qualname__.encode(), repr(tag).encode()]


def term_digest(term: Pattern) -> str:
    """Structural digest of a term or pattern (hex).

    Purely a function of the term's value: two structurally equal terms
    digest identically whether or not they are interned, in which
    process they were built, or how often the intern table was cleared
    in between.  The walk is iterative and memoized per object, so
    hash-consed DAGs cost O(distinct subterms) and arbitrarily deep
    terms cannot overflow the Python stack.
    """
    memo: Dict[int, str] = {}
    keep_alive: List[Pattern] = []  # pin ids for the walk's lifetime

    def digest(t: Pattern) -> str:
        cached = memo.get(id(t))
        if cached is not None:
            return cached
        # Iterative post-order: (node, children_done) frames.
        stack: List[tuple] = [(t, False)]
        while stack:
            node, ready = stack.pop()
            if id(node) in memo:
                continue
            if not ready:
                stack.append((node, True))
                if isinstance(node, Node):
                    stack.extend((c, False) for c in node.children)
                elif isinstance(node, PList):
                    stack.extend((c, False) for c in node.items)
                    if node.ellipsis is not None:
                        stack.append((node.ellipsis, False))
                elif isinstance(node, Tagged):
                    stack.append((node.term, False))
                continue
            parts: List[bytes]
            if isinstance(node, Const):
                parts = [b"c(", _atom_bytes(node.value), b")"]
            elif isinstance(node, PVar):
                parts = [b"v(", node.name.encode(), b")"]
            elif isinstance(node, Node):
                parts = [b"n(", node.label.encode(), b";"]
                parts.extend(memo[id(c)].encode() for c in node.children)
                parts.append(b")")
            elif isinstance(node, PList):
                parts = [b"l("]
                parts.extend(memo[id(c)].encode() for c in node.items)
                if node.ellipsis is not None:
                    parts.append(b"*" + memo[id(node.ellipsis)].encode())
                parts.append(b")")
            elif isinstance(node, Tagged):
                parts = [b"g("]
                # Stand-in bindings hold full patterns; digesting them
                # recurses through this same memo via ``digest``.
                parts.extend(_tag_parts(node.tag, digest))
                parts.append(b";" + memo[id(node.term)].encode() + b")")
            else:
                # Pattern-only extension forms (NTRef, AtomPred, ...):
                # fall back to class + repr, which is stable for the
                # frozen dataclasses these are.
                parts = [
                    b"x(",
                    type(node).__qualname__.encode(),
                    repr(node).encode(),
                    b")",
                ]
            memo[id(node)] = _hash(parts)
            keep_alive.append(node)
        return memo[id(t)]

    return digest(term)


# RuleList -> fingerprint, alive as long as the rulelist is (the same
# pattern per_rule_counters uses); rulelists are immutable after
# construction, so the cached value can never go stale.
_RULESET_FP: "weakref.WeakKeyDictionary[RuleList, str]" = (
    weakref.WeakKeyDictionary()
)


def ruleset_fingerprint(rules: RuleList) -> str:
    """Digest of an entire rulelist: order, names, patterns, atomic-vars
    declarations, and the disjointness mode.  Editing, reordering,
    inserting, or deleting any rule changes the fingerprint."""
    cached = _RULESET_FP.get(rules)
    if cached is not None:
        return cached
    parts: List[bytes] = [b"rules/", rules.disjointness.name.encode()]
    for rule in rules.rules:
        parts.append(b"|" + rule.name.encode())
        parts.append(b";av=" + ",".join(rule.atomic_vars).encode())
        parts.append(b";l=" + term_digest(rule.lhs).encode())
        parts.append(b";r=" + term_digest(rule.rhs).encode())
    fp = _hash(parts)
    _RULESET_FP[rules] = fp
    return fp


def stepper_fingerprint(stepper) -> Optional[str]:
    """A stable identity for a stepper, or ``None`` when it has none.

    Steppers may implement ``cache_fingerprint() -> str`` to opt in
    explicitly.  A :class:`~repro.redex.reduction.RedexStepper` is
    fingerprinted from its semantics (name, value nonterminal, reduction
    rule names) plus its mode and stuck policy.  Anything else — e.g. a
    :class:`~repro.core.lift.FunctionStepper` wrapping an arbitrary
    closure — returns ``None``: there is no way to know two runs mean
    the same evaluator, so lifts through it must never be cached.
    """
    hook = getattr(stepper, "cache_fingerprint", None)
    if hook is not None:
        return str(hook())
    semantics = getattr(stepper, "semantics", None)
    if semantics is None:
        return None
    cls = type(stepper)
    parts = [
        b"stepper/",
        f"{cls.__module__}.{cls.__qualname__}".encode(),
        b";on_stuck=" + str(getattr(stepper, "on_stuck", None)).encode(),
        b";mode=" + str(getattr(stepper, "mode", None)).encode(),
        b";sem=" + str(getattr(semantics, "name", "")).encode(),
        b";val=" + str(getattr(semantics, "value_nonterminal", "")).encode(),
    ]
    for rule in getattr(semantics, "rules", ()) or ():
        parts.append(b"|" + str(getattr(rule, "name", rule)).encode())
    return _hash(parts)


def engine_fingerprint(
    stepper,
    *,
    mode: str,
    dedup: Optional[bool] = None,
    check_emulation: bool = True,
    incremental: bool = True,
    on_budget: str = "raise",
    max_steps: Optional[int] = None,
    max_nodes: Optional[int] = None,
    max_seconds: Optional[float] = None,
) -> Optional[str]:
    """Digest of everything about the engine configuration that can
    change the lift's event stream, or ``None`` when the stepper is
    unidentifiable (= this lift is uncacheable).

    ``stepper`` must already have its ``stepper_mode`` resolved (the
    stream entry points fingerprint *after* ``_apply_stepper_mode``, so
    an explicit ``stepper_mode="refocus"`` and a default-refocus stepper
    fingerprint identically — they produce identical streams — while
    refocus vs naive differ).  Budgets are part of the key because a
    truncated lift's event stream depends on the budget's value.
    """
    step_fp = stepper_fingerprint(stepper)
    if step_fp is None:
        return None
    parts = [
        b"engine/",
        step_fp.encode(),
        b";mode=" + mode.encode(),
        b";dedup=" + str(dedup).encode(),
        b";emu=" + str(check_emulation).encode(),
        b";inc=" + str(incremental).encode(),
        b";on_budget=" + on_budget.encode(),
        b";max_steps=" + str(max_steps).encode(),
        b";max_nodes=" + str(max_nodes).encode(),
        b";max_seconds=" + str(max_seconds).encode(),
    ]
    return _hash(parts)


def lift_key(
    rules: RuleList, stepper, surface_term: Pattern, **options
) -> Optional[str]:
    """The whole-lift cache key for one request, or ``None`` when the
    request is uncacheable (see :func:`engine_fingerprint`)."""
    engine_fp = engine_fingerprint(stepper, **options)
    if engine_fp is None:
        return None
    return _hash(
        [
            b"lift/",
            term_digest(surface_term).encode(),
            b";",
            ruleset_fingerprint(rules).encode(),
            b";",
            engine_fp.encode(),
        ]
    )
