"""The Pyret-like core object language (sections 4 and 8.3).

The paper's Pyret case study desugars surface programs into a core with
multi-argument functions, objects, bracket field lookup, method-style
primitives (``1.["_plus"]``), let bindings, blocks, conditionals, and
``raise``.  This module defines that core as a reduction semantics over
the shared term representation, so CONFECTION can lift its traces.

Values: numbers, strings, booleans, ``Nothing`` (Pyret's unit),
multi-argument lambdas, object literals of values, the builtin list
constructors and list values, bound method values (what ``1.["_plus"]``
resolves to — displayed as ``<func>``, the paper's "resolved
functional"), and error values produced by ``raise``.

Function declarations are recursive: ``DefRec`` stores the closure in a
named store and leaves references as ``Id`` nodes, which resolve lazily
— so the first lifted step of the section 4 example reads
``<func>([1, 2])``, exactly as the paper prints it.
"""

from __future__ import annotations

from types import MappingProxyType

from repro.core.errors import StuckError
from repro.core.terms import Const, Node, Pattern, PList, PVar, Tagged, strip_tags
from repro.redex import (
    AtomPred,
    EvalStrategy,
    Grammar,
    NTRef,
    RedexStepper,
    ReductionRule,
    ReductionSemantics,
)

__all__ = ["make_semantics", "make_stepper", "NUMBER_METHODS", "STRING_METHODS"]


def _bare(t: Pattern) -> Pattern:
    while isinstance(t, Tagged):
        t = t.term
    return t


# --- grammar ----------------------------------------------------------

def _grammar() -> Grammar:
    g = Grammar()
    g.define(
        "v",
        AtomPred("number"),
        AtomPred("string"),
        AtomPred("boolean"),
        Node("Nothing", ()),
        Node("Lam", (PVar("_params"), PVar("_body"))),
        Node("Obj", (PList((), Node("Field", (AtomPred("string"), NTRef("v")))),)),
        Node("ListModule", ()),
        Node("LinkCtor", ()),
        Node("ListEmpty", ()),
        Node("ListLink", (NTRef("v"), NTRef("v"))),
        Node("Method", (AtomPred("string"), NTRef("v"))),
        Node("MatchFn", (NTRef("v"),)),
        Node("Error", (NTRef("v"),)),
        # User-datatype values (the paper's future-work extension): a
        # variant tag applied to field values.
        Node("Data", (AtomPred("string"), PList((), NTRef("v")))),
    )
    g.define(
        "e",
        NTRef("v"),
        Node("Id", (AtomPred("string"),)),
        Node("App", (NTRef("e"), PList((), NTRef("e")))),
        Node("Bracket", (NTRef("e"), NTRef("e"))),
        Node("Let", (AtomPred("string"), NTRef("e"), NTRef("e"))),
        Node("DefRec", (AtomPred("string"), NTRef("e"), NTRef("e"))),
        Node("Block", (PList((), NTRef("e")),)),
        Node("If", (NTRef("e"), NTRef("e"), NTRef("e"))),
        Node("Raise", (NTRef("e"),)),
    )
    return g


def _strategy() -> EvalStrategy:
    return (
        EvalStrategy()
        .congruence("App", 0, ("list", 1))
        .congruence("Bracket", 0, 1)
        .congruence("Let", 1)
        .congruence("DefRec", 1)
        .congruence("Block", ("nth", 0, 0, 2))
        .congruence("If", 0)
        .congruence("Raise", 0)
        .congruence("Obj", ("list_child", 0, 1))
        .congruence("Data", ("list", 1))
    )


# --- substitution -----------------------------------------------------

def substitute(term: Pattern, name: str, value: Pattern) -> Pattern:
    """Shadow-respecting substitution of ``value`` for ``Id(name)``."""
    if isinstance(term, Tagged):
        bare = _bare(term)
        if _is_ref(bare, name):
            return value
        return Tagged(term.tag, substitute(term.term, name, value))
    if isinstance(term, Node):
        if _is_ref(term, name):
            return value
        if term.label == "Lam" and name in _param_names(term):
            return term
        if term.label in ("Let", "DefRec"):
            bound = _bare(term.children[0])
            if isinstance(bound, Const) and bound.value == name:
                # The bound expression is still open; the body is shadowed.
                return Node(
                    term.label,
                    (
                        term.children[0],
                        substitute(term.children[1], name, value),
                        term.children[2],
                    ),
                )
        return Node(
            term.label, tuple(substitute(c, name, value) for c in term.children)
        )
    if isinstance(term, PList):
        return PList(tuple(substitute(c, name, value) for c in term.items))
    return term


def _is_ref(bare: Pattern, name: str) -> bool:
    return (
        isinstance(bare, Node)
        and bare.label == "Id"
        and len(bare.children) == 1
        and _bare(bare.children[0]) == Const(name)
    )


def _param_names(lam_node: Node):
    params = _bare(lam_node.children[0])
    names = []
    if isinstance(params, PList):
        for p in params.items:
            bp = _bare(p)
            if isinstance(bp, Const) and isinstance(bp.value, str):
                names.append(bp.value)
    return names


# --- rules ------------------------------------------------------------

NUMBER_METHODS = {
    "_plus": lambda a, b: a + b,
    "_minus": lambda a, b: a - b,
    "_times": lambda a, b: a * b,
    "_divide": lambda a, b: a / b,
    "_lessthan": lambda a, b: a < b,
    "_greaterthan": lambda a, b: a > b,
    "_lessequal": lambda a, b: a <= b,
    "_greaterequal": lambda a, b: a >= b,
    "_equals": lambda a, b: a == b,
}

STRING_METHODS = {
    "_plus": lambda a, b: a + b,
    "_equals": lambda a, b: a == b,
}


def _beta(env, store):
    lam_node = _bare(env["f"])
    params = _param_names(lam_node)
    args_term = _bare(env["args"])
    if not isinstance(args_term, PList):
        raise StuckError("application with a non-list argument vector")
    args = list(args_term.items)
    if len(params) != len(args):
        raise StuckError(
            f"arity mismatch: function of {len(params)} argument(s) "
            f"applied to {len(args)}"
        )
    body = lam_node.children[1]
    for name, arg in zip(params, args):
        body = substitute(body, name, arg)
    return body


def _field_lookup(env, store):
    obj = _bare(env["o"])
    want = env["name"].value
    assert isinstance(obj, Node) and obj.label == "Obj"
    fields = _bare(obj.children[0])
    for field in fields.items:
        bf = _bare(field)
        fname = _bare(bf.children[0])
        if isinstance(fname, Const) and fname.value == want:
            return bf.children[1]
    raise StuckError(f"field {want!r} not found in object")


def _bracket_builtin(env, store):
    receiver = env["r"]
    name = env["name"].value
    bare = _bare(receiver)
    if isinstance(bare, Const):
        v = bare.value
        if isinstance(v, bool):
            if name == "_not":
                return Node("Method", (Const("_not"), bare))
            raise StuckError(f"booleans have no method {name!r}")
        if isinstance(v, (int, float)):
            if name in NUMBER_METHODS:
                return Node("Method", (Const(name), bare))
            raise StuckError(f"numbers have no method {name!r}")
        if isinstance(v, str):
            if name in STRING_METHODS:
                return Node("Method", (Const(name), bare))
            raise StuckError(f"strings have no method {name!r}")
    if isinstance(bare, Node):
        if bare.label == "ListModule":
            if name == "link":
                return Node("LinkCtor", ())
            if name == "empty":
                return Node("ListEmpty", ())
            raise StuckError(f"the list module has no member {name!r}")
        if bare.label in ("ListLink", "ListEmpty"):
            if name == "_match":
                return Node("MatchFn", (bare,))
            if bare.label == "ListLink":
                if name == "first":
                    return bare.children[0]
                if name == "rest":
                    return bare.children[1]
            raise StuckError(f"lists have no member {name!r}")
        if bare.label == "Data":
            if name == "_match":
                return Node("MatchFn", (bare,))
            raise StuckError(f"data values have no member {name!r}")
    raise StuckError(f"cannot look up {name!r} on {bare}")


def _apply_method(env, store):
    method = _bare(env["m"])
    name = _bare(method.children[0]).value
    receiver = _bare(method.children[1])
    args = _bare(env["args"])
    assert isinstance(args, PList)
    if name == "_not":
        if args.items:
            raise StuckError("_not takes no arguments")
        return Const(not receiver.value)
    if len(args.items) != 1:
        raise StuckError(f"{name} takes exactly one argument")
    other = _bare(args.items[0])
    if not isinstance(other, Const):
        raise StuckError(f"{name}: expected an atomic argument")
    a, b = receiver.value, other.value
    if isinstance(a, (int, float)) and not isinstance(a, bool):
        if not isinstance(b, (int, float)) or isinstance(b, bool):
            raise StuckError(f"{name}: expected a number, got {other}")
        return Const(NUMBER_METHODS[name](a, b))
    if isinstance(a, str):
        if not isinstance(b, str):
            raise StuckError(f"{name}: expected a string, got {other}")
        return Const(STRING_METHODS[name](a, b))
    raise StuckError(f"cannot apply method {name!r} to {receiver}")


def _apply_link(env, store):
    args = _bare(env["args"])
    if len(args.items) != 2:
        raise StuckError("list.link takes exactly two arguments")
    return Node("ListLink", (args.items[0], args.items[1]))


def _apply_match(env, store):
    match_fn = _bare(env["m"])
    scrutinee = _bare(match_fn.children[0])
    args = _bare(env["args"])
    if len(args.items) != 2:
        raise StuckError("_match takes a branch object and an else thunk")
    branches, otherwise = args.items
    if scrutinee.label == "Data":
        tag = _bare(scrutinee.children[0]).value
        fields = tuple(_bare(scrutinee.children[1]).items)
    elif scrutinee.label == "ListEmpty":
        tag, fields = "empty", ()
    else:
        tag = "link"
        fields = (scrutinee.children[0], scrutinee.children[1])
    branch = _lookup_optional(branches, tag)
    if branch is None:
        return Node("App", (otherwise, PList(())))
    return Node("App", (branch, PList(fields)))


def _lookup_optional(obj, want):
    bare = _bare(obj)
    if not (isinstance(bare, Node) and bare.label == "Obj"):
        raise StuckError("_match: branches must be an object")
    fields = _bare(bare.children[0])
    for field in fields.items:
        bf = _bare(field)
        if _bare(bf.children[0]) == Const(want):
            return bf.children[1]
    return None


def _let(env, store):
    return substitute(env["body"], env["name"].value, env["val"])


def _defrec(env, store):
    name = env["name"].value
    updated = dict(store)
    updated[name] = env["val"]
    return (env["body"], MappingProxyType(updated))


def _resolve_id(env, store):
    name = env["name"].value
    if name == "list":
        return Node("ListModule", ())
    try:
        return store[name]
    except KeyError:
        raise StuckError(f"unbound identifier {name!r}") from None


def _raise(env, store, plug):
    # raise aborts the program: the error value replaces everything.
    return Node("Error", (env["val"],))


def _rules():
    v = NTRef("v")
    return [
        ReductionRule(
            "beta",
            Node(
                "App",
                (Node("Lam", (PVar("_p"), PVar("_b"))), PVar("args")),
            ),
            lambda env, store: _beta(
                {"f": Node("Lam", (env["_p"], env["_b"])), "args": env["args"]},
                store,
            ),
        ),
        ReductionRule(
            "apply-method",
            Node("App", (NTRef("v", "m"), PVar("args"))),
            _apply_dispatch,
        ),
        ReductionRule(
            "field-lookup",
            Node(
                "Bracket",
                (NTRef("v", "o"), AtomPred("string", "name")),
            ),
            _bracket_dispatch,
        ),
        ReductionRule(
            "let",
            Node("Let", (AtomPred("string", "name"), NTRef("v", "val"), PVar("body"))),
            _let,
        ),
        ReductionRule(
            "defrec",
            Node(
                "DefRec",
                (AtomPred("string", "name"), NTRef("v", "val"), PVar("body")),
            ),
            _defrec,
        ),
        ReductionRule(
            "id-resolve",
            Node("Id", (AtomPred("string", "name"),)),
            _resolve_id,
        ),
        ReductionRule(
            "block-done",
            Node("Block", (PList((PVar("last"),)),)),
            PVar("last"),
        ),
        ReductionRule(
            "block-step",
            Node("Block", (PList((v, PVar("e2")), PVar("rest")),)),
            Node("Block", (PList((PVar("e2"),), PVar("rest")),)),
            preserve_redex_tags=True,
        ),
        ReductionRule(
            "if-true",
            Node("If", (Const(True), PVar("t"), PVar("e"))),
            PVar("t"),
        ),
        ReductionRule(
            "if-false",
            Node("If", (Const(False), PVar("t"), PVar("e"))),
            PVar("e"),
        ),
        ReductionRule(
            "raise",
            Node("Raise", (NTRef("v", "val"),)),
            _raise,
            control=True,
        ),
    ]


def _apply_dispatch(env, store):
    fn = _bare(env["m"])
    if isinstance(fn, Node):
        if fn.label == "Method":
            return _apply_method(env, store)
        if fn.label == "LinkCtor":
            return _apply_link(env, store)
        if fn.label == "MatchFn":
            return _apply_match(env, store)
    raise StuckError(f"cannot apply {fn} as a function")


def _bracket_dispatch(env, store):
    obj = _bare(env["o"])
    if isinstance(obj, Node) and obj.label == "Obj":
        return _field_lookup(env, store)
    return _bracket_builtin({"r": env["o"], "name": env["name"]}, store)


class PyretSemantics(ReductionSemantics):
    """Pyret core semantics with end-of-program tag shedding (the same
    refinement as the lambda core: a sugar-constructed final value is
    still the answer)."""

    def step(self, state):
        bare = _bare(state.term)
        if isinstance(bare, Node) and bare.label == "Error":
            return []  # raised errors are final states
        successors = super().step(state)
        if successors:
            return successors
        if isinstance(state.term, Tagged):
            stripped = strip_tags(state.term)
            if self.is_value(stripped) and stripped != state.term:
                return [state.__class__(stripped, state.store)]
        return []


def make_semantics() -> ReductionSemantics:
    """Build the Pyret-core reduction semantics (a fresh instance)."""
    return PyretSemantics(_grammar(), _strategy(), _rules(), name="pyretcore")


def make_stepper(on_stuck: str = "halt") -> RedexStepper:
    """A :class:`~repro.core.lift.Stepper` for the Pyret core."""
    return RedexStepper(make_semantics(), on_stuck=on_stuck)
