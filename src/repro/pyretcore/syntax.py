"""Concrete syntax for the Pyret-like language (sections 4 and 8.3).

A parser for the Pyret subset the paper's case study exercises::

    fun len(x):
      cases(List) x:
        | empty() => 0
        | link(_, tail) => len(tail) + 1
      end
    end
    len([1, 2])

and a pretty-printer that renders terms the way the paper prints them
(``cases(List) [1, 2]: | empty() => 0 | ... end``, ``<func>`` for
resolved functionals, ``[1, 2]`` for list values).

Parsing produces *surface* terms full of the Figure 5 sugar nodes
(FunDecl, Cases, CasesElse, IfE, When, For, Op, Not, Paren, LeftApp,
ListLit, Dot, Colon, OpCurryL/OpCurryR); the rules in
:mod:`repro.sugars.pyret_sugars` rewrite them into the core.
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.core.errors import ParseError
from repro.core.terms import Const, Node, Pattern, PList, Tagged, strip_tags

__all__ = ["parse_program", "pretty"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<arrow>=>)
  | (?P<op><=|>=|==|<>|\+|-|\*|/|<|>)
  | (?P<brlookup>\.\[)
  | (?P<anncolon>::)
  | (?P<punct>[()\[\]{},:.|^=])
  | (?P<name>[A-Za-z_][A-Za-z0-9_-]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "fun", "end", "cases", "if", "else", "when", "for", "from",
    "true", "false", "nothing", "not", "raise", "block", "datatype",
    "and", "or",
}

_OP_METHODS = {
    "+": "_plus",
    "-": "_minus",
    "*": "_times",
    "/": "_divide",
    "<": "_lessthan",
    ">": "_greaterthan",
    "<=": "_lessequal",
    ">=": "_greaterequal",
    "==": "_equals",
}
_METHOD_OPS = {m: o for o, m in _OP_METHODS.items()}


class _Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self):
        return f"{self.kind}:{self.text!r}"


def _tokenize(source: str) -> List[_Token]:
    out, pos, line = [], 0, 1
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise ParseError(f"line {line}: unexpected character {source[pos]!r}")
        kind, text = m.lastgroup, m.group()
        if kind not in ("ws", "comment"):
            out.append(_Token(kind, text, line))
        line += text.count("\n")
        pos = m.end()
    out.append(_Token("eof", "", line))
    return out


class _Parser:
    def __init__(self, source: str) -> None:
        self.tokens = _tokenize(source)
        self.i = 0

    def peek(self, ahead: int = 0) -> _Token:
        return self.tokens[min(self.i + ahead, len(self.tokens) - 1)]

    def next(self) -> _Token:
        tok = self.tokens[self.i]
        self.i += 1
        return tok

    def expect(self, text: str) -> _Token:
        tok = self.next()
        if tok.text != text:
            got = repr(tok.text) if tok.text else "end of input"
            raise ParseError(f"line {tok.line}: expected {text!r}, got {got}")
        return tok

    def at(self, text: str) -> bool:
        return self.peek().text == text

    # --- program & blocks -------------------------------------------

    def parse_program(self) -> Pattern:
        body = self.parse_block(stop={"eof-sentinel"})
        tok = self.peek()
        if tok.kind != "eof":
            raise ParseError(f"line {tok.line}: trailing input {tok.text!r}")
        return body

    def parse_block(self, stop) -> Pattern:
        """A sequence of statements; fun/let declarations scope over the
        rest of the block."""
        statements: List = []
        while self.peek().kind != "eof" and self.peek().text not in stop:
            statements.append(self._parse_statement(stop))
        if not statements:
            raise ParseError(f"line {self.peek().line}: empty block")
        return self._fold_block(statements)

    def _fold_block(self, statements) -> Pattern:
        head = statements[0]
        if isinstance(head, tuple):  # a declaration awaiting its scope
            if len(statements) == 1:
                raise ParseError(
                    f"declaration of {head[1]!r} ends its block"
                )
            rest = self._fold_block(statements[1:])
            if head[0] == "fun":
                _, name, params, body = head
                return Node("FunDecl", (Const(name), params, body, rest))
            if head[0] == "datatype":
                _, name, variants = head
                return Node("Datatype", (Const(name), variants, rest))
            _, name, value = head
            return Node("LetDecl", (Const(name), value, rest))
        if len(statements) == 1:
            return head
        rest = self._fold_block(statements[1:])
        if isinstance(rest, Node) and rest.label == "Block":
            items = rest.children[0].items
            return Node("Block", (PList((head,) + items),))
        return Node("Block", (PList((head, rest)),))

    def _parse_statement(self, stop):
        if self.at("fun") and self.peek(1).kind == "name":
            return self._parse_fun_decl()
        if self.at("datatype"):
            return self._parse_datatype()
        if (
            self.peek().kind == "name"
            and self.peek().text not in _KEYWORDS
            and self.peek(1).text == "="
            and self.peek(2).text != "="
        ):
            name = self.next().text
            self.expect("=")
            return ("let", name, self.parse_expr())
        return self.parse_expr()

    def _parse_datatype(self):
        # datatype Shape: | circle(r) | square(s) end   (extension:
        # Figure 5 marks this "no"; see repro.sugars.pyret_sugars).
        self.expect("datatype")
        name = self._name("datatype")
        self.expect(":")
        variants = []
        while self.at("|"):
            self.next()
            tag = self._name("variant")
            params = self._parse_params()
            variants.append(Node("Variant", (Const(tag), params)))
        self.expect("end")
        if not variants:
            raise ParseError(f"datatype {name!r} needs at least one variant")
        return ("datatype", name, PList(tuple(variants)))

    def _parse_fun_decl(self):
        self.expect("fun")
        name = self._name("fun")
        params = self._parse_params()
        self.expect(":")
        body = self.parse_block(stop={"end"})
        self.expect("end")
        return ("fun", name, params, body)

    def _parse_params(self) -> PList:
        self.expect("(")
        names = []
        if not self.at(")"):
            names.append(Const(self._name("parameter")))
            while self.at(","):
                self.next()
                names.append(Const(self._name("parameter")))
        self.expect(")")
        return PList(tuple(names))

    def _name(self, what: str) -> str:
        tok = self.next()
        if tok.kind != "name" or tok.text in _KEYWORDS - {"_"}:
            raise ParseError(f"line {tok.line}: expected a {what} name")
        return tok.text

    # --- expressions --------------------------------------------------

    def parse_expr(self) -> Pattern:
        return self._parse_binop()

    def _parse_binop(self) -> Pattern:
        left = self._parse_unary()
        while True:
            tok = self.peek()
            if tok.kind == "op":
                method = _OP_METHODS[self.next().text]
                left = self._combine_op(method, left, self._parse_unary())
            elif tok.text in ("and", "or"):
                label = "OpAnd" if self.next().text == "and" else "OpOr"
                left = Node(label, (left, self._parse_unary()))
            else:
                return left

    @staticmethod
    def _combine_op(method, left, right) -> Node:
        blank_l = isinstance(left, Node) and left.label == "Blank"
        blank_r = isinstance(right, Node) and right.label == "Blank"
        if blank_l and blank_r:
            raise ParseError("at most one operand of an operator may be _")
        if blank_l:
            return Node("OpCurryL", (Const(method), right))
        if blank_r:
            return Node("OpCurryR", (Const(method), left))
        return Node("Op", (Const(method), left, right))

    def _parse_unary(self) -> Pattern:
        if self.at("not"):
            self.next()
            return Node("Not", (self._parse_unary(),))
        return self._parse_postfix()

    def _parse_postfix(self) -> Pattern:
        expr = self._parse_primary()
        while True:
            tok = self.peek()
            if tok.text == "(":
                expr = self._parse_call(expr)
            elif tok.kind == "brlookup":
                self.next()
                key = self.parse_expr()
                self.expect("]")
                expr = Node("Bracket", (expr, key))
            elif tok.text == "." and self.peek(1).kind == "name":
                self.next()
                expr = Node("Dot", (expr, Const(self._name("field"))))
            elif tok.text == ":" and self.peek(1).kind == "name" \
                    and self.peek(1).text not in _KEYWORDS:
                # direct (colon) field lookup: o:x
                self.next()
                expr = Node("Colon", (expr, Const(self._name("field"))))
            elif tok.text == "^":
                # left-app infix notation: x ^ f(args)
                self.next()
                fn = self._parse_postfix_no_call()
                self.expect("(")
                args = self._parse_args()
                expr = Node("LeftApp", (expr, fn, args))
            else:
                return expr

    def _parse_postfix_no_call(self) -> Pattern:
        expr = self._parse_primary()
        while True:
            tok = self.peek()
            if tok.kind == "brlookup":
                self.next()
                key = self.parse_expr()
                self.expect("]")
                expr = Node("Bracket", (expr, key))
            elif tok.text == "." and self.peek(1).kind == "name":
                self.next()
                expr = Node("Dot", (expr, Const(self._name("field"))))
            else:
                return expr

    def _parse_call(self, fn: Pattern) -> Node:
        self.expect("(")
        args = self._parse_args()
        blanks = [
            i
            for i, a in enumerate(args.items)
            if isinstance(a, Node) and a.label == "Blank"
        ]
        if len(blanks) == 1 and len(args.items) >= 1:
            # currying in application position: f(_, 3).
            others = [a for a in args.items if not (
                isinstance(a, Node) and a.label == "Blank")]
            if len(blanks) == 1 and len(args.items) - len(others) == 1:
                if blanks[0] == 0 and len(args.items) == 2:
                    return Node("CurryAppL", (fn, args.items[1]))
                if blanks[0] == 1 and len(args.items) == 2:
                    return Node("CurryAppR", (fn, args.items[0]))
                if len(args.items) == 1:
                    return Node("CurryApp1", (fn,))
            raise ParseError("unsupported currying shape")
        return Node("App", (fn, args))

    def _parse_args(self) -> PList:
        args = []
        if not self.at(")"):
            args.append(self.parse_expr())
            while self.at(","):
                self.next()
                args.append(self.parse_expr())
        self.expect(")")
        return PList(tuple(args))

    def _parse_primary(self) -> Pattern:
        tok = self.next()
        if tok.kind == "number":
            return Const(float(tok.text) if "." in tok.text else int(tok.text))
        if tok.kind == "string":
            return Const(tok.text[1:-1].replace('\\"', '"').replace("\\\\", "\\"))
        if tok.text == "(":
            inner = self.parse_expr()
            self.expect(")")
            return Node("Paren", (inner,))
        if tok.text == "[":
            items = []
            if not self.at("]"):
                items.append(self.parse_expr())
                while self.at(","):
                    self.next()
                    items.append(self.parse_expr())
            self.expect("]")
            return Node("ListLit", (PList(tuple(items)),))
        if tok.text == "{":
            fields = []
            if not self.at("}"):
                fields.append(self._parse_field())
                while self.at(","):
                    self.next()
                    fields.append(self._parse_field())
            self.expect("}")
            return Node("Obj", (PList(tuple(fields)),))
        if tok.kind == "name":
            return self._parse_keyword_or_name(tok)
        raise ParseError(f"line {tok.line}: unexpected {tok.text!r}")

    def _parse_field(self) -> Node:
        tok = self.next()
        if tok.kind == "string":
            name = tok.text[1:-1]
        elif tok.kind == "name":
            name = tok.text
        else:
            raise ParseError(f"line {tok.line}: expected a field name")
        self.expect(":")
        return Node("Field", (Const(name), self.parse_expr()))

    def _parse_keyword_or_name(self, tok: _Token) -> Pattern:
        text = tok.text
        if text == "true":
            return Const(True)
        if text == "false":
            return Const(False)
        if text == "nothing":
            return Node("Nothing", ())
        if text == "_":
            return Node("Blank", ())
        if text == "raise":
            self.expect("(")
            value = self.parse_expr()
            self.expect(")")
            return Node("Raise", (value,))
        if text == "fun":
            params = self._parse_params()
            self.expect(":")
            body = self.parse_block(stop={"end"})
            self.expect("end")
            return Node("FunE", (params, body))
        if text == "when":
            cond = self.parse_expr()
            self.expect(":")
            body = self.parse_block(stop={"end"})
            self.expect("end")
            return Node("When", (cond, body))
        if text == "if":
            return self._parse_if()
        if text == "cases":
            return self._parse_cases()
        if text == "for":
            return self._parse_for()
        if text == "block":
            self.expect(":")
            body = self.parse_block(stop={"end"})
            self.expect("end")
            return body
        return Node("Id", (Const(text),))

    def _parse_if(self) -> Node:
        clauses = []
        cond = self.parse_expr()
        self.expect(":")
        body = self.parse_block(stop={"else", "end"})
        clauses.append(Node("Clause", (cond, body)))
        otherwise: Optional[Pattern] = None
        while self.at("else"):
            self.next()
            if self.at("if"):
                self.next()
                cond = self.parse_expr()
                self.expect(":")
                body = self.parse_block(stop={"else", "end"})
                clauses.append(Node("Clause", (cond, body)))
            else:
                self.expect(":")
                otherwise = self.parse_block(stop={"end"})
                break
        self.expect("end")
        if otherwise is None:
            return Node("IfNoElse", (PList(tuple(clauses)),))
        return Node("IfE", (PList(tuple(clauses)), otherwise))

    def _parse_cases(self) -> Node:
        self.expect("(")
        ann = self._name("annotation")
        self.expect(")")
        scrutinee = self.parse_expr()
        self.expect(":")
        branches = []
        otherwise: Optional[Pattern] = None
        while self.at("|"):
            self.next()
            if self.at("else"):
                self.next()
                self.expect("=>")
                otherwise = self.parse_expr()
                break
            name = self._name("constructor")
            params = self._parse_params()
            self.expect("=>")
            body = self.parse_expr()
            branches.append(Node("Branch", (Const(name), params, body)))
        self.expect("end")
        if otherwise is None:
            return Node(
                "Cases", (Const(ann), scrutinee, PList(tuple(branches)))
            )
        return Node(
            "CasesElse",
            (Const(ann), scrutinee, PList(tuple(branches)), otherwise),
        )

    def _parse_for(self) -> Node:
        fn = self._parse_postfix_no_call()
        self.expect("(")
        binds = []
        if not self.at(")"):
            binds.append(self._parse_from_bind())
            while self.at(","):
                self.next()
                binds.append(self._parse_from_bind())
        self.expect(")")
        self.expect(":")
        body = self.parse_block(stop={"end"})
        self.expect("end")
        return Node("For", (fn, PList(tuple(binds)), body))

    def _parse_from_bind(self) -> Node:
        name = self._name("binding")
        self.expect("from")
        return Node("FromBind", (Const(name), self.parse_expr()))


def parse_program(source: str) -> Pattern:
    """Parse a Pyret-subset program into a surface term."""
    return _Parser(source).parse_program()


# --- pretty printing ---------------------------------------------------

def pretty(term: Pattern) -> str:
    """Render a (possibly tagged) term the way the paper prints Pyret."""
    return _pp(strip_tags(term))


def _pp(t: Pattern) -> str:
    if isinstance(t, Const):
        v = t.value
        if isinstance(v, bool):
            return "true" if v else "false"
        if isinstance(v, str):
            return '"' + v.replace('"', '\\"') + '"'
        if isinstance(v, float) and v.is_integer():
            return str(v)
        return str(v)
    if isinstance(t, PList):
        return "[" + ", ".join(_pp(c) for c in t.items) + "]"
    if not isinstance(t, Node):
        return str(t)
    printer = _PP.get(t.label)
    if printer is not None:
        return printer(t)
    inner = ", ".join(_pp(c) for c in t.children)
    return f"{t.label.lower()}({inner})"


def _pp_params(plist) -> str:
    names = []
    for p in plist.items:
        names.append(p.value if isinstance(p, Const) else _pp(p))
    return ", ".join(names)


def _pp_list_value(t) -> str:
    items = []
    while isinstance(t, Node) and t.label == "ListLink":
        items.append(_pp(t.children[0]))
        t = t.children[1]
        while isinstance(t, Tagged):
            t = t.term
    return "[" + ", ".join(items) + "]"


_PP = {}


def _register(label):
    def deco(fn):
        _PP[label] = fn
        return fn

    return deco


@_register("Id")
def _pp_id(t):
    return t.children[0].value


@_register("App")
def _pp_app(t):
    args = ", ".join(_pp(a) for a in t.children[1].items)
    fn = t.children[0]
    fn_str = _pp(fn)
    if isinstance(fn, Node) and fn.label in ("Lam", "Method", "MatchFn"):
        fn_str = f"({fn_str})" if fn.label == "Lam" else fn_str
    return f"{fn_str}({args})"


@_register("Lam")
def _pp_lam(t):
    # A bare core Lam in a lifted trace is a resolved closure; the paper
    # prints those as <func> ("denotes a resolved functional").  Surface
    # anonymous functions stay readable because they parse to the FunE
    # sugar, which resugars before display.
    return "<func>"


@_register("FunE")
def _pp_fune(t):
    return f"fun({_pp_params(t.children[0])}): {_pp(t.children[1])} end"


@_register("Bracket")
def _pp_bracket(t):
    return f"{_pp(t.children[0])}.[{_pp(t.children[1])}]"


@_register("Dot")
def _pp_dot(t):
    return f"{_pp(t.children[0])}.{t.children[1].value}"


@_register("Colon")
def _pp_colon(t):
    return f"{_pp(t.children[0])}:{t.children[1].value}"


@_register("Let")
def _pp_let(t):
    return (
        f"{t.children[0].value} = {_pp(t.children[1])} "
        f"{_pp(t.children[2])}"
    )


@_register("LetDecl")
def _pp_letdecl(t):
    return _pp_let(t)


@_register("DefRec")
def _pp_defrec(t):
    return (
        f"rec {t.children[0].value} = {_pp(t.children[1])} "
        f"{_pp(t.children[2])}"
    )


@_register("FunDecl")
def _pp_fundecl(t):
    return (
        f"fun {t.children[0].value}({_pp_params(t.children[1])}): "
        f"{_pp(t.children[2])} end {_pp(t.children[3])}"
    )


@_register("Block")
def _pp_block(t):
    return " ".join(_pp(c) for c in t.children[0].items)


@_register("If")
def _pp_if(t):
    return (
        f"if {_pp(t.children[0])}: {_pp(t.children[1])} "
        f"else: {_pp(t.children[2])} end"
    )


@_register("IfE")
def _pp_ife(t):
    parts = []
    for i, clause in enumerate(t.children[0].items):
        kw = "if" if i == 0 else "else if"
        parts.append(f"{kw} {_pp(clause.children[0])}: {_pp(clause.children[1])}")
    parts.append(f"else: {_pp(t.children[1])}")
    return " ".join(parts) + " end"


@_register("IfNoElse")
def _pp_ifnoelse(t):
    parts = []
    for i, clause in enumerate(t.children[0].items):
        kw = "if" if i == 0 else "else if"
        parts.append(f"{kw} {_pp(clause.children[0])}: {_pp(clause.children[1])}")
    return " ".join(parts) + " end"


@_register("When")
def _pp_when(t):
    return f"when {_pp(t.children[0])}: {_pp(t.children[1])} end"


@_register("Cases")
def _pp_cases(t):
    branches = " ".join(_pp(b) for b in t.children[2].items)
    return (
        f"cases({t.children[0].value}) {_pp(t.children[1])}: {branches} end"
    )


@_register("CasesElse")
def _pp_cases_else(t):
    branches = " ".join(_pp(b) for b in t.children[2].items)
    return (
        f"cases({t.children[0].value}) {_pp(t.children[1])}: {branches} "
        f"| else => {_pp(t.children[3])} end"
    )


@_register("Branch")
def _pp_branch(t):
    return (
        f"| {t.children[0].value}({_pp_params(t.children[1])}) => "
        f"{_pp(t.children[2])}"
    )


@_register("For")
def _pp_for(t):
    binds = ", ".join(_pp(b) for b in t.children[1].items)
    return f"for {_pp(t.children[0])}({binds}): {_pp(t.children[2])} end"


@_register("FromBind")
def _pp_from(t):
    return f"{t.children[0].value} from {_pp(t.children[1])}"


@_register("Op")
def _pp_op(t):
    op = _METHOD_OPS.get(t.children[0].value, t.children[0].value)
    return f"{_pp(t.children[1])} {op} {_pp(t.children[2])}"


@_register("OpCurryL")
def _pp_opcurryl(t):
    op = _METHOD_OPS.get(t.children[0].value, t.children[0].value)
    return f"(_ {op} {_pp(t.children[1])})"


@_register("OpCurryR")
def _pp_opcurryr(t):
    op = _METHOD_OPS.get(t.children[0].value, t.children[0].value)
    return f"({_pp(t.children[1])} {op} _)"


@_register("CurryAppL")
def _pp_curryappl(t):
    return f"{_pp(t.children[0])}(_, {_pp(t.children[1])})"


@_register("CurryAppR")
def _pp_curryappr(t):
    return f"{_pp(t.children[0])}({_pp(t.children[1])}, _)"


@_register("CurryApp1")
def _pp_curryapp1(t):
    return f"{_pp(t.children[0])}(_)"


@_register("LeftApp")
def _pp_leftapp(t):
    args = ", ".join(_pp(a) for a in t.children[2].items)
    return f"{_pp(t.children[0])} ^ {_pp(t.children[1])}({args})"


@_register("OpAnd")
def _pp_opand(t):
    return f"{_pp(t.children[0])} and {_pp(t.children[1])}"


@_register("OpOr")
def _pp_opor(t):
    return f"{_pp(t.children[0])} or {_pp(t.children[1])}"


@_register("Not")
def _pp_not(t):
    return f"not {_pp(t.children[0])}"


@_register("Paren")
def _pp_paren(t):
    return f"({_pp(t.children[0])})"


@_register("ListLit")
def _pp_listlit(t):
    return "[" + ", ".join(_pp(c) for c in t.children[0].items) + "]"


@_register("Obj")
def _pp_obj(t):
    fields = ", ".join(
        f'"{f.children[0].value}": {_pp(f.children[1])}'
        for f in t.children[0].items
    )
    return "{" + fields + "}"


@_register("Field")
def _pp_field(t):
    return f'"{t.children[0].value}": {_pp(t.children[1])}'


@_register("Raise")
def _pp_raise(t):
    return f"raise({_pp(t.children[0])})"


@_register("Error")
def _pp_error(t):
    return f"error: {_pp(t.children[0])}"


@_register("Nothing")
def _pp_nothing(t):
    return "nothing"


@_register("ListModule")
def _pp_listmodule(t):
    return "list"


@_register("LinkCtor")
def _pp_linkctor(t):
    return "list.link"


@_register("ListEmpty")
def _pp_listempty(t):
    return "[]"


@_register("ListLink")
def _pp_listlink(t):
    return _pp_list_value(t)


@_register("Datatype")
def _pp_datatype(t):
    variants = " ".join(
        f"| {v.children[0].value}({_pp_params(v.children[1])})"
        for v in t.children[1].items
    )
    return (
        f"datatype {t.children[0].value}: {variants} end "
        f"{_pp(t.children[2])}"
    )


@_register("Data")
def _pp_data(t):
    fields = ", ".join(_pp(f) for f in t.children[1].items)
    return f"{t.children[0].value}({fields})"


@_register("Method")
def _pp_method(t):
    return "<func>"


@_register("MatchFn")
def _pp_matchfn(t):
    return "<func>"


@_register("Blank")
def _pp_blank(t):
    return "_"
