"""The Pyret-like core object language of sections 4 and 8.3.

Pyret "makes heavy use of syntactic sugar to emulate the syntax of other
programming languages"; its core has multi-argument functions, objects,
bracket field lookup, method-style primitives (``1.["_plus"]``), let
bindings, blocks, conditionals, and ``raise``.  This package provides
that core as a reduction semantics plus a parser and paper-style
pretty-printer for the surface syntax; the Figure 5 sugar rules live in
:mod:`repro.sugars.pyret_sugars`.
"""

from repro.pyretcore.semantics import (
    NUMBER_METHODS,
    STRING_METHODS,
    make_semantics,
    make_stepper,
)
from repro.pyretcore.syntax import parse_program, pretty

__all__ = [
    "make_semantics",
    "make_stepper",
    "parse_program",
    "pretty",
    "NUMBER_METHODS",
    "STRING_METHODS",
]
