"""The Pyret-like core object language of sections 4 and 8.3.

Pyret "makes heavy use of syntactic sugar to emulate the syntax of other
programming languages"; its core has multi-argument functions, objects,
bracket field lookup, method-style primitives (``1.["_plus"]``), let
bindings, blocks, conditionals, and ``raise``.  This package provides
that core as a reduction semantics plus a parser and paper-style
pretty-printer for the surface syntax; the Figure 5 sugar rules live in
:mod:`repro.sugars.pyret_sugars`.
"""

from repro.pyretcore.semantics import (
    NUMBER_METHODS,
    STRING_METHODS,
    make_semantics,
    make_stepper,
)
from repro.pyretcore.syntax import parse_program, pretty

__all__ = [
    "make_semantics",
    "make_stepper",
    "parse_program",
    "pretty",
    "NUMBER_METHODS",
    "STRING_METHODS",
]


# --- backend registration -----------------------------------------------
#
# Importing this package makes the language available to every
# backend-generic driver under the name "pyret" (see
# repro.engine.registry for the sugar-factory options contract).


def _pyret_sugar(**options):
    from repro.sugars.pyret_sugars import make_pyret_rules

    return make_pyret_rules(
        op_desugaring=options.get("op_desugaring", "naive"),
        with_datatype=options.get("with_datatype", False),
    )


def _register() -> None:
    from repro.engine.registry import Backend, register_backend

    register_backend(
        Backend(
            name="pyret",
            parse=parse_program,
            pretty=pretty,
            make_stepper=make_stepper,
            sugar_factories={"pyret": _pyret_sugar},
            default_sugar="pyret",
            description="Pyret-like core object language (sections 4, 8.3)",
        )
    )


_register()
