"""A process-wide metrics registry for the lift pipeline.

Three instrument kinds, modelled on the Prometheus vocabulary but kept
dependency-free:

* :class:`Counter` — a monotonically increasing count (``inc``);
* :class:`Gauge` — a value that can move both ways (``set``);
* :class:`Histogram` — observations bucketed against *fixed* boundaries
  chosen at registration time, plus a running count and sum.

All instruments live in a :class:`MetricsRegistry`; the module-level
:data:`REGISTRY` is the one the pipeline's instrumentation writes to.
:func:`snapshot` freezes the registry into a plain dict (JSON-safe),
:func:`reset` zeroes every instrument in place — instruments are
interned by name, so references held by hot code stay valid across
resets.

Snapshots also *merge*: :meth:`MetricsRegistry.merge` adds a
snapshot-shaped dict into a registry (counters and histogram buckets
add, gauges accumulate), and :func:`merge_snapshots` folds many
snapshots into one.  This is how :mod:`repro.parallel` aggregates
per-worker measurements into a single registry — each pool worker is
its own process with its own :data:`REGISTRY`, so cross-process metrics
travel as snapshots and are summed on arrival.  Merging is exact for
the pipeline's instruments: every one is a counter or a fixed-boundary
histogram, both of which sum losslessly.

The pipeline's metric names (see ``docs/observability.md``):

============================  =========  =====================================
name                          kind       meaning
============================  =========  =====================================
``lift.steps_total``          counter    core steps walked by lift streams
``lift.steps_emitted``        counter    steps shown to the user
``lift.steps_skipped``        counter    steps with no surface representation
``lift.steps_deduped``        counter    steps hidden as duplicates
``lift.runs``                 counter    lift streams started
``match.attempts``            counter    pattern-match calls
``match.successes``           counter    pattern-match calls that bound
``match.attempts_per_step``   histogram  match attempts spent per core step
``resugar.calls``             counter    resugar entry points taken
``resugar.unexpand_attempts`` counter    rule unexpansions tried at HeadTags
``resugar.fail_propagations`` counter    subtree failures propagated upward
``resugar.tag_blocked``       counter    resugarings blocked by opaque tags
``resugar.cache_hits``        counter    ResugarCache subtree walks saved
``resugar.cache_misses``      counter    ResugarCache subtree walks done
``desugar.cache_hits``        counter    desugar memo hits
``desugar.cache_misses``      counter    desugar memo misses
``desugar.depth``             histogram  expansion nesting depth per expansion
``redex.decompose.depth``     histogram  context frames moved per decomposition
``trace.truncated_lines``     counter    partial JSONL trace lines dropped
``server.sessions_started``   counter    lift sessions the server accepted
``server.sessions_rejected``  counter    sessions refused at the cap
``server.sessions_errored``   counter    sessions ended by an error frame
``server.sessions_cancelled`` counter    sessions cancelled (disconnects)
``server.sessions_active``    gauge      sessions currently streaming
``server.sessions_peak``      gauge      high-water mark of active sessions
``server.frames_sent``        counter    protocol frames written to clients
``server.requests``           counter    HTTP/WebSocket requests handled
``server.ttfs_seconds``       histogram  per-session time to first step
``synth.examples_harvested``  counter    (surface, core) example pairs mined
``synth.candidates``          counter    candidate rules anti-unification built
``synth.accepted``            counter    candidates passing the filter gauntlet
``synth.rejected``            counter    candidates the filter rejected
``synth.rules_installed``     counter    rules admitted into a synthesized set
``synth.fuzz_trials``         counter    perturbed candidates pushed through
``synth.fuzz_crashes``        counter    engine crashes the fuzzer surfaced
``cache.lift_hits``           counter    whole-lift results served from disk
``cache.lift_misses``         counter    whole-lift lookups that came up cold
``cache.stores``              counter    entries written to a persistent store
``cache.corrupt``             counter    damaged cache entries detected+evicted
``cache.memo_hydrated``       counter    ResugarCache memo entries preloaded
``cache.errors``              counter    cache I/O failures contained as misses
============================  =========  =====================================

Counters only move when observability is enabled (the instrumentation
sites are guarded); reading them is always safe.  Three exceptions move
unconditionally: ``trace.truncated_lines``, which
:func:`repro.obs.export.read_trace` bumps because a silently dropped
line should never go unrecorded; the ``server.*`` family, which
:mod:`repro.server` maintains because serving bookkeeping is not on the
per-step hot path and a ``/metrics`` scrape must see traffic whether or
not any lift ran with observability on; the ``synth.*`` family,
which :mod:`repro.synth` maintains for the same reason — synthesis runs
batch-scale, not step-scale, and its counters summarize each run; and
the ``cache.*`` family, which :mod:`repro.cache` maintains because
persistent-cache traffic is per-lift (not per-step) and corruption
events must be visible whether or not observability was on.

:func:`render_prometheus` renders a registry in the Prometheus text
exposition format (version 0.0.4) for scrape endpoints: counters gain
the conventional ``_total`` suffix, histograms become *cumulative*
``_bucket{le=...}`` series plus ``_sum``/``_count``, and the per-rule
``rule.<event>.<i>:<name>`` instruments become one metric per event
kind with ``rule``/``index`` labels.

Per-rule attribution (``rule.expansions.<i>:<name>`` and friends) is
pre-bound lazily by :func:`per_rule_counters`, one counter triple per
rule of a :class:`~repro.core.desugar.RuleList`, cached per rule list so
hot loops index a tuple instead of formatting metric names.
"""

from __future__ import annotations

import re
import weakref
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "snapshot",
    "reset",
    "merge_snapshots",
    "DEFAULT_DEPTH_BUCKETS",
    "LIFT_STEPS_TOTAL",
    "LIFT_STEPS_EMITTED",
    "LIFT_STEPS_SKIPPED",
    "LIFT_STEPS_DEDUPED",
    "LIFT_RUNS",
    "MATCH_ATTEMPTS",
    "MATCH_SUCCESSES",
    "RESUGAR_CACHE_HITS",
    "RESUGAR_CACHE_MISSES",
    "DESUGAR_CACHE_HITS",
    "DESUGAR_CACHE_MISSES",
    "DESUGAR_DEPTH",
    "REDEX_DECOMPOSE_DEPTH",
    "RESUGAR_CALLS",
    "UNEXPAND_ATTEMPTS",
    "RESUGAR_FAIL_PROPAGATIONS",
    "RESUGAR_TAG_BLOCKED",
    "TRACE_TRUNCATED_LINES",
    "MATCH_ATTEMPTS_PER_STEP",
    "per_rule_counters",
    "RuleCounters",
    "render_prometheus",
    "SERVER_TIME_BUCKETS",
    "SERVER_SESSIONS_STARTED",
    "SERVER_SESSIONS_REJECTED",
    "SERVER_SESSIONS_ERRORED",
    "SERVER_SESSIONS_CANCELLED",
    "SERVER_SESSIONS_ACTIVE",
    "SERVER_SESSIONS_PEAK",
    "SERVER_FRAMES_SENT",
    "SERVER_REQUESTS",
    "SERVER_TTFS_SECONDS",
    "SYNTH_EXAMPLES_HARVESTED",
    "SYNTH_CANDIDATES",
    "SYNTH_ACCEPTED",
    "SYNTH_REJECTED",
    "SYNTH_RULES_INSTALLED",
    "SYNTH_FUZZ_TRIALS",
    "SYNTH_FUZZ_CRASHES",
]

Number = Union[int, float]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: int = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def _reset(self) -> None:
        self.value = 0

    def _snapshot(self) -> int:
        return self.value


class Gauge:
    """A value that can move both ways (e.g. a backlog size)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def _reset(self) -> None:
        self.value = 0

    def _snapshot(self) -> Number:
        return self.value


class Histogram:
    """Observations bucketed against fixed upper boundaries.

    ``boundaries`` are inclusive upper edges in strictly increasing
    order; an implicit ``+inf`` bucket catches the rest.  Bucket counts
    are *non-cumulative* (each observation lands in exactly one bucket).
    """

    __slots__ = ("name", "boundaries", "bucket_counts", "count", "sum")

    def __init__(self, name: str, boundaries: Sequence[Number]) -> None:
        edges = tuple(boundaries)
        if not edges:
            raise ValueError(f"histogram {name!r} needs at least one boundary")
        if any(b >= a for b, a in zip(edges, edges[1:])):
            raise ValueError(
                f"histogram {name!r} boundaries must be strictly increasing: "
                f"{edges}"
            )
        self.name = name
        self.boundaries: Tuple[Number, ...] = edges
        self.bucket_counts: List[int] = [0] * (len(edges) + 1)
        self.count = 0
        self.sum: Number = 0

    def observe(self, value: Number) -> None:
        self.bucket_counts[bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.sum += value

    def _reset(self) -> None:
        self.bucket_counts = [0] * (len(self.boundaries) + 1)
        self.count = 0
        self.sum = 0

    def _snapshot(self) -> Dict[str, object]:
        buckets = {
            f"le_{edge:g}": n
            for edge, n in zip(self.boundaries, self.bucket_counts)
        }
        buckets["le_inf"] = self.bucket_counts[-1]
        return {"count": self.count, "sum": self.sum, "buckets": buckets}

    def _merge(self, snap: Dict[str, object]) -> None:
        """Add a histogram snapshot into this histogram (boundaries must
        match — bucketed observations cannot be re-binned)."""
        buckets = snap["buckets"]
        expected = [f"le_{edge:g}" for edge in self.boundaries] + ["le_inf"]
        if list(buckets) != expected:
            raise ValueError(
                f"histogram {self.name!r} snapshot has boundaries "
                f"{list(buckets)}, expected {expected}"
            )
        for i, key in enumerate(expected):
            self.bucket_counts[i] += buckets[key]
        self.count += snap["count"]
        self.sum += snap["sum"]


Instrument = Union[Counter, Gauge, Histogram]

DEFAULT_DEPTH_BUCKETS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)


class MetricsRegistry:
    """Interns instruments by name and snapshots them as one dict."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    def _get(self, name: str, kind: type, **kwargs) -> Instrument:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {kind.__name__}"
                )
            return existing
        instrument = kind(name, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, boundaries: Optional[Sequence[Number]] = None
    ) -> Histogram:
        if name in self._instruments:
            return self._get(name, Histogram)
        return self._get(
            name,
            Histogram,
            boundaries=tuple(boundaries or DEFAULT_DEPTH_BUCKETS),
        )

    def instruments(self) -> Dict[str, Instrument]:
        """The live instruments, keyed by name (a copy; the instruments
        themselves are the registry's own)."""
        return dict(self._instruments)

    def snapshot(self) -> Dict[str, object]:
        """Freeze every instrument into a plain, JSON-safe dict, keyed
        by metric name (sorted for stable output)."""
        return {
            name: inst._snapshot()
            for name, inst in sorted(self._instruments.items())
        }

    def reset(self) -> None:
        """Zero every instrument in place (references stay valid)."""
        for inst in self._instruments.values():
            inst._reset()

    def merge(self, snapshot: Dict[str, object]) -> None:
        """Add a :meth:`snapshot`-shaped dict into this registry.

        Histogram entries (dicts) merge bucket-by-bucket into a
        histogram with the same boundaries (reconstructed from the
        bucket keys when the instrument does not exist yet).  Numeric
        entries add into the instrument registered under that name — a
        counter (created on demand) or an existing gauge.  Merging the
        per-worker snapshots of a :mod:`repro.parallel` batch therefore
        reproduces exactly the registry a single-process run of the
        same corpus would have produced.
        """
        for name, value in snapshot.items():
            if isinstance(value, dict):
                edges = tuple(
                    float(key[3:])
                    for key in value["buckets"]
                    if key != "le_inf"
                )
                self.histogram(name, boundaries=edges)._merge(value)
            else:
                existing = self._instruments.get(name)
                if isinstance(existing, Gauge):
                    existing.set(existing.value + value)
                else:
                    self.counter(name).inc(value)


REGISTRY = MetricsRegistry()


def snapshot() -> Dict[str, object]:
    """Snapshot the process-wide registry."""
    return REGISTRY.snapshot()


def reset() -> None:
    """Zero the process-wide registry."""
    REGISTRY.reset()


def merge_snapshots(snapshots) -> Dict[str, object]:
    """Fold snapshot dicts into one aggregated snapshot (a fresh
    registry is used, so the process-wide one is untouched)."""
    registry = MetricsRegistry()
    for snap in snapshots:
        registry.merge(snap)
    return registry.snapshot()


# The pipeline's instruments, pre-bound so hot paths pay an attribute
# load rather than a dict lookup per increment.
LIFT_STEPS_TOTAL = REGISTRY.counter("lift.steps_total")
LIFT_STEPS_EMITTED = REGISTRY.counter("lift.steps_emitted")
LIFT_STEPS_SKIPPED = REGISTRY.counter("lift.steps_skipped")
LIFT_STEPS_DEDUPED = REGISTRY.counter("lift.steps_deduped")
LIFT_RUNS = REGISTRY.counter("lift.runs")
MATCH_ATTEMPTS = REGISTRY.counter("match.attempts")
MATCH_SUCCESSES = REGISTRY.counter("match.successes")
RESUGAR_CACHE_HITS = REGISTRY.counter("resugar.cache_hits")
RESUGAR_CACHE_MISSES = REGISTRY.counter("resugar.cache_misses")
DESUGAR_CACHE_HITS = REGISTRY.counter("desugar.cache_hits")
DESUGAR_CACHE_MISSES = REGISTRY.counter("desugar.cache_misses")
DESUGAR_DEPTH = REGISTRY.histogram("desugar.depth", DEFAULT_DEPTH_BUCKETS)
REDEX_DECOMPOSE_DEPTH = REGISTRY.histogram(
    "redex.decompose.depth", DEFAULT_DEPTH_BUCKETS
)
RESUGAR_CALLS = REGISTRY.counter("resugar.calls")
UNEXPAND_ATTEMPTS = REGISTRY.counter("resugar.unexpand_attempts")
RESUGAR_FAIL_PROPAGATIONS = REGISTRY.counter("resugar.fail_propagations")
RESUGAR_TAG_BLOCKED = REGISTRY.counter("resugar.tag_blocked")
TRACE_TRUNCATED_LINES = REGISTRY.counter("trace.truncated_lines")
MATCH_ATTEMPTS_PER_STEP = REGISTRY.histogram(
    "match.attempts_per_step", DEFAULT_DEPTH_BUCKETS
)

# Serving instruments (repro.server).  These move unconditionally — see
# the module docstring — and their latency buckets are in seconds,
# scaled for interactive time-to-first-step targets.
SERVER_TIME_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)
SERVER_SESSIONS_STARTED = REGISTRY.counter("server.sessions_started")
SERVER_SESSIONS_REJECTED = REGISTRY.counter("server.sessions_rejected")
SERVER_SESSIONS_ERRORED = REGISTRY.counter("server.sessions_errored")
SERVER_SESSIONS_CANCELLED = REGISTRY.counter("server.sessions_cancelled")
SERVER_SESSIONS_ACTIVE = REGISTRY.gauge("server.sessions_active")
SERVER_SESSIONS_PEAK = REGISTRY.gauge("server.sessions_peak")
SERVER_FRAMES_SENT = REGISTRY.counter("server.frames_sent")
SERVER_REQUESTS = REGISTRY.counter("server.requests")
SYNTH_EXAMPLES_HARVESTED = REGISTRY.counter("synth.examples_harvested")
SYNTH_CANDIDATES = REGISTRY.counter("synth.candidates")
SYNTH_ACCEPTED = REGISTRY.counter("synth.accepted")
SYNTH_REJECTED = REGISTRY.counter("synth.rejected")
SYNTH_RULES_INSTALLED = REGISTRY.counter("synth.rules_installed")
SYNTH_FUZZ_TRIALS = REGISTRY.counter("synth.fuzz_trials")
SYNTH_FUZZ_CRASHES = REGISTRY.counter("synth.fuzz_crashes")

# Persistent-cache instruments (repro.cache).  Unconditional, like the
# synth family: cache traffic is per-lift, and a corrupt-entry eviction
# must be recorded whether or not observability was enabled.
CACHE_LIFT_HITS = REGISTRY.counter("cache.lift_hits")
CACHE_LIFT_MISSES = REGISTRY.counter("cache.lift_misses")
CACHE_STORES = REGISTRY.counter("cache.stores")
CACHE_CORRUPT = REGISTRY.counter("cache.corrupt")
CACHE_MEMO_HYDRATED = REGISTRY.counter("cache.memo_hydrated")
CACHE_ERRORS = REGISTRY.counter("cache.errors")
SERVER_TTFS_SECONDS = REGISTRY.histogram(
    "server.ttfs_seconds", SERVER_TIME_BUCKETS
)


class RuleCounters:
    """The pre-bound per-rule instruments of one rule list.

    ``expansions[i]`` / ``unexpansions[i]`` / ``unexpand_failures[i]``
    are the counters of rule ``i``, named
    ``rule.<event>.<i>:<rule name>`` in :data:`REGISTRY` so snapshots
    (and cross-process merges, which key by name) attribute work to the
    sugar that caused it.
    """

    __slots__ = ("expansions", "unexpansions", "unexpand_failures")

    def __init__(self, names: Sequence[str]) -> None:
        self.expansions: Tuple[Counter, ...] = tuple(
            REGISTRY.counter(f"rule.expansions.{i}:{name}")
            for i, name in enumerate(names)
        )
        self.unexpansions: Tuple[Counter, ...] = tuple(
            REGISTRY.counter(f"rule.unexpansions.{i}:{name}")
            for i, name in enumerate(names)
        )
        self.unexpand_failures: Tuple[Counter, ...] = tuple(
            REGISTRY.counter(f"rule.unexpand_failures.{i}:{name}")
            for i, name in enumerate(names)
        )


# --- Prometheus text exposition -----------------------------------------

# rule.<event>.<index>:<rule name> — rendered as labels, not as a
# per-rule metric name, so dashboards can aggregate across rules.
_PER_RULE_NAME = re.compile(
    r"^rule\.(expansions|unexpansions|unexpand_failures)\.(\d+):(.*)$"
)
_PROM_UNSAFE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    """``lift.steps_total`` -> ``repro_lift_steps_total``."""
    return "repro_" + _PROM_UNSAFE.sub("_", name)


def _prom_counter_name(name: str) -> str:
    """Counter names carry the conventional ``_total`` suffix."""
    prom = _prom_name(name)
    return prom if prom.endswith("_total") else prom + "_total"


def _prom_label_value(value: str) -> str:
    """Escape a label value per the exposition format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _prom_number(value: Number) -> str:
    """Render a sample value (integers stay integral)."""
    if isinstance(value, float) and not value.is_integer():
        return repr(value)
    return str(int(value))


def _render_histogram(prom: str, hist: Histogram, out: List[str]) -> None:
    out.append(f"# TYPE {prom} histogram")
    cumulative = 0
    for edge, count in zip(hist.boundaries, hist.bucket_counts):
        cumulative += count
        out.append(f'{prom}_bucket{{le="{edge:g}"}} {cumulative}')
    out.append(f'{prom}_bucket{{le="+Inf"}} {hist.count}')
    out.append(f"{prom}_sum {_prom_number(hist.sum)}")
    out.append(f"{prom}_count {hist.count}")


def render_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """Render ``registry`` (default: the process-wide :data:`REGISTRY`)
    in the Prometheus text exposition format.

    Counters become ``repro_<name>_total``, gauges ``repro_<name>``,
    histograms the standard cumulative ``_bucket``/``_sum``/``_count``
    triple, and the per-rule counters one labelled series per rule:
    ``repro_rule_expansions_total{index="0",rule="Or"} 3``.  The result
    is what the server's ``/metrics`` endpoint serves.
    """
    registry = REGISTRY if registry is None else registry
    out: List[str] = []
    per_rule: Dict[str, List[Tuple[int, str, int]]] = {}
    for name, inst in sorted(registry.instruments().items()):
        match = _PER_RULE_NAME.match(name)
        if match is not None:
            event, index, rule = match.groups()
            per_rule.setdefault(event, []).append(
                (int(index), rule, inst.value)
            )
            continue
        if isinstance(inst, Counter):
            prom = _prom_counter_name(name)
            out.append(f"# TYPE {prom} counter")
            out.append(f"{prom} {_prom_number(inst.value)}")
        elif isinstance(inst, Gauge):
            prom = _prom_name(name)
            out.append(f"# TYPE {prom} gauge")
            out.append(f"{prom} {_prom_number(inst.value)}")
        else:
            _render_histogram(_prom_name(name), inst, out)
    for event in sorted(per_rule):
        prom = f"repro_rule_{event}_total"
        out.append(f"# TYPE {prom} counter")
        for index, rule, value in sorted(per_rule[event]):
            out.append(
                f'{prom}{{index="{index}",rule="{_prom_label_value(rule)}"}}'
                f" {_prom_number(value)}"
            )
    return "\n".join(out) + "\n"


_rule_counters: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def per_rule_counters(rules) -> RuleCounters:
    """The :class:`RuleCounters` for ``rules`` (a
    :class:`~repro.core.desugar.RuleList`), built once per rule list and
    cached on a weak key so dead rule lists do not pin instruments
    alive in the cache (the instruments themselves stay interned in
    :data:`REGISTRY`, as all instruments do)."""
    counters = _rule_counters.get(rules)
    if counters is None:
        counters = RuleCounters([rule.name for rule in rules.rules])
        _rule_counters[rules] = counters
    return counters
