"""Trace analysis: answer questions about a recorded lift.

The write side of the observability subsystem produces JSONL span
traces (:mod:`repro.obs.export`); this module is the read side's
analysis layer, shared by the ``python -m repro obs`` CLI family and
the test suite.  Everything here operates on plain record dicts — what
:func:`~repro.obs.export.read_trace` parses and
:func:`~repro.obs.export.merge_traces` merges — so single-process and
merged multi-process traces are analyzed identically.

Three questions, three entry points:

* :func:`summarize` — what happened?  Span counts and wall-clock by
  span name, job/worker attribution, per-step outcome totals, and the
  critical path (the longest root-to-leaf chain of spans).
* :func:`hot_rules` — which sugar rules did the work?  Merges the
  ``rule_stats`` tables the lift spans carry (expansion/unexpansion/
  failure counts per rule) across every job in the trace.
* :func:`skip_report` — why was each core step skipped?  Reads the
  provenance events (:mod:`repro.obs.provenance`) attached to
  ``lift.step`` spans and renders the recorded diagnosis: which rule's
  unexpansion failed where and why, or which tag check blocked the
  resugared term.

Each has a ``format_*`` companion producing the aligned-text rendering
the CLI prints; the analysis functions themselves return plain data.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.export import _record_key, build_tree

__all__ = [
    "summarize",
    "critical_path",
    "hot_rules",
    "skip_report",
    "format_report",
    "format_hot_rules",
    "format_skips",
]


def _attrs(record: Dict[str, object]) -> Dict[str, object]:
    attrs = record.get("attrs")
    return attrs if isinstance(attrs, dict) else {}


def _attribution(record: Dict[str, object]) -> Dict[str, object]:
    """The job/worker/trace-id fields a record carries (empty for
    single-process traces)."""
    return {
        key: record[key]
        for key in ("trace_id", "job", "worker")
        if key in record
    }


def summarize(records: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Aggregate a trace into one report dict.

    Keys: ``spans`` (total records), ``trace_ids``, ``jobs`` (sorted
    job ids, empty for in-process traces), ``workers`` (distinct
    worker pids), ``by_name`` (per span name: ``count`` and ``total``
    seconds), ``outcomes`` (per ``lift.step`` outcome totals),
    ``core_steps``, and ``critical_path`` (see :func:`critical_path`).
    """
    by_name: Dict[str, Dict[str, float]] = {}
    outcomes: Dict[str, int] = {}
    trace_ids = set()
    jobs = set()
    workers = set()
    for record in records:
        name = str(record["name"])
        entry = by_name.setdefault(name, {"count": 0, "total": 0.0})
        entry["count"] += 1
        entry["total"] += float(record.get("duration") or 0.0)
        if "trace_id" in record:
            trace_ids.add(record["trace_id"])
        if "job" in record:
            jobs.add(record["job"])
        if "worker" in record:
            workers.add(record["worker"])
        if name == "lift.step":
            outcome = _attrs(record).get("outcome")
            if outcome is not None:
                outcomes[str(outcome)] = outcomes.get(str(outcome), 0) + 1
    return {
        "spans": len(records),
        "trace_ids": sorted(trace_ids),
        "jobs": sorted(jobs),
        "workers": len(workers),
        "by_name": by_name,
        "outcomes": outcomes,
        "core_steps": by_name.get("lift.step", {}).get("count", 0),
        "critical_path": critical_path(records),
    }


def critical_path(
    records: Sequence[Dict[str, object]],
) -> List[Dict[str, object]]:
    """The longest root-to-leaf span chain, by duration.

    Starts at the longest-running root (each job's spans form their own
    trees in a merged trace) and at every level descends into the
    longest-running child.  Each row carries the span ``name``, its
    ``duration``, its ``self`` time (duration minus its children — the
    time spent in the span's own code), and its job attribution, so
    the report answers "where did the wall-clock go" at a glance.
    """
    records = list(records)
    roots, children = build_tree(records)
    by_key = {_record_key(record): record for record in records}

    def duration(key) -> float:
        return float(by_key[key].get("duration") or 0.0)

    path: List[Dict[str, object]] = []
    current = max(roots, key=duration, default=None)
    while current is not None:
        record = by_key[current]
        kids = children[current]
        self_time = duration(current) - sum(duration(k) for k in kids)
        row = {
            "name": record["name"],
            "duration": duration(current),
            "self": max(self_time, 0.0),
            "attrs": _attrs(record),
        }
        row.update(_attribution(record))
        path.append(row)
        current = max(kids, key=duration, default=None)
    return path


def hot_rules(
    records: Sequence[Dict[str, object]],
) -> List[Tuple[str, Dict[str, int]]]:
    """Per-rule activity, merged across every lift span in the trace.

    Lift spans carry a ``rule_stats`` attr (attached by
    :mod:`repro.obs.provenance`): per rule, how many times it expanded,
    unexpanded, and failed to unexpand.  This merges those tables by
    rule key (``"{index}:{name}"``) across jobs and returns the rows
    sorted by total activity, hottest first.
    """
    merged: Dict[str, Dict[str, int]] = {}
    for record in records:
        stats = _attrs(record).get("rule_stats")
        if not isinstance(stats, dict):
            continue
        for rule, row in stats.items():
            if not isinstance(row, dict):
                continue
            target = merged.setdefault(rule, {})
            for field, value in row.items():
                target[field] = target.get(field, 0) + int(value)
    return sorted(
        merged.items(),
        key=lambda item: (-sum(item[1].values()), item[0]),
    )


def skip_report(
    records: Sequence[Dict[str, object]],
) -> List[Dict[str, object]]:
    """Explain every skipped core step in the trace.

    Returns one row per ``lift.step`` span whose outcome is
    ``skipped``, in (job, step-index) order: the step ``index``, its
    job attribution, the raw provenance ``events`` recorded for the
    step, and a one-line human ``explanation`` naming the rule and the
    failure reason (or the tag check that blocked the term).
    """
    rows: List[Dict[str, object]] = []
    for record in records:
        if record["name"] != "lift.step":
            continue
        attrs = _attrs(record)
        if attrs.get("outcome") != "skipped":
            continue
        events = attrs.get("provenance")
        events = events if isinstance(events, list) else []
        row = {
            "index": attrs.get("index"),
            "events": events,
            "explanation": _explain_skip(events),
        }
        row.update(_attribution(record))
        rows.append(row)
    rows.sort(key=lambda row: (row.get("job") or 0, row["index"] or 0))
    return rows


def _explain_skip(events: List[Dict[str, object]]) -> str:
    """One line of English for a skipped step's provenance events."""
    for event in reversed(events):
        kind = event.get("event")
        if kind == "unexpand_failed":
            rule = event.get("rule")
            if rule is None:
                return "resugar failed (cached; diagnosis not recorded)"
            reason = event.get("reason") or "no match"
            where = event.get("path")
            cached = " [cached]" if event.get("cached") else ""
            at = f" at {where}" if where else ""
            return f"rule {rule}: unexpansion failed{at}: {reason}{cached}"
        if kind == "tag_blocked":
            if event.get("kind") == "opaque_body_tag":
                return (
                    "tag check blocked: an opaque body tag survived "
                    "resugaring (partially-evaluated sugar internals)"
                )
            return "tag check blocked: an unresolved head tag survived"
    return "no provenance recorded (was the trace written with provenance?)"


# --- text rendering (the `repro obs` CLI output) ----------------------


def _table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> List[str]:
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
        )
    return lines


def _ms(seconds: object) -> str:
    return f"{float(seconds) * 1000:.3f}ms"


def format_report(summary: Dict[str, object]) -> str:
    """Render :func:`summarize` output for the terminal."""
    lines = [
        f"spans: {summary['spans']}"
        + (
            f"   jobs: {len(summary['jobs'])}"
            f"   workers: {summary['workers']}"
            if summary["jobs"]
            else ""
        )
    ]
    if summary["trace_ids"]:
        lines.append("trace ids: " + ", ".join(summary["trace_ids"]))
    if summary["outcomes"]:
        outcomes = ", ".join(
            f"{name}={count}"
            for name, count in sorted(summary["outcomes"].items())
        )
        lines.append(f"core steps: {summary['core_steps']} ({outcomes})")
    lines.append("")
    lines.extend(
        _table(
            ("span", "count", "total"),
            [
                (name, entry["count"], _ms(entry["total"]))
                for name, entry in sorted(
                    summary["by_name"].items(),
                    key=lambda item: -item[1]["total"],
                )
            ],
        )
    )
    path = summary["critical_path"]
    if path:
        lines.append("")
        lines.append("critical path (longest root, longest child at "
                     "each level):")
        for depth, row in enumerate(path):
            job = f" [job {row['job']}]" if "job" in row else ""
            detail = ""
            index = row["attrs"].get("index")
            if index is not None:
                detail = f" #{index}"
            outcome = row["attrs"].get("outcome")
            if outcome is not None:
                detail += f" ({outcome})"
            lines.append(
                f"  {'  ' * depth}{row['name']}{detail}{job}  "
                f"total {_ms(row['duration'])}, self {_ms(row['self'])}"
            )
    return "\n".join(lines)


def format_hot_rules(rows: List[Tuple[str, Dict[str, int]]]) -> str:
    """Render :func:`hot_rules` output for the terminal."""
    if not rows:
        return (
            "no rule activity recorded (trace written without "
            "provenance, or nothing expanded)"
        )
    return "\n".join(
        _table(
            ("rule", "expansions", "unexpansions", "unexpand_failures"),
            [
                (
                    rule,
                    stats.get("expansions", 0),
                    stats.get("unexpansions", 0),
                    stats.get("unexpand_failures", 0),
                )
                for rule, stats in rows
            ],
        )
    )


def format_skips(
    rows: List[Dict[str, object]], core_steps: Optional[int] = None
) -> str:
    """Render :func:`skip_report` output for the terminal."""
    if not rows:
        return "no skipped steps: every core step resugared"
    lines = []
    if core_steps:
        lines.append(
            f"{len(rows)} of {core_steps} core steps skipped:"
        )
    for row in rows:
        job = f"job {row['job']} " if "job" in row else ""
        lines.append(
            f"  {job}step {row['index']}: {row['explanation']}"
        )
    return "\n".join(lines)
