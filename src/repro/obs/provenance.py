"""Resugar-decision provenance: *why* each core step looked the way it did.

The paper's Abstraction and Coverage properties are judged by looking at
which core steps resugar and which are skipped (§6) — but counters alone
cannot say *why* a step was skipped.  This module records, per core
step, the per-rule outcome of every resugar decision as structured
events attached to the step's ``lift.step`` span:

=====================  ==============================================
``event``              meaning
=====================  ==============================================
``expanded``           a rule's LHS matched during desugaring
``unexpanded``         a head tag's rule matched back successfully
``unexpand_failed``    unification against the rule's RHS failed;
                       ``path``/``reason`` locate and explain the
                       innermost mismatch (via
                       :func:`repro.core.matching.match_explain`)
``unexpand_failed`` +  the failure was answered from the
``cached: true``       :class:`~repro.core.incremental.ResugarCache`
                       memo — the recorded path/reason are those of
                       the original failure
``tag_blocked``        resugaring succeeded structurally but an opaque
                       body tag or a head tag survived (``kind`` says
                       which); Abstraction forbids showing the term
``deduped``            the step resugared but equalled the previous
                       emitted surface term
=====================  ==============================================

Alongside the events, per-rule counters
(:func:`repro.obs.metrics.per_rule_counters`) and a per-run accumulation
(:class:`RunProvenance`, attached to the ``lift`` span as
``rule_stats``) make the same attribution available in metric snapshots
— which merge across worker processes by name, so batch lifts aggregate
per-rule totals for free.

Everything here is called **only from inside ``if _obs.enabled:``
branches** of the instrumented modules (:mod:`repro.core.desugar`,
:mod:`repro.core.incremental`, :mod:`repro.engine.stream`): the
disabled path pays nothing for provenance beyond the branches that
already existed, which is how the <3% overhead bound survives
(``benchmarks/bench_obs_overhead.py``).  Scopes are thread-local, so
concurrent lifts on different threads attribute independently.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from repro.core.matching import match_explain
from repro.obs.metrics import (
    RESUGAR_TAG_BLOCKED,
    UNEXPAND_ATTEMPTS,
    per_rule_counters,
)
from repro.obs.trace import Span

__all__ = [
    "RunProvenance",
    "begin_run",
    "end_run",
    "step_scope",
    "note",
    "current_events",
    "on_expand",
    "on_unexpand",
    "on_cached_fail",
    "on_tag_blocked",
    "on_dedup",
]

_tls = threading.local()


def _runs() -> List["RunProvenance"]:
    runs = getattr(_tls, "runs", None)
    if runs is None:
        runs = _tls.runs = []
    return runs


def _steps() -> List[List[dict]]:
    steps = getattr(_tls, "steps", None)
    if steps is None:
        steps = _tls.steps = []
    return steps


class RunProvenance:
    """Per-rule outcome totals over one lift run.

    Indexed by rule position in the run's rule list; rendered by
    :meth:`rule_stats` as a name-keyed dict with all-zero rows elided —
    the ``rule_stats`` attr of the run's ``lift`` span.
    """

    __slots__ = ("rules", "expansions", "unexpansions", "unexpand_failures")

    def __init__(self, rules) -> None:
        n = len(rules)
        self.rules = rules
        self.expansions = [0] * n
        self.unexpansions = [0] * n
        self.unexpand_failures = [0] * n

    def rule_stats(self) -> Dict[str, Dict[str, int]]:
        stats: Dict[str, Dict[str, int]] = {}
        for i, rule in enumerate(self.rules.rules):
            row = {
                "expansions": self.expansions[i],
                "unexpansions": self.unexpansions[i],
                "unexpand_failures": self.unexpand_failures[i],
            }
            if any(row.values()):
                stats[f"{i}:{rule.name}"] = row
        return stats


def begin_run(rules) -> RunProvenance:
    """Open a run scope accumulating per-rule totals for ``rules``."""
    run = RunProvenance(rules)
    _runs().append(run)
    return run


def end_run(run: RunProvenance, lift_span: Optional[Span] = None) -> None:
    """Close ``run`` (removing it by identity — two lift generators
    consumed in lockstep interleave their scopes) and attach its
    ``rule_stats`` to the run's ``lift`` span, if there is one."""
    runs = _runs()
    for i in range(len(runs) - 1, -1, -1):
        if runs[i] is run:
            del runs[i]
            break
    if lift_span is not None:
        lift_span.attrs["rule_stats"] = run.rule_stats()


def _run_for(rules) -> Optional[RunProvenance]:
    for run in reversed(_runs()):
        if run.rules is rules:
            return run
    return None


@contextmanager
def step_scope(step_span: Optional[Span]) -> Iterator[List[dict]]:
    """Collect the provenance events of one core step.

    Yields the (initially empty) event list; on exit it is attached to
    the step's ``lift.step`` span as the ``provenance`` attr (when any
    event was recorded).
    """
    events: List[dict] = []
    steps = _steps()
    steps.append(events)
    try:
        yield events
    finally:
        for i in range(len(steps) - 1, -1, -1):
            if steps[i] is events:
                del steps[i]
                break
        if events and step_span is not None:
            step_span.attrs["provenance"] = events


def note(event: dict) -> None:
    """Record ``event`` against the innermost open step scope (dropped
    silently outside one — e.g. a bare ``resugar()`` call)."""
    steps = getattr(_tls, "steps", None)
    if steps:
        steps[-1].append(event)


def current_events() -> Optional[List[dict]]:
    """The innermost open step scope's event list, or ``None``."""
    steps = getattr(_tls, "steps", None)
    return steps[-1] if steps else None


def on_expand(rules, index: int) -> None:
    """One rule expansion happened during desugaring."""
    per_rule_counters(rules).expansions[index].inc()
    run = _run_for(rules)
    if run is not None:
        run.expansions[index] += 1


def on_unexpand(rules, index: int, term, ok: bool) -> dict:
    """One head-tag unexpansion was attempted; diagnose failures.

    ``term`` is the (already recursively resugared) body the rule's RHS
    was matched against.  Returns the recorded event dict so the
    incremental cache can keep it for cached-failure reporting.
    """
    UNEXPAND_ATTEMPTS.inc()
    counters = per_rule_counters(rules)
    run = _run_for(rules)
    rule = rules.rules[index]
    if ok:
        counters.unexpansions[index].inc()
        if run is not None:
            run.unexpansions[index] += 1
        event = {"event": "unexpanded", "rule": rule.name, "rule_index": index}
    else:
        counters.unexpand_failures[index].inc()
        if run is not None:
            run.unexpand_failures[index] += 1
        _, path, reason = match_explain(
            term, rule.tagged_rhs, lenient_pattern_tags=True
        )
        event = {
            "event": "unexpand_failed",
            "rule": rule.name,
            "rule_index": index,
            "path": path,
            "reason": reason,
        }
    note(event)
    return event


def on_cached_fail(info: Optional[dict]) -> None:
    """A memoized resugar failure was hit: re-report the original
    failure's event (``info``, as returned by :func:`on_unexpand`)
    against the current step, marked ``cached``."""
    if info is None:
        # A failure with no stored diagnosis (e.g. an ill-formed term);
        # still record that the skip came from the cache.
        note({"event": "unexpand_failed", "cached": True})
        return
    event = dict(info)
    event["cached"] = True
    note(event)


def on_tag_blocked(kind: str) -> None:
    """Resugaring produced a term but an opaque tag survived the
    Abstraction check; ``kind`` is ``"opaque_body_tag"`` or
    ``"head_tag"``."""
    RESUGAR_TAG_BLOCKED.inc()
    note({"event": "tag_blocked", "kind": kind})


def on_dedup() -> None:
    """The step resugared but duplicated the previous surface term."""
    note({"event": "deduped"})
