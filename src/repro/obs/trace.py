"""Lightweight span tracing for the lift pipeline.

A *span* is a named, timed unit of work.  Spans nest: entering a span
inside another makes the inner one a child of the outer, tracked through
a thread-local context stack, so a whole lift produces a tree rooted at
the ``lift`` span with per-step and per-phase children.

Usage::

    from repro.obs import enable, span
    from repro.obs.export import JsonlExporter

    enable(sinks=[JsonlExporter("trace.jsonl")])
    with span("lift", backend="lambda"):
        with span("lift.step", index=0):
            ...

Design constraints, in order:

1. **The disabled path is a no-op.**  :func:`span` checks the
   :mod:`repro.obs._state` flag first and yields ``None`` without
   allocating, timing, or touching the context stack.
2. **Exact nesting.**  Timing uses ``time.perf_counter`` and a child
   span's interval is contained in its parent's, so a child's duration
   never exceeds its parent's — the property-test suite pins this.
3. **Pluggable output.**  Finished spans are handed to every registered
   :class:`Sink` (see :class:`repro.obs.export.JsonlExporter`); spans
   are emitted on *exit*, so children are emitted before their parents
   (post-order) and a crashed process loses only open spans.

Span ids are unique per process (a shared atomic counter), parent ids
refer to the enclosing span at entry time, and the id graph is acyclic
by construction: a parent's id is always allocated before its
children's.
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Protocol

from repro.obs import _state

__all__ = [
    "Span",
    "Sink",
    "span",
    "current_span",
    "add_sink",
    "remove_sink",
    "clear_sinks",
    "sinks",
]


class Span:
    """One named, timed unit of work.

    ``attrs`` is a plain dict and stays mutable while the span is open,
    so instrumentation can attach facts discovered mid-flight (e.g. a
    lift step's outcome); sinks see the final contents.
    """

    __slots__ = ("span_id", "parent_id", "name", "attrs", "start", "end")

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        attrs: Dict[str, object],
        start: float,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.start = start
        self.end: Optional[float] = None

    @property
    def duration(self) -> float:
        """Seconds from entry to exit (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span(id={self.span_id}, parent={self.parent_id}, "
            f"name={self.name!r}, duration={self.duration:.6f})"
        )


class Sink(Protocol):
    """Anything that consumes finished spans."""

    def emit(self, span: Span) -> None: ...


_ids = itertools.count(1)  # CPython: next() on count is atomic enough
_sinks: List[Sink] = []
_context = threading.local()


def _stack() -> List[Span]:
    stack = getattr(_context, "stack", None)
    if stack is None:
        stack = _context.stack = []
    return stack


def add_sink(sink: Sink) -> Sink:
    """Register ``sink`` to receive every finished span; returns it."""
    _sinks.append(sink)
    return sink


def remove_sink(sink: Sink) -> None:
    """Unregister ``sink`` (no error if it was never registered)."""
    try:
        _sinks.remove(sink)
    except ValueError:
        pass


def clear_sinks() -> None:
    """Unregister every sink (tests and teardown)."""
    _sinks.clear()


def sinks() -> List[Sink]:
    """The currently registered sinks (a copy)."""
    return list(_sinks)


def current_span() -> Optional[Span]:
    """The innermost open span on this thread, or ``None``."""
    stack = getattr(_context, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def span(name: str, **attrs: object) -> Iterator[Optional[Span]]:
    """Open a span named ``name``; yields the :class:`Span` (or ``None``
    when observability is disabled).

    The span's parent is whatever span is innermost on this thread at
    entry.  On exit the span is closed, popped, and emitted to every
    registered sink.  Exceptions propagate; the span still closes.
    """
    if not _state.enabled:
        yield None
        return
    stack = _stack()
    parent_id = stack[-1].span_id if stack else None
    s = Span(next(_ids), parent_id, name, attrs, perf_counter())
    stack.append(s)
    try:
        yield s
    finally:
        s.end = perf_counter()
        # Remove by identity rather than popping blindly: two lift
        # generators consumed in lockstep on one thread can interleave
        # their exits, and popping the wrong frame would corrupt the
        # context for everything after.
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is s:
                del stack[i]
                break
        for sink in list(_sinks):
            sink.emit(s)
