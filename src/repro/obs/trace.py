"""Lightweight span tracing for the lift pipeline.

A *span* is a named, timed unit of work.  Spans nest: entering a span
inside another makes the inner one a child of the outer, tracked through
a thread-local context stack, so a whole lift produces a tree rooted at
the ``lift`` span with per-step and per-phase children.

Usage::

    from repro.obs import enable, span
    from repro.obs.export import JsonlExporter

    enable(sinks=[JsonlExporter("trace.jsonl")])
    with span("lift", backend="lambda"):
        with span("lift.step", index=0):
            ...

Design constraints, in order:

1. **The disabled path is a no-op.**  :func:`span` checks the
   :mod:`repro.obs._state` flag first and yields ``None`` without
   allocating, timing, or touching the context stack.
2. **Exact nesting.**  Timing uses ``time.perf_counter`` and a child
   span's interval is contained in its parent's, so a child's duration
   never exceeds its parent's — the property-test suite pins this.
3. **Pluggable output.**  Finished spans are handed to every registered
   :class:`Sink` (see :class:`repro.obs.export.JsonlExporter`); spans
   are emitted on *exit*, so children are emitted before their parents
   (post-order) and a crashed process loses only open spans.

Span ids are unique per process (a shared atomic counter), parent ids
refer to the enclosing span at entry time, and the id graph is acyclic
by construction: a parent's id is always allocated before its
children's.

Because span ids are only unique *per process*, spans additionally
carry an optional :class:`TraceContext` — a trace id plus job/worker
attribution — stamped at creation time from the process-level current
context (:func:`set_trace_context`).  The parallel batch engine sets it
per job so per-worker span trees can be merged into one coherent
cross-process trace (:func:`repro.obs.export.merge_traces`).
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Protocol

from repro.obs import _state

__all__ = [
    "Span",
    "Sink",
    "TraceContext",
    "span",
    "current_span",
    "add_sink",
    "remove_sink",
    "clear_sinks",
    "sinks",
    "set_trace_context",
    "current_trace_context",
]


@dataclass(frozen=True)
class TraceContext:
    """Cross-process attribution for the spans of one unit of work.

    ``trace_id`` names the whole distributed trace (all jobs of one
    batch share it); ``job`` is the submission index of the batch job
    the span belongs to (``None`` outside batch lifts); ``worker`` is
    the pid of the producing process.  Span ids remain per-process, so
    ``(job, worker, span_id)`` is the globally unique span key —
    exactly how :func:`repro.obs.export.build_tree` scopes ids when
    these fields are present.
    """

    trace_id: str
    job: Optional[int] = None
    worker: Optional[int] = None


class Span:
    """One named, timed unit of work.

    ``attrs`` is a plain dict and stays mutable while the span is open,
    so instrumentation can attach facts discovered mid-flight (e.g. a
    lift step's outcome); sinks see the final contents.
    """

    __slots__ = (
        "span_id", "parent_id", "name", "attrs", "start", "end", "context",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        attrs: Dict[str, object],
        start: float,
        context: Optional[TraceContext] = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.start = start
        self.end: Optional[float] = None
        self.context = context

    @property
    def duration(self) -> float:
        """Seconds from entry to exit (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span(id={self.span_id}, parent={self.parent_id}, "
            f"name={self.name!r}, duration={self.duration:.6f})"
        )


class Sink(Protocol):
    """Anything that consumes finished spans."""

    def emit(self, span: Span) -> None: ...


_ids = itertools.count(1)  # CPython: next() on count is atomic enough
_sinks: List[Sink] = []
_context = threading.local()
_trace_context: Optional[TraceContext] = None


def set_trace_context(
    context: Optional[TraceContext],
) -> Optional[TraceContext]:
    """Install ``context`` as the process-level trace context (stamped
    onto every span opened from now on); returns the previous context so
    callers can restore it.  ``None`` clears."""
    global _trace_context
    previous = _trace_context
    _trace_context = context
    return previous


def current_trace_context() -> Optional[TraceContext]:
    """The trace context new spans are stamped with (or ``None``)."""
    return _trace_context


def _stack() -> List[Span]:
    stack = getattr(_context, "stack", None)
    if stack is None:
        stack = _context.stack = []
    return stack


def add_sink(sink: Sink) -> Sink:
    """Register ``sink`` to receive every finished span; returns it."""
    _sinks.append(sink)
    return sink


def remove_sink(sink: Sink) -> None:
    """Unregister ``sink`` (no error if it was never registered)."""
    try:
        _sinks.remove(sink)
    except ValueError:
        pass


def clear_sinks() -> None:
    """Unregister every sink (tests and teardown)."""
    _sinks.clear()


def sinks() -> List[Sink]:
    """The currently registered sinks (a copy)."""
    return list(_sinks)


def current_span() -> Optional[Span]:
    """The innermost open span on this thread, or ``None``."""
    stack = getattr(_context, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def span(name: str, **attrs: object) -> Iterator[Optional[Span]]:
    """Open a span named ``name``; yields the :class:`Span` (or ``None``
    when observability is disabled).

    The span's parent is whatever span is innermost on this thread at
    entry.  On exit the span is closed, popped, and emitted to every
    registered sink.  Exceptions propagate; the span still closes.
    """
    if not _state.enabled:
        yield None
        return
    stack = _stack()
    parent_id = stack[-1].span_id if stack else None
    s = Span(
        next(_ids), parent_id, name, attrs, perf_counter(), _trace_context
    )
    stack.append(s)
    try:
        yield s
    finally:
        s.end = perf_counter()
        # Remove by identity rather than popping blindly: two lift
        # generators consumed in lockstep on one thread can interleave
        # their exits, and popping the wrong frame would corrupt the
        # context for everything after.
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is s:
                del stack[i]
                break
        for sink in list(_sinks):
            sink.emit(s)
