"""The observability master switch, isolated so hot paths can test it
with a single module-attribute load.

Instrumented code imports this module once and guards every
instrumentation site with ``if _state.enabled:`` — when observability is
off (the default) the entire obs layer costs one predictable branch per
site.  The benchmark suite (``benchmarks/bench_obs_overhead.py``) holds
that cost to <3% of a 500+-step lift.

Thread-safety contract
----------------------

Reading :data:`enabled` is always safe and lock-free (a single module
attribute load of a bool — atomic in CPython).  *Transitions* must go
through the three functions below, which serialize on a module lock and
compute the flag from two pieces of state:

* a **scope count** (:func:`acquire` / :func:`release`) — one per active
  :class:`repro.obs.Observability` activation, so concurrent scopes on
  different threads compose: the flag stays up until the *last* scope
  exits, instead of each scope stomping whatever the previous one saved
  (the pre-lock bug this contract replaces);
* a **pin** (:func:`pin`) — the process-wide ``obs.enable()`` /
  ``obs.disable()`` toggle.

``enabled`` is true iff the pin is set or at least one scope is active.
A ``disable()`` while scopes are active therefore drops only the pin;
the flag stays up until those scopes exit.  Never poke ``enabled``
directly.

Nothing else lives here on purpose: this module must import instantly
and depend on nothing beyond :mod:`threading`, because
:mod:`repro.core.matching` and friends import it at module load.
"""

import threading

enabled: bool = False

_lock = threading.Lock()
_scopes: int = 0
_pinned: bool = False


def acquire() -> None:
    """Enter one enabled scope (thread-safe, reentrant across scopes)."""
    global _scopes, enabled
    with _lock:
        _scopes += 1
        enabled = True


def release() -> None:
    """Exit one enabled scope; the flag drops only when no scope remains
    active and the process-wide pin is off."""
    global _scopes, enabled
    with _lock:
        if _scopes > 0:
            _scopes -= 1
        enabled = _pinned or _scopes > 0


def pin(on: bool) -> None:
    """Set or clear the process-wide enable (``obs.enable``/``disable``)."""
    global _pinned, enabled
    with _lock:
        _pinned = on
        enabled = _pinned or _scopes > 0
