"""The observability master switch, isolated so hot paths can test it
with a single module-attribute load.

Instrumented code imports this module once and guards every
instrumentation site with ``if _state.enabled:`` — when observability is
off (the default) the entire obs layer costs one predictable branch per
site.  The benchmark suite (``benchmarks/bench_obs_overhead.py``) holds
that cost to <3% of a 500+-step lift.

Nothing else lives here on purpose: this module must import instantly
and depend on nothing, because :mod:`repro.core.matching` and friends
import it at module load.  Toggle through :func:`repro.obs.enable` /
:func:`repro.obs.disable`, not by poking the attribute.
"""

enabled: bool = False
