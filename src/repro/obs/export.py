"""JSONL span export, trace reconstruction, and cross-process merging.

:class:`JsonlExporter` is the bundled :class:`~repro.obs.trace.Sink`: it
serializes each finished span as one JSON object per line.  The record
schema (``repro-obs-trace/2``)::

    {"span_id": 7, "parent_id": 3, "name": "lift.step",
     "attrs": {"index": 4, "outcome": "emitted"},
     "start": 123.456789, "duration": 0.000321,
     "trace_id": "a1b2...", "job": 3, "worker": 4711}

``span_id`` is unique per process; ``parent_id`` is ``null`` for roots;
``start`` is a ``time.perf_counter`` timestamp (meaningful only relative
to other spans in the same process); ``duration`` is seconds.  The last
three fields are the span's :class:`~repro.obs.trace.TraceContext` and
appear only when one was set (batch lifts set it per job); traces
written without a context keep the v1 schema exactly.  Spans are
written post-order (children before parents), so a truncated file loses
only ancestors of the last open spans, never a child's parent-id
referent... more precisely: a parent referenced by an already-written
child may be missing at the *end* of a truncated file, which
:func:`build_tree` reports as a dangling root.

:func:`read_trace` and :func:`build_tree` are the read side, used by the
property-test harness and the ``repro obs`` analysis CLI.
:func:`read_trace` tolerates a truncated *final* line (the partial
write of a killed process) by dropping it and moving the
``trace.truncated_lines`` counter; malformed lines anywhere else still
raise.  :func:`build_tree` handles multi-root, multi-process traces:
when records carry job/worker attribution, span ids are scoped to
``(job, worker, span_id)`` so per-process id collisions cannot alias.

:class:`SpanCollector` is the in-memory sink the parallel engine
attaches per job: it collects plain record dicts (picklable), which
travel back to the parent on the job's outcome event and are merged
into one coherent trace by :func:`merge_traces`.
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.obs.metrics import TRACE_TRUNCATED_LINES
from repro.obs.trace import Span

__all__ = [
    "JsonlExporter",
    "SpanCollector",
    "span_record",
    "read_trace",
    "write_trace",
    "build_tree",
    "merge_traces",
]

_SCHEMA_KEYS = ("span_id", "name", "start", "duration")


def _jsonable(value: object) -> object:
    """Coerce an attr value to something JSON can carry.  Primitives
    pass through, containers recurse (provenance events are lists of
    dicts), and other rich objects (terms) degrade to their repr."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return repr(value)


def span_record(span: Span) -> Dict[str, object]:
    """Serialize one finished span to its (JSON-safe, picklable) record
    dict — the shared write path of every bundled sink."""
    record: Dict[str, object] = {
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "attrs": {k: _jsonable(v) for k, v in span.attrs.items()},
        "start": span.start,
        "duration": span.duration,
    }
    context = span.context
    if context is not None:
        record["trace_id"] = context.trace_id
        if context.job is not None:
            record["job"] = context.job
        if context.worker is not None:
            record["worker"] = context.worker
    return record


class JsonlExporter:
    """Write finished spans to a file as JSON Lines.

    ``destination`` may be a path (opened lazily, truncated) or any
    object with a ``write`` method (left open on :meth:`close`).
    Usable as a context manager.
    """

    def __init__(self, destination: Union[str, Path, io.TextIOBase]) -> None:
        if hasattr(destination, "write"):
            self._file = destination
            self._owns_file = False
            self.path: Optional[Path] = None
        else:
            self.path = Path(destination)
            self._file = None
            self._owns_file = True
        self.emitted = 0

    def emit(self, span: Span) -> None:
        if self._file is None:
            self._file = open(self.path, "w")
        self._file.write(
            json.dumps(span_record(span), separators=(",", ":")) + "\n"
        )
        self.emitted += 1

    def flush(self) -> None:
        if self._file is not None:
            self._file.flush()

    def close(self) -> None:
        if self._file is not None and self._owns_file:
            self._file.close()
            self._file = None

    def __enter__(self) -> "JsonlExporter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SpanCollector:
    """Collect finished spans as record dicts, in memory.

    The records are exactly what :class:`JsonlExporter` would have
    written, but held as plain picklable dicts — the form in which a
    batch job's span tree crosses the process boundary back to the
    parent (``BatchLifted.spans`` / ``JobError.spans``).
    """

    def __init__(self) -> None:
        self.records: List[Dict[str, object]] = []

    def emit(self, span: Span) -> None:
        self.records.append(span_record(span))


def read_trace(
    source: Union[str, Path, Iterable[str]],
    tolerate_truncation: bool = True,
) -> List[Dict[str, object]]:
    """Parse a JSONL trace into a list of record dicts.

    ``source`` is a path or an iterable of lines.  Every non-blank line
    must be a complete JSON object with the schema fields; a malformed
    line raises ``ValueError`` naming the line number — except the
    *final* non-blank line, which (by default) is dropped instead: a
    worker killed mid-write leaves exactly one partial trailing line,
    and losing its one span beats losing the whole trace.  Each dropped
    line moves the ``trace.truncated_lines`` warning counter (always,
    observability flag or not — trace reading is analysis, not a hot
    path).  Pass ``tolerate_truncation=False`` to restore strict mode.
    """
    if isinstance(source, (str, Path)):
        lines: List[str] = Path(source).read_text().splitlines()
    else:
        lines = list(source)
    last_content = max(
        (i for i, line in enumerate(lines, start=1) if line.strip()),
        default=0,
    )

    def malformed(lineno: int, problem: str, cause=None):
        if tolerate_truncation and lineno == last_content:
            TRACE_TRUNCATED_LINES.inc()
            return True
        error = ValueError(f"trace line {lineno} {problem}")
        if cause is not None:
            raise error from cause
        raise error

    records = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            malformed(lineno, f"is not JSON: {exc}", exc)
            continue
        if not isinstance(record, dict) or any(
            key not in record for key in _SCHEMA_KEYS
        ):
            missing = (
                [k for k in _SCHEMA_KEYS if k not in record]
                if isinstance(record, dict)
                else list(_SCHEMA_KEYS)
            )
            malformed(lineno, f"lacks {missing}")
            continue
        records.append(record)
    return records


def write_trace(
    records: Iterable[Dict[str, object]],
    destination: Union[str, Path, io.TextIOBase],
) -> int:
    """Write record dicts as a JSONL trace file (the inverse of
    :func:`read_trace`); returns the number of records written."""
    count = 0
    if hasattr(destination, "write"):
        for record in records:
            destination.write(json.dumps(record, separators=(",", ":")) + "\n")
            count += 1
        return count
    with open(destination, "w") as handle:
        for record in records:
            handle.write(json.dumps(record, separators=(",", ":")) + "\n")
            count += 1
    return count


def _record_key(record: Dict[str, object]):
    """The globally unique id of a record: the bare ``span_id`` for
    single-process traces, scoped by ``(job, worker)`` when the record
    carries cross-process attribution (ids are only unique per
    process)."""
    job = record.get("job")
    worker = record.get("worker")
    if job is None and worker is None:
        return record["span_id"]
    return (job, worker, record["span_id"])


def build_tree(
    records: Iterable[Dict[str, object]],
) -> Tuple[List[object], Dict[object, List[object]]]:
    """Reconstruct the span forest from exported records.

    Returns ``(roots, children)`` where ``roots`` lists span keys with
    no (present) parent and ``children`` maps a span key to its children
    in emission order.  For single-process traces the keys are the plain
    integer span ids; records carrying job/worker attribution are keyed
    ``(job, worker, span_id)`` so a multi-process trace — several
    workers, each with its own id counter — reconstructs without
    aliasing, and parent links resolve within the producing process
    only.  Raises ``ValueError`` on duplicate span keys, on a
    self-parenting span, or if the parent links contain a cycle —
    impossible for traces produced by :mod:`repro.obs.trace`, which is
    exactly why the property suite asserts it.
    """
    by_key: Dict[object, Dict[str, object]] = {}
    for record in records:
        key = _record_key(record)
        if key in by_key:
            raise ValueError(f"duplicate span id {key}")
        by_key[key] = record
    roots: List[object] = []
    children: Dict[object, List[object]] = {key: [] for key in by_key}
    for key, record in by_key.items():
        parent_id = record.get("parent_id")
        if parent_id is None:
            roots.append(key)
            continue
        parent_key = (
            parent_id
            if isinstance(key, int)
            else (key[0], key[1], parent_id)
        )
        if parent_key == key:
            raise ValueError(f"span {key} is its own parent")
        if parent_key not in by_key:
            roots.append(key)
        else:
            children[parent_key].append(key)
    # Cycle check: every span must be reachable from a root.
    seen = 0
    stack = list(roots)
    while stack:
        node = stack.pop()
        seen += 1
        stack.extend(children[node])
    if seen != len(by_key):
        raise ValueError("span parent links contain a cycle")
    return roots, children


def merge_traces(
    traces: Iterable[Sequence[Dict[str, object]]],
) -> List[Dict[str, object]]:
    """Merge per-job span record lists into one coherent trace.

    Each element of ``traces`` is one job's records (in that job's
    emission order — what :class:`SpanCollector` collected, or
    :func:`read_trace` read).  Span ids are remapped to a fresh global
    sequence (per-process ids collide across workers), parent links are
    rewritten through the same map, and job/worker/trace-id attribution
    is preserved verbatim, so the result is directly analyzable with
    :func:`build_tree` and byte-comparable across worker counts modulo
    ids, timings, and attribution.  A parent missing from its job's
    records (truncated trace) leaves the child a dangling root, exactly
    as :func:`build_tree` treats it.
    """
    merged: List[Dict[str, object]] = []
    next_id = 1
    for records in traces:
        id_map: Dict[object, int] = {}
        for record in records:
            id_map[record["span_id"]] = next_id
            next_id += 1
        for record in records:
            remapped = dict(record)
            remapped["span_id"] = id_map[record["span_id"]]
            parent_id = record.get("parent_id")
            remapped["parent_id"] = (
                id_map.get(parent_id) if parent_id is not None else None
            )
            merged.append(remapped)
    return merged
