"""JSONL span export and trace reconstruction.

:class:`JsonlExporter` is the bundled :class:`~repro.obs.trace.Sink`: it
serializes each finished span as one JSON object per line.  The record
schema (``repro-obs-trace/1``)::

    {"span_id": 7, "parent_id": 3, "name": "lift.step",
     "attrs": {"index": 4, "outcome": "emitted"},
     "start": 123.456789, "duration": 0.000321}

``span_id`` is unique per process; ``parent_id`` is ``null`` for roots;
``start`` is a ``time.perf_counter`` timestamp (meaningful only relative
to other spans in the same process); ``duration`` is seconds.  Spans are
written post-order (children before parents), so a truncated file loses
only ancestors of the last open spans, never a child's parent-id
referent... more precisely: a parent referenced by an already-written
child may be missing at the *end* of a truncated file, which
:func:`build_tree` reports as a dangling root.

:func:`read_trace` and :func:`build_tree` are the read side, used by the
property-test harness to check that an exported trace reconstructs the
exact span tree that produced it.
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.obs.trace import Span

__all__ = ["JsonlExporter", "read_trace", "build_tree"]


def _jsonable(value: object) -> object:
    """Coerce an attr value to something JSON can carry (terms and other
    rich objects degrade to their repr)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


class JsonlExporter:
    """Write finished spans to a file as JSON Lines.

    ``destination`` may be a path (opened lazily, truncated) or any
    object with a ``write`` method (left open on :meth:`close`).
    Usable as a context manager.
    """

    def __init__(self, destination: Union[str, Path, io.TextIOBase]) -> None:
        if hasattr(destination, "write"):
            self._file = destination
            self._owns_file = False
            self.path: Optional[Path] = None
        else:
            self.path = Path(destination)
            self._file = None
            self._owns_file = True
        self.emitted = 0

    def emit(self, span: Span) -> None:
        if self._file is None:
            self._file = open(self.path, "w")
        record = {
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "name": span.name,
            "attrs": {k: _jsonable(v) for k, v in span.attrs.items()},
            "start": span.start,
            "duration": span.duration,
        }
        self._file.write(json.dumps(record, separators=(",", ":")) + "\n")
        self.emitted += 1

    def flush(self) -> None:
        if self._file is not None:
            self._file.flush()

    def close(self) -> None:
        if self._file is not None and self._owns_file:
            self._file.close()
            self._file = None

    def __enter__(self) -> "JsonlExporter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_trace(
    source: Union[str, Path, Iterable[str]],
) -> List[Dict[str, object]]:
    """Parse a JSONL trace into a list of record dicts.

    ``source`` is a path or an iterable of lines.  Every non-blank line
    must be a complete JSON object with the schema fields; a malformed
    line raises ``ValueError`` naming the line number.
    """
    if isinstance(source, (str, Path)):
        lines: Iterable[str] = Path(source).read_text().splitlines()
    else:
        lines = source
    records = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"trace line {lineno} is not JSON: {exc}") from exc
        for key in ("span_id", "name", "start", "duration"):
            if key not in record:
                raise ValueError(f"trace line {lineno} lacks {key!r}")
        records.append(record)
    return records


def build_tree(
    records: Iterable[Dict[str, object]],
) -> Tuple[List[int], Dict[int, List[int]]]:
    """Reconstruct the span forest from exported records.

    Returns ``(roots, children)`` where ``roots`` lists span ids with no
    (present) parent and ``children`` maps a span id to its children in
    emission order.  Raises ``ValueError`` on duplicate span ids, on a
    self-parenting span, or if the parent links contain a cycle —
    impossible for traces produced by :mod:`repro.obs.trace`, which is
    exactly why the property suite asserts it.
    """
    by_id: Dict[int, Dict[str, object]] = {}
    for record in records:
        span_id = record["span_id"]
        if span_id in by_id:
            raise ValueError(f"duplicate span id {span_id}")
        by_id[span_id] = record
    roots: List[int] = []
    children: Dict[int, List[int]] = {span_id: [] for span_id in by_id}
    for span_id, record in by_id.items():
        parent_id = record.get("parent_id")
        if parent_id == span_id:
            raise ValueError(f"span {span_id} is its own parent")
        if parent_id is None or parent_id not in by_id:
            roots.append(span_id)
        else:
            children[parent_id].append(span_id)
    # Cycle check: every span must be reachable from a root.
    seen = 0
    stack = list(roots)
    while stack:
        node = stack.pop()
        seen += 1
        stack.extend(children[node])
    if seen != len(by_id):
        raise ValueError("span parent links contain a cycle")
    return roots, children
