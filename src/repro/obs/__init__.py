"""Observability for the lift pipeline: tracing, metrics, export.

The paper evaluates CONFECTION by *accounting* — how many core steps
were shown, skipped, or hidden (§6).  This package makes that accounting
a first-class, always-available measurement layer:

* :mod:`repro.obs.trace` — nestable, timed spans with pluggable sinks;
* :mod:`repro.obs.metrics` — counters/gauges/histograms snapshot-able
  as a dict (``lift.steps_total``, ``match.attempts``,
  ``resugar.cache_hits``, ``desugar.depth``, ...);
* :mod:`repro.obs.export` — a JSONL exporter plus the read side (trace
  parsing, tree reconstruction, cross-process merging);
* :mod:`repro.obs.provenance` — per-step resugar-decision events (which
  rule failed to unexpand, where, and why) and per-rule counters;
* :mod:`repro.obs.analyze` — trace analysis (summary, critical path,
  hot rules, skip explanations) behind the ``repro obs`` CLI.

Everything is **off by default**: instrumentation sites in the hot paths
(:mod:`repro.core.matching`, :mod:`repro.core.desugar`,
:mod:`repro.core.incremental`, :mod:`repro.engine.stream`) guard on
:mod:`repro.obs._state` and the disabled path costs one branch — held to
<3% of a 500+-step lift by ``benchmarks/bench_obs_overhead.py``.

Two ways to turn it on:

* globally: ``obs.enable(sinks=[JsonlExporter("trace.jsonl")])`` /
  ``obs.disable()``;
* scoped: ``Confection(rules, stepper, obs=Observability(trace_path=
  "trace.jsonl"))`` — every lift made through that Confection runs with
  observability on, and ``obs.metrics_snapshot()`` reads the counters.

The CLI exposes the same through ``repro lift --trace FILE.jsonl``,
``repro lift --metrics``, ``repro lift-batch --trace FILE.jsonl``
(merged cross-process traces), and the ``repro obs`` analysis family.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Dict, Iterable, Optional, Union

from repro.obs import _state
from repro.obs import metrics as metrics
from repro.obs.export import (
    JsonlExporter,
    SpanCollector,
    build_tree,
    merge_traces,
    read_trace,
    span_record,
    write_trace,
)
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.trace import (
    Sink,
    Span,
    TraceContext,
    add_sink,
    clear_sinks,
    current_span,
    current_trace_context,
    remove_sink,
    set_trace_context,
    sinks,
    span,
)

__all__ = [
    "enable",
    "disable",
    "enabled",
    "span",
    "current_span",
    "Span",
    "Sink",
    "TraceContext",
    "set_trace_context",
    "current_trace_context",
    "add_sink",
    "remove_sink",
    "clear_sinks",
    "sinks",
    "JsonlExporter",
    "SpanCollector",
    "span_record",
    "read_trace",
    "write_trace",
    "build_tree",
    "merge_traces",
    "REGISTRY",
    "MetricsRegistry",
    "metrics_snapshot",
    "reset_metrics",
    "Observability",
]


def enable(sinks: Iterable[Sink] = ()) -> None:
    """Turn instrumentation on process-wide (a *pin*, in the
    :mod:`repro.obs._state` contract) and register ``sinks``."""
    for sink in sinks:
        add_sink(sink)
    _state.pin(True)


def disable() -> None:
    """Drop the process-wide pin (sinks stay registered).  Instrumentation
    stays on while any :class:`Observability` scope is still active."""
    _state.pin(False)


def enabled() -> bool:
    """Is instrumentation currently on?"""
    return _state.enabled


def metrics_snapshot() -> Dict[str, object]:
    """Snapshot the process-wide metrics registry as a plain dict."""
    return REGISTRY.snapshot()


def reset_metrics() -> None:
    """Zero the process-wide metrics registry."""
    REGISTRY.reset()


class Observability:
    """A scoped observability configuration.

    Activating it (as a context manager) enables instrumentation,
    registers this instance's sinks, and on exit drops this scope and
    unregisters them.  Activation nests, is reentrant, and is safe to
    overlap with other scopes on other threads: scopes count against
    :mod:`repro.obs._state`'s shared refcount, so the flag drops only
    when the last scope exits (and no process-wide pin is set).
    :class:`~repro.confection.Confection` accepts one via its ``obs=``
    kwarg and activates it around every lift.

    ``trace_path`` adds a :class:`JsonlExporter` writing there;
    ``reset_metrics`` (default ``True``) zeroes the metrics registry on
    first activation so :meth:`snapshot` reads this run's numbers.
    """

    def __init__(
        self,
        trace_path: Optional[Union[str, Path]] = None,
        sinks: Iterable[Sink] = (),
        reset_metrics: bool = True,
    ) -> None:
        self.exporter: Optional[JsonlExporter] = (
            JsonlExporter(trace_path) if trace_path is not None else None
        )
        self._sinks = list(sinks)
        if self.exporter is not None:
            self._sinks.append(self.exporter)
        self._reset_metrics = reset_metrics
        self._was_reset = False
        self._depth = 0
        self._lock = threading.Lock()

    def __enter__(self) -> "Observability":
        with self._lock:
            if self._depth == 0:
                if self._reset_metrics and not self._was_reset:
                    REGISTRY.reset()
                    self._was_reset = True
                for sink in self._sinks:
                    add_sink(sink)
                _state.acquire()
            self._depth += 1
        return self

    def __exit__(self, *exc) -> None:
        with self._lock:
            self._depth -= 1
            if self._depth == 0:
                _state.release()
                for sink in self._sinks:
                    remove_sink(sink)
                if self.exporter is not None:
                    self.exporter.flush()

    def snapshot(self) -> Dict[str, object]:
        """Snapshot the metrics registry (see :func:`metrics_snapshot`)."""
        return REGISTRY.snapshot()

    def close(self) -> None:
        """Close the exporter's file, if this instance owns one."""
        if self.exporter is not None:
            self.exporter.close()
