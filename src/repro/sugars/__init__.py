"""Syntactic sugar libraries: everything section 8 of the paper builds.

* :mod:`repro.sugars.scheme_sugars` — the section 8.1 tower atop the
  lambda core: multi-argument functions, Thunk/Force, Let, Letrec,
  multi-arm And/Or, Cond, plus the ``when`` one-armed conditional;
* :mod:`repro.sugars.automaton` — the Automaton macro (Figure 4);
* :mod:`repro.sugars.returns` — ``return`` via ``call/cc``
  (section 8.2);
* :mod:`repro.sugars.pyret_sugars` — the Pyret sugar suite of Figure 5.

Each module exposes its rules both as DSL source text (``*_SOURCE``) and
as ready-made :class:`~repro.core.rules.RuleList` factory functions, so
they can be studied, extended, and recombined.
"""

from repro.sugars.scheme_sugars import (
    SCHEME_SUGAR_SOURCE,
    make_scheme_rules,
)

__all__ = ["SCHEME_SUGAR_SOURCE", "make_scheme_rules"]
