"""The Automaton macro (section 8.1, Figure 4).

Following Krishnamurthi's "Automata via macros", an automaton::

    (automaton init
      (init : ("c" -> more))
      (more : ("a" -> more)
              ("d" -> more)
              ("r" -> end))
      (end  : "accept"))

desugars into a ``letrec`` binding one function per state; each state
function dispatches on the first character of its input stream and
invokes the next state on the rest.

The transitions are marked transparent (``!``) — the paper's "adding !
on recursive annotations" — so the lifted trace shows each transition as
``(<state> "<remaining input>")``, skipping the dispatch machinery.
Because the state names are ``letrec``-bound and therefore *cells* at
run time, the running term keeps the names themselves; the closure a
name resolves to is opaque sugar code, so resolved states never show.
That combination reproduces Figure 4's surface trace.
"""

from __future__ import annotations

from repro.core.rules import RuleList
from repro.core.wellformed import DisjointnessMode
from repro.lang.rule_parser import parse_rules
from repro.sugars.scheme_sugars import scheme_sugar_source

__all__ = ["AUTOMATON_SOURCE", "make_automaton_rules"]

AUTOMATON_SOURCE = """
# One function per state, dispatching with Arms; run the initial state.
Automaton(init, [State(name, arms) ...]) ->
    Letrec([Binding(name, Lam("%s", Arms(arms))) ...], Id(init));

# Per-arm dispatch over the input stream %s.
Arms([]) -> false;
Arms([Accept(), rest ...]) ->
    If(Op("empty?", [Id("%s")]), true, Arms([rest ...]));
Arms([Arm(c, target), rest ...]) ->
    If(If(Op("empty?", [Id("%s")]),
          false,
          Op("equal?", [Op("first", [Id("%s")]), c])),
       !App(Id(target), Op("rest", [Id("%s")])),
       Arms([rest ...]));
"""


def make_automaton_rules(
    transparent_recursion: bool = False,
    disjointness: DisjointnessMode = DisjointnessMode.PRIORITIZED,
) -> RuleList:
    """The full section 8.1 rulelist: the sugar tower plus Automaton.

    PRIORITIZED disjointness admits the Accept-versus-Arm ellipsis rules
    alongside the tower; the lifting loop's dynamic emulation check
    guards the (never-exercised) theoretical overlaps.
    """
    source = scheme_sugar_source(transparent_recursion) + AUTOMATON_SOURCE
    rules = parse_rules(source, atomic_vars=("x", "name"))
    return RuleList(rules, disjointness)
