"""The Pyret sugar suite of Figure 5 (section 8.3).

Figure 5 of the paper lists the "normal mode" Pyret sugars and whether
CONFECTION could express them.  This module implements every "yes" row
as rewrite rules over the Pyret-like core:

======================  =====================================  ===========
AST node                description                            implemented
======================  =====================================  ===========
fun                     function declaration                   yes
when                    one-arm conditional                    yes
if                      multi-arm conditional                  yes
cases                   multi-arm conditional                  yes
cases-else              multi-arm conditional                  yes
for                     generalized looping construct          yes
op                      binary operators                       yes
not                     negation                               yes
paren                   grouping construct                     yes
left-app                infix notation                         yes
list                    list expressions                       yes
dot                     indirect field lookup                  yes
colon                   direct field lookup                    yes
(currying)              allowed in fun and op                  yes
graph                   create cyclic data                     no
datatype                datatype declarations                  no
======================  =====================================  ===========

``graph`` and ``datatype`` are unimplemented in the faithful rulelist,
for exactly the reasons the paper gives: ``datatype`` splices one block
into another non-compositionally, and ``graph`` builds cyclic data with
placeholder updates and compile-time substitution.  The paper predicts
datatype "could be expressed by adding a block construct that does not
introduce a new scope"; our ``DefRec`` is such a construct, and
``make_pyret_rules(with_datatype=True)`` enables the resulting
extension (:data:`DATATYPE_EXTENSION_SOURCE`).  ``graph`` genuinely
needs compile-time substitution and stays out.

Two variants of the binary-operator desugaring are provided
(section 8.3's closing discussion):

* :data:`OP_NAIVE` — Pyret's own strategy, ``x + y -> x.["_plus"](y)``.
  Faithful, but once the ``_plus`` field resolves, the RHS no longer
  matches, so ``1 + (2 + 3)`` lifts to just ``1 + (2 + 3) ~~> 6``.
* :data:`OP_OBJECT` — Figure 6's strategy through a temporary object,
  which forces both operands before resolving the method and therefore
  lifts to ``1 + (2 + 3) ~~> 1 + 5 ~~> 6``.
"""

from __future__ import annotations

from repro.core.rules import RuleList
from repro.core.wellformed import DisjointnessMode
from repro.lang.rule_parser import parse_rules

__all__ = [
    "PYRET_SUGAR_SOURCE",
    "OP_NAIVE",
    "OP_OBJECT",
    "DATATYPE_EXTENSION_SOURCE",
    "make_pyret_rules",
    "FIGURE_5_ROWS",
]

# The common (operator-independent) sugars.
PYRET_SUGAR_SOURCE = """
# fun: function declarations are recursive, via the named store.
FunDecl(f, args, body, rest) -> DefRec(f, Lam(args, body), rest);

# anonymous fun expressions are core lambdas, kept as sugar so that
# user-written functions display as source until they become values.
FunE(args, body) -> Lam(args, body);

# when: one-arm conditional.
When(c, body) -> If(c, body, Nothing());

# if: multi-arm conditional (else-if chains fold right).
IfE([Clause(c, e)], els) -> If(c, e, els);
IfE([Clause(c, e), Clause(c2, e2), rest ...], els) ->
    If(c, e, IfE([Clause(c2, e2), rest ...], els));
IfNoElse([Clause(c, e)]) ->
    If(c, e, Raise("if: no branch matched"));
IfNoElse([Clause(c, e), Clause(c2, e2), rest ...]) ->
    If(c, e, IfNoElse([Clause(c2, e2), rest ...]));

# cases / cases-else: dispatch through the scrutinee's _match method,
# exactly the desugaring shown in section 4.
Cases(ann, scrut, [Branch(tag, args, body) ...]) ->
    Let("%temp", scrut,
        App(Bracket(Id("%temp"), "_match"),
            [Obj([Field(tag, Lam(args, body)) ...]),
             Lam([], Raise("cases: no cases matched"))]));
CasesElse(ann, scrut, [Branch(tag, args, body) ...], els) ->
    Let("%temp", scrut,
        App(Bracket(Id("%temp"), "_match"),
            [Obj([Field(tag, Lam(args, body)) ...]),
             Lam([], els)]));

# for: generalized looping construct.
For(fn, [FromBind(b, e) ...], body) ->
    App(fn, [Lam([b ...], body), e ...]);

# not: negation through the _not method.
Not(x) -> App(Bracket(x, "_not"), []);

# and / or: short-circuit boolean operators.
OpAnd(x, y) -> If(x, y, false);
OpOr(x, y) -> If(x, true, y);

# paren: grouping evaporates.
Paren(x) -> x;

# left-app infix notation: x ^ f(args) applies f to x and args.
LeftApp(x, f, [args ...]) -> App(f, [x, args ...]);

# list expressions build linked lists from the list module.
ListLit([]) -> Bracket(Id("list"), "empty");
ListLit([x, xs ...]) ->
    App(Bracket(Id("list"), "link"), [x, ListLit([xs ...])]);

# dot (indirect) and colon (direct) field lookup.
Dot(o, f) -> Bracket(o, f);
Colon(o, f) -> Bracket(o, f);

# let statements are plain core lets.
LetDecl(x, e, rest) -> Let(x, e, rest);

# currying, in application and operator position.
CurryAppL(f, y) -> Lam(["%c"], App(f, [Id("%c"), y]));
CurryAppR(f, x) -> Lam(["%c"], App(f, [x, Id("%c")]));
CurryApp1(f) -> Lam(["%c"], App(f, [Id("%c")]));
OpCurryL(m, y) -> Lam(["%c"], Op(m, Id("%c"), y));
OpCurryR(m, x) -> Lam(["%c"], Op(m, x, Id("%c")));
"""

OP_NAIVE = """
# Pyret's own binary-operator desugaring (section 8.3): apply the left
# operand's method to the right operand.
Op(m, x, y) -> App(Bracket(x, m), [y]);
"""

OP_OBJECT = """
# Figure 6: force both operands through a temporary object before
# resolving the method, so intermediate operator steps stay liftable.
Op(m, x, y) ->
    Let("%temp", Obj([Field("left", x), Field("right", y)]),
        App(Bracket(Bracket(Id("%temp"), "left"), m),
            [Bracket(Id("%temp"), "right")]));
"""

DATATYPE_EXTENSION_SOURCE = """
# EXTENSION (beyond the paper): datatype declarations.  Figure 5 marks
# these "no" because Pyret's datatype splices a block of definitions
# into the enclosing scope non-compositionally, and the paper suggests
# they "could be expressed by adding a block construct that does not
# introduce a new scope (akin to Scheme's begin)".  Our DefRec *is* such
# a construct -- a store-based recursive definition that scopes over its
# continuation without substituting -- so the sugar folds one variant at
# a time, each becoming a constructor function building a Data value.
Datatype(d, [], rest) -> rest;
Datatype(d, [Variant(tag, [p ...]), more ...], rest) ->
    DefRec(tag, Lam([p ...], Data(tag, [Id(p) ...])),
           Datatype(d, [more ...], rest));
"""

FIGURE_5_ROWS = [
    ("fun", "function declaration", True),
    ("when", "one-arm conditional", True),
    ("if", "multi-arm conditional", True),
    ("cases", "multi-arm conditional", True),
    ("cases-else", "multi-arm conditional", True),
    ("for", "generalized looping construct", True),
    ("op", "binary operators", True),
    ("not", "negation", True),
    ("paren", "grouping construct", True),
    ("left-app", "infix notation", True),
    ("list", "list expressions", True),
    ("dot", "indirect field lookup", True),
    ("colon", "direct field lookup", True),
    ("(currying)", "allowed in fun and op", True),
    ("graph", "create cyclic data", False),
    ("datatype", "datatype declarations", False),
]
"""Figure 5 of the paper, as data: (AST node, description, implemented)."""


def make_pyret_rules(
    op_desugaring: str = "naive",
    disjointness: DisjointnessMode = DisjointnessMode.STRICT,
    with_datatype: bool = False,
) -> RuleList:
    """Build the Figure 5 rulelist.

    ``op_desugaring`` selects ``"naive"`` (Pyret's, section 8.3) or
    ``"object"`` (Figure 6's, which lifts intermediate operator steps).
    ``with_datatype`` adds the beyond-the-paper datatype extension
    (tags are strings, so the repeated ``tag``/``p`` variables are
    declared atomic).
    """
    if op_desugaring == "naive":
        op_source = OP_NAIVE
    elif op_desugaring == "object":
        op_source = OP_OBJECT
    else:
        raise ValueError(
            f"op_desugaring must be 'naive' or 'object', not {op_desugaring!r}"
        )
    source = PYRET_SUGAR_SOURCE + op_source
    if with_datatype:
        source += DATATYPE_EXTENSION_SOURCE
    rules = parse_rules(source, atomic_vars=("tag", "p"))
    return RuleList(rules, disjointness)
