"""The section 8.1 sugar tower atop the lambda core.

"Atop this we defined sugar for multi-argument functions, Thunk, Force,
Let, Letrec, multi-arm And and Or, Cond; and atop these, a complex
Automaton macro."  The Automaton macro lives in
:mod:`repro.sugars.automaton`; everything else is here, written in the
rule DSL so the definitions read like the paper's.

Notes on fidelity:

* ``Let`` with several bindings desugars to *nested* single-binding
  lets (sequential, ``let*``-style) because the core has single-argument
  functions only.
* ``Letrec`` desugars to let-plus-assignment.  Its RHS mentions the
  binding-name variable twice, which well-formedness criterion 2 permits
  only for atomic variables — names are strings, so it is declared
  atomic.  Assignments make the bound names *cells* at run time, giving
  exactly the section 8.1 behaviour: intermediate binding steps have no
  surface representation, so ``(letrec ((x y) (y 2)) (+ x y))`` shows
  the branches evaluating all at once.
* The recursive invocations inside multi-arm ``Or``/``And``/``Cond``
  are opaque by default (full Abstraction); building with
  ``transparent_recursion=True`` marks them ``!`` and reproduces the
  Coverage side of section 3.4's trade-off.
"""

from __future__ import annotations

from repro.core.rules import RuleList
from repro.core.wellformed import DisjointnessMode
from repro.lang.rule_parser import parse_rules

__all__ = [
    "SCHEME_SUGAR_SOURCE",
    "make_scheme_rules",
    "scheme_sugar_source",
]


def scheme_sugar_source(
    transparent_recursion: bool = False,
    return_support: bool = False,
) -> str:
    """The rule-DSL source of the sugar tower.

    ``transparent_recursion`` marks the recursive invocations of
    multi-arm Or/And/Cond with ``!`` (section 3.4).
    ``return_support`` replaces the plain multi-argument function sugar
    with the section 8.2 variant that grabs its continuation so that
    ``return`` works inside the body.
    """
    bang = "!" if transparent_recursion else ""

    if return_support:
        function_rules = """
        # Multi-argument functions with early return (section 8.2):
        # grab the continuation on entry, stash it in the global %RET
        # cell, and let Return invoke it.
        Fun([x], body) ->
            Lam(x, App(Id("call/cc"),
                       Lam("%K", Seq([Set("%RET", Id("%K")), body]))));
        Fun([x, y, ys ...], body) -> Lam(x, Fun([y, ys ...], body));
        Return(x) -> Let([Binding("%RES", x)], App(Id("%RET"), Id("%RES")));
        """
    else:
        function_rules = """
        # Multi-argument functions, curried into single-argument Lams.
        Fun([x], body) -> Lam(x, body);
        Fun([x, y, ys ...], body) -> Lam(x, Fun([y, ys ...], body));
        """

    return function_rules + f"""
    # List literals over the cons/nil primitives.  The empty case goes
    # through the nil *operation* rather than a Nil value literal: a
    # value constructed directly in an RHS keeps its sugar tags forever
    # (values are never consumed by reduction), which would poison every
    # list that contains it; evaluation results carry no origin.
    ListE([]) -> Op("nil", []);
    ListE([x, xs ...]) -> Op("cons", [x, ListE([xs ...])]);

    # Delayed evaluation.
    Thunk(e) -> Lam("%ignored", e);
    Force(e) -> App(e, Unit());

    # Let, sequentially nested over a single-argument core.
    Let([], body) -> body;
    Let([Binding(x, e)], body) -> App(Lam(x, body), e);
    Let([Binding(x, e), Binding(x2, e2), rest ...], body) ->
        App(Lam(x, Let([Binding(x2, e2), rest ...], body)), e);

    # Letrec: bind to undefined, then assign.  The inner Seq groups the
    # assignments (ellipses may only end a list pattern) and leads with
    # Unit() so it stays well-formed when there are zero bindings.
    Letrec([Binding(x, e) ...], body) ->
        Let([Binding(x, Undefined()) ...],
            Seq([Seq([Unit(), Set(x, e) ...]), body]));

    # Multi-arm And / Or (section 3's running example, generalized).
    # The binary base case leaves its last operand as a plain variable,
    # so the trace shows it directly (section 3.1's `not(false)` step).
    And([]) -> true;
    And([x]) -> x;
    And([x, y]) -> If(x, y, false);
    And([x, y, z, zs ...]) -> If(x, {bang}And([y, z, zs ...]), false);
    Or([]) -> false;
    Or([x]) -> x;
    Or([x, y]) ->
        Let([Binding("%t", x)], If(Id("%t"), Id("%t"), y));
    Or([x, y, z, zs ...]) ->
        Let([Binding("%t", x)],
            If(Id("%t"), Id("%t"), {bang}Or([y, z, zs ...])));

    # While loops, via a recursive thunk (an exercise for Letrec and
    # mutation together: loop bodies typically set! outer variables).
    While(c, body) ->
        Letrec([Binding("%loop",
                        Lam("%ignore",
                            If(c,
                               Seq([body, App(Id("%loop"), Unit())]),
                               Unit())))],
               App(Id("%loop"), Unit()));

    # Conditionals.
    When(c, e) -> If(c, e, Unit());
    Cond([]) -> Unit();
    Cond([Else(e)]) -> e;
    Cond([Clause(c, e), rest ...]) -> If(c, e, {bang}Cond([rest ...]));
    """


SCHEME_SUGAR_SOURCE = scheme_sugar_source()


def make_scheme_rules(
    transparent_recursion: bool = False,
    return_support: bool = False,
    extra_source: str = "",
    disjointness: DisjointnessMode = DisjointnessMode.STRICT,
) -> RuleList:
    """Build the checked rulelist for the section 8.1 sugar tower.

    ``extra_source`` appends further rules (e.g. the Automaton macro)
    before the static checks run.
    """
    source = scheme_sugar_source(transparent_recursion, return_support)
    rules = parse_rules(source + extra_source, atomic_vars=("x",))
    return RuleList(rules, disjointness)
