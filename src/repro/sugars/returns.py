"""The ``return`` sugar, via ``call/cc`` (section 8.2).

"Having first-class access to the current continuation is a powerful
mechanism for defining new control flow constructs."  The rules live in
:mod:`repro.sugars.scheme_sugars` (built with ``return_support=True``,
since the function sugar itself must change to capture ``%RET``); this
module re-exports them under the name the paper's section uses and
documents the design.

The paper's rules::

    Return(x) -> Let([Bind("%RES", x)], [Apply(Id("%RET"), [Id("%RES")])]);
    Function(args, body) -> Lambda(args, Apply(Id("call/cc"),
                                               [Lambda(["%RET"], body)]));

Our variant binds ``%RET`` through a *global named cell* (``set!`` on a
free variable) rather than a lambda parameter.  The reason is a
difference in steppers: the paper's Racket stepper reconstructs source
from the continuation, so lexical variables keep their names in the
display; our substitution-based stepper would replace a
lambda-bound ``%RET`` with the continuation value, and the ``Return``
RHS — which matches ``Id("%RET")`` literally — would stop unexpanding,
hiding the very ``(return ...)`` steps the example exists to show.  With
the global cell the reference survives as ``Id("%RET")`` in the running
term and the lifted trace matches the paper's step for step.  Like the
paper's own rule, this is unhygienic: nested functions share ``%RET``,
so an outer ``return`` executed after an inner function has run would
use the inner continuation.  (The paper does not address hygiene either;
see section 5.1.1.)
"""

from __future__ import annotations

from repro.core.rules import RuleList
from repro.sugars.scheme_sugars import make_scheme_rules, scheme_sugar_source

__all__ = ["RETURN_SUGAR_SOURCE", "make_return_rules"]

RETURN_SUGAR_SOURCE = scheme_sugar_source(return_support=True)


def make_return_rules(**kwargs) -> RuleList:
    """The section 8.1 tower with the section 8.2 function/return pair."""
    return make_scheme_rules(return_support=True, **kwargs)
