"""The CONFECTION facade: rules + a core stepper + the lifting loop.

This is the top-level object a user of the library interacts with, the
analogue of the paper's CONFECTION tool: it owns a checked rulelist and a
black-box core-language stepper, and exposes desugaring, resugaring, and
the lifted surface evaluation sequence/tree.

Terms can be passed either as :class:`~repro.core.terms.Pattern` values
or as rule-DSL source strings (``"Or([Not(True_()), ...])"``), and the
results can be rendered back to strings with :meth:`Confection.show`.
"""

from __future__ import annotations

from contextlib import nullcontext
from os import PathLike
from typing import Callable, Iterator, List, Optional, Union

from repro.core.desugar import desugar as _desugar
from repro.core.desugar import resugar as _resugar
from repro.core.lift import (
    LiftResult,
    Stepper,
    SurfaceTree,
    lift_evaluation,
    lift_evaluation_tree,
)
from repro.core.rules import Rule, RuleList
from repro.core.terms import Pattern
from repro.core.wellformed import DisjointnessMode
from repro.lang.render import render
from repro.lang.rule_parser import parse_pattern, parse_rulelist
from repro.obs import Observability

__all__ = ["Confection"]

TermLike = Union[Pattern, str]


class Confection:
    """Lift core evaluation sequences through syntactic sugar.

    ``rules`` may be a :class:`RuleList`, a list of :class:`Rule`, or
    rule-DSL source text.  ``stepper`` is any object satisfying the
    :class:`~repro.core.lift.Stepper` protocol; it may be omitted for
    uses that only desugar/resugar.

    ``obs`` is an optional :class:`repro.obs.Observability`
    configuration: when given, every lift made through this Confection
    runs with observability enabled under it (spans flow to its sinks,
    counters to the metrics registry) and ``obs.snapshot()`` reads the
    numbers afterwards.

    ``cache`` is an optional persistent :class:`repro.cache.LiftCache`
    (or a directory path, coerced to one): every lift made through this
    Confection then consults and feeds the content-addressed store —
    repeated programs replay their recorded event streams instead of
    re-stepping.  See ``docs/caching.md`` for the invalidation contract.
    """

    def __init__(
        self,
        rules: Union[RuleList, List[Rule], str],
        stepper: Optional[Stepper] = None,
        disjointness: DisjointnessMode = DisjointnessMode.PRIORITIZED,
        obs: Optional["Observability"] = None,
        cache=None,
    ) -> None:
        if isinstance(rules, str):
            rules = parse_rulelist(rules, disjointness)
        elif not isinstance(rules, RuleList):
            rules = RuleList(rules, disjointness)
        self.rules: RuleList = rules
        self.stepper = stepper
        self.obs = obs
        if isinstance(cache, (str, PathLike)):
            from repro.cache import LiftCache

            cache = LiftCache(cache)
        self.cache = cache

    def _obs_scope(self):
        """The active observability context for one lift (no-op when
        this Confection has no ``obs`` configuration)."""
        return self.obs if self.obs is not None else nullcontext()

    # --- term plumbing -----------------------------------------------

    def term(self, term: TermLike) -> Pattern:
        """Coerce DSL source text to a term (terms pass through)."""
        if isinstance(term, str):
            return parse_pattern(term)
        return term

    @staticmethod
    def show(term: Pattern) -> str:
        """Render a term for display (tags hidden)."""
        return render(term, show_tags=False)

    # --- desugar / resugar -------------------------------------------

    def desugar(self, term: TermLike) -> Pattern:
        """Fully desugar a surface term into a tagged core term."""
        return _desugar(self.rules, self.term(term))

    def resugar(self, core_term: TermLike) -> Optional[Pattern]:
        """Resugar a tagged core term, or ``None`` when it has no
        faithful surface representation."""
        return _resugar(self.rules, self.term(core_term))

    # --- lifting -------------------------------------------------------

    def lift(
        self,
        surface_term: TermLike,
        max_steps: int = 100_000,
        dedup: bool = True,
        check_emulation: bool = True,
        incremental: bool = True,
        max_seconds: Optional[float] = None,
        on_budget: str = "raise",
        stepper_mode: Optional[str] = None,
    ) -> LiftResult:
        """Run the program and lift its core evaluation sequence into a
        surface evaluation sequence, with per-step bookkeeping.

        ``incremental`` (default) resugars through a per-run cache so a
        step costs work proportional to the rewritten spine; disable it
        to force the naive full-tree path (reference semantics).

        ``max_steps``/``max_seconds`` budget the lift; with
        ``on_budget="truncate"`` an exhausted budget returns a
        well-formed partial result (``truncated=True``) instead of
        raising."""
        self._require_stepper()
        with self._obs_scope():
            return lift_evaluation(
                self.rules,
                self.stepper,
                self.term(surface_term),
                max_steps=max_steps,
                dedup=dedup,
                check_emulation=check_emulation,
                incremental=incremental,
                max_seconds=max_seconds,
                on_budget=on_budget,
                stepper_mode=stepper_mode,
                cache=self.cache,
            )

    def lift_stream(
        self,
        surface_term: TermLike,
        max_steps: int = 100_000,
        dedup: bool = True,
        check_emulation: bool = True,
        incremental: bool = True,
        max_seconds: Optional[float] = None,
        on_budget: str = "raise",
        stepper_mode: Optional[str] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> Iterator["LiftEvent"]:
        """Lift lazily, yielding :mod:`repro.engine.events` events as
        core evaluation proceeds (the streaming face of :meth:`lift` —
        same options, same output, but the first surface step is
        available immediately and memory stays bounded).  ``should_stop``
        is the cooperative cancellation hook of
        :func:`repro.engine.stream.lift_stream`: polled once per core
        step, a true return ends the stream without a terminal event."""
        from repro.engine.stream import lift_stream

        self._require_stepper()
        stream = lift_stream(
            self.rules,
            self.stepper,
            self.term(surface_term),
            max_steps=max_steps,
            max_seconds=max_seconds,
            on_budget=on_budget,
            dedup=dedup,
            check_emulation=check_emulation,
            incremental=incremental,
            stepper_mode=stepper_mode,
            should_stop=should_stop,
            cache=self.cache,
        )
        return self._scoped_stream(stream)

    def surface_steps(self, surface_term: TermLike, **kwargs) -> List[Pattern]:
        """Just the surface evaluation sequence (the paper's
        ``showSurfaceSequence``)."""
        return self.lift(surface_term, **kwargs).surface_sequence

    def show_steps(self, surface_term: TermLike, **kwargs) -> List[str]:
        """The surface evaluation sequence, rendered for display."""
        return [self.show(t) for t in self.surface_steps(surface_term, **kwargs)]

    def lift_tree(
        self,
        surface_term: TermLike,
        max_nodes: int = 100_000,
        check_emulation: bool = True,
        incremental: bool = True,
        max_seconds: Optional[float] = None,
        on_budget: str = "raise",
        stepper_mode: Optional[str] = None,
    ) -> SurfaceTree:
        """Lift a nondeterministic evaluation into a surface tree."""
        self._require_stepper()
        with self._obs_scope():
            return lift_evaluation_tree(
                self.rules,
                self.stepper,
                self.term(surface_term),
                max_nodes=max_nodes,
                check_emulation=check_emulation,
                incremental=incremental,
                max_seconds=max_seconds,
                on_budget=on_budget,
                stepper_mode=stepper_mode,
                cache=self.cache,
            )

    def lift_tree_stream(
        self,
        surface_term: TermLike,
        max_nodes: int = 100_000,
        check_emulation: bool = True,
        incremental: bool = True,
        max_seconds: Optional[float] = None,
        on_budget: str = "raise",
        stepper_mode: Optional[str] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> Iterator["LiftEvent"]:
        """Lift a nondeterministic evaluation lazily, yielding events in
        breadth-first exploration order (the streaming face of
        :meth:`lift_tree`; ``should_stop`` as on :meth:`lift_stream`)."""
        from repro.engine.stream import lift_tree_stream

        self._require_stepper()
        stream = lift_tree_stream(
            self.rules,
            self.stepper,
            self.term(surface_term),
            max_nodes=max_nodes,
            max_seconds=max_seconds,
            on_budget=on_budget,
            check_emulation=check_emulation,
            incremental=incremental,
            stepper_mode=stepper_mode,
            should_stop=should_stop,
            cache=self.cache,
        )
        return self._scoped_stream(stream)

    # --- batch lifting -------------------------------------------------

    def lift_corpus(
        self,
        corpus,
        *,
        jobs: Optional[int] = None,
        payload: str = "result",
        pretty=None,
        collect_metrics: bool = False,
        collect_spans: bool = False,
        mp_context: Optional[str] = None,
        window: Optional[int] = None,
        cache_dir=None,
        chunk: Optional[int] = None,
    ):
        """Lift a whole corpus of programs, sharded across ``jobs``
        worker processes (default: one per CPU; ``jobs=1`` runs
        in-process).

        ``corpus`` entries are :class:`~repro.parallel.jobs.LiftJob`
        records, terms, or DSL source strings.  Returns one
        :class:`~repro.engine.events.BatchLifted` or
        :class:`~repro.engine.events.JobError` per job, in submission
        order — a failing job is contained, never aborting the batch.
        Workers are warmed once with this Confection's rules and
        stepper; its ``obs`` configuration does **not** cross the
        process boundary — pass ``collect_metrics=True`` to get per-job
        metrics snapshots (aggregate with
        :func:`repro.parallel.aggregate_metrics`) and
        ``collect_spans=True`` to get per-job span trees with job
        attribution (merge into one cross-process trace with
        :func:`repro.parallel.aggregate_trace`).

        ``cache_dir`` points every worker at one shared persistent
        lift-cache directory (this Confection's own ``cache`` does not
        cross the process boundary — workers each open their own
        :class:`~repro.cache.LiftCache` against the shared store), and
        ``chunk`` batches that many jobs per pool submission to
        amortize pickling (default: an automatic heuristic; see
        :class:`repro.parallel.WarmPool`).
        """
        from repro.parallel import lift_corpus

        self._require_stepper()
        return lift_corpus(
            (self.rules, self.stepper),
            corpus,
            jobs=jobs,
            payload=payload,
            pretty=pretty,
            collect_metrics=collect_metrics,
            collect_spans=collect_spans,
            mp_context=mp_context,
            window=window,
            cache_dir=cache_dir,
            chunk=chunk,
        )

    def lift_corpus_stream(
        self,
        corpus,
        *,
        jobs: Optional[int] = None,
        payload: str = "result",
        pretty=None,
        collect_metrics: bool = False,
        collect_spans: bool = False,
        mp_context: Optional[str] = None,
        window: Optional[int] = None,
        cache_dir=None,
        chunk: Optional[int] = None,
    ):
        """Lift a corpus lazily, yielding per-job outcome events in
        submission order as workers finish (the streaming face of
        :meth:`lift_corpus`; same options)."""
        from repro.parallel import lift_corpus_stream

        self._require_stepper()
        return lift_corpus_stream(
            (self.rules, self.stepper),
            corpus,
            jobs=jobs,
            payload=payload,
            pretty=pretty,
            collect_metrics=collect_metrics,
            collect_spans=collect_spans,
            mp_context=mp_context,
            window=window,
            cache_dir=cache_dir,
            chunk=chunk,
        )

    def _scoped_stream(
        self, stream: Iterator["LiftEvent"]
    ) -> Iterator["LiftEvent"]:
        """Run ``stream`` under this Confection's observability scope
        (pass-through when no ``obs`` is configured).  Activation happens
        at consumption time, matching the generator's laziness."""
        if self.obs is None:
            return stream

        def scoped():
            with self.obs:
                yield from stream

        return scoped()

    def _require_stepper(self) -> None:
        if self.stepper is None:
            raise ValueError(
                "this Confection has no stepper; pass one at construction "
                "to lift evaluation sequences"
            )
