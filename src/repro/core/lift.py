"""Lifting core evaluation sequences to surface sequences (section 5.3).

The deterministic algorithm is the paper's::

    def showSurfaceSequence(s):
        let c = desugar*(s)
        while c can take a reduction step:
            let s' = resugar*(c)
            if s': emit(s')
            c := step(c)

(plus a final emission once evaluation halts, which the paper's displayed
sequences include).  For a nondeterministic language the same idea lifts
an evaluation *tree*: keep a queue of unexplored core terms, resugar each,
and record edges between the surface representations of connected core
terms.

Steppers are black boxes behind the :class:`Stepper` protocol: a stepper
owns whatever machine state evaluation needs (typically a store) and can
always render its current state as a core *term* — the thing resugaring
consumes.  Section 7 of the paper describes recovering such a stepper
from a production evaluator; our interpreters provide one natively.

The loop itself lives in :mod:`repro.engine.stream` as a lazy event
generator (the serving-oriented interface: first step available
immediately, bounded memory, step/time budgets).  The batch functions
here — :func:`lift_evaluation` and :func:`lift_evaluation_tree` — are
eager folds over those streams, so the two interfaces cannot drift
apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.core.errors import ReproError
from repro.core.incremental import CacheStats
from repro.core.terms import Pattern
from repro.obs import _state as _obs
from repro.obs.trace import span as _obs_span

__all__ = [
    "Stepper",
    "FunctionStepper",
    "LiftedStep",
    "LiftResult",
    "lift_evaluation",
    "SurfaceTree",
    "lift_evaluation_tree",
    "EmulationViolation",
]

State = TypeVar("State")


class Stepper(Protocol[State]):
    """A black-box single-stepper for a core language.

    ``load`` turns a (tagged) core term into an initial machine state;
    ``step`` advances one reduction, returning every possible successor
    (empty when evaluation is finished or stuck); ``term`` renders a state
    back into a core term, tags intact.
    """

    def load(self, core_term: Pattern) -> State: ...

    def step(self, state: State) -> Sequence[State]: ...

    def term(self, state: State) -> Pattern: ...


class FunctionStepper:
    """Adapt a plain ``term -> Optional[term]`` function (a deterministic,
    storeless reduction) to the :class:`Stepper` protocol."""

    def __init__(self, step_fn: Callable[[Pattern], Optional[Pattern]]) -> None:
        self._step_fn = step_fn

    def load(self, core_term: Pattern) -> Pattern:
        return core_term

    def step(self, state: Pattern) -> Sequence[Pattern]:
        nxt = self._step_fn(state)
        return [] if nxt is None else [nxt]

    def term(self, state: Pattern) -> Pattern:
        return state


class EmulationViolation(ReproError):
    """A resugared surface term did not desugar back into the core term it
    was meant to represent.  With a STRICT-disjoint, well-formed rulelist
    this is impossible (Theorem 3); with PRIORITIZED overlap it is the
    dynamic backstop."""


@dataclass(frozen=True)
class LiftedStep:
    """One core step's fate during lifting."""

    core_index: int
    core_term: Pattern
    surface_term: Optional[Pattern]
    emitted: bool

    @property
    def skipped(self) -> bool:
        return self.surface_term is None


@dataclass
class LiftResult:
    """A lifted evaluation sequence plus per-step bookkeeping.

    ``surface_sequence`` is what a user sees; ``steps`` records, for every
    core step, whether it was shown, deduplicated, or skipped — the raw
    material for the paper's Coverage discussions.
    """

    surface_sequence: List[Pattern] = field(default_factory=list)
    steps: List[LiftedStep] = field(default_factory=list)
    cache_stats: Optional[CacheStats] = None
    """Per-run :class:`~repro.core.incremental.CacheStats` when the lift
    ran incrementally; ``None`` on the naive path."""
    truncated: bool = False
    """True when a step or wall-clock budget ran out under
    ``on_budget="truncate"``; the result is then a well-formed prefix of
    the full lift."""

    @property
    def core_step_count(self) -> int:
        return len(self.steps)

    @property
    def skipped_count(self) -> int:
        return sum(1 for s in self.steps if s.skipped)

    @property
    def shown_count(self) -> int:
        return len(self.surface_sequence)

    @property
    def coverage(self) -> float:
        """Fraction of core steps with a surface representation."""
        if not self.steps:
            return 1.0
        return 1.0 - self.skipped_count / len(self.steps)


def lift_evaluation(
    rules,
    stepper: "Stepper",
    surface_term: Pattern,
    max_steps: int = 100_000,
    dedup: bool = True,
    check_emulation: bool = True,
    incremental: bool = True,
    max_seconds: Optional[float] = None,
    on_budget: str = "raise",
    stepper_mode: Optional[str] = None,
    cache=None,
) -> LiftResult:
    """Compute the surface evaluation sequence of ``surface_term``.

    The term is desugared once, loaded into the stepper, and stepped to
    completion; each core term is resugared and emitted when it has a
    surface representation.  ``dedup`` drops a surface term identical to
    the previously emitted one (consecutive core steps can differ only in
    machine state invisible at the surface).  ``check_emulation``
    verifies, for every emitted term, that it desugars back into the core
    term it represents, raising :class:`EmulationViolation` otherwise.

    ``incremental`` (the default) resugars through a per-run
    :class:`~repro.core.incremental.ResugarCache`, so each step costs
    work proportional to the spine the stepper rewrote rather than the
    whole term; the emitted sequence is identical to the naive path.

    ``max_steps`` and ``max_seconds`` budget the lift; ``on_budget``
    decides whether exhaustion raises :class:`ReproError` (``"raise"``,
    the default) or returns a well-formed partial result with
    ``truncated=True`` (``"truncate"``).

    ``stepper_mode`` (``"refocus"``/``"naive"``/``None``) selects the
    decomposition engine on mode-aware steppers such as
    :class:`~repro.redex.reduction.RedexStepper`; the lifted result is
    byte-identical either way.

    ``cache`` attaches a persistent :class:`repro.cache.LiftCache`: a
    repeated (program, rules, config) request folds the recorded event
    stream instead of re-stepping (see :mod:`repro.engine.stream`).

    This is an eager fold over :func:`repro.engine.stream.lift_stream`;
    use the stream directly to consume steps as they are produced.
    """
    from repro.engine.stream import fold_lift, lift_stream

    events = lift_stream(
        rules,
        stepper,
        surface_term,
        max_steps=max_steps,
        max_seconds=max_seconds,
        on_budget=on_budget,
        dedup=dedup,
        check_emulation=check_emulation,
        incremental=incremental,
        stepper_mode=stepper_mode,
        cache=cache,
    )
    if _obs.enabled:
        with _obs_span("lift.batch", mode="sequence"):
            return fold_lift(events)
    return fold_lift(events)


@dataclass
class SurfaceTree:
    """A lifted evaluation *tree* for a nondeterministic language.

    ``nodes`` maps a node id to its surface term; ``edges`` connects node
    ids.  An edge ``u -> v`` means some core path from ``u``'s core term
    reaches ``v``'s core term without passing through any other
    resugarable core term (so the surface tree's structure mirrors the
    core tree's, with skipped steps contracted).
    """

    nodes: dict = field(default_factory=dict)
    edges: List[Tuple[int, int]] = field(default_factory=list)
    root: Optional[int] = None
    core_node_count: int = 0
    skipped_count: int = 0
    truncated: bool = False
    """True when a node or wall-clock budget ran out under
    ``on_budget="truncate"``; the tree is then a well-formed
    breadth-first prefix of the full tree."""
    _adjacency: Optional[Dict[int, List[int]]] = field(
        default=None, repr=False, compare=False
    )
    _adjacency_edge_count: int = field(default=-1, repr=False, compare=False)

    def _adj(self) -> Dict[int, List[int]]:
        """Child adjacency, built once and rebuilt only when edges grew."""
        if self._adjacency is None or self._adjacency_edge_count != len(
            self.edges
        ):
            adj: Dict[int, List[int]] = {}
            for u, v in self.edges:
                adj.setdefault(u, []).append(v)
            self._adjacency = adj
            self._adjacency_edge_count = len(self.edges)
        return self._adjacency

    def children(self, node_id: int) -> List[int]:
        return list(self._adj().get(node_id, ()))

    def leaves(self) -> List[int]:
        with_children = self._adj()
        return [n for n in self.nodes if n not in with_children]

    def depth(self) -> int:
        """Longest root-to-leaf path length, in edges (iterative, so
        arbitrarily deep trees cannot overflow the Python stack)."""
        if self.root is None:
            return 0
        adj = self._adj()
        best = 0
        stack: List[Tuple[int, int]] = [(self.root, 0)]
        while stack:
            node_id, d = stack.pop()
            kids = adj.get(node_id)
            if not kids:
                if d > best:
                    best = d
            else:
                stack.extend((k, d + 1) for k in kids)
        return best

    def to_dot(self, label=None) -> str:
        """Render the tree in Graphviz DOT format.

        ``label`` converts a surface term to a node label; it defaults
        to the generic renderer with tags hidden.
        """
        if label is None:
            from repro.lang.render import render

            def label(term):
                return render(term, show_tags=False)

        lines = ["digraph surface_tree {", "  node [shape=box];"]
        for node_id, term in self.nodes.items():
            text = label(term).replace("\\", "\\\\").replace('"', '\\"')
            lines.append(f'  n{node_id} [label="{text}"];')
        for u, v in self.edges:
            lines.append(f"  n{u} -> n{v};")
        lines.append("}")
        return "\n".join(lines)


def lift_evaluation_tree(
    rules,
    stepper: "Stepper",
    surface_term: Pattern,
    max_nodes: int = 100_000,
    check_emulation: bool = True,
    incremental: bool = True,
    max_seconds: Optional[float] = None,
    on_budget: str = "raise",
    stepper_mode: Optional[str] = None,
    cache=None,
) -> SurfaceTree:
    """Lift a nondeterministic evaluation into a surface tree
    (section 5.3's breadth-first exploration with bookkeeping).

    Core states are explored breadth-first from ``desugar(surface_term)``;
    each resugarable state becomes a surface node, attached to its nearest
    resugarable ancestor.  States whose core terms coincide are *not*
    merged: the paper lifts a tree, not a graph.  ``incremental`` shares
    resugaring work across branches through a per-run
    :class:`~repro.core.incremental.ResugarCache` — sibling states share
    almost their entire term.

    ``max_nodes``/``max_seconds``/``on_budget`` budget the exploration
    exactly as on :func:`lift_evaluation`, and ``cache`` attaches a
    persistent lift cache exactly as there.  This is an eager fold over
    :func:`repro.engine.stream.lift_tree_stream`.
    """
    from repro.engine.stream import fold_tree, lift_tree_stream

    events = lift_tree_stream(
        rules,
        stepper,
        surface_term,
        max_nodes=max_nodes,
        max_seconds=max_seconds,
        on_budget=on_budget,
        check_emulation=check_emulation,
        incremental=incremental,
        stepper_mode=stepper_mode,
        cache=cache,
    )
    if _obs.enabled:
        with _obs_span("lift.batch", mode="tree"):
            return fold_tree(events)
    return fold_tree(events)
