"""Bindings and environments (Figure 2 of the paper).

A binding ``b`` is one of::

    b := P               (a pattern -- in practice a term)
       | [|b1 ... bn|]   (list binding: one binding per ellipsis repetition)
       | [|b1 ... bn be*|]  (ellipsis binding: used during unification)

and an environment ``sigma`` maps pattern variables to bindings.

A variable *inside* an ellipsis is bound to a :class:`ListBinding` rather
than a list term; list bindings behave differently under substitution
(they are distributed across the repetitions by ``split``).  Ellipsis
bindings arise only during unification, when a variable within an ellipsis
is unified against an ellipsis pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

from repro.core.errors import PatternError, SubstitutionError
from repro.core.terms import Const, Pattern, PList

__all__ = [
    "Binding",
    "ListBinding",
    "EllipsisBinding",
    "Env",
    "union",
    "merge",
    "split",
    "to_term",
    "restrict",
    "without",
]


@dataclass(frozen=True, slots=True)
class ListBinding:
    """``[|b1 ... bn|]``: one binding per repetition of an ellipsis."""

    items: Tuple["Binding", ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "items", tuple(self.items))

    def __len__(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:
        inner = ", ".join(repr(b) for b in self.items)
        return f"[|{inner}|]"


@dataclass(frozen=True, slots=True)
class EllipsisBinding:
    """``[|b1 ... bn be*|]``: a list binding with a repeating tail.

    Needed only when unifying a variable that sits inside an ellipsis with
    an ellipsis pattern (section 5.1.2); it records that the variable
    stands for ``n`` fixed bindings followed by any number of copies of
    ``tail``.
    """

    items: Tuple["Binding", ...]
    tail: "Binding"

    def __post_init__(self) -> None:
        object.__setattr__(self, "items", tuple(self.items))

    def __repr__(self) -> str:
        inner = ", ".join(repr(b) for b in self.items)
        return f"[|{inner} {self.tail!r}*|]"


Binding = Union[Pattern, ListBinding, EllipsisBinding]

# Environments are plain immutable-by-convention dicts.
Env = Dict[str, Binding]


def _bindings_equal(a: Binding, b: Binding) -> bool:
    return a == b


def union(sigma1: Mapping[str, Binding], sigma2: Mapping[str, Binding]) -> Env:
    """Combine two environments produced by matching sibling subpatterns.

    Because rules are linear (well-formedness criterion 2), the domains
    are disjoint except for variables bound to atomic terms, which the
    paper exempts; for those we require the bindings to agree.
    """
    out: Env = dict(sigma1)
    for name, b in sigma2.items():
        if name in out:
            prior = out[name]
            ok = (
                isinstance(prior, Const)
                and isinstance(b, Const)
                and _bindings_equal(prior, b)
            )
            if not ok:
                raise PatternError(
                    f"conflicting bindings for duplicate variable {name!r}: "
                    f"{prior!r} vs {b!r}"
                )
        out[name] = b
    return out


def right_biased_union(
    sigma1: Mapping[str, Binding], sigma2: Mapping[str, Binding]
) -> Env:
    """The paper's ``sigma1 . sigma2``: on conflict, ``sigma2`` wins."""
    out: Env = dict(sigma1)
    out.update(sigma2)
    return out


def merge(envs: Sequence[Mapping[str, Binding]], variables: Iterable[str]) -> Env:
    """Figure 3's ``merge``: zip per-repetition environments into list
    bindings.

    ``merge([{x -> b1}, ..., {x -> bn}]) = {x -> [|b1 ... bn|]}``.

    ``variables`` names the variables of the ellipsis pattern, which is
    needed to produce *empty* list bindings when there are zero
    repetitions (the formal ``merge([])`` is otherwise underdetermined).
    """
    names = tuple(variables)
    out: Env = {}
    for name in names:
        items = []
        for env in envs:
            if name not in env:
                raise PatternError(
                    f"merge: repetition environment missing variable {name!r}"
                )
            items.append(env[name])
        out[name] = ListBinding(tuple(items))
    return out


def split(
    sigma: Mapping[str, Binding], variables: Iterable[str]
) -> Tuple[Env, ...]:
    """Figure 3's ``split``: unzip list bindings into per-repetition
    environments.

    Every variable in ``variables`` must be bound to a :class:`ListBinding`
    and all those list bindings must have equal length ``k``; the result is
    ``k`` environments, the i-th binding each variable to its i-th item.
    """
    names = tuple(variables)
    if not names:
        raise SubstitutionError(
            "split: ellipsis pattern contains no variables, so the number "
            "of repetitions is undetermined (well-formedness criterion 3)"
        )
    length: Optional[int] = None
    for name in names:
        if name not in sigma:
            raise SubstitutionError(f"split: unbound ellipsis variable {name!r}")
        b = sigma[name]
        if not isinstance(b, ListBinding):
            raise SubstitutionError(
                f"split: variable {name!r} used under an ellipsis but bound "
                f"to a non-list binding {b!r} (ellipsis depth mismatch)"
            )
        if length is None:
            length = len(b)
        elif length != len(b):
            raise SubstitutionError(
                f"split: ellipsis variables have unequal repetition counts "
                f"({length} vs {len(b)} for {name!r})"
            )
    assert length is not None
    out = []
    for i in range(length):
        env_i: Env = {}
        for name in names:
            lb = sigma[name]
            assert isinstance(lb, ListBinding)
            env_i[name] = lb.items[i]
        out.append(env_i)
    return tuple(out)


def to_term(b: Binding) -> Pattern:
    """Figure 3's ``toTerm``: convert a binding back into a term.

    A pattern binding is already a term; a list binding becomes a list
    term.  Ellipsis bindings have no term form (they only exist inside
    unifiers) and raise.
    """
    if isinstance(b, ListBinding):
        return PList(tuple(to_term(item) for item in b.items))
    if isinstance(b, EllipsisBinding):
        raise SubstitutionError(f"cannot convert ellipsis binding {b!r} to a term")
    return b


def restrict(sigma: Mapping[str, Binding], names: Iterable[str]) -> Env:
    """Restrict ``sigma`` to the given variable names (ignoring absent
    ones)."""
    keep = set(names)
    return {name: b for name, b in sigma.items() if name in keep}


def without(sigma: Mapping[str, Binding], names: Iterable[str]) -> Env:
    """Drop the given variable names from ``sigma``."""
    drop = set(names)
    return {name: b for name, b in sigma.items() if name not in drop}
