"""Incremental resugaring: reuse work across the steps of a lifted run.

The lifting loop (section 5.3) resugars the *entire* core term after
every reduction step, and — when emulation checking is on — also
re-desugars every emitted surface term.  But a reduction step rewrites
the term only along one spine; everything else is shared.  A
:class:`ResugarCache` exploits that: terms are hash-consed
(:mod:`repro.core.intern`), every per-subterm computation is memoized on
canonical identity, and a step therefore costs O(rewritten spine) instead
of O(term size):

* ``resugar`` — the paper's ``R`` (bottom-up unexpansion), the
  opaque-tag/head-tag check, and the transparent-tag strip, each memoized
  per interned subterm;
* ``desugar`` — the paper's topdown recursive expansion, memoized per
  interned subterm (sound because expansion is context-free);
* ``emulates`` — Emulation at one step, as an O(1) identity comparison
  of memoized tag-free skeletons.

A cache is valid for one rulelist and one interning generation; the
lifting loop creates one per run.  Results are structurally identical to
the pure functions in :mod:`repro.core.desugar` — the equivalence test
suite asserts this over the whole golden corpus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.desugar import (
    DEFAULT_MAX_EXPANSION_DEPTH,
    DEFAULT_MAX_EXPANSIONS,
)
from repro.core.errors import ExpansionError
from repro.core.intern import (
    _intern,
    _intern_node,
    _intern_plist,
    _intern_tagged,
    intern_generation,
)
from repro.core.recursion import deep_recursion
from repro.core.rules import RuleList
from repro.core.tags import has_opaque_body_tags
from repro.obs import _state as _obs
from repro.obs import provenance as _prov
from repro.obs.metrics import (
    DESUGAR_CACHE_HITS,
    DESUGAR_CACHE_MISSES,
    DESUGAR_DEPTH,
    RESUGAR_CACHE_HITS,
    RESUGAR_CACHE_MISSES,
    RESUGAR_CALLS,
    RESUGAR_FAIL_PROPAGATIONS,
)
from repro.core.terms import (
    BodyTag,
    Const,
    HeadTag,
    Node,
    Pattern,
    PList,
    Tagged,
)

__all__ = ["ResugarCache", "CacheStats"]

_FAIL = object()  # memoized "resugaring fails here" marker


@dataclass
class CacheStats:
    """Work counters for one lifted run.

    ``*_visits`` counts subterm-walk entries that did real work (cache
    misses); ``*_hits`` counts entries answered from the cache — each hit
    short-circuits an entire subtree that the naive path would re-walk.
    """

    resugar_calls: int = 0
    resugar_visits: int = 0
    resugar_hits: int = 0
    desugar_calls: int = 0
    desugar_visits: int = 0
    desugar_hits: int = 0
    unexpansions: int = 0
    expansions: int = 0

    @property
    def resugar_hit_rate(self) -> float:
        total = self.resugar_visits + self.resugar_hits
        return self.resugar_hits / total if total else 0.0

    @property
    def desugar_hit_rate(self) -> float:
        total = self.desugar_visits + self.desugar_hits
        return self.desugar_hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "resugar_calls": self.resugar_calls,
            "resugar_visits": self.resugar_visits,
            "resugar_hits": self.resugar_hits,
            "resugar_hit_rate": self.resugar_hit_rate,
            "desugar_calls": self.desugar_calls,
            "desugar_visits": self.desugar_visits,
            "desugar_hits": self.desugar_hits,
            "desugar_hit_rate": self.desugar_hit_rate,
            "unexpansions": self.unexpansions,
            "expansions": self.expansions,
        }


class ResugarCache:
    """Memoized desugar/resugar for one rulelist (see module docstring).

    All memo tables key on canonical (interned) term objects, so lookups
    are identity-fast and a reduction step invalidates exactly the spine
    it rewrote: the fresh spine objects are new keys, everything else
    hits.
    """

    def __init__(self, rules: RuleList) -> None:
        self.rules = rules
        self.stats = CacheStats()
        self._generation = intern_generation()
        self._fuel = DEFAULT_MAX_EXPANSIONS
        # core subterm -> raw resugaring (interned) or _FAIL
        self._raw: Dict[Pattern, object] = {}
        # _FAIL-memoized subterm -> provenance event of the original
        # failure (see repro.obs.provenance), kept so cached skips can
        # still name the rule and mismatch that caused them; populated
        # only while observability is enabled.
        self._fail_info: Dict[Pattern, Optional[dict]] = {}
        # raw subterm -> has surviving opaque-body or head tags?
        self._bad: Dict[Pattern, bool] = {}
        # raw subterm -> transparent-tags-stripped (interned)
        self._strip: Dict[Pattern, Pattern] = {}
        # surface subterm -> fully desugared (interned)
        self._desugar: Dict[Pattern, Pattern] = {}
        # any subterm -> tag-free skeleton (interned)
        self._skel: Dict[Pattern, Pattern] = {}

    def _check_generation(self) -> None:
        if self._generation != intern_generation():
            raise ExpansionError(
                "ResugarCache used across clear_intern_caches(); create a "
                "fresh cache instead"
            )

    # --- memo persistence (repro.cache) -------------------------------

    def export_memo(self) -> Dict[str, list]:
        """The memo tables as a picklable snapshot.

        Every entry is a pure function of this cache's rulelist, so a
        snapshot taken in one process is valid in any other process
        running an *equal* rulelist (the persistent cache keys memo
        blobs on the ruleset fingerprint).  ``_FAIL`` is a module-
        private sentinel with no cross-process identity; it travels as
        ``None``, which a ``_raw`` value can never legitimately be.
        ``_fail_info`` (observability-only provenance) stays behind.
        """
        return {
            "raw": [
                (k, None if v is _FAIL else v) for k, v in self._raw.items()
            ],
            "bad": list(self._bad.items()),
            "strip": list(self._strip.items()),
            "desugar": list(self._desugar.items()),
            "skel": list(self._skel.items()),
        }

    def hydrate_memo(self, exported: Dict[str, list]) -> int:
        """Preload the memo tables from :meth:`export_memo` output.

        Terms are re-interned against the *current* table (unpickling
        already did this for snapshots that crossed a process boundary;
        interning an interned term is a no-op), so identity-keyed
        lookups hit.  Existing entries win over hydrated ones.  Returns
        the number of entries added.
        """
        self._check_generation()
        added = 0
        raw = self._raw
        for k, v in exported.get("raw", ()):
            k = _intern(k)
            if k not in raw:
                raw[k] = _FAIL if v is None else _intern(v)
                added += 1
        for k, v in exported.get("bad", ()):
            k = _intern(k)
            if k not in self._bad:
                self._bad[k] = bool(v)
                added += 1
        for name in ("strip", "desugar", "skel"):
            table = getattr(self, f"_{name}")
            for k, v in exported.get(name, ()):
                k = _intern(k)
                if k not in table:
                    table[k] = _intern(v)
                    added += 1
        return added

    def memo_size(self) -> int:
        """Total entries across every memo table (persistence caps)."""
        return (
            len(self._raw)
            + len(self._bad)
            + len(self._strip)
            + len(self._desugar)
            + len(self._skel)
        )

    # --- resugaring --------------------------------------------------

    def resugar(self, core_term: Pattern) -> Optional[Pattern]:
        """Equivalent to :func:`repro.core.desugar.resugar`, incremental."""
        self._check_generation()
        self.stats.resugar_calls += 1
        if _obs.enabled:
            RESUGAR_CALLS.inc()
        with deep_recursion():
            raw = self._raw_walk(_intern(core_term))
            if raw is _FAIL:
                return None
            if self._bad_walk(raw):
                if _obs.enabled:
                    _prov.on_tag_blocked(
                        "opaque_body_tag"
                        if has_opaque_body_tags(raw)
                        else "head_tag"
                    )
                return None
            return self._strip_walk(raw)

    def _raw_walk(self, t: Pattern):
        memo = self._raw
        cached = memo.get(t, None)
        if cached is not None:
            self.stats.resugar_hits += 1
            if _obs.enabled:
                RESUGAR_CACHE_HITS.inc()
                if cached is _FAIL:
                    _prov.on_cached_fail(self._fail_info.get(t))
            return cached
        self.stats.resugar_visits += 1
        if _obs.enabled:
            RESUGAR_CACHE_MISSES.inc()
        result = self._raw_compute(t)
        memo[t] = result
        return result

    def _propagate_fail(self, t: Pattern, child: Pattern) -> None:
        """A subterm failure just made ``t`` fail too: carry the
        original failure's provenance up so a later memo hit on ``t``
        can still explain itself (enabled paths only)."""
        RESUGAR_FAIL_PROPAGATIONS.inc()
        self._fail_info[t] = self._fail_info.get(child)

    def _raw_compute(self, t: Pattern):
        if isinstance(t, Const):
            return t
        if isinstance(t, Tagged):
            inner = self._raw_walk(t.term)
            if inner is _FAIL:
                if _obs.enabled:
                    self._propagate_fail(t, t.term)
                return _FAIL
            if isinstance(t.tag, HeadTag):
                self.stats.unexpansions += 1
                back = self.rules.unexpand(t.tag.index, inner, t.tag.stand_in)
                if _obs.enabled:
                    event = _prov.on_unexpand(
                        self.rules, t.tag.index, inner, back is not None
                    )
                    if back is None:
                        self._fail_info[t] = event
                return _FAIL if back is None else _intern(back)
            if inner is t.term:
                return t
            return _intern_tagged(t.tag, inner)
        if isinstance(t, Node):
            children = []
            changed = False
            for c in t.children:
                rc = self._raw_walk(c)
                if rc is _FAIL:
                    if _obs.enabled:
                        self._propagate_fail(t, c)
                    return _FAIL
                if rc is not c:
                    changed = True
                children.append(rc)
            if not changed:
                return t
            return _intern_node(t.label, tuple(children))
        if isinstance(t, PList):
            if t.ellipsis is not None:
                return _FAIL  # an ellipsis pattern can never arise in a term
            items = []
            changed = False
            for c in t.items:
                rc = self._raw_walk(c)
                if rc is _FAIL:
                    if _obs.enabled:
                        self._propagate_fail(t, c)
                    return _FAIL
                if rc is not c:
                    changed = True
                items.append(rc)
            if not changed:
                return t
            return _intern_plist(tuple(items))
        return _FAIL

    def _bad_walk(self, t: Pattern) -> bool:
        """Does ``t`` still contain an opaque body tag or a head tag?"""
        memo = self._bad
        cached = memo.get(t)
        if cached is not None:
            return cached
        result = False
        if isinstance(t, Tagged):
            if isinstance(t.tag, HeadTag):
                result = True
            elif isinstance(t.tag, BodyTag) and not t.tag.transparent:
                result = True
            else:
                result = self._bad_walk(t.term)
        elif isinstance(t, Node):
            result = any(self._bad_walk(c) for c in t.children)
        elif isinstance(t, PList):
            result = any(self._bad_walk(c) for c in t.items)
        memo[t] = result
        return result

    def _strip_walk(self, t: Pattern) -> Pattern:
        """Strip transparent body tags (the surviving kind), memoized."""
        memo = self._strip
        cached = memo.get(t)
        if cached is not None:
            return cached
        if isinstance(t, Const):
            result: Pattern = t
        elif isinstance(t, Tagged):
            inner = self._strip_walk(t.term)
            if isinstance(t.tag, BodyTag) and t.tag.transparent:
                result = inner
            elif inner is t.term:
                result = t
            else:
                result = _intern_tagged(t.tag, inner)
        elif isinstance(t, Node):
            children = tuple(self._strip_walk(c) for c in t.children)
            result = (
                t
                if all(a is b for a, b in zip(children, t.children))
                else _intern_node(t.label, children)
            )
        elif isinstance(t, PList):
            items = tuple(self._strip_walk(c) for c in t.items)
            result = (
                t
                if all(a is b for a, b in zip(items, t.items))
                else _intern_plist(items)
            )
        else:
            result = t
        memo[t] = result
        return result

    # --- desugaring and emulation ------------------------------------

    def desugar(self, surface_term: Pattern) -> Pattern:
        """Equivalent to :func:`repro.core.desugar.desugar` (topdown
        order), incremental."""
        self._check_generation()
        self.stats.desugar_calls += 1
        self._fuel = DEFAULT_MAX_EXPANSIONS
        with deep_recursion():
            return self._desugar_walk(_intern(surface_term), 0)

    def _desugar_walk(self, t: Pattern, depth: int) -> Pattern:
        memo = self._desugar
        cached = memo.get(t)
        if cached is not None:
            self.stats.desugar_hits += 1
            if _obs.enabled:
                DESUGAR_CACHE_HITS.inc()
            return cached
        self.stats.desugar_visits += 1
        if _obs.enabled:
            DESUGAR_CACHE_MISSES.inc()
        result = self._desugar_compute(t, depth)
        memo[t] = result
        return result

    def _desugar_compute(self, t: Pattern, depth: int) -> Pattern:
        if isinstance(t, Const):
            return t
        if isinstance(t, Tagged):
            inner = self._desugar_walk(t.term, depth)
            if inner is t.term:
                return t
            return _intern_tagged(t.tag, inner)
        if isinstance(t, PList):
            items = tuple(self._desugar_walk(c, depth) for c in t.items)
            if all(a is b for a, b in zip(items, t.items)):
                return t
            return _intern_plist(items)
        assert isinstance(t, Node)
        expansion = self.rules.expand(t)
        if expansion is None:
            children = tuple(self._desugar_walk(c, depth) for c in t.children)
            if all(a is b for a, b in zip(children, t.children)):
                return t
            return _intern_node(t.label, children)
        self.stats.expansions += 1
        if _obs.enabled:
            DESUGAR_DEPTH.observe(depth + 1)
            _prov.on_expand(self.rules, expansion.index)
        self._fuel -= 1
        if self._fuel < 0:
            raise ExpansionError(
                f"desugaring exceeded {DEFAULT_MAX_EXPANSIONS} expansions; "
                f"the rulelist likely contains a diverging sugar"
            )
        if depth >= DEFAULT_MAX_EXPANSION_DEPTH:
            raise ExpansionError(
                f"expansions nested more than {DEFAULT_MAX_EXPANSION_DEPTH} "
                f"deep; the rulelist likely contains a diverging sugar"
            )
        head = HeadTag(expansion.index, expansion.stand_in)
        body = self._desugar_walk(_intern(expansion.term), depth + 1)
        return _intern_tagged(head, body)

    def _skel_walk(self, t: Pattern) -> Pattern:
        """Tag-free skeleton (``strip_tags``), memoized and interned."""
        memo = self._skel
        cached = memo.get(t)
        if cached is not None:
            return cached
        if isinstance(t, Tagged):
            result = self._skel_walk(t.term)
        elif isinstance(t, Node):
            children = tuple(self._skel_walk(c) for c in t.children)
            result = (
                t
                if all(a is b for a, b in zip(children, t.children))
                else _intern_node(t.label, children)
            )
        elif isinstance(t, PList):
            items = tuple(self._skel_walk(c) for c in t.items)
            result = (
                t
                if all(a is b for a, b in zip(items, t.items))
                else _intern_plist(items)
            )
        else:
            result = t
        memo[t] = result
        return result

    def emulates(self, surface_term: Pattern, core_term: Pattern) -> bool:
        """Equivalent to :func:`repro.core.lenses.emulates`: does the
        surface term desugar into the core term, modulo tags?

        Both skeletons are interned, so the comparison itself is a single
        identity check.
        """
        self._check_generation()
        with deep_recursion():
            core_skeleton = self._skel_walk(_intern(core_term))
            surface_core = self._desugar_walk(_intern(surface_term), 0)
            return self._skel_walk(surface_core) is core_skeleton
