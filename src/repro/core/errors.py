"""Exception hierarchy for the resugaring engine.

Failures that are part of normal control flow (a pattern failing to match a
term, a core step having no surface representation) are *not* exceptions:
``match`` returns ``None`` and resugaring returns ``None`` for a skipped
step.  The exceptions below mark conditions the paper treats as static
errors (ill-formed rules, overlapping rules) or genuine runtime faults
(substituting with an unbound variable, a diverging desugaring).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class PatternError(ReproError):
    """A pattern or term was constructed or used incorrectly."""


class WellFormednessError(ReproError):
    """A transformation rule violates the well-formedness criteria.

    The criteria are those of section 5.1.3 of the paper:

    1. every RHS variable also appears in the LHS;
    2. variables are linear (appear at most once per side), except
       variables known to be bound to atomic terms;
    3. an ellipsis of depth *n* contains a variable at depth >= *n* on the
       other side, or a variable absent from the other side;
    4. the LHS is a labeled node ``l(P1, ..., Pn)``.
    """


class DisjointnessError(ReproError):
    """Two rules in a rulelist have unifiable (overlapping) LHSs.

    Overlap breaks the PutGet lens law (Theorem 1) and with it the
    Emulation property, as demonstrated by the paper's ``Max`` example
    (section 5.1.5).
    """


class SubstitutionError(ReproError):
    """Substitution hit an unbound variable or a malformed binding."""


class ExpansionError(ReproError):
    """Desugaring failed: no rule matched where one was required, or the
    expansion exceeded the recursion limit (a diverging sugar)."""


class ParseError(ReproError):
    """A rule definition or an s-expression could not be parsed."""


class StuckError(ReproError):
    """A core-language evaluator reached a non-value term with no
    applicable reduction (a runtime type error in the object language)."""


class LanguageError(ReproError):
    """A language definition (grammar, contexts, reductions) is invalid."""
