"""Static checks on transformation rules.

Two families of checks, both from the paper:

* **Well-formedness** (section 5.1.3), per rule:

  1. every variable in the RHS also appears in the LHS;
  2. variables are linear: each appears at most once in the LHS and at
     most once in the RHS (duplicates are permitted only for variables
     the rule explicitly declares atomic);
  3. every ellipsis of depth *n* contains at least one variable that
     either appears at depth >= *n* on the other side of the rule or does
     not appear on the other side at all;
  4. the LHS has the form ``l(T1, ..., Tn)`` — a labeled node.

* **Disjointness** (section 5.1.5, Definition 1), per rulelist: the LHSs
  of distinct rules must not unify.  This is necessary and sufficient for
  the PutGet lens law (Theorem 1), which Emulation rests on.  Because the
  paper's own multi-arm ``Or`` (section 3.4) relies instead on rule
  *priority*, we also offer a ``PRIORITIZED`` mode that permits an
  earlier, more specific rule to overlap a later, strictly more general
  one; Emulation is then guaranteed dynamically by the lifting loop's
  emulation check rather than statically.
"""

from __future__ import annotations

import enum
from typing import Iterable, Sequence, Tuple

from repro.core.errors import DisjointnessError, WellFormednessError
from repro.core.terms import (
    Node,
    Pattern,
    PList,
    Tagged,
    pattern_variables,
    variable_depths,
)
from repro.core.unification import subsumes, unify

__all__ = [
    "DisjointnessMode",
    "check_rule_wellformed",
    "wellformedness_violation",
    "check_disjointness",
    "ellipsis_variable_sets",
]


class DisjointnessMode(enum.Enum):
    """How strictly to enforce Definition 1 on a rulelist."""

    STRICT = "strict"
    """Pairwise non-unifiable LHSs, exactly as in the paper."""

    PRIORITIZED = "prioritized"
    """Allow rule ``i < j`` to overlap rule ``j`` when ``j``'s LHS
    subsumes ``i``'s (priority shadows the overlap during expansion)."""

    OFF = "off"
    """No check.  Emulation may be violated, as with the paper's ``Max``
    example; useful for demonstrating exactly that failure."""


def check_rule_wellformed(
    lhs: Pattern,
    rhs: Pattern,
    atomic_vars: Iterable[str] = (),
    rule_name: str = "<rule>",
) -> None:
    """Raise :class:`WellFormednessError` unless ``lhs -> rhs`` satisfies
    criteria 1-4 of section 5.1.3."""
    atomic = set(atomic_vars)

    # Criterion 4: the LHS must be a labeled node.
    if not isinstance(lhs, Node):
        raise WellFormednessError(
            f"{rule_name}: LHS must be a labeled node l(T1, ..., Tn), "
            f"got {lhs!r} (criterion 4)"
        )

    lhs_vars = pattern_variables(lhs)
    rhs_vars = pattern_variables(rhs)

    # Criterion 1: RHS variables are a subset of LHS variables.
    unbound = [v for v in dict.fromkeys(rhs_vars) if v not in set(lhs_vars)]
    if unbound:
        raise WellFormednessError(
            f"{rule_name}: RHS variable(s) {unbound} do not appear in the "
            f"LHS and would be unbound during expansion (criterion 1)"
        )

    # Criterion 2: linearity on each side, except declared-atomic vars.
    for side, names in (("LHS", lhs_vars), ("RHS", rhs_vars)):
        seen = set()
        for name in names:
            if name in seen and name not in atomic:
                raise WellFormednessError(
                    f"{rule_name}: variable {name!r} appears more than once "
                    f"in the {side} (criterion 2; declare it atomic to allow "
                    f"duplication of atoms)"
                )
            seen.add(name)

    # Criterion 3, applied to the ellipses of both sides.
    lhs_depths = variable_depths(lhs)
    rhs_depths = variable_depths(rhs)
    _check_ellipses(lhs, rhs_depths, depth_of_own_side=lhs_depths,
                    side="LHS", rule_name=rule_name)
    _check_ellipses(rhs, lhs_depths, depth_of_own_side=rhs_depths,
                    side="RHS", rule_name=rule_name)


def wellformedness_violation(
    lhs: Pattern,
    rhs: Pattern,
    atomic_vars: Iterable[str] = (),
    rule_name: str = "<rule>",
) -> "str | None":
    """Non-raising form of :func:`check_rule_wellformed`: the violation
    message, or ``None`` when the rule satisfies criteria 1-4.  This is
    the entry point the synthesis filter uses to *classify* candidates
    rather than abort on the first bad one."""
    try:
        check_rule_wellformed(lhs, rhs, atomic_vars, rule_name)
    except WellFormednessError as exc:
        return str(exc)
    return None


def ellipsis_variable_sets(pattern: Pattern) -> Tuple[Tuple[int, Tuple[str, ...]], ...]:
    """All ellipses in ``pattern`` as ``(depth, variables)`` pairs.

    Depth follows the paper's convention: a top-level ellipsis has depth
    1, an ellipsis nested inside another has depth 2, and so on.
    """
    found: list[Tuple[int, Tuple[str, ...]]] = []

    def walk(p: Pattern, depth: int) -> None:
        if isinstance(p, Node):
            for c in p.children:
                walk(c, depth)
        elif isinstance(p, PList):
            for c in p.items:
                walk(c, depth)
            if p.ellipsis is not None:
                found.append(
                    (depth + 1, tuple(dict.fromkeys(pattern_variables(p.ellipsis))))
                )
                walk(p.ellipsis, depth + 1)
        elif isinstance(p, Tagged):
            walk(p.term, depth)

    walk(pattern, 0)
    return tuple(found)


def _check_ellipses(pattern, other_depths, depth_of_own_side, side, rule_name):
    for depth, variables in ellipsis_variable_sets(pattern):
        if not variables:
            raise WellFormednessError(
                f"{rule_name}: an ellipsis of depth {depth} in the {side} "
                f"contains no variables, so the repetition count is "
                f"undetermined (criterion 3)"
            )
        ok = any(
            name not in other_depths or other_depths[name] >= depth
            for name in variables
        )
        if not ok:
            raise WellFormednessError(
                f"{rule_name}: the ellipsis of depth {depth} in the {side} "
                f"(variables {list(variables)}) has no variable that appears "
                f"at depth >= {depth} on the other side or is absent from it "
                f"(criterion 3)"
            )


def check_disjointness(
    lhss: Sequence[Pattern],
    mode: DisjointnessMode = DisjointnessMode.STRICT,
    rule_names: Sequence[str] | None = None,
) -> None:
    """Raise :class:`DisjointnessError` when two LHSs overlap.

    ``lhss`` is given in priority order (earlier rules are tried first).
    """
    if mode is DisjointnessMode.OFF:
        return
    names = rule_names or [f"rule {i}" for i in range(len(lhss))]
    # Group by outer node label: rules with different labels are trivially
    # disjoint, and all LHSs are labeled nodes by criterion 4.
    for i in range(len(lhss)):
        for j in range(i + 1, len(lhss)):
            pi, pj = lhss[i], lhss[j]
            if isinstance(pi, Node) and isinstance(pj, Node):
                if pi.label != pj.label:
                    continue
            overlap = unify(pi, pj)
            if overlap is None:
                continue
            if mode is DisjointnessMode.PRIORITIZED and subsumes(pj, pi):
                # The later rule is strictly more general; priority gives
                # the overlap to the earlier rule during expansion.
                continue
            raise DisjointnessError(
                f"LHSs of {names[i]} and {names[j]} overlap (a term such as "
                f"{overlap!r} matches both); this breaks the PutGet law and "
                f"with it Emulation (Definition 1 / Theorem 1)"
            )
