"""Tag insertion and inspection (section 5.2.1).

Body tags are "automatically inserted into each rule's RHS during
parsing": every non-atomic term the RHS *constructs* (labeled nodes and
lists, but not pattern variables — those splice in user code — and not
constants, which are atomic) is wrapped in an opaque
:class:`~repro.core.terms.BodyTag`.  Sugar authors opt specific subterms
out of Abstraction by marking them with ``!``; those receive transparent
body tags instead (section 3.4's Abstraction/Coverage dial).

In the programmatic rule API, transparency is expressed by wrapping an
RHS subpattern with :func:`transparent` before handing the rule to the
rulelist; :func:`insert_body_tags` then honours the pre-existing marks
while tagging everything else opaque.
"""

from __future__ import annotations

from repro.core.terms import (
    BodyTag,
    Const,
    HeadTag,
    Node,
    Pattern,
    PList,
    PVar,
    Tagged,
)

__all__ = [
    "transparent",
    "insert_body_tags",
    "has_opaque_body_tags",
    "has_head_tags",
    "is_surface_term",
]

_TRANSPARENT = BodyTag(transparent=True)
_OPAQUE = BodyTag(transparent=False)


def transparent(pattern: Pattern) -> Tagged:
    """Mark an RHS subpattern as transparent (the paper's ``!`` prefix)."""
    if isinstance(pattern, Tagged) and isinstance(pattern.tag, BodyTag):
        return Tagged(_TRANSPARENT, pattern.term)
    return Tagged(_TRANSPARENT, pattern)


def insert_body_tags(rhs: Pattern) -> Pattern:
    """Wrap every constructed non-atomic subpattern of ``rhs`` in a body
    tag, preserving any transparency marks already present."""
    if isinstance(rhs, (PVar, Const)):
        return rhs
    if isinstance(rhs, Tagged):
        if isinstance(rhs.tag, BodyTag):
            inner = rhs.term
            if isinstance(inner, (PVar, Const)):
                # ``!x`` and ``!42`` are meaningless marks: the subterm is
                # not constructed by the rule.  Drop the tag.
                return inner
            return Tagged(rhs.tag, _tag_children(inner))
        # Head tags never appear in rule sources; pass through defensively.
        return Tagged(rhs.tag, insert_body_tags(rhs.term))
    return Tagged(_OPAQUE, _tag_children(rhs))


def _tag_children(p: Pattern) -> Pattern:
    if isinstance(p, Node):
        return Node(p.label, tuple(insert_body_tags(c) for c in p.children))
    if isinstance(p, PList):
        ell = insert_body_tags(p.ellipsis) if p.ellipsis is not None else None
        return PList(tuple(insert_body_tags(c) for c in p.items), ell)
    return p


def has_opaque_body_tags(t: Pattern) -> bool:
    """Does any opaque body tag remain in ``t``?  Resugaring must fail in
    that case: sugar-origin code would otherwise leak into the output."""
    if isinstance(t, Tagged):
        if isinstance(t.tag, BodyTag) and not t.tag.transparent:
            return True
        return has_opaque_body_tags(t.term)
    if isinstance(t, Node):
        return any(has_opaque_body_tags(c) for c in t.children)
    if isinstance(t, PList):
        if any(has_opaque_body_tags(c) for c in t.items):
            return True
        return t.ellipsis is not None and has_opaque_body_tags(t.ellipsis)
    return False


def has_head_tags(t: Pattern) -> bool:
    """Does any head tag remain in ``t``?"""
    if isinstance(t, Tagged):
        if isinstance(t.tag, HeadTag):
            return True
        return has_head_tags(t.term)
    if isinstance(t, Node):
        return any(has_head_tags(c) for c in t.children)
    if isinstance(t, PList):
        if any(has_head_tags(c) for c in t.items):
            return True
        return t.ellipsis is not None and has_head_tags(t.ellipsis)
    return False


def is_surface_term(t: Pattern) -> bool:
    """Definition 2: a surface term is a term without any tags."""
    if isinstance(t, Tagged):
        return False
    if isinstance(t, Node):
        return all(is_surface_term(c) for c in t.children)
    if isinstance(t, PList):
        if not all(is_surface_term(c) for c in t.items):
            return False
        return t.ellipsis is None or is_surface_term(t.ellipsis)
    return True
