"""Matching a term against a pattern (Figure 3, left column).

``match(T, P)`` implements the paper's ``T / P``: it returns an
environment binding the pattern's variables when the match succeeds and
``None`` when it fails.  The paper writes ``T >= P`` for "``T / P`` is
defined"; that is :func:`matches` here.

The interesting case is the ellipsis: matching ``(T1 ... Tn+k)`` against
``(P1 ... Pn Pe*)`` matches the fixed prefix pairwise and then matches
each of the ``k`` remaining elements against ``Pe``, *merging* the
resulting environments into list bindings (one item per repetition).

Tags and matching.  Body tags are literally part of RHS patterns
(section 5.2.1), so by default a tagged term only matches a tagged
pattern with an equal tag.  Two relaxations are needed in practice:

* During *expansion*, the term being matched against a rule's (tag-free)
  LHS may contain tags on subterms that earlier expansions introduced;
  ``see_through_tags=True`` makes constant, node, and list patterns
  ignore tags on the term.
* During *unexpansion*, ``lenient_pattern_tags=True`` lets a body tag in
  the *pattern* match an untagged term.  This is required for recursive
  sugar (the multi-arm ``Or`` of section 3.4): the RHS's recursive
  invocation is expanded by another rule, which consumes the body tags
  on its argument structure, and the inner unexpansion reconstructs a
  clean surface term there.  Abstraction is unaffected — it is enforced
  by the final opaque-tag check on the resugared term, not by match
  strictness — but the strict reading of Theorem 4's proof weakens to
  "terms matching the RHS's concrete structure", the same relaxation the
  paper itself accepts for body tags not recording rule identity.

Pattern variables always capture the term *with* its tags, preserving
origin information.
"""

from __future__ import annotations

from typing import Mapping, Optional, Tuple

from repro.core.bindings import Binding, Env, merge
from repro.obs import _state as _obs
from repro.obs.metrics import MATCH_ATTEMPTS, MATCH_SUCCESSES
from repro.core.terms import (
    BodyTag,
    Const,
    Node,
    Pattern,
    PList,
    PVar,
    Tagged,
    pattern_variables,
)

__all__ = ["match", "matches", "match_explain"]


def match(
    term: Pattern,
    pattern: Pattern,
    see_through_tags: bool = False,
    lenient_pattern_tags: bool = False,
) -> Optional[Env]:
    """Match ``term`` against ``pattern``; return bindings or ``None``.

    ``term`` must be a term (no variables or ellipses); this is not
    re-checked on every call for speed, but variables in the term position
    will simply never match anything except a pattern variable.
    """
    result = _match(term, pattern, see_through_tags, lenient_pattern_tags)
    if _obs.enabled:
        MATCH_ATTEMPTS.inc()
        if result is not None:
            MATCH_SUCCESSES.inc()
    return result


def matches(
    term: Pattern,
    pattern: Pattern,
    see_through_tags: bool = False,
    lenient_pattern_tags: bool = False,
) -> bool:
    """The paper's ``T >= P``: does ``term`` match ``pattern``?"""
    result = _match(term, pattern, see_through_tags, lenient_pattern_tags)
    if _obs.enabled:
        MATCH_ATTEMPTS.inc()
        if result is not None:
            MATCH_SUCCESSES.inc()
    return result is not None


def match_explain(
    term: Pattern,
    pattern: Pattern,
    see_through_tags: bool = False,
    lenient_pattern_tags: bool = False,
) -> "Tuple[Optional[Env], Optional[str], Optional[str]]":
    """Like :func:`match`, but diagnose failures: returns
    ``(env, fail_path, fail_reason)``.

    On success ``env`` is the bindings and the other two are ``None``;
    on failure ``env`` is ``None``, ``fail_path`` is a ``/``-separated
    path into the *pattern* locating the innermost mismatch (e.g.
    ``"If.0/Tag"``, empty string for a root mismatch) and
    ``fail_reason`` says what went wrong there.  This is the slow,
    allocation-happy sibling of :func:`match`, used only by the
    provenance layer (:mod:`repro.obs.provenance`) to explain *why* an
    unexpansion failed — never on the hot path, and it moves no
    counters.
    """
    path: list = []
    reason: list = []

    def fail(at: "Tuple[str, ...]", why: str) -> None:
        # Keep the *deepest* diagnosis: an inner mismatch is the cause,
        # the outer failures are its consequences.
        if len(at) >= len(path) or not reason:
            path[:] = at
            reason[:] = [why]

    def walk(t: Pattern, p: Pattern, at: "Tuple[str, ...]", see: bool,
             lenient: bool) -> Optional[Env]:
        if isinstance(p, PVar):
            return {p.name: t}
        if isinstance(p, Tagged):
            if isinstance(t, Tagged) and t.tag == p.tag:
                return walk(t.term, p.term, at + ("Tag",), see, lenient)
            if lenient and isinstance(p.tag, BodyTag):
                return walk(t, p.term, at, see, lenient)
            fail(at, (
                f"pattern expects tag {p.tag!r} but term is {_describe(t)}"
            ))
            return None
        if isinstance(t, Tagged):
            if see:
                return walk(t.term, p, at, see, lenient)
            fail(at, (
                f"term carries tag {t.tag!r} the pattern does not mention"
            ))
            return None
        if isinstance(p, Const):
            if isinstance(t, Const) and t == p:
                return {}
            fail(at, f"expected constant {p!r}, term is {_describe(t)}")
            return None
        if isinstance(p, Node):
            if not isinstance(t, Node):
                fail(at, f"expected node {p.label!r}, term is {_describe(t)}")
                return None
            if t.label != p.label:
                fail(at, f"expected node {p.label!r}, term is node {t.label!r}")
                return None
            if len(t.children) != len(p.children):
                fail(at, (
                    f"node {p.label!r} arity mismatch: pattern has "
                    f"{len(p.children)} children, term has {len(t.children)}"
                ))
                return None
            out: Env = {}
            for i, (tc, pc) in enumerate(zip(t.children, p.children)):
                sub = walk(tc, pc, at + (f"{p.label}.{i}",), see, lenient)
                if sub is None:
                    return None
                if _union(out, sub) is None:
                    fail(at + (f"{p.label}.{i}",),
                         "conflicting duplicate variable bindings")
                    return None
            return out
        if isinstance(p, PList):
            if not isinstance(t, PList) or t.ellipsis is not None:
                fail(at, f"expected list, term is {_describe(t)}")
                return None
            n = len(p.items)
            if p.ellipsis is None and len(t.items) != n:
                fail(at, (
                    f"list length mismatch: pattern has {n} items, "
                    f"term has {len(t.items)}"
                ))
                return None
            if p.ellipsis is not None and len(t.items) < n:
                fail(at, (
                    f"list too short: pattern needs at least {n} items, "
                    f"term has {len(t.items)}"
                ))
                return None
            out = {}
            for i, (ti, pi) in enumerate(zip(t.items[:n], p.items)):
                sub = walk(ti, pi, at + (f"[{i}]",), see, lenient)
                if sub is None:
                    return None
                if _union(out, sub) is None:
                    fail(at + (f"[{i}]",),
                         "conflicting duplicate variable bindings")
                    return None
            if p.ellipsis is not None:
                rep_envs = []
                for i, ti in enumerate(t.items[n:], start=n):
                    sub = walk(ti, p.ellipsis, at + (f"[{i}]",), see, lenient)
                    if sub is None:
                        return None
                    rep_envs.append(sub)
                ell_vars = dict.fromkeys(pattern_variables(p.ellipsis))
                merged = merge(rep_envs, ell_vars)
                if _union(out, merged) is None:
                    fail(at, "conflicting ellipsis variable bindings")
                    return None
            return out
        fail(at, f"unmatchable pattern {_describe(p)}")
        return None

    env = walk(term, pattern, (), see_through_tags, lenient_pattern_tags)
    if env is not None:
        return env, None, None
    return None, "/".join(path), reason[0] if reason else "mismatch"


def _describe(t: Pattern) -> str:
    """A one-phrase description of a term's outermost shape."""
    if isinstance(t, Const):
        return f"constant {t!r}"
    if isinstance(t, Node):
        return f"node {t.label!r}"
    if isinstance(t, PList):
        return f"list of {len(t.items)}"
    if isinstance(t, Tagged):
        return f"tagged term ({t.tag!r})"
    if isinstance(t, PVar):
        return f"variable {t.name!r}"
    return repr(t)


def _union(sigma1: Env, sigma2: Mapping[str, Binding]) -> Optional[Env]:
    """Union of sibling match environments; ``None`` on conflicting
    duplicate bindings (the match as a whole then fails).

    Duplicate variables only pass well-formedness when declared atomic
    (criterion 2's exception), so agreeing duplicates — e.g. Letrec's
    binding names, which appear both in the initialization list and the
    assignment sequence of its RHS — simply require equal bindings.
    """
    for name, b in sigma2.items():
        if name in sigma1:
            if sigma1[name] != b:
                return None
        sigma1[name] = b
    return sigma1


def _match(term: Pattern, pattern: Pattern, see: bool, lenient: bool) -> Optional[Env]:
    # T / x = {x -> T}: variables capture the term, tags included.
    if isinstance(pattern, PVar):
        return {pattern.name: term}

    if isinstance(pattern, Tagged):
        if isinstance(term, Tagged) and term.tag == pattern.tag:
            return _match(term.term, pattern.term, see, lenient)
        if lenient and isinstance(pattern.tag, BodyTag):
            return _match(term, pattern.term, see, lenient)
        return None

    # The pattern is a constant, node, or list.  A tagged term matches it
    # only in see-through mode (expansion-time LHS matching).
    if isinstance(term, Tagged):
        if see:
            return _match(term.term, pattern, see, lenient)
        return None

    if isinstance(pattern, Const):
        if isinstance(term, Const) and term == pattern:
            return {}
        return None

    if isinstance(pattern, Node):
        if (
            not isinstance(term, Node)
            or term.label != pattern.label
            or len(term.children) != len(pattern.children)
        ):
            return None
        out: Env = {}
        for t_child, p_child in zip(term.children, pattern.children):
            sub = _match(t_child, p_child, see, lenient)
            if sub is None:
                return None
            if _union(out, sub) is None:
                return None
        return out

    if isinstance(pattern, PList):
        if not isinstance(term, PList) or term.ellipsis is not None:
            return None
        n = len(pattern.items)
        if pattern.ellipsis is None:
            if len(term.items) != n:
                return None
        elif len(term.items) < n:
            return None
        out = {}
        for t_item, p_item in zip(term.items[:n], pattern.items):
            sub = _match(t_item, p_item, see, lenient)
            if sub is None:
                return None
            if _union(out, sub) is None:
                return None
        if pattern.ellipsis is not None:
            rep_envs = []
            for t_item in term.items[n:]:
                sub = _match(t_item, pattern.ellipsis, see, lenient)
                if sub is None:
                    return None
                rep_envs.append(sub)
            ell_vars = dict.fromkeys(pattern_variables(pattern.ellipsis))
            merged = merge(rep_envs, ell_vars)
            if _union(out, merged) is None:
                return None
        return out

    return None
