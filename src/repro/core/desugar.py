"""Recursive desugaring and resugaring (section 5.2.2).

*Desugaring* traverses a term top-down (the order Scheme macros use —
footnote 3 of the paper), expanding each node a rulelist rewrites and
wrapping the expansion in a head tag that records the rule index and the
stand-in environment::

    desugar a            = a
    desugar l(T1..Tn)    = desugar (Tag (Head i sigma) T')
                              when exp l(T1..Tn) = (i, T')
    desugar l(T1..Tn)    = l(desugar T1, ..., desugar Tn)   otherwise
    desugar (T1 ... Tn)  = (desugar T1 ... desugar Tn)
    desugar (Tag O T)    = (Tag O (desugar T))

*Resugaring* traverses bottom-up, unexpanding at every head tag and
failing — for the whole term — if any unexpansion fails or any opaque
body tag survives (that code originated in sugar and must not leak)::

    R a                       = a
    R (Tag (Body b) T)        = (Tag (Body b) (R T))
    R (Tag (Head i sigma) T') = unexp (i, R T') sigma
    R l(T1..Tn)               = l(R T1, ..., R Tn)
    R (T1 ... Tn)             = (R T1 ... R Tn)

    resugar T' = R T'  when R T' succeeds and has no opaque body tags
    resugar T' = None  otherwise

The public ``resugar`` additionally strips surviving *transparent* body
tags so its output is a surface term (Definition 2: no tags at all).
"""

from __future__ import annotations

from typing import Optional

from repro.core.errors import ExpansionError
from repro.core.recursion import deep_recursion
from repro.core.rules import RuleList
from repro.core.tags import has_head_tags, has_opaque_body_tags
from repro.obs import _state as _obs
from repro.obs import provenance as _prov
from repro.obs.metrics import DESUGAR_DEPTH, RESUGAR_CALLS
from repro.obs.trace import span as _span
from repro.core.terms import (
    Const,
    HeadTag,
    Node,
    Pattern,
    PList,
    Tagged,
    strip_body_tags,
)

__all__ = [
    "desugar",
    "resugar",
    "resugar_raw",
    "DEFAULT_MAX_EXPANSIONS",
    "DEFAULT_MAX_EXPANSION_DEPTH",
]

DEFAULT_MAX_EXPANSIONS = 10_000
"""Expansion fuel: guards against diverging sugar definitions, which the
pattern language cannot rule out statically."""

DEFAULT_MAX_EXPANSION_DEPTH = 1_000
"""Nesting guard: a rule whose RHS re-invokes sugar *around* its result
(rather than on smaller arguments) nests expansions without bound; this
trips before the (raised) recursion headroom runs out while leaving
room for legitimately deep recursive sugar (a 128-arm Or nests ~256
expansions)."""


def desugar(
    rules: RuleList,
    term: Pattern,
    max_expansions: int = DEFAULT_MAX_EXPANSIONS,
    order: str = "topdown",
    max_expansion_depth: int = DEFAULT_MAX_EXPANSION_DEPTH,
) -> Pattern:
    """Fully desugar ``term``: recursively expand every sugar node,
    tagging expansions with head tags and their internals with body tags.

    ``order`` selects the traversal: ``"topdown"`` (the paper's choice and
    Scheme's) expands a node before its children, so sugar may generate
    further sugar; ``"bottomup"`` expands children first.
    """
    if order not in ("topdown", "bottomup"):
        raise ValueError(f"unknown desugaring order {order!r}")
    fuel = [max_expansions]

    def spend() -> None:
        fuel[0] -= 1
        if fuel[0] < 0:
            raise ExpansionError(
                f"desugaring exceeded {max_expansions} expansions; the "
                f"rulelist likely contains a diverging sugar"
            )

    def walk(t: Pattern, depth: int) -> Pattern:
        if isinstance(t, Const):
            return t
        if isinstance(t, Tagged):
            return Tagged(t.tag, walk(t.term, depth))
        if isinstance(t, PList):
            ell = walk(t.ellipsis, depth) if t.ellipsis is not None else None
            return PList(tuple(walk(c, depth) for c in t.items), ell)
        assert isinstance(t, Node)
        if order == "bottomup":
            t = Node(t.label, tuple(walk(c, depth) for c in t.children))
        expansion = rules.expand(t)
        if expansion is None:
            if order == "bottomup":
                return t
            return Node(t.label, tuple(walk(c, depth) for c in t.children))
        spend()
        if _obs.enabled:
            DESUGAR_DEPTH.observe(depth + 1)
            _prov.on_expand(rules, expansion.index)
        if depth >= max_expansion_depth:
            raise ExpansionError(
                f"expansions nested more than {max_expansion_depth} deep; "
                f"the rulelist likely contains a diverging sugar"
            )
        head = HeadTag(expansion.index, expansion.stand_in)
        # Either order re-walks the freshly substituted RHS: it may
        # itself contain sugar.
        return Tagged(head, walk(expansion.term, depth + 1))

    with deep_recursion():
        if _obs.enabled:
            with _span("desugar", order=order):
                return walk(term, 0)
        return walk(term, 0)


def resugar_raw(rules: RuleList, term: Pattern) -> Optional[Pattern]:
    """The paper's ``R``: unexpand every head tag, bottom-up, keeping
    body tags in place.  ``None`` if any unexpansion fails."""

    def walk(t: Pattern) -> Optional[Pattern]:
        if isinstance(t, Const):
            return t
        if isinstance(t, Tagged):
            inner = walk(t.term)
            if inner is None:
                return None
            if isinstance(t.tag, HeadTag):
                back = rules.unexpand(t.tag.index, inner, t.tag.stand_in)
                if _obs.enabled:
                    _prov.on_unexpand(
                        rules, t.tag.index, inner, back is not None
                    )
                return back
            return Tagged(t.tag, inner)
        if isinstance(t, Node):
            children = []
            for c in t.children:
                rc = walk(c)
                if rc is None:
                    return None
                children.append(rc)
            return Node(t.label, tuple(children))
        if isinstance(t, PList):
            items = []
            for c in t.items:
                rc = walk(c)
                if rc is None:
                    return None
                items.append(rc)
            ell = None
            if t.ellipsis is not None:
                ell = walk(t.ellipsis)
                if ell is None:
                    return None
            return PList(tuple(items), ell)
        return None

    with deep_recursion():
        return walk(term)


def resugar(rules: RuleList, term: Pattern) -> Optional[Pattern]:
    """Resugar a core term into a surface term, or ``None`` when the term
    has no faithful surface representation (the step is skipped).

    Fails when any unexpansion fails, when any opaque body tag survives
    (Abstraction would be violated), or when a head tag survives; then
    strips the remaining transparent body tags so the result is a surface
    term.
    """
    if _obs.enabled:
        RESUGAR_CALLS.inc()
        with _span("resugar") as s:
            result = _resugar_checked(rules, term)
            if s is not None:
                s.attrs["ok"] = result is not None
            return result
    return _resugar_checked(rules, term)


def _resugar_checked(rules: RuleList, term: Pattern) -> Optional[Pattern]:
    raw = resugar_raw(rules, term)
    if raw is None:
        return None
    if has_opaque_body_tags(raw) or has_head_tags(raw):
        if _obs.enabled:
            _prov.on_tag_blocked(
                "opaque_body_tag" if has_opaque_body_tags(raw) else "head_tag"
            )
        return None
    return strip_body_tags(raw, transparent_only=True)
