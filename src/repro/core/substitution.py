"""Substituting an environment into a pattern (Figure 3, right column).

``subst(sigma, P)`` implements the paper's ``sigma P``: it replaces each
pattern variable with the term form of its binding and *splits* ellipsis
patterns, producing one instance of the repeated pattern per item of the
variables' list bindings.

Substitution raises :class:`~repro.core.errors.SubstitutionError` rather
than returning ``None``: an unbound variable or an ellipsis-depth
mismatch indicates an ill-formed rule (the static checks of section 5.1.3
exist precisely to rule these out), not a benign failure.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.bindings import Binding, split, to_term
from repro.core.errors import SubstitutionError
from repro.core.terms import (
    Const,
    Node,
    Pattern,
    PList,
    PVar,
    Tagged,
    pattern_variables,
)

__all__ = ["subst"]


def subst(sigma: Mapping[str, Binding], pattern: Pattern) -> Pattern:
    """Substitute ``sigma`` into ``pattern``, producing a term.

    The result is a genuine term provided every variable of ``pattern``
    is bound in ``sigma`` to a binding of matching ellipsis depth.
    """
    if isinstance(pattern, Const):
        return pattern

    if isinstance(pattern, PVar):
        if pattern.name not in sigma:
            raise SubstitutionError(f"unbound pattern variable {pattern.name!r}")
        return to_term(sigma[pattern.name])

    if isinstance(pattern, Node):
        return Node(pattern.label, tuple(subst(sigma, c) for c in pattern.children))

    if isinstance(pattern, Tagged):
        return Tagged(pattern.tag, subst(sigma, pattern.term))

    if isinstance(pattern, PList):
        items = [subst(sigma, c) for c in pattern.items]
        if pattern.ellipsis is not None:
            ell_vars = tuple(dict.fromkeys(pattern_variables(pattern.ellipsis)))
            for env_i in split(sigma, ell_vars):
                # Variables of the enclosing scope remain visible inside
                # the repetition (rules never need this under linearity,
                # but it keeps substitution total on well-formed input).
                scope = dict(sigma)
                scope.update(env_i)
                items.append(subst(scope, pattern.ellipsis))
        return PList(tuple(items))

    raise SubstitutionError(f"cannot substitute into {pattern!r}")
