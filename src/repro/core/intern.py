"""Hash-consing for terms: canonical, pointer-identical representatives.

Evaluation produces long sequences of core terms that differ only along
the spine the last reduction rewrote; resugaring, emulation checking,
dedup, and memo tables all repeatedly hash and compare the unchanged
remainder.  Interning collapses that cost: :func:`intern` maps every
ground term to a *canonical* object such that structurally equal terms
become pointer-identical.  Downstream caches (notably
:class:`repro.core.incremental.ResugarCache`) can then key on object
identity, and ``==`` between two interned terms is a single ``is`` check.

Mechanics
---------

Each recursive term class carries an ``_interned`` slot holding the
interning *generation* under which the object was canonicalized (``None``
when it never was).  :func:`intern` walks bottom-up, short-circuiting at
subterms already stamped with the current generation — so re-interning a
term after a single reduction step costs O(rewritten spine), not O(size).

Canonical objects are kept alive by the intern table, so their ``id`` is
stable and may be used inside table keys.  :func:`clear_intern_caches`
drops the table and bumps the generation, which atomically invalidates
every outstanding ``_interned`` stamp (stale canonical objects can never
be confused with ones from the new generation).

Only *ground* terms are interned.  Patterns containing :class:`PVar`,
ellipses, or redex extensions (``NTRef``/``AtomPred``) pass through
unchanged: their subterm identity is not meaningful across rule
applications, and keying the table on short-lived objects would risk
``id`` reuse after garbage collection.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.terms import Const, Node, Pattern, PList, Tagged

__all__ = [
    "intern",
    "intern_node",
    "intern_plist",
    "intern_tagged",
    "is_interned",
    "intern_stats",
    "clear_intern_caches",
    "intern_generation",
]

# ---------------------------------------------------------------------------
# Pickle reconstructors.
#
# Terms cross process boundaries (repro.parallel ships programs to pool
# workers and results back), but a default-unpickled term would be a
# *private* object: structurally equal to, yet not pointer-identical
# with, the receiving process's canonical representative — silently
# breaking every identity-keyed cache downstream.  The term classes'
# ``__reduce__`` therefore routes through these reconstructors, which
# rebuild the term and immediately re-intern it against the *local*
# table.  Children unpickle (and re-intern) before their parent, so each
# reconstruction is a single table probe, not a walk.  Non-ground
# patterns pass through :func:`intern` unchanged, exactly as live ones
# do.
# ---------------------------------------------------------------------------


def _unpickle_const(value):
    return _intern(Const(value))


def _unpickle_node(label, children):
    return _intern(Node(label, children))


def _unpickle_plist(items, ellipsis):
    return _intern(PList(items, ellipsis))


def _unpickle_tagged(tag, term):
    return _intern(Tagged(tag, term))

_TABLE: Dict[tuple, Pattern] = {}
_GENERATION: int = 1  # generation stamps are always truthy ints
_HITS: int = 0
_MISSES: int = 0


def intern_generation() -> int:
    """The current interning generation (bumped by cache clears)."""
    return _GENERATION


def is_interned(term: Pattern) -> bool:
    """Is ``term`` the canonical representative under the current
    generation?"""
    return getattr(term, "_interned", None) == _GENERATION


def intern(term: Pattern) -> Pattern:
    """Return the canonical representative of ``term``.

    Structurally equal ground terms intern to the same object; the result
    compares equal to the argument.  Non-ground patterns are returned
    unchanged (subtrees of them that are ground are still shared).
    """
    return _intern(term)


def _intern(t: Pattern) -> Pattern:
    # The hottest function in the engine: every memoized walk in
    # ResugarCache funnels its rebuilds through here.  Child stamps are
    # checked inline before recursing so an already-canonical child costs
    # one getattr, not a function call.
    global _HITS
    gen = _GENERATION
    if getattr(t, "_interned", None) == gen:
        _HITS += 1
        return t
    cls = t.__class__

    if cls is Const:
        key = ("c", type(t.value).__name__, t.value)
        found = _TABLE.get(key)
        if found is not None:
            _HITS += 1
            return found
        return _store(key, t)

    if cls is Node:
        children = t.children
        rebuilt = None
        for i, c in enumerate(children):
            if getattr(c, "_interned", None) != gen:
                ic = _intern(c)
                if getattr(ic, "_interned", None) != gen:
                    return t  # pattern-only form below; leave as-is
                if ic is not c and rebuilt is None:
                    rebuilt = list(children[:i])
                c = ic
            if rebuilt is not None:
                rebuilt.append(c)
        if rebuilt is not None:
            children = tuple(rebuilt)
        key = ("n", t.label, *map(id, children))
        found = _TABLE.get(key)
        if found is not None:
            _HITS += 1
            return found
        canon = t if rebuilt is None else Node(t.label, children)
        return _store(key, canon)

    if cls is PList:
        if t.ellipsis is not None:
            return t  # an ellipsis pattern, never a ground term
        items = t.items
        rebuilt = None
        for i, c in enumerate(items):
            if getattr(c, "_interned", None) != gen:
                ic = _intern(c)
                if getattr(ic, "_interned", None) != gen:
                    return t
                if ic is not c and rebuilt is None:
                    rebuilt = list(items[:i])
                c = ic
            if rebuilt is not None:
                rebuilt.append(c)
        if rebuilt is not None:
            items = tuple(rebuilt)
        key = ("l", *map(id, items))
        found = _TABLE.get(key)
        if found is not None:
            _HITS += 1
            return found
        canon = t if rebuilt is None else PList(items)
        return _store(key, canon)

    if cls is Tagged:
        inner = t.term
        if getattr(inner, "_interned", None) != gen:
            inner = _intern(inner)
            if getattr(inner, "_interned", None) != gen:
                return t
        key = ("t", t.tag, id(inner))
        found = _TABLE.get(key)
        if found is not None:
            _HITS += 1
            return found
        canon = t if inner is t.term else Tagged(t.tag, inner)
        return _store(key, canon)

    # PVar, NTRef, AtomPred, subclasses, and any future pattern-only form.
    return t


def _intern_node(label: str, children: Tuple[Pattern, ...]) -> Pattern:
    """Canonicalize ``Node(label, children)`` whose children are already
    canonical under the current generation — a table probe, no walk."""
    global _HITS
    key = ("n", label, *map(id, children))
    found = _TABLE.get(key)
    if found is not None:
        _HITS += 1
        return found
    return _store(key, Node(label, children))


def _intern_plist(items: Tuple[Pattern, ...]) -> Pattern:
    """Canonicalize ``PList(items)`` whose items are already canonical."""
    global _HITS
    key = ("l", *map(id, items))
    found = _TABLE.get(key)
    if found is not None:
        _HITS += 1
        return found
    return _store(key, PList(items))


def _intern_tagged(tag, inner: Pattern) -> Pattern:
    """Canonicalize ``Tagged(tag, inner)`` with ``inner`` already
    canonical."""
    global _HITS
    key = ("t", tag, id(inner))
    found = _TABLE.get(key)
    if found is not None:
        _HITS += 1
        return found
    return _store(key, Tagged(tag, inner))


# Public single-probe constructors.  Contract: every component passed in
# must ALREADY be canonical under the current generation (``is_interned``
# is true for it) — these helpers key the table on component identity and
# never walk, so handing them a private term would store an entry under
# an unstable key.  They are the building blocks for zipper plugging in
# ``repro.redex.refocus``, where frame components are interned once at
# descent time and each snapshot costs one probe per frame.
intern_node = _intern_node
intern_plist = _intern_plist
intern_tagged = _intern_tagged


def _store(key: tuple, canon: Pattern) -> Pattern:
    global _MISSES
    _MISSES += 1
    object.__setattr__(canon, "_interned", _GENERATION)
    _TABLE[key] = canon
    return canon


def intern_stats() -> Dict[str, int]:
    """Counters for observability and benchmarks: table size, generation,
    and hit/miss totals since the last clear."""
    return {
        "size": len(_TABLE),
        "generation": _GENERATION,
        "hits": _HITS,
        "misses": _MISSES,
    }


def clear_intern_caches() -> None:
    """Drop the intern table and invalidate every outstanding canonical
    stamp by bumping the generation.

    Caches keyed on interned identity (e.g. a ``ResugarCache``) must not
    be used across a clear; create fresh ones instead.
    """
    global _GENERATION, _HITS, _MISSES
    _TABLE.clear()
    _GENERATION += 1
    _HITS = 0
    _MISSES = 0
