"""Transformation rules and rulelists (sections 5.1.4-5.1.5).

A :class:`Rule` is a pair of patterns ``LHS -> RHS``; a :class:`RuleList`
is an ordered list of rules with prioritized semantics: *expansion* of a
term matches it against each LHS in turn and substitutes the bindings
into the corresponding RHS.  The index of the successful rule is part of
the result; it is stored in the head tag so that *unexpansion* applies
the same rule in reverse (matching the RHS, substituting into the LHS).

Because an RHS may mention fewer variables than its LHS (rules may
"forget" information), unexpansion needs the *stand-in* environment: the
expansion-time bindings of the dropped variables, stored in the head tag
(section 5.1.4).

Construction runs the static checks: per-rule well-formedness
(section 5.1.3) and pairwise LHS disjointness (Definition 1), the latter
configurable via :class:`~repro.core.wellformed.DisjointnessMode`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.core.bindings import Binding, restrict, right_biased_union
from repro.core.errors import ExpansionError
from repro.core.matching import match
from repro.core.substitution import subst
from repro.core.tags import insert_body_tags
from repro.core.terms import Node, Pattern, pattern_variables
from repro.core.wellformed import (
    DisjointnessMode,
    check_disjointness,
    check_rule_wellformed,
)

__all__ = ["Rule", "RuleList", "Expansion"]


@dataclass(frozen=True)
class Rule:
    """One transformation rule ``lhs -> rhs``.

    ``rhs`` is given *without* body tags; they are inserted here, honouring
    any transparency marks (:func:`~repro.core.tags.transparent`) the
    author placed.  ``atomic_vars`` names variables exempted from the
    linearity criterion because they only ever bind atoms.
    """

    lhs: Pattern
    rhs: Pattern
    name: str = ""
    atomic_vars: Tuple[str, ...] = ()
    tagged_rhs: Pattern = field(init=False)
    dropped_vars: Tuple[str, ...] = field(init=False)

    def __post_init__(self) -> None:
        name = self.name or (
            self.lhs.label if isinstance(self.lhs, Node) else "<rule>"
        )
        object.__setattr__(self, "name", name)
        check_rule_wellformed(self.lhs, self.rhs, self.atomic_vars, name)
        object.__setattr__(self, "tagged_rhs", insert_body_tags(self.rhs))
        lhs_vars = dict.fromkeys(pattern_variables(self.lhs))
        rhs_vars = set(pattern_variables(self.rhs))
        object.__setattr__(
            self,
            "dropped_vars",
            tuple(v for v in lhs_vars if v not in rhs_vars),
        )

    @property
    def label(self) -> str:
        """The outer node label this rule rewrites (criterion 4)."""
        assert isinstance(self.lhs, Node)
        return self.lhs.label


@dataclass(frozen=True)
class Expansion:
    """The result of a single successful expansion.

    ``stand_in`` holds the expansion-time bindings of the variables the
    RHS dropped; the recursive desugarer stores it in the head tag.
    """

    index: int
    term: Pattern
    stand_in: Tuple[Tuple[str, Binding], ...]


class RuleList:
    """An ordered, statically checked list of transformation rules."""

    def __init__(
        self,
        rules: Iterable[Rule],
        disjointness: DisjointnessMode = DisjointnessMode.PRIORITIZED,
    ) -> None:
        self.rules: Tuple[Rule, ...] = tuple(rules)
        self.disjointness = disjointness
        check_disjointness(
            [r.lhs for r in self.rules],
            disjointness,
            [r.name for r in self.rules],
        )
        # Dispatch index (criterion 4 guarantees every LHS is a labeled
        # node): label -> [(rule index, LHS arity)], in priority order.
        # Expansion consults one bucket instead of scanning every rule,
        # and the recorded arity skips matches that must fail at the root.
        self._by_label: Dict[str, list[Tuple[int, int]]] = {}
        for i, rule in enumerate(self.rules):
            arity = len(rule.lhs.children) if isinstance(rule.lhs, Node) else -1
            self._by_label.setdefault(rule.label, []).append((i, arity))

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self):
        return iter(self.rules)

    @property
    def labels(self) -> Tuple[str, ...]:
        """The surface labels this rulelist rewrites."""
        return tuple(self._by_label)

    def rewrites_label(self, label: str) -> bool:
        return label in self._by_label

    def expand(self, term: Pattern) -> Optional[Expansion]:
        """The paper's ``exp``: match ``term`` against each LHS in priority
        order; substitute into the first matching rule's RHS.

        Returns ``None`` when no rule applies (the term is not an instance
        of any sugar in this rulelist).  Matching sees through tags on the
        term, since earlier expansions may have tagged its subterms.
        """
        if not isinstance(term, Node):
            return None
        term_arity = len(term.children)
        for index, arity in self._by_label.get(term.label, ()):
            if arity >= 0 and arity != term_arity:
                continue
            rule = self.rules[index]
            sigma = match(term, rule.lhs, see_through_tags=True)
            if sigma is None:
                continue
            expanded = subst(sigma, rule.tagged_rhs)
            dropped = restrict(sigma, rule.dropped_vars)
            stand_in = tuple(sorted(dropped.items(), key=lambda kv: kv[0]))
            return Expansion(index, expanded, stand_in)
        return None

    def unexpand(
        self,
        index: int,
        term: Pattern,
        stand_in: Tuple[Tuple[str, Binding], ...] = (),
    ) -> Optional[Pattern]:
        """The paper's ``unexp``: match ``term`` against rule ``index``'s
        (body-tagged) RHS and substitute into its LHS, consulting the
        stand-in environment for dropped variables.

        Returns ``None`` when the term no longer has the shape of the
        rule's RHS — evaluation has rewritten the sugar's internals, so
        the step has no surface representation.
        """
        if not 0 <= index < len(self.rules):
            raise ExpansionError(f"head tag references unknown rule index {index}")
        rule = self.rules[index]
        sigma = match(
            term, rule.tagged_rhs, see_through_tags=False,
            lenient_pattern_tags=True,
        )
        if sigma is None:
            return None
        merged = right_biased_union(dict(stand_in), sigma)
        return subst(merged, rule.lhs)
