"""Unification of patterns (``P ∨ P`` in the paper).

Unification computes a pattern whose language is the intersection of two
patterns' languages, or reports that the intersection is empty.  The
paper needs it for exactly one purpose: the *disjointness condition*
(Definition 1) — ``Pi ∨ Pj = ⊥`` for all ``i ≠ j`` — which is necessary
and sufficient for the PutGet lens law (Theorem 1) and hence for
Emulation.

Because rules are linear (no duplicate variables) the algorithm is
straightforward, as the paper notes.  The two inputs are renamed apart
first, so a variable can appear at most once across both patterns and no
occurs-check or binding propagation is needed: a variable unifies with
any pattern by *becoming* it.

Patterns here are "prefix + optional star" regular tree expressions
(Figure 1), so list unification reduces to aligning fixed prefixes and
repeated tails; the result is again such a pattern, keeping the theory
closed.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.terms import (
    Const,
    Node,
    Pattern,
    PList,
    PVar,
    Tagged,
    pattern_variables,
)

__all__ = [
    "unify",
    "unifiable",
    "rename_variables",
    "rename_variables_map",
    "subsumes",
]


def rename_variables(pattern: Pattern, suffix: str) -> Pattern:
    """Append ``suffix`` to every variable name in ``pattern``."""
    if isinstance(pattern, PVar):
        return PVar(pattern.name + suffix)
    if isinstance(pattern, Const):
        return pattern
    if isinstance(pattern, Node):
        return Node(
            pattern.label, tuple(rename_variables(c, suffix) for c in pattern.children)
        )
    if isinstance(pattern, PList):
        ell = (
            rename_variables(pattern.ellipsis, suffix)
            if pattern.ellipsis is not None
            else None
        )
        return PList(tuple(rename_variables(c, suffix) for c in pattern.items), ell)
    if isinstance(pattern, Tagged):
        return Tagged(pattern.tag, rename_variables(pattern.term, suffix))
    raise TypeError(f"not a pattern: {pattern!r}")


def rename_variables_map(pattern: Pattern, mapping: Mapping[str, str]) -> Pattern:
    """Rename variables through a table; names absent from ``mapping``
    are left unchanged.  Used by rule synthesis to put candidate rules
    into a canonical alpha-form before comparing them."""
    if isinstance(pattern, PVar):
        return PVar(mapping.get(pattern.name, pattern.name))
    if isinstance(pattern, Const):
        return pattern
    if isinstance(pattern, Node):
        return Node(
            pattern.label,
            tuple(rename_variables_map(c, mapping) for c in pattern.children),
        )
    if isinstance(pattern, PList):
        ell = (
            rename_variables_map(pattern.ellipsis, mapping)
            if pattern.ellipsis is not None
            else None
        )
        return PList(
            tuple(rename_variables_map(c, mapping) for c in pattern.items), ell
        )
    if isinstance(pattern, Tagged):
        return Tagged(pattern.tag, rename_variables_map(pattern.term, mapping))
    raise TypeError(f"not a pattern: {pattern!r}")


def unify(p: Pattern, q: Pattern, rename_apart: bool = True) -> Optional[Pattern]:
    """Return a pattern matching exactly the terms matched by both ``p``
    and ``q``, or ``None`` when no term matches both.

    When ``rename_apart`` is true (the default), ``q``'s variables are
    renamed first so that shared names between independent rules do not
    create spurious constraints.
    """
    if rename_apart:
        shared = set(pattern_variables(p)) & set(pattern_variables(q))
        if shared:
            q = rename_variables(q, "~u")
    return _unify(p, q)


def unifiable(p: Pattern, q: Pattern) -> bool:
    """Does any term match both ``p`` and ``q``?"""
    return unify(p, q) is not None


def _unify(p: Pattern, q: Pattern) -> Optional[Pattern]:
    # A variable matches everything, so the intersection is the other side.
    if isinstance(p, PVar):
        return q
    if isinstance(q, PVar):
        return p

    if isinstance(p, Tagged) or isinstance(q, Tagged):
        if (
            isinstance(p, Tagged)
            and isinstance(q, Tagged)
            and p.tag == q.tag
        ):
            inner = _unify(p.term, q.term)
            return Tagged(p.tag, inner) if inner is not None else None
        # A tagged pattern only matches tagged terms; an untagged,
        # non-variable pattern only matches untagged terms.
        return None

    if isinstance(p, Const):
        return p if (isinstance(q, Const) and p == q) else None
    if isinstance(q, Const):
        return None

    if isinstance(p, Node):
        if (
            not isinstance(q, Node)
            or p.label != q.label
            or len(p.children) != len(q.children)
        ):
            return None
        children = []
        for pc, qc in zip(p.children, q.children):
            u = _unify(pc, qc)
            if u is None:
                return None
            children.append(u)
        return Node(p.label, tuple(children))

    if isinstance(p, PList):
        if not isinstance(q, PList):
            return None
        return _unify_lists(p, q)

    return None


def _unify_lists(p: PList, q: PList) -> Optional[PList]:
    np_, nq = len(p.items), len(q.items)

    if p.ellipsis is None and q.ellipsis is None:
        if np_ != nq:
            return None
        items = _unify_pairwise(p.items, q.items)
        return PList(tuple(items)) if items is not None else None

    if p.ellipsis is None:
        # Swap so that p is the one with the ellipsis.
        p, q = q, p
        np_, nq = nq, np_

    if q.ellipsis is None:
        # p has an ellipsis (length >= np_), q is fixed length nq.
        if nq < np_:
            return None
        prefix = _unify_pairwise(p.items, q.items[:np_])
        if prefix is None:
            return None
        assert p.ellipsis is not None
        extra = []
        for q_item in q.items[np_:]:
            # Each repetition gets a fresh copy of the ellipsis pattern so
            # linearity is preserved in the result.
            rep = rename_variables(p.ellipsis, f"~{len(extra)}")
            u = _unify(rep, q_item)
            if u is None:
                return None
            extra.append(u)
        return PList(tuple(prefix + extra))

    # Both have ellipses.  Align so p has the shorter fixed prefix.
    if np_ > nq:
        p, q = q, p
        np_, nq = nq, np_
    assert p.ellipsis is not None and q.ellipsis is not None
    prefix = _unify_pairwise(p.items, q.items[:np_])
    if prefix is None:
        return None
    for i, q_item in enumerate(q.items[np_:]):
        rep = rename_variables(p.ellipsis, f"~{i}")
        u = _unify(rep, q_item)
        if u is None:
            return None
        prefix.append(u)
    tail = _unify(p.ellipsis, rename_variables(q.ellipsis, "~e"))
    if tail is None:
        # The repeated tails are incompatible, but lists of exactly the
        # combined prefix length still match both patterns (both ellipses
        # allow zero repetitions).
        return PList(tuple(prefix))
    return PList(tuple(prefix), tail)


def _unify_pairwise(ps, qs) -> Optional[list]:
    out = []
    for pc, qc in zip(ps, qs):
        u = _unify(pc, qc)
        if u is None:
            return None
        out.append(u)
    return out


def subsumes(general: Pattern, specific: Pattern) -> bool:
    """Does every term matching ``specific`` also match ``general``?

    Used by the *prioritized* disjointness mode: rule ``i < j`` may
    overlap rule ``j`` when ``j``'s LHS subsumes ``i``'s, because rule
    priority then shadows the overlap during expansion (the recursive
    multi-arm ``Or`` of section 3.4 is the motivating case).
    """
    if isinstance(general, PVar):
        return True
    if isinstance(specific, PVar):
        return False

    if isinstance(general, Tagged) or isinstance(specific, Tagged):
        return (
            isinstance(general, Tagged)
            and isinstance(specific, Tagged)
            and general.tag == specific.tag
            and subsumes(general.term, specific.term)
        )

    if isinstance(general, Const):
        return isinstance(specific, Const) and general == specific
    if isinstance(specific, Const):
        return False

    if isinstance(general, Node):
        return (
            isinstance(specific, Node)
            and general.label == specific.label
            and len(general.children) == len(specific.children)
            and all(
                subsumes(g, s) for g, s in zip(general.children, specific.children)
            )
        )

    if isinstance(general, PList):
        if not isinstance(specific, PList):
            return False
        ng, ns = len(general.items), len(specific.items)
        if general.ellipsis is None:
            if specific.ellipsis is not None or ng != ns:
                return False
            return all(
                subsumes(g, s) for g, s in zip(general.items, specific.items)
            )
        if ng > ns:
            return False
        if not all(subsumes(g, s) for g, s in zip(general.items, specific.items)):
            return False
        rest = specific.items[ng:]
        if not all(subsumes(general.ellipsis, s) for s in rest):
            return False
        if specific.ellipsis is not None:
            return subsumes(general.ellipsis, specific.ellipsis)
        return True

    return False
