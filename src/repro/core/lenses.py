"""The lens view of transformations (section 6.1) as runnable checks.

Each rule's (expand, unexpand) pair forms a lens between core terms and
``(rule index, RHS instance)`` pairs, with *get* = expansion and *put* =
unexpansion.  The laws::

    GetPut:  put (get c, c) = bot or c          for all c
    PutGet:  get (put (a, c)) = bot or a        for all a, c

GetPut holds unconditionally (Lemma 1); PutGet holds iff the rulelist's
LHSs are pairwise disjoint (Theorem 1).  Together they make desugaring
and resugaring inverses (Theorem 2), which is the crux of Emulation
(Theorem 3).

This module exposes the laws as predicates over concrete terms so the
test suite can verify them by property-based testing — our stand-in for
the paper's Coq development — and so the lifting loop can optionally
enforce Emulation dynamically for rulelists admitted under the
``PRIORITIZED`` disjointness mode.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.bindings import Binding
from repro.core.desugar import desugar, resugar
from repro.core.rules import RuleList
from repro.core.terms import Pattern, strip_tags

__all__ = [
    "check_get_put",
    "check_put_get",
    "check_rule_laws",
    "check_desugar_resugar_inverse",
    "emulates",
]


def check_get_put(rules: RuleList, term: Pattern) -> Optional[bool]:
    """GetPut at ``term``: expanding then unexpanding restores the term.

    Returns ``None`` when the law is vacuous (no rule expands ``term``),
    otherwise whether it holds.
    """
    expansion = rules.expand(term)
    if expansion is None:
        return None
    back = rules.unexpand(expansion.index, expansion.term, expansion.stand_in)
    if back is None:
        # "bot" is allowed by the law as stated, but for a freshly
        # expanded term unexpansion should never fail; report violation.
        return False
    return back == term


def check_put_get(
    rules: RuleList,
    index: int,
    rhs_instance: Pattern,
    stand_in: Tuple[Tuple[str, Binding], ...] = (),
) -> Optional[bool]:
    """PutGet at ``(index, rhs_instance)``: unexpanding then re-expanding
    restores the rule index and the RHS instance.

    Returns ``None`` when the law is vacuous (unexpansion fails).
    """
    surface = rules.unexpand(index, rhs_instance, stand_in)
    if surface is None:
        return None
    expansion = rules.expand(surface)
    if expansion is None:
        return False
    return expansion.index == index and expansion.term == rhs_instance


def check_rule_laws(rules: RuleList, term: Pattern) -> Optional[bool]:
    """Both lens laws at ``term``: GetPut on the term itself, then PutGet
    on its expansion.

    Returns ``None`` when no rule expands ``term`` (both laws vacuous),
    otherwise whether both hold.  This is the single entry point the
    synthesis filter calls per harvested example.
    """
    expansion = rules.expand(term)
    if expansion is None:
        return None
    if check_get_put(rules, term) is not True:
        return False
    put_get = check_put_get(
        rules, expansion.index, expansion.term, expansion.stand_in
    )
    return put_get is True


def check_desugar_resugar_inverse(rules: RuleList, surface_term: Pattern) -> bool:
    """Theorem 2, forward direction: ``resugar (desugar t) = t`` for a
    surface term ``t``."""
    core = desugar(rules, surface_term)
    back = resugar(rules, core)
    return back == surface_term


def emulates(rules: RuleList, surface_term: Pattern, core_term: Pattern) -> bool:
    """The Emulation property at one step: does ``surface_term`` desugar
    into ``core_term``?

    Comparison is modulo tags: tags are metadata for the resugarer, and
    the evaluator's semantics never consults them, so the core term a
    surface step *represents* is its tag-free skeleton.  (Transparent
    body tags in particular survive in the core term but are stripped
    from resugared output, so exact tagged equality is too strong.)
    """
    return strip_tags(desugar(rules, surface_term)) == strip_tags(core_term)
