"""Terms, patterns, and origin tags (Figure 1 of the paper).

The paper defines patterns ``P`` as::

    P := x                  (pattern variable)
       | a                  (constant)
       | l(P1, ..., Pn)     (node labeled l, fixed arity)
       | (P1 ... Pn)        (list of length n)
       | (P1 ... Pn Pe*)    (list of length >= n; Pe* is an ellipsis)
       | (Tag O P)          (origin tag)

and a *term* ``T`` is a pattern without variables or ellipses.  We mirror
that design: one family of immutable classes represents both terms and
patterns, and :func:`is_term` distinguishes the two.

Constants ``a`` are atomic values: Python ``int``, ``float``, ``str``,
``bool``, ``None``, or a :class:`Symbol` (a bare identifier, distinct from
a string literal).

Tags come in two kinds (section 5.2.1):

* :class:`HeadTag` marks the outermost term produced by a rule
  application.  It records the index of the rule used (so only that rule
  may be applied in reverse, preserving Emulation) and the *stand-in*
  environment ``sigma`` holding bindings for LHS variables that the RHS
  dropped.
* :class:`BodyTag` marks each non-atomic term constructed by a rule's
  RHS, distinguishing sugar-generated code from user code (preserving
  Abstraction).  A body tag is *transparent* if the sugar author prefixed
  the subterm with ``!``, and *opaque* otherwise.

Performance notes.  The recursive classes (:class:`Const`, :class:`Node`,
:class:`PList`, :class:`Tagged`) are hand-rolled immutable classes rather
than dataclasses so they can carry two extra slots:

* ``_hash`` — the structural hash, computed once on first use and cached.
  Terms are immutable, so the cache never invalidates; repeated hashing
  (memo tables, dedup, dict keys) is O(1) instead of O(size).
* ``_interned`` — the hash-consing generation stamp managed by
  :mod:`repro.core.intern`.  Interned terms are canonical: structurally
  equal interned terms are pointer-identical, so ``==`` degenerates to
  ``is`` and caches can key on identity.

``__eq__`` additionally fast-paths on identity and on cached-hash
disagreement before falling back to the structural walk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple, Union

from repro.core.errors import PatternError

__all__ = [
    "Symbol",
    "Atom",
    "Pattern",
    "Term",
    "PVar",
    "Const",
    "Node",
    "PList",
    "Tag",
    "HeadTag",
    "BodyTag",
    "Tagged",
    "is_term",
    "is_atomic",
    "pattern_variables",
    "variable_depths",
    "strip_tags",
    "strip_body_tags",
    "subterms",
    "term_size",
    "term_depth",
]


@dataclass(frozen=True, slots=True)
class Symbol:
    """A bare identifier constant, distinct from a string literal.

    ``Const(Symbol("x"))`` prints as ``x`` while ``Const("x")`` prints as
    ``"x"``.  Symbols are what object-language identifiers desugar from.
    """

    name: str

    def __repr__(self) -> str:
        return f"Symbol({self.name!r})"

    def __str__(self) -> str:
        return self.name


Atom = Union[int, float, str, bool, None, Symbol]


class Pattern:
    """Abstract base class for patterns (and therefore terms)."""

    __slots__ = ()

    def __str__(self) -> str:  # pragma: no cover - convenience only
        from repro.lang.render import render

        return render(self)


# ``Term`` is an alias that documents intent: a Pattern that contains no
# pattern variables and no ellipses (checked by ``is_term``).
Term = Pattern


@dataclass(frozen=True, slots=True)
class PVar(Pattern):
    """A pattern variable ``x``.  Never appears in a term."""

    name: str

    def __repr__(self) -> str:
        return f"PVar({self.name!r})"


class Const(Pattern):
    """An atomic constant: number, string, boolean, ``None``, or symbol.

    Equality is by value *and* type, so ``Const(True) != Const(1)`` and
    ``Const(1) != Const(1.0)`` even though Python considers the underlying
    values equal.  Matching and unification rely on this.
    """

    __slots__ = ("value", "_hash", "_interned")

    def __init__(self, value: Atom) -> None:
        if not isinstance(value, (int, float, str, bool, Symbol, type(None))):
            raise PatternError(
                f"Const value must be atomic, got {type(value).__name__}"
            )
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", None)
        object.__setattr__(self, "_interned", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Const):
            return NotImplemented
        return type(self.value) is type(other.value) and self.value == other.value

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash((type(self.value).__name__, self.value))
            object.__setattr__(self, "_hash", h)
        return h

    def __repr__(self) -> str:
        return f"Const({self.value!r})"

    def __reduce__(self):
        from repro.core.intern import _unpickle_const

        return (_unpickle_const, (self.value,))


class Node(Pattern):
    """A labeled node ``l(P1, ..., Pn)`` with fixed arity."""

    __slots__ = ("label", "children", "_hash", "_interned")

    def __init__(self, label: str, children: Tuple[Pattern, ...] = ()) -> None:
        if not isinstance(label, str) or not label:
            raise PatternError("Node label must be a non-empty string")
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "children", tuple(children))
        object.__setattr__(self, "_hash", None)
        object.__setattr__(self, "_interned", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Node):
            return NotImplemented
        h1, h2 = self._hash, other._hash
        if h1 is not None and h2 is not None and h1 != h2:
            return False
        return self.label == other.label and self.children == other.children

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash((self.label, self.children))
            object.__setattr__(self, "_hash", h)
        return h

    def __repr__(self) -> str:
        inner = ", ".join(repr(c) for c in self.children)
        return f"Node({self.label!r}, ({inner}))"

    def __reduce__(self):
        from repro.core.intern import _unpickle_node

        return (_unpickle_node, (self.label, self.children))


class PList(Pattern):
    """A list pattern ``(P1 ... Pn)`` or ``(P1 ... Pn Pe*)``.

    ``items`` is the fixed prefix; ``ellipsis``, when present, matches zero
    or more further elements (the paper's ``Pe*``).  A list *term* always
    has ``ellipsis is None``.
    """

    __slots__ = ("items", "ellipsis", "_hash", "_interned")

    def __init__(
        self,
        items: Tuple[Pattern, ...] = (),
        ellipsis: Optional[Pattern] = None,
    ) -> None:
        object.__setattr__(self, "items", tuple(items))
        object.__setattr__(self, "ellipsis", ellipsis)
        object.__setattr__(self, "_hash", None)
        object.__setattr__(self, "_interned", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, PList):
            return NotImplemented
        h1, h2 = self._hash, other._hash
        if h1 is not None and h2 is not None and h1 != h2:
            return False
        return self.items == other.items and self.ellipsis == other.ellipsis

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash((self.items, self.ellipsis))
            object.__setattr__(self, "_hash", h)
        return h

    def __repr__(self) -> str:
        inner = ", ".join(repr(c) for c in self.items)
        if self.ellipsis is None:
            return f"PList(({inner}))"
        return f"PList(({inner}), ellipsis={self.ellipsis!r})"

    def __reduce__(self):
        from repro.core.intern import _unpickle_plist

        return (_unpickle_plist, (self.items, self.ellipsis))


class Tag:
    """Abstract base for origin tags."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class HeadTag(Tag):
    """``(Head i sigma)``: the outermost term produced by applying rule
    ``index`` of a rulelist.

    ``stand_in`` is the environment for LHS variables the RHS dropped
    (section 5.1.4); it is needed to reconstruct the surface term during
    unexpansion.  It is stored as a tuple of (name, binding) pairs so the
    tag stays hashable.
    """

    index: int
    stand_in: Tuple[Tuple[str, object], ...] = ()

    def __repr__(self) -> str:
        return f"HeadTag({self.index}, {dict(self.stand_in)!r})"


@dataclass(frozen=True, slots=True)
class BodyTag(Tag):
    """``(Body bool)``: a non-atomic term constructed by a rule's RHS.

    ``transparent`` is True when the sugar author marked the subterm with
    ``!`` (section 3.4), allowing it to appear in surface output.
    """

    transparent: bool = False

    def __repr__(self) -> str:
        kind = "transparent" if self.transparent else "opaque"
        return f"BodyTag({kind})"


class Tagged(Pattern):
    """``(Tag O P)``: a pattern or term carrying an origin tag."""

    __slots__ = ("tag", "term", "_hash", "_interned")

    def __init__(self, tag: Tag, term: Pattern) -> None:
        if not isinstance(tag, Tag):
            raise PatternError(f"Tagged.tag must be a Tag, got {tag!r}")
        object.__setattr__(self, "tag", tag)
        object.__setattr__(self, "term", term)
        object.__setattr__(self, "_hash", None)
        object.__setattr__(self, "_interned", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Tagged):
            return NotImplemented
        h1, h2 = self._hash, other._hash
        if h1 is not None and h2 is not None and h1 != h2:
            return False
        return self.tag == other.tag and self.term == other.term

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash((self.tag, self.term))
            object.__setattr__(self, "_hash", h)
        return h

    def __repr__(self) -> str:
        return f"Tagged({self.tag!r}, {self.term!r})"

    def __reduce__(self):
        from repro.core.intern import _unpickle_tagged

        return (_unpickle_tagged, (self.tag, self.term))


def is_atomic(p: Pattern) -> bool:
    """True for constants — the paper's atoms ``a``."""
    return isinstance(p, Const)


def is_term(p: Pattern) -> bool:
    """True when ``p`` contains no pattern variables and no ellipses."""
    if isinstance(p, Const):
        return True
    if isinstance(p, PVar):
        return False
    if isinstance(p, Node):
        return all(is_term(c) for c in p.children)
    if isinstance(p, PList):
        return p.ellipsis is None and all(is_term(c) for c in p.items)
    if isinstance(p, Tagged):
        return is_term(p.term)
    raise PatternError(f"not a pattern: {p!r}")


def pattern_variables(p: Pattern) -> Tuple[str, ...]:
    """All variable names in ``p``, in in-order traversal order
    (duplicates included, so callers can check linearity)."""
    out: list[str] = []

    def walk(q: Pattern) -> None:
        if isinstance(q, PVar):
            out.append(q.name)
        elif isinstance(q, Node):
            for c in q.children:
                walk(c)
        elif isinstance(q, PList):
            for c in q.items:
                walk(c)
            if q.ellipsis is not None:
                walk(q.ellipsis)
        elif isinstance(q, Tagged):
            walk(q.term)

    walk(p)
    return tuple(out)


def variable_depths(p: Pattern) -> dict[str, int]:
    """Map each variable in ``p`` to its ellipsis depth.

    A variable under no ellipsis has depth 0; directly under one ellipsis,
    depth 1; and so on (the paper's depth convention in criterion 3).
    """
    depths: dict[str, int] = {}

    def walk(q: Pattern, depth: int) -> None:
        if isinstance(q, PVar):
            depths[q.name] = depth
        elif isinstance(q, Node):
            for c in q.children:
                walk(c, depth)
        elif isinstance(q, PList):
            for c in q.items:
                walk(c, depth)
            if q.ellipsis is not None:
                walk(q.ellipsis, depth + 1)
        elif isinstance(q, Tagged):
            walk(q.term, depth)

    walk(p, 0)
    return depths


def strip_tags(t: Pattern) -> Pattern:
    """Remove every tag from ``t``, producing a plain term or pattern."""
    if isinstance(t, (Const, PVar)):
        return t
    if isinstance(t, Tagged):
        return strip_tags(t.term)
    if isinstance(t, Node):
        return Node(t.label, tuple(strip_tags(c) for c in t.children))
    if isinstance(t, PList):
        ell = strip_tags(t.ellipsis) if t.ellipsis is not None else None
        return PList(tuple(strip_tags(c) for c in t.items), ell)
    raise PatternError(f"not a pattern: {t!r}")


def strip_body_tags(t: Pattern, transparent_only: bool = True) -> Pattern:
    """Remove body tags from ``t`` (by default only transparent ones).

    Used when presenting a resugared term: transparent body tags are
    *allowed* to survive resugaring but must not appear in output.
    """
    if isinstance(t, (Const, PVar)):
        return t
    if isinstance(t, Tagged):
        drop = isinstance(t.tag, BodyTag) and (
            t.tag.transparent or not transparent_only
        )
        inner = strip_body_tags(t.term, transparent_only)
        return inner if drop else Tagged(t.tag, inner)
    if isinstance(t, Node):
        return Node(
            t.label, tuple(strip_body_tags(c, transparent_only) for c in t.children)
        )
    if isinstance(t, PList):
        ell = (
            strip_body_tags(t.ellipsis, transparent_only)
            if t.ellipsis is not None
            else None
        )
        return PList(
            tuple(strip_body_tags(c, transparent_only) for c in t.items), ell
        )
    raise PatternError(f"not a pattern: {t!r}")


def subterms(t: Pattern) -> Iterator[Pattern]:
    """Yield ``t`` and every subterm of it, pre-order."""
    yield t
    if isinstance(t, Node):
        for c in t.children:
            yield from subterms(c)
    elif isinstance(t, PList):
        for c in t.items:
            yield from subterms(c)
        if t.ellipsis is not None:
            yield from subterms(t.ellipsis)
    elif isinstance(t, Tagged):
        yield from subterms(t.term)


def term_size(t: Pattern) -> int:
    """Number of subterms in ``t`` (tags do not add to the count)."""
    if isinstance(t, Tagged):
        return term_size(t.term)
    if isinstance(t, Node):
        return 1 + sum(term_size(c) for c in t.children)
    if isinstance(t, PList):
        n = 1 + sum(term_size(c) for c in t.items)
        if t.ellipsis is not None:
            n += term_size(t.ellipsis)
        return n
    return 1


def term_depth(t: Pattern) -> int:
    """Height of the term tree (a constant has depth 1)."""
    if isinstance(t, Tagged):
        return term_depth(t.term)
    children: Tuple[Pattern, ...] = ()
    if isinstance(t, Node):
        children = t.children
    elif isinstance(t, PList):
        children = t.items + ((t.ellipsis,) if t.ellipsis is not None else ())
    if not children:
        return 1
    return 1 + max(term_depth(c) for c in children)
