"""Hygiene linting for sugar definitions.

The paper does not address hygiene ("we believe it is largely
orthogonal", section 5.1.1), and neither does this engine: expansion is
textual, so a binder a rule introduces can capture a user variable of
the same name.  The bundled sugars follow a convention instead — every
rule-introduced binder is ``%``-prefixed, a namespace surface languages
cannot touch — and this module mechanically checks that convention.

``lint_hygiene`` knows which RHS constructs bind (configurable per
language) and reports:

* **capturable binders** — a rule introduces a binder whose name is not
  in the reserved namespace, so user code mentioning that name under the
  sugar would be captured;
* **free internal references** — an RHS references a reserved-namespace
  identifier that no RHS binder introduces, which is either a typo or a
  deliberate cross-rule contract (like ``Return``'s ``%RET``) worth
  flagging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Set, Tuple

from repro.core.rules import Rule, RuleList
from repro.core.terms import Const, Node, Pattern, PList, Tagged

__all__ = ["HygieneWarning", "lint_hygiene", "DEFAULT_BINDERS"]

DEFAULT_BINDERS: Tuple[Tuple[str, int], ...] = (
    ("Lam", 0),
    ("Binding", 0),
    ("Let", 0),
    ("DefRec", 0),
    ("Set", 0),
)
"""(node label, child index of the bound name) pairs covering the
bundled languages.  ``Lam``'s parameter may also be a *list* of names
(the Pyret core); both shapes are handled."""

RESERVED_PREFIX = "%"

REFERENCE_LABELS = ("Id", "Var", "Cell")


@dataclass(frozen=True)
class HygieneWarning:
    rule: str
    kind: str  # "capturable-binder" | "free-internal-reference"
    name: str

    def __str__(self) -> str:
        if self.kind == "capturable-binder":
            return (
                f"{self.rule}: introduces binder {self.name!r} outside the "
                f"reserved {RESERVED_PREFIX!r} namespace; user code naming "
                f"{self.name!r} would be captured"
            )
        return (
            f"{self.rule}: references internal identifier {self.name!r} "
            f"that no binder in this rule introduces (cross-rule contract "
            f"or typo)"
        )


def _names_in(t: Pattern) -> List[str]:
    """String constants reachable at a binder position (a single name or
    a list of names)."""
    while isinstance(t, Tagged):
        t = t.term
    if isinstance(t, Const) and isinstance(t.value, str):
        return [t.value]
    if isinstance(t, PList):
        out: List[str] = []
        for item in t.items:
            out.extend(_names_in(item))
        return out
    return []


def _scan(
    t: Pattern,
    binders: Sequence[Tuple[str, int]],
    introduced: Set[str],
    referenced: Set[str],
) -> None:
    while isinstance(t, Tagged):
        t = t.term
    if isinstance(t, Node):
        for label, index in binders:
            if t.label == label and index < len(t.children):
                introduced.update(_names_in(t.children[index]))
        if t.label in REFERENCE_LABELS and len(t.children) >= 1:
            referenced.update(_names_in(t.children[0]))
        for child in t.children:
            _scan(child, binders, introduced, referenced)
    elif isinstance(t, PList):
        for item in t.items:
            _scan(item, binders, introduced, referenced)
        if t.ellipsis is not None:
            _scan(t.ellipsis, binders, introduced, referenced)


def lint_hygiene(
    rules: Iterable[Rule] | RuleList,
    binders: Sequence[Tuple[str, int]] = DEFAULT_BINDERS,
    reserved_prefix: str = RESERVED_PREFIX,
) -> List[HygieneWarning]:
    """Lint every rule's RHS; return the warnings (empty = clean)."""
    warnings: List[HygieneWarning] = []
    for rule in rules:
        introduced: Set[str] = set()
        referenced: Set[str] = set()
        _scan(rule.rhs, binders, introduced, referenced)
        for name in sorted(introduced):
            if not name.startswith(reserved_prefix):
                warnings.append(
                    HygieneWarning(rule.name, "capturable-binder", name)
                )
        for name in sorted(referenced):
            if name.startswith(reserved_prefix) and name not in introduced:
                warnings.append(
                    HygieneWarning(rule.name, "free-internal-reference", name)
                )
    return warnings
