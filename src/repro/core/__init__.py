"""The resugaring engine: the paper's primary contribution.

Everything here is language-agnostic: terms and patterns, matching and
substitution, transformation rules with origin tags, recursive
desugaring/resugaring, the lens laws, and the evaluation-sequence
lifting loop.  Object languages (``repro.lambdacore``,
``repro.pyretcore``, anything built on ``repro.redex``) plug in through
the :class:`~repro.core.lift.Stepper` protocol.
"""

from repro.core.bindings import Env, EllipsisBinding, ListBinding
from repro.core.desugar import desugar, resugar, resugar_raw
from repro.core.errors import (
    DisjointnessError,
    ExpansionError,
    LanguageError,
    ParseError,
    PatternError,
    ReproError,
    StuckError,
    SubstitutionError,
    WellFormednessError,
)
from repro.core.hygiene import HygieneWarning, lint_hygiene
from repro.core.incremental import CacheStats, ResugarCache
from repro.core.intern import (
    clear_intern_caches,
    intern,
    intern_stats,
    is_interned,
)
from repro.core.lenses import (
    check_desugar_resugar_inverse,
    check_get_put,
    check_put_get,
    emulates,
)
from repro.core.lift import (
    EmulationViolation,
    FunctionStepper,
    LiftedStep,
    LiftResult,
    Stepper,
    SurfaceTree,
    lift_evaluation,
    lift_evaluation_tree,
)
from repro.core.matching import match, matches
from repro.core.rules import Expansion, Rule, RuleList
from repro.core.substitution import subst
from repro.core.tags import (
    has_head_tags,
    has_opaque_body_tags,
    insert_body_tags,
    is_surface_term,
    transparent,
)
from repro.core.terms import (
    BodyTag,
    Const,
    HeadTag,
    Node,
    Pattern,
    PList,
    PVar,
    Symbol,
    Tag,
    Tagged,
    Term,
    is_term,
    pattern_variables,
    strip_body_tags,
    strip_tags,
    subterms,
    term_depth,
    term_size,
)
from repro.core.unification import rename_variables, subsumes, unifiable, unify
from repro.core.wellformed import (
    DisjointnessMode,
    check_disjointness,
    check_rule_wellformed,
)

__all__ = [
    # terms & patterns
    "Pattern", "Term", "PVar", "Const", "Node", "PList", "Symbol",
    "Tag", "HeadTag", "BodyTag", "Tagged",
    "is_term", "pattern_variables", "strip_tags", "strip_body_tags",
    "subterms", "term_size", "term_depth",
    # bindings
    "Env", "ListBinding", "EllipsisBinding",
    # operations
    "match", "matches", "subst", "unify", "unifiable", "subsumes",
    "rename_variables",
    # rules
    "Rule", "RuleList", "Expansion", "DisjointnessMode",
    "check_rule_wellformed", "check_disjointness",
    # tags
    "transparent", "insert_body_tags", "has_opaque_body_tags",
    "has_head_tags", "is_surface_term",
    # desugar/resugar
    "desugar", "resugar", "resugar_raw",
    # lenses
    "check_get_put", "check_put_get", "check_desugar_resugar_inverse",
    "emulates",
    # hygiene
    "lint_hygiene", "HygieneWarning",
    # lifting
    "Stepper", "FunctionStepper", "lift_evaluation", "lift_evaluation_tree",
    "LiftResult", "LiftedStep", "SurfaceTree", "EmulationViolation",
    # performance layer
    "intern", "is_interned", "intern_stats", "clear_intern_caches",
    "ResugarCache", "CacheStats",
    # errors
    "ReproError", "PatternError", "WellFormednessError", "DisjointnessError",
    "SubstitutionError", "ExpansionError", "ParseError", "StuckError",
    "LanguageError",
]
