"""Recursion headroom for deeply nested terms.

The engine is written with straightforward structural recursion; a
128-arm ``Or`` desugars into a ~500-deep core term, which a default
CPython recursion limit of 1000 cannot traverse.  The deep-recursive
entry points (desugaring, resugaring, decomposition, lifting) wrap
themselves in :func:`deep_recursion`, which raises the interpreter's
limit for the duration of the call and restores it afterwards.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager

__all__ = ["deep_recursion", "DEFAULT_RECURSION_LIMIT"]

DEFAULT_RECURSION_LIMIT = 100_000
"""Enough for terms tens of thousands of nodes deep; far below levels
that would exhaust a typical 8 MiB C stack with our small frames."""


@contextmanager
def deep_recursion(limit: int = DEFAULT_RECURSION_LIMIT):
    """Temporarily raise the recursion limit (never lowers it)."""
    old = sys.getrecursionlimit()
    if old < limit:
        sys.setrecursionlimit(limit)
    try:
        yield
    finally:
        sys.setrecursionlimit(old)
