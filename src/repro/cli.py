"""Command-line interface: CONFECTION as a tool.

The paper's artifact is a command-line program fed a grammar file and
rewrite rules; this CLI plays the same role for every language backend
registered with :mod:`repro.engine.registry` (the bundled ``lambda`` and
``pyret`` plus anything third-party code registers) and any user rules
file.  ``lift`` output *streams*: surface steps are printed as the
underlying :func:`~repro.engine.stream.lift_stream` produces them, so
the first step appears before evaluation finishes and long runs can be
budgeted with ``--max-steps`` / ``--max-seconds`` (``--on-budget
truncate`` turns budget exhaustion into a truncated-but-valid trace
instead of an error).

Examples::

    python -m repro lift --lang lambda '(or (not #t) (not #f))'
    python -m repro lift --lang pyret  '1 + (2 + 3)' --op object
    python -m repro lift --lang lambda --sugar automaton --tree '(amb 1 2)'
    python -m repro lift --lang lambda --max-seconds 1 --on-budget truncate @prog.scm
    python -m repro lift-batch --lang lambda --jobs 4 examples/corpus/*.scm
    python -m repro lift-batch --jobs 4 --trace t.jsonl examples/corpus/*.scm
    python -m repro obs report t.jsonl
    python -m repro obs skips t.jsonl
    python -m repro desugar --lang pyret 'not true'
    python -m repro trace --lang lambda '(+ 1 (* 2 3))'
    python -m repro check my_rules.confection
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.confection import Confection
from repro.core.errors import ReproError
from repro.core.wellformed import DisjointnessMode
from repro.engine import events
from repro.engine.registry import Backend, available_backends, get_backend
from repro.engine.stream import ON_BUDGET_POLICIES
from repro.redex.reduction import STEPPER_MODES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Resugaring: lift core evaluation sequences through "
        "syntactic sugar (PLDI 2014 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, with_program=True):
        p.add_argument(
            "--lang",
            choices=available_backends(),
            default="lambda",
            help="object language backend (default: lambda)",
        )
        p.add_argument(
            "--sugar",
            default=None,
            help="bundled sugar set (lambda: scheme/automaton/return; "
            "pyret: pyret); default: the backend's standard set",
        )
        p.add_argument(
            "--rules-file",
            default=None,
            help="a rule-DSL file to use instead of a bundled sugar set",
        )
        p.add_argument(
            "--transparent",
            action="store_true",
            help="mark recursive sugar invocations transparent (!)",
        )
        p.add_argument(
            "--op",
            choices=("naive", "object"),
            default="naive",
            help="pyret only: binary-operator desugaring (section 8.3)",
        )
        if with_program:
            p.add_argument("program", help="program text (or @file to read one)")

    lift = sub.add_parser("lift", help="lift a surface evaluation sequence")
    common(lift)
    lift.add_argument(
        "--tree", action="store_true", help="lift a nondeterministic tree"
    )
    lift.add_argument(
        "--max-steps",
        type=int,
        default=100_000,
        help="step budget (explored core nodes with --tree)",
    )
    lift.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="wall-clock budget for the lift",
    )
    lift.add_argument(
        "--on-budget",
        choices=ON_BUDGET_POLICIES,
        default="raise",
        help="budget exhaustion policy: error out, or truncate the "
        "trace (default: raise)",
    )
    lift.add_argument(
        "--stepper",
        choices=STEPPER_MODES,
        default="refocus",
        help="core decomposition engine: refocus keeps the evaluation "
        "context alive across steps, naive re-decomposes from the root "
        "(identical traces; default: refocus)",
    )
    lift.add_argument(
        "--show-skipped",
        action="store_true",
        help="also print skipped core steps, marked with 'x'",
    )
    lift.add_argument(
        "--table",
        action="store_true",
        help="two-column core/surface view of every step",
    )
    lift.add_argument(
        "--html",
        metavar="FILE",
        default=None,
        help="write a standalone HTML trace report to FILE",
    )
    lift.add_argument(
        "--trace",
        metavar="FILE.jsonl",
        default=None,
        help="enable observability and write a JSONL span trace of the "
        "lift (span id/parent/name/attrs/duration per line) to FILE",
    )
    lift.add_argument(
        "--metrics",
        action="store_true",
        help="enable observability and print a JSON metrics snapshot "
        "(lift.steps_total, match.attempts, resugar.cache_hits, ...) "
        "after the lift",
    )
    lift.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="persistent lift-cache directory: a repeated lift replays "
        "its recorded trace instead of re-stepping (see docs/caching.md)",
    )

    batch = sub.add_parser(
        "lift-batch",
        help="lift a corpus of programs across worker processes",
    )
    common(batch, with_program=False)
    batch.add_argument(
        "inputs",
        nargs="+",
        help="program files; by default each file is one program "
        "(--per-line reads one program per non-empty line instead)",
    )
    batch.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: CPU count; 1 = in-process)",
    )
    batch.add_argument(
        "--per-line",
        action="store_true",
        help="treat every non-empty, non-comment line of each input "
        "file as its own program",
    )
    batch.add_argument(
        "--max-steps", type=int, default=100_000, help="per-job step budget"
    )
    batch.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="per-job wall-clock budget",
    )
    batch.add_argument(
        "--on-budget",
        choices=ON_BUDGET_POLICIES,
        default="raise",
        help="per-job budget policy (raise surfaces as a job error; "
        "the batch always continues)",
    )
    batch.add_argument(
        "--metrics",
        action="store_true",
        help="collect per-worker metrics and print the aggregated "
        "JSON snapshot after the batch",
    )
    batch.add_argument(
        "--trace",
        metavar="FILE.jsonl",
        default=None,
        help="collect per-job span trees (with job/worker attribution "
        "and resugar provenance) and write the merged cross-process "
        "trace to FILE; analyze it with 'repro obs'",
    )
    batch.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="persistent lift-cache directory shared by every worker",
    )
    batch.add_argument(
        "--chunk",
        type=int,
        default=None,
        help="jobs per pool submission (default: automatic; chunking "
        "amortizes pickling for large corpora of small jobs)",
    )

    obs = sub.add_parser(
        "obs",
        help="analyze a JSONL span trace written by lift/lift-batch",
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    for name, help_text in (
        ("report", "span totals, per-step outcomes, critical-path timing"),
        ("hot-rules", "per-rule expansion/unexpansion/failure table"),
        ("skips", "explain every skipped core step from its provenance"),
    ):
        obs_cmd = obs_sub.add_parser(name, help=help_text)
        obs_cmd.add_argument("trace_file", help="a JSONL trace file")
        obs_cmd.add_argument(
            "--strict",
            action="store_true",
            help="fail on a truncated final line instead of dropping it",
        )

    desugar = sub.add_parser("desugar", help="show a program's core form")
    common(desugar)
    desugar.add_argument(
        "--tags", action="store_true", help="show origin tags in the output"
    )

    trace = sub.add_parser("trace", help="show the raw core trace (no lifting)")
    common(trace)
    trace.add_argument("--max-steps", type=int, default=100_000)
    trace.add_argument(
        "--stepper",
        choices=STEPPER_MODES,
        default="refocus",
        help="core decomposition engine (default: refocus)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the resugaring server (HTTP + WebSocket lift sessions)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8750,
        help="bind port (default: 8750; 0 picks a free port)",
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="batch worker processes for /lift-batch (default: 1 = "
        "in-process; lift sessions always run on threads)",
    )
    serve.add_argument(
        "--max-sessions",
        type=int,
        default=64,
        help="concurrent session cap; excess requests get a 503 "
        "(default: 64)",
    )
    serve.add_argument(
        "--max-steps-cap",
        type=int,
        default=100_000,
        help="server-side cap clamped onto every request's step budget",
    )
    serve.add_argument(
        "--max-seconds-cap",
        type=float,
        default=30.0,
        help="server-side cap clamped onto every request's wall-clock "
        "budget (applies even when the request sets none; default: 30; "
        "0 disables the cap, which also lets --cache serve whole-lift "
        "replays — wall-clock-budgeted lifts are uncacheable by design)",
    )
    serve.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="persistent lift-cache directory shared by sessions and "
        "batch workers",
    )

    cache = sub.add_parser(
        "cache",
        help="inspect or empty a persistent lift-cache directory",
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser(
        "stats", help="per-tier entry counts and byte sizes, as JSON"
    )
    cache_stats.add_argument("cache_dir", help="a lift-cache directory")
    cache_clear = cache_sub.add_parser(
        "clear", help="delete every cache entry under the directory"
    )
    cache_clear.add_argument("cache_dir", help="a lift-cache directory")

    synth = sub.add_parser(
        "synth",
        help="synthesize desugaring rules from harvested (surface, core) "
        "examples, or fuzz the engine with perturbed candidate rules",
    )
    from repro.synth.cli import add_synth_arguments

    add_synth_arguments(synth)

    check = sub.add_parser("check", help="statically check a rule-DSL file")
    check.add_argument("rules_file")
    check.add_argument(
        "--disjointness",
        choices=[m.value for m in DisjointnessMode],
        default="strict",
    )
    check.add_argument(
        "--hygiene",
        action="store_true",
        help="also lint binder names against the %%-namespace convention",
    )
    return parser


def _read_program(arg: str) -> str:
    if arg.startswith("@"):
        with open(arg[1:]) as handle:
            return handle.read()
    return arg


def _build_confection(args) -> tuple[Confection, Backend]:
    backend = get_backend(args.lang)
    if args.rules_file:
        with open(args.rules_file) as handle:
            rules_source = handle.read()
        return Confection(rules_source, backend.make_stepper()), backend
    # Every backend's factories see the full option set and pick what
    # they understand (the registry contract) — so no flag can be
    # silently discarded by a language-specific override.
    options = {
        "transparent_recursion": args.transparent,
        "op_desugaring": args.op,
    }
    try:
        confection = backend.make_confection(args.sugar, **options)
    except ReproError as exc:
        raise SystemExit(str(exc))
    return confection, backend


def _print_budget_notice(event: events.BudgetExhausted) -> None:
    print(f"[truncated: {event.describe()}]", file=sys.stderr)


def _cmd_lift(args) -> int:
    confection, backend = _build_confection(args)
    if args.cache is not None:
        from repro.cache import LiftCache

        confection.cache = LiftCache(args.cache)
    obs_config = None
    if args.trace or args.metrics:
        from repro.obs import Observability

        obs_config = Observability(trace_path=args.trace)
        confection.obs = obs_config
    try:
        code = _run_lift(args, confection, backend)
    finally:
        if obs_config is not None:
            obs_config.close()
    if obs_config is not None:
        if args.metrics:
            import json

            print(json.dumps(obs_config.snapshot(), indent=2, sort_keys=True))
        if args.trace:
            print(f"wrote {args.trace}", file=sys.stderr)
    return code


def _run_lift(args, confection, backend) -> int:
    program = backend.parse(_read_program(args.program))
    budget_kwargs = dict(
        max_seconds=args.max_seconds,
        on_budget=args.on_budget,
        stepper_mode=args.stepper,
    )
    if args.tree:
        return _cmd_lift_tree(args, confection, backend, program, budget_kwargs)
    if args.html or args.table:
        # These renderings need the whole trace; fold the stream.
        result = confection.lift(
            program, max_steps=args.max_steps, **budget_kwargs
        )
        if args.html:
            from repro.viz import render_html

            with open(args.html, "w") as handle:
                handle.write(render_html(result, backend.pretty))
            print(f"wrote {args.html}", file=sys.stderr)
        else:
            from repro.viz import render_text

            print(render_text(result, backend.pretty))
        return 0

    # Streaming path: print surface steps as the engine produces them.
    core = skipped = 0
    exhausted: Optional[events.BudgetExhausted] = None
    for event in confection.lift_stream(
        program, max_steps=args.max_steps, **budget_kwargs
    ):
        if isinstance(event, events.CoreStepped):
            core += 1
        elif isinstance(event, events.SurfaceEmitted):
            line = (
                f"  {backend.pretty(event.core_term)}"
                if args.show_skipped
                else backend.pretty(event.surface_term)
            )
            print(line, flush=True)
        elif isinstance(event, events.StepSkipped):
            skipped += 1
            if args.show_skipped:
                print(f"x {backend.pretty(event.core_term)}", flush=True)
        elif isinstance(event, events.Deduped):
            if args.show_skipped:
                print(f"= {backend.pretty(event.core_term)}", flush=True)
        elif isinstance(event, events.BudgetExhausted):
            exhausted = event
    coverage = 1.0 - skipped / core if core else 1.0
    print(
        f"[{core} core steps, {skipped} skipped, coverage {coverage:.0%}]",
        file=sys.stderr,
    )
    if exhausted is not None:
        _print_budget_notice(exhausted)
    return 0


def _cmd_lift_tree(args, confection, backend, program, budget_kwargs) -> int:
    tree = confection.lift_tree(
        program, max_nodes=args.max_steps, **budget_kwargs
    )
    if tree.root is not None:
        stack = [(tree.root, 0)]
        while stack:
            node_id, depth = stack.pop()
            print("  " * depth + backend.pretty(tree.nodes[node_id]))
            stack.extend(
                (child, depth + 1) for child in reversed(tree.children(node_id))
            )
    print(
        f"[{tree.core_node_count} core states, "
        f"{tree.skipped_count} skipped]",
        file=sys.stderr,
    )
    if tree.truncated:
        print("[truncated: node or time budget exhausted]", file=sys.stderr)
    if tree.root is None:
        print(
            "no explored core state has a surface representation; "
            "nothing to display (try --show-skipped with a sequence "
            "lift, or check the sugar's transparency annotations)",
            file=sys.stderr,
        )
        return 1
    return 0


def _collect_batch_jobs(args, backend):
    """Read the input files into named LiftJobs (parse errors are
    usage errors and fail fast — fault isolation is for runtime
    faults, not malformed invocations)."""
    from repro.parallel import LiftJob

    budgets = dict(
        max_steps=args.max_steps,
        max_seconds=args.max_seconds,
        on_budget=args.on_budget,
    )
    jobs = []
    for path in args.inputs:
        with open(path) as handle:
            text = handle.read()
        if args.per_line:
            for lineno, line in enumerate(text.splitlines(), start=1):
                line = line.strip()
                if not line or line.startswith(";") or line.startswith("#"):
                    continue
                jobs.append(
                    LiftJob(
                        backend.parse(line),
                        name=f"{path}:{lineno}",
                        **budgets,
                    )
                )
        else:
            jobs.append(LiftJob(backend.parse(text), name=path, **budgets))
    if not jobs:
        raise SystemExit("no programs found in the given inputs")
    return jobs


def _cmd_lift_batch(args) -> int:
    from repro.parallel import aggregate_metrics, lift_corpus_stream

    confection, backend = _build_confection(args)
    jobs = _collect_batch_jobs(args, backend)
    outcomes = []
    failed = 0
    interrupted = False
    try:
        for outcome in lift_corpus_stream(
            (confection.rules, confection.stepper),
            jobs,
            jobs=args.jobs,
            payload="rendered",
            pretty=backend.pretty,
            collect_metrics=args.metrics,
            collect_spans=args.trace is not None,
            cache_dir=args.cache,
            chunk=args.chunk,
        ):
            outcomes.append(outcome)
            name = jobs[outcome.job_index].name
            if isinstance(outcome, events.JobError):
                failed += 1
                print(
                    f"== job {outcome.job_index}: {name} FAILED ==",
                    flush=True,
                )
                print(
                    f"{outcome.error_type}: {outcome.error_message}",
                    file=sys.stderr,
                )
                continue
            print(f"== job {outcome.job_index}: {name} ==", flush=True)
            for line in outcome.rendered:
                print(line, flush=True)
    except KeyboardInterrupt:
        # Graceful shutdown: the stream's finally block has already
        # cancelled the queued tail and the pool teardown reaped the
        # workers; report the partial results and exit with the
        # conventional SIGINT code.
        interrupted = True
    print(
        f"[{len(outcomes)}/{len(jobs)} jobs, {failed} failed, "
        f"jobs={args.jobs if args.jobs is not None else 'auto'}"
        + (", interrupted" if interrupted else "")
        + "]",
        file=sys.stderr,
    )
    if args.metrics:
        import json

        print(json.dumps(aggregate_metrics(outcomes), indent=2, sort_keys=True))
    if args.trace is not None:
        from repro.obs import write_trace
        from repro.parallel import aggregate_trace

        count = write_trace(aggregate_trace(outcomes), args.trace)
        print(f"wrote {args.trace} ({count} spans)", file=sys.stderr)
    if interrupted:
        return 130
    return 1 if failed else 0


def _cmd_obs(args) -> int:
    from repro.obs import analyze, read_trace

    try:
        records = read_trace(
            args.trace_file, tolerate_truncation=not args.strict
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.obs_command == "report":
        print(analyze.format_report(analyze.summarize(records)))
    elif args.obs_command == "hot-rules":
        print(analyze.format_hot_rules(analyze.hot_rules(records)))
    else:  # skips
        core_steps = sum(1 for r in records if r["name"] == "lift.step")
        print(
            analyze.format_skips(analyze.skip_report(records), core_steps)
        )
    return 0


def _cmd_desugar(args) -> int:
    confection, backend = _build_confection(args)
    core = confection.desugar(backend.parse(_read_program(args.program)))
    if args.tags:
        from repro.lang.render import render

        print(render(core, show_tags=True))
    else:
        print(backend.pretty(core))
    return 0


def _cmd_trace(args) -> int:
    confection, backend = _build_confection(args)
    core = confection.desugar(backend.parse(_read_program(args.program)))
    stepper = confection.stepper
    with_mode = getattr(stepper, "with_mode", None)
    if with_mode is not None:
        stepper = with_mode(args.stepper)
    state = stepper.load(core)
    for _ in range(args.max_steps):
        print(backend.pretty(stepper.term(state)))
        successors = stepper.step(state)
        if not successors:
            return 0
        if len(successors) > 1:
            print("[nondeterministic branch; use lift --tree]", file=sys.stderr)
            return 1
        state = successors[0]
    print(f"[stopped after {args.max_steps} steps]", file=sys.stderr)
    return 1


def _cmd_check(args) -> int:
    from repro.lang.rule_parser import parse_rulelist

    with open(args.rules_file) as handle:
        source = handle.read()
    mode = DisjointnessMode(args.disjointness)
    rules = parse_rulelist(source, mode)
    print(
        f"ok: {len(rules)} rule(s), labels: "
        + ", ".join(sorted(rules.labels))
    )
    if args.hygiene:
        from repro.core.hygiene import lint_hygiene

        warnings = lint_hygiene(rules)
        for warning in warnings:
            print(f"hygiene: {warning}", file=sys.stderr)
        if any(w.kind == "capturable-binder" for w in warnings):
            return 2
    return 0


def _cmd_synth(args) -> int:
    from repro.synth.cli import run_synth

    return run_synth(args)


def _cmd_cache(args) -> int:
    import json

    from repro.cache import CacheStore

    store = CacheStore(args.cache_dir)
    if args.cache_command == "stats":
        print(json.dumps(store.scan(), indent=2, sort_keys=True))
        return 0
    removed = store.clear()
    print(f"removed {removed} cache file(s) from {args.cache_dir}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.server import ReproServer, ServerLimits

    async def run() -> None:
        server = ReproServer(
            args.host,
            args.port,
            jobs=args.jobs,
            max_sessions=args.max_sessions,
            limits=ServerLimits(
                max_steps_cap=args.max_steps_cap,
                # 0 (or negative) disables the wall-clock cap entirely;
                # uncapped sessions are whole-lift cacheable.
                max_seconds_cap=(
                    args.max_seconds_cap
                    if args.max_seconds_cap > 0
                    else None
                ),
            ),
            cache_dir=args.cache,
        )
        async with server:
            print(
                f"serving on http://{server.host}:{server.port} "
                f"(max {args.max_sessions} sessions, "
                f"{args.jobs} batch worker(s))",
                file=sys.stderr,
                flush=True,
            )
            try:
                await server.serve_forever()
            except asyncio.CancelledError:
                pass

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        # Graceful: asyncio.run cancels serve_forever and the context
        # manager drains live sessions before the process exits.
        print("shutting down", file=sys.stderr)
        return 130
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "lift": _cmd_lift,
        "lift-batch": _cmd_lift_batch,
        "obs": _cmd_obs,
        "desugar": _cmd_desugar,
        "trace": _cmd_trace,
        "check": _cmd_check,
        "serve": _cmd_serve,
        "synth": _cmd_synth,
        "cache": _cmd_cache,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
