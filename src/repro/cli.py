"""Command-line interface: CONFECTION as a tool.

The paper's artifact is a command-line program fed a grammar file and
rewrite rules; this CLI plays the same role for the two bundled
languages and any user rules file.

Examples::

    python -m repro lift --lang lambda '(or (not #t) (not #f))'
    python -m repro lift --lang pyret  '1 + (2 + 3)' --op object
    python -m repro lift --lang lambda --sugar automaton --tree '(amb 1 2)'
    python -m repro desugar --lang pyret 'not true'
    python -m repro trace --lang lambda '(+ 1 (* 2 3))'
    python -m repro check my_rules.confection
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Optional

from repro.confection import Confection
from repro.core.errors import ReproError
from repro.core.wellformed import DisjointnessMode

__all__ = ["main", "build_parser"]


class _Language:
    """Everything the CLI needs to know about one object language."""

    def __init__(self, parse, pretty, make_stepper, sugar_factories):
        self.parse = parse
        self.pretty = pretty
        self.make_stepper = make_stepper
        self.sugar_factories = sugar_factories


def _lambda_language() -> _Language:
    from repro.lambdacore import make_stepper, parse_program, pretty
    from repro.sugars.automaton import make_automaton_rules
    from repro.sugars.returns import make_return_rules
    from repro.sugars.scheme_sugars import make_scheme_rules

    return _Language(
        parse_program,
        pretty,
        make_stepper,
        {
            "scheme": make_scheme_rules,
            "automaton": lambda **kw: make_automaton_rules(
                transparent_recursion=kw.get("transparent_recursion", False)
            ),
            "return": lambda **kw: make_return_rules(**kw),
        },
    )


def _pyret_language() -> _Language:
    from repro.pyretcore import make_stepper, parse_program, pretty
    from repro.sugars.pyret_sugars import make_pyret_rules

    return _Language(
        parse_program,
        pretty,
        make_stepper,
        {
            "pyret": lambda op_desugaring="naive", **kw: make_pyret_rules(
                op_desugaring
            ),
        },
    )


_LANGUAGES: dict[str, Callable[[], _Language]] = {
    "lambda": _lambda_language,
    "pyret": _pyret_language,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Resugaring: lift core evaluation sequences through "
        "syntactic sugar (PLDI 2014 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, with_program=True):
        p.add_argument(
            "--lang",
            choices=sorted(_LANGUAGES),
            default="lambda",
            help="object language (default: lambda)",
        )
        p.add_argument(
            "--sugar",
            default=None,
            help="bundled sugar set (lambda: scheme/automaton/return; "
            "pyret: pyret); default: the language's standard set",
        )
        p.add_argument(
            "--rules-file",
            default=None,
            help="a rule-DSL file to use instead of a bundled sugar set",
        )
        p.add_argument(
            "--transparent",
            action="store_true",
            help="mark recursive sugar invocations transparent (!)",
        )
        p.add_argument(
            "--op",
            choices=("naive", "object"),
            default="naive",
            help="pyret only: binary-operator desugaring (section 8.3)",
        )
        if with_program:
            p.add_argument("program", help="program text (or @file to read one)")

    lift = sub.add_parser("lift", help="lift a surface evaluation sequence")
    common(lift)
    lift.add_argument(
        "--tree", action="store_true", help="lift a nondeterministic tree"
    )
    lift.add_argument("--max-steps", type=int, default=100_000)
    lift.add_argument(
        "--show-skipped",
        action="store_true",
        help="also print skipped core steps, marked with 'x'",
    )
    lift.add_argument(
        "--table",
        action="store_true",
        help="two-column core/surface view of every step",
    )
    lift.add_argument(
        "--html",
        metavar="FILE",
        default=None,
        help="write a standalone HTML trace report to FILE",
    )

    desugar = sub.add_parser("desugar", help="show a program's core form")
    common(desugar)
    desugar.add_argument(
        "--tags", action="store_true", help="show origin tags in the output"
    )

    trace = sub.add_parser("trace", help="show the raw core trace (no lifting)")
    common(trace)
    trace.add_argument("--max-steps", type=int, default=100_000)

    check = sub.add_parser("check", help="statically check a rule-DSL file")
    check.add_argument("rules_file")
    check.add_argument(
        "--disjointness",
        choices=[m.value for m in DisjointnessMode],
        default="strict",
    )
    check.add_argument(
        "--hygiene",
        action="store_true",
        help="also lint binder names against the %%-namespace convention",
    )
    return parser


def _read_program(arg: str) -> str:
    if arg.startswith("@"):
        with open(arg[1:]) as handle:
            return handle.read()
    return arg


def _build_confection(args) -> tuple[Confection, _Language]:
    language = _LANGUAGES[args.lang]()
    if args.rules_file:
        with open(args.rules_file) as handle:
            rules_source = handle.read()
        confection = Confection(rules_source, language.make_stepper())
        return confection, language
    sugar = args.sugar or next(iter(language.sugar_factories))
    try:
        factory = language.sugar_factories[sugar]
    except KeyError:
        known = ", ".join(sorted(language.sugar_factories))
        raise SystemExit(
            f"unknown sugar set {sugar!r} for --lang {args.lang} "
            f"(choose from: {known})"
        )
    kwargs = {}
    if args.transparent:
        kwargs["transparent_recursion"] = True
    if args.lang == "pyret":
        kwargs = {"op_desugaring": args.op}
    rules = factory(**kwargs)
    return Confection(rules, language.make_stepper()), language


def _cmd_lift(args) -> int:
    confection, language = _build_confection(args)
    program = language.parse(_read_program(args.program))
    if args.tree:
        tree = confection.lift_tree(program)

        def walk(node_id, depth):
            print("  " * depth + language.pretty(tree.nodes[node_id]))
            for child in tree.children(node_id):
                walk(child, depth + 1)

        walk(tree.root, 0)
        print(
            f"[{tree.core_node_count} core states, "
            f"{tree.skipped_count} skipped]",
            file=sys.stderr,
        )
        return 0
    result = confection.lift(program, max_steps=args.max_steps)
    if args.html:
        from repro.viz import render_html

        with open(args.html, "w") as handle:
            handle.write(render_html(result, language.pretty))
        print(f"wrote {args.html}", file=sys.stderr)
        return 0
    if args.table:
        from repro.viz import render_text

        print(render_text(result, language.pretty))
        return 0
    if args.show_skipped:
        for step in result.steps:
            mark = " " if step.emitted else ("x" if step.skipped else "=")
            print(f"{mark} {language.pretty(step.core_term)}")
    else:
        for term in result.surface_sequence:
            print(language.pretty(term))
    print(
        f"[{result.core_step_count} core steps, "
        f"{result.skipped_count} skipped, "
        f"coverage {result.coverage:.0%}]",
        file=sys.stderr,
    )
    return 0


def _cmd_desugar(args) -> int:
    confection, language = _build_confection(args)
    core = confection.desugar(language.parse(_read_program(args.program)))
    if args.tags:
        from repro.lang.render import render

        print(render(core, show_tags=True))
    else:
        print(language.pretty(core))
    return 0


def _cmd_trace(args) -> int:
    confection, language = _build_confection(args)
    core = confection.desugar(language.parse(_read_program(args.program)))
    stepper = confection.stepper
    state = stepper.load(core)
    for _ in range(args.max_steps):
        print(language.pretty(stepper.term(state)))
        successors = stepper.step(state)
        if not successors:
            return 0
        if len(successors) > 1:
            print("[nondeterministic branch; use lift --tree]", file=sys.stderr)
            return 1
        state = successors[0]
    print(f"[stopped after {args.max_steps} steps]", file=sys.stderr)
    return 1


def _cmd_check(args) -> int:
    from repro.lang.rule_parser import parse_rulelist

    with open(args.rules_file) as handle:
        source = handle.read()
    mode = DisjointnessMode(args.disjointness)
    rules = parse_rulelist(source, mode)
    print(
        f"ok: {len(rules)} rule(s), labels: "
        + ", ".join(sorted(rules.labels))
    )
    if args.hygiene:
        from repro.core.hygiene import lint_hygiene

        warnings = lint_hygiene(rules)
        for warning in warnings:
            print(f"hygiene: {warning}", file=sys.stderr)
        if any(w.kind == "capturable-binder" for w in warnings):
            return 2
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "lift": _cmd_lift,
        "desugar": _cmd_desugar,
        "trace": _cmd_trace,
        "check": _cmd_check,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
