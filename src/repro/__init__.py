"""repro: a reproduction of "Resugaring: Lifting Evaluation Sequences
through Syntactic Sugar" (Pombrio & Krishnamurthi, PLDI 2014).

The package implements the paper's CONFECTION tool — desugaring with
origin tags, resugaring, and lifting of core evaluation sequences into
surface evaluation sequences — together with the substrates the paper's
evaluation depends on: a reduction-semantics engine (``repro.redex``), a
stateful lambda-calculus core language (``repro.lambdacore``), a
Pyret-like core object language (``repro.pyretcore``), and libraries of
syntactic sugar (``repro.sugars``).
"""

from repro.core import (
    BodyTag,
    Const,
    DisjointnessMode,
    HeadTag,
    Node,
    Pattern,
    PList,
    PVar,
    Rule,
    RuleList,
    Symbol,
    Tagged,
    desugar,
    lift_evaluation,
    lift_evaluation_tree,
    match,
    resugar,
    subst,
    transparent,
    unify,
)
from repro.lang import parse_pattern, parse_rulelist, parse_rules, parse_term, render

__version__ = "1.0.0"

__all__ = [
    "Backend",
    "Confection",
    "Const",
    "Node",
    "PList",
    "PVar",
    "Pattern",
    "Symbol",
    "Tagged",
    "HeadTag",
    "BodyTag",
    "Rule",
    "RuleList",
    "DisjointnessMode",
    "match",
    "subst",
    "unify",
    "desugar",
    "resugar",
    "transparent",
    "lift_evaluation",
    "lift_evaluation_tree",
    "parse_pattern",
    "parse_rules",
    "parse_rulelist",
    "parse_term",
    "render",
    "__version__",
    "register_backend",
    "get_backend",
    "available_backends",
    "lift_stream",
    "lift_tree_stream",
]

_LAZY_EXPORTS = {
    # Confection pulls in the stepper machinery, and the engine pulls in
    # Confection; import them lazily so that ``import repro`` stays
    # cheap for users of the core only.
    "Confection": ("repro.confection", "Confection"),
    "Backend": ("repro.engine.registry", "Backend"),
    "register_backend": ("repro.engine.registry", "register_backend"),
    "get_backend": ("repro.engine.registry", "get_backend"),
    "available_backends": ("repro.engine.registry", "available_backends"),
    "lift_stream": ("repro.engine.stream", "lift_stream"),
    "lift_tree_stream": ("repro.engine.stream", "lift_tree_stream"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    from importlib import import_module

    return getattr(import_module(module_name), attr)
