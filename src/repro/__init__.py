"""repro: a reproduction of "Resugaring: Lifting Evaluation Sequences
through Syntactic Sugar" (Pombrio & Krishnamurthi, PLDI 2014).

The package implements the paper's CONFECTION tool — desugaring with
origin tags, resugaring, and lifting of core evaluation sequences into
surface evaluation sequences — together with the substrates the paper's
evaluation depends on: a reduction-semantics engine (``repro.redex``), a
stateful lambda-calculus core language (``repro.lambdacore``), a
Pyret-like core object language (``repro.pyretcore``), and libraries of
syntactic sugar (``repro.sugars``).
"""

from repro.core import (
    BodyTag,
    Const,
    DisjointnessMode,
    HeadTag,
    Node,
    Pattern,
    PList,
    PVar,
    Rule,
    RuleList,
    Symbol,
    Tagged,
    desugar,
    lift_evaluation,
    lift_evaluation_tree,
    match,
    resugar,
    subst,
    transparent,
    unify,
)
from repro.lang import parse_pattern, parse_rulelist, parse_rules, parse_term, render

__version__ = "1.0.0"

__all__ = [
    "Confection",
    "Const",
    "Node",
    "PList",
    "PVar",
    "Pattern",
    "Symbol",
    "Tagged",
    "HeadTag",
    "BodyTag",
    "Rule",
    "RuleList",
    "DisjointnessMode",
    "match",
    "subst",
    "unify",
    "desugar",
    "resugar",
    "transparent",
    "lift_evaluation",
    "lift_evaluation_tree",
    "parse_pattern",
    "parse_rules",
    "parse_rulelist",
    "parse_term",
    "render",
    "__version__",
]


def __getattr__(name: str):
    # Confection pulls in the stepper machinery; import it lazily so that
    # ``import repro`` stays cheap for users of the core only.
    if name == "Confection":
        from repro.confection import Confection

        return Confection
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
