"""Job descriptions for batch lifting.

A :class:`LiftJob` is one program plus the lift options it should run
under — the same options :meth:`repro.confection.Confection.lift`
takes, frozen into a picklable record so the job can cross a process
boundary.  :func:`as_job` coerces the convenient forms a caller hands
:func:`repro.parallel.lift_corpus` (a bare term, DSL source text, or an
already-built job) into one.

The outcome vocabulary lives with the other lift events in
:mod:`repro.engine.events`: a finished job is a
:class:`~repro.engine.events.BatchLifted`, a failed one a
:class:`~repro.engine.events.JobError`.  Observability payloads ride
the outcome events the same way in both directions: per-job metrics
snapshots (``collect_metrics=True``) and per-job span trees with the
batch's trace context (``collect_spans=True``) — the job record itself
stays small and option-only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.core.terms import Pattern

__all__ = ["LiftJob", "as_job"]


@dataclass(frozen=True)
class LiftJob:
    """One (program, options) unit of a batch lift.

    ``program`` is a surface term (or rule-DSL source text, parsed by
    the engine exactly as :meth:`~repro.confection.Confection.lift`
    would).  ``name`` is a caller-chosen label carried through to CLI
    output and error reports; it never affects the lift.  The remaining
    fields mirror :meth:`Confection.lift
    <repro.confection.Confection.lift>` keyword for keyword.
    """

    program: Union[Pattern, str]
    name: Optional[str] = None
    max_steps: int = 100_000
    max_seconds: Optional[float] = None
    on_budget: str = "raise"
    dedup: bool = True
    check_emulation: bool = True
    incremental: bool = True

    def lift_kwargs(self) -> Dict[str, object]:
        """The keyword arguments this job passes to ``Confection.lift``."""
        return {
            "max_steps": self.max_steps,
            "max_seconds": self.max_seconds,
            "on_budget": self.on_budget,
            "dedup": self.dedup,
            "check_emulation": self.check_emulation,
            "incremental": self.incremental,
        }


def as_job(obj: Union[LiftJob, Pattern, str], **defaults) -> LiftJob:
    """Coerce ``obj`` into a :class:`LiftJob`.

    Jobs pass through unchanged (``defaults`` are ignored for them —
    an explicit job is already fully specified); terms and DSL source
    strings are wrapped with ``defaults`` as their options.
    """
    if isinstance(obj, LiftJob):
        return obj
    if isinstance(obj, (Pattern, str)):
        return LiftJob(obj, **defaults)
    raise TypeError(
        f"corpus entries must be LiftJob, Pattern, or str, "
        f"got {type(obj).__name__}"
    )
