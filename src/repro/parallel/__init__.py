"""Parallel batch lifting: shard a corpus of programs across workers.

The paper evaluates CONFECTION over a corpus of programs (§8); at
service scale that corpus is large and every lift is independent — an
embarrassingly parallel workload held back only by the engine's
process-local caches.  This package is the batch face of the engine:

* :func:`lift_corpus` / :func:`lift_corpus_stream` — shard
  ``(program, options)`` jobs across N worker processes, warm each
  worker once with the rule tables, and stream per-job outcomes back in
  deterministic submission order;
* :class:`~repro.parallel.pool.WarmPool` — the reusable form of the
  same engine: warm workers kept alive across batches, for long-lived
  services (``repro serve``) that pay warm-up once, not per request;
* :class:`~repro.parallel.jobs.LiftJob` — one picklable job record;
* :class:`~repro.engine.events.BatchLifted` /
  :class:`~repro.engine.events.JobError` — the per-job outcome events
  (a failing job is contained, never aborts the batch);
* :func:`~repro.parallel.pool.aggregate_metrics` — merge per-worker
  observability snapshots into one;
* :func:`~repro.parallel.pool.aggregate_trace` — merge per-job span
  trees (``collect_spans=True``) into one cross-process trace with job
  attribution, analyzable with ``python -m repro obs``.

The guarantees (determinism against the sequential engine, fault
isolation, metrics and trace equivalence) are pinned by
``tests/parallel``; ``docs/parallelism.md`` documents the worker model
and failure semantics.  The CLI front end is
``python -m repro lift-batch``.
"""

from repro.engine.events import BatchLifted, JobError
from repro.parallel.jobs import LiftJob, as_job
from repro.parallel.pool import (
    PAYLOADS,
    WarmPool,
    aggregate_metrics,
    aggregate_trace,
    default_worker_count,
    lift_corpus,
    lift_corpus_stream,
)

__all__ = [
    "LiftJob",
    "as_job",
    "BatchLifted",
    "JobError",
    "WarmPool",
    "lift_corpus",
    "lift_corpus_stream",
    "aggregate_metrics",
    "aggregate_trace",
    "default_worker_count",
    "PAYLOADS",
]
