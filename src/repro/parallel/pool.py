"""The process-pool batch-lift engine.

:func:`lift_corpus_stream` shards a list of :class:`~repro.parallel.jobs.LiftJob`
across ``jobs`` worker processes and yields one
:class:`~repro.engine.events.BatchLifted` or
:class:`~repro.engine.events.JobError` per job, **in submission order**,
regardless of which worker finishes first.  :func:`lift_corpus` is the
eager list of the same.

Worker protocol
---------------

Each worker is warmed exactly once (pool initializer): the engine spec —
a :class:`~repro.confection.Confection`, a ``(rules, stepper)`` pair, or
a zero-argument factory returning either — is resolved into a private
Confection whose rule tables live for the worker's whole life.  The
warm workers belong to a :class:`WarmPool`, which is *reusable*: a
long-lived service creates one per engine configuration and runs many
batches through it, paying the worker warmup once instead of once per
batch (:func:`lift_corpus_stream` accepts one via ``pool=``; without it
an ephemeral pool is built and torn down around the call, the
historical behaviour).  Jobs
cross the boundary as small pickled :class:`LiftJob` records, and
each job runs the ordinary :meth:`Confection.lift
<repro.confection.Confection.lift>` (that is, the streaming engine's
:func:`~repro.engine.stream.lift_stream` with the job's budgets).  The
per-run :class:`~repro.core.incremental.ResugarCache` is created fresh
per job, exactly as the sequential path does, so per-job results —
surface sequences, step bookkeeping, and cache statistics — are
bit-for-bit what a sequential loop computes; the worker's *intern table*
stays warm across its jobs, which is pure sharing and never observable
in results.  Terms re-intern as they are unpickled
(:mod:`repro.core.intern`), so programs arriving in a worker and results
arriving back in the parent keep identity-fast equality.

Determinism
-----------

Job outcomes are buffered per-future and yielded strictly in submission
order, and each job's lift is a deterministic function of (rules,
program, options).  The ``tests/parallel`` determinism suite pins this:
batch output at ``jobs=1,2,4`` is byte-identical to the sequential
:func:`repro.core.lift.lift_evaluation` loop, including per-step event
ordering.

Fault isolation
---------------

A job whose stepper raises, whose emulation check fails, or whose
budget runs out under ``on_budget="raise"`` yields a structured
:class:`JobError` carrying the original exception type, message, and
worker-side traceback — the batch continues.  A *worker process* dying
outright (hard crash) surfaces as a ``JobError`` for every job that was
in flight on the broken pool rather than an exception in the consumer.

Graceful shutdown
-----------------

Abandoning a batch early — the consumer ``close()``-ing the stream, a
``KeyboardInterrupt`` (SIGINT) landing mid-batch, or any exception
escaping the consumer loop — never orphans workers: the queued-but-
unstarted tail of the in-flight window is cancelled, the jobs already
running drain to completion, and the worker processes are joined before
control returns.  Outcomes yielded before the interruption remain valid
partial results (the ``lift-batch`` CLI prints them, reports the batch
as interrupted, and exits 130 on SIGINT).

Metrics and traces
------------------

With ``collect_metrics=True`` each job runs under a fresh
:class:`repro.obs.Observability` scope and its event carries a per-job
metrics snapshot; :func:`aggregate_metrics` merges them into one
snapshot equal to what a single-process run of the corpus would have
recorded (see :meth:`repro.obs.metrics.MetricsRegistry.merge`).

With ``collect_spans=True`` span trees travel the same road: every job
runs with a process-level :class:`repro.obs.TraceContext` carrying the
batch's shared trace id plus this job's submission index and worker
pid, its spans are gathered by a per-job
:class:`repro.obs.SpanCollector`, and the picklable record tuples ride
back on the outcome events (``BatchLifted.spans`` / partial
``JobError.spans``).  :func:`aggregate_trace` merges them into one
coherent multi-process trace — structurally identical, modulo
ids/timings/attribution, to what ``jobs=1`` records, because both
paths run the very same :func:`_execute_job`.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import traceback as _traceback
import uuid
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterator, List, Optional, Sequence, Union

from dataclasses import dataclass

from repro.engine.events import BatchLifted, JobError
from repro.parallel.jobs import LiftJob, as_job

__all__ = [
    "PAYLOADS",
    "CallResult",
    "WarmPool",
    "lift_corpus",
    "lift_corpus_stream",
    "aggregate_metrics",
    "aggregate_trace",
    "default_worker_count",
]

PAYLOADS = ("result", "rendered", "both")

BatchOutcome = Union[BatchLifted, JobError]

# Per-worker engine state, populated once by the pool initializer.
_WORKER_ENGINE = None
_WORKER_PRETTY: Optional[Callable] = None
_WORKER_PAYLOAD = "result"
_WORKER_METRICS = False
_WORKER_SPANS = False

# Largest job batch one chunked submission will carry (see
# :func:`_auto_chunk`); chosen so a chunk's pickled results stay small.
MAX_AUTO_CHUNK = 8


def _auto_chunk(n_jobs: int, workers: int) -> int:
    """Jobs per pool submission when the caller did not choose.

    Chunking amortizes per-submission pickling and future overhead,
    which dominates when jobs are small and plentiful; but oversized
    chunks serialize work that could balance across workers.  The
    heuristic only batches once the corpus is several windows deep
    (``n_jobs // (workers * 4)``), so modest corpora keep today's
    one-job-per-submission behaviour, and caps at
    :data:`MAX_AUTO_CHUNK`.
    """
    return max(1, min(MAX_AUTO_CHUNK, n_jobs // (workers * 4)))


def _attach_cache(engine, cache_dir):
    """Open this process's :class:`~repro.cache.LiftCache` against the
    shared store directory.  Live cache objects never cross the process
    boundary — only the path does, so every worker re-opens its own
    handle and the on-disk store is the shared state."""
    if cache_dir is not None:
        from repro.cache import LiftCache

        engine.cache = LiftCache(cache_dir)
    return engine


def default_worker_count() -> int:
    """The worker count used when ``jobs`` is not given: one per CPU."""
    return max(1, os.cpu_count() or 1)


def _default_start_method() -> str:
    """``fork`` where available (cheap warmup: workers inherit already-
    built rule tables and the warm intern table), ``spawn`` elsewhere."""
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"


def _resolve_engine(engine):
    """Resolve an engine spec into a private Confection for one process.

    Accepted specs: a ``Confection`` (its rules and stepper are reused,
    but not its observability configuration — workers manage their own),
    a ``(rules, stepper)`` pair, or a zero-argument factory returning
    either.  The result is always a fresh Confection so no parent-side
    state rides along.
    """
    from repro.confection import Confection

    if isinstance(engine, Confection):
        return Confection(engine.rules, engine.stepper)
    if isinstance(engine, tuple) and len(engine) == 2:
        rules, stepper = engine
        return Confection(rules, stepper)
    if callable(engine):
        return _resolve_engine(engine())
    raise TypeError(
        "engine must be a Confection, a (rules, stepper) pair, or a "
        f"zero-argument factory returning one; got {type(engine).__name__}"
    )


def _execute_job(
    engine,
    index: int,
    job: LiftJob,
    payload: str,
    pretty: Optional[Callable],
    collect_metrics: bool,
    collect_spans: bool = False,
    trace_id: Optional[str] = None,
) -> BatchOutcome:
    """Run one job to an outcome event.  Never raises for job-level
    failures — that is the fault-isolation contract (only interpreter
    teardown exceptions like ``KeyboardInterrupt`` propagate).

    This is the one job path for every worker count: the poolless
    ``jobs=1`` loop and every pool worker call exactly this function,
    which is what makes batch traces structurally identical across
    worker counts.
    """
    worker = os.getpid()
    collector = None
    try:
        if collect_metrics or collect_spans:
            from repro.obs import (
                Observability,
                SpanCollector,
                TraceContext,
                set_trace_context,
            )

            sinks = []
            previous_context = None
            if collect_spans:
                collector = SpanCollector()
                sinks.append(collector)
                previous_context = set_trace_context(
                    TraceContext(trace_id, job=index, worker=worker)
                )
            obs = Observability(sinks=sinks, reset_metrics=collect_metrics)
            try:
                with obs:
                    result = engine.lift(job.program, **job.lift_kwargs())
            finally:
                if collect_spans:
                    set_trace_context(previous_context)
            metrics = obs.snapshot() if collect_metrics else None
        else:
            result = engine.lift(job.program, **job.lift_kwargs())
            metrics = None
        rendered = None
        if payload in ("rendered", "both"):
            rendered = tuple(pretty(t) for t in result.surface_sequence)
        return BatchLifted(
            job_index=index,
            result=None if payload == "rendered" else result,
            rendered=rendered,
            worker=worker,
            metrics=metrics,
            spans=tuple(collector.records) if collector is not None else None,
        )
    except Exception as exc:
        return JobError(
            job_index=index,
            error_type=type(exc).__name__,
            error_message=str(exc),
            traceback=_traceback.format_exc(),
            worker=worker,
            spans=tuple(collector.records) if collector is not None else None,
        )


def _warm_worker(
    engine, payload, pretty, collect_metrics, collect_spans,
    cache_dir=None,
) -> None:
    """Pool initializer: build this worker's engine once (rule tables,
    stepper, and — given ``cache_dir`` — a persistent lift cache over
    the shared store) and stash the pool configuration in module
    globals.  The batch trace id is *not* baked here — a warm pool
    outlives any one batch, so it rides along per job
    (:func:`_pool_run`)."""
    global _WORKER_ENGINE, _WORKER_PRETTY, _WORKER_PAYLOAD, _WORKER_METRICS
    global _WORKER_SPANS
    _WORKER_ENGINE = _attach_cache(_resolve_engine(engine), cache_dir)
    _WORKER_PRETTY = pretty
    _WORKER_PAYLOAD = payload
    _WORKER_METRICS = collect_metrics
    _WORKER_SPANS = collect_spans


def _pool_run(
    index: int, job: LiftJob, trace_id: Optional[str] = None
) -> BatchOutcome:
    """Worker-side job entry: delegate to the shared executor against
    the warmed engine."""
    return _execute_job(
        _WORKER_ENGINE, index, job, _WORKER_PAYLOAD, _WORKER_PRETTY,
        _WORKER_METRICS, _WORKER_SPANS, trace_id,
    )


def _pool_run_chunk(
    start_index: int,
    jobs_chunk: Sequence[LiftJob],
    trace_id: Optional[str] = None,
) -> tuple:
    """Worker-side chunk entry: run a contiguous batch of jobs in one
    submission (one pickle round-trip for N jobs), preserving the
    per-job indices and the per-job fault-isolation contract."""
    return tuple(
        _execute_job(
            _WORKER_ENGINE, start_index + offset, job, _WORKER_PAYLOAD,
            _WORKER_PRETTY, _WORKER_METRICS, _WORKER_SPANS, trace_id,
        )
        for offset, job in enumerate(jobs_chunk)
    )


@dataclass(frozen=True)
class CallResult:
    """Outcome of one :meth:`WarmPool.map_engine` call: either a value
    or a contained error, tagged with the submission index."""

    index: int
    value: object = None
    error_type: Optional[str] = None
    error_message: Optional[str] = None
    worker: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.error_type is None


def _call_on_engine(engine, index: int, fn: Callable, payload) -> CallResult:
    """Run one generic engine call to a :class:`CallResult`; same
    containment contract as :func:`_execute_job`."""
    try:
        return CallResult(
            index=index, value=fn(engine, payload), worker=os.getpid()
        )
    except Exception as exc:
        return CallResult(
            index=index,
            error_type=type(exc).__name__,
            error_message=str(exc),
            worker=os.getpid(),
        )


def _pool_call(index: int, fn: Callable, payload) -> CallResult:
    """Worker-side entry for :meth:`WarmPool.map_engine`, against the
    warmed engine."""
    return _call_on_engine(_WORKER_ENGINE, index, fn, payload)


def _check_options(payload: str, pretty: Optional[Callable]) -> None:
    if payload not in PAYLOADS:
        raise ValueError(f"payload must be one of {PAYLOADS}, got {payload!r}")
    if payload != "result" and pretty is None:
        raise ValueError(f"payload={payload!r} requires a pretty function")


class WarmPool:
    """A reusable batch-lift engine: warm workers shared across batches.

    The pool owns one :class:`~concurrent.futures.ProcessPoolExecutor`
    (built lazily on the first batch) whose workers were warmed once
    with ``engine`` and this pool's payload configuration; every
    subsequent :meth:`run` reuses them, so a long-lived service pays
    rule-table construction and interpreter start-up once, not once per
    request.  ``jobs=1`` is the poolless in-process path, with the
    resolved engine likewise cached across runs.

    :meth:`run` streams one outcome per job in submission order with
    the same windowing, determinism, and fault-isolation contract as
    :func:`lift_corpus_stream` (which is now a thin ephemeral-pool
    wrapper over this class).  Abandoning a run mid-stream cancels the
    queued tail of its window; the pool itself stays warm for the next
    batch.  :meth:`shutdown` drains in-flight jobs and joins the
    workers; the pool is also a context manager doing exactly that.

    The pool is safe to share across threads (the server runs batch
    producers on executor threads): lazy warm-up is locked, so a racy
    first use cannot build two executors, and ``jobs=1`` runs are
    serialized — the resolved in-process engine holds one *mutable*
    stepper, and interleaving two batches on it would corrupt both.
    Serialization is exactly the one-worker semantics ``jobs=1``
    promises; concurrent batches queue just as they would on a
    one-worker process pool.

    ``cache_dir`` gives every worker (and the ``jobs=1`` in-process
    engine) a persistent :class:`~repro.cache.LiftCache` over one
    shared store directory, and ``chunk`` fixes the jobs-per-submission
    batch size (default: :func:`_auto_chunk`); see
    :func:`lift_corpus_stream` for both contracts.
    """

    def __init__(
        self,
        engine,
        *,
        jobs: Optional[int] = None,
        payload: str = "result",
        pretty: Optional[Callable] = None,
        collect_metrics: bool = False,
        collect_spans: bool = False,
        mp_context: Optional[str] = None,
        cache_dir=None,
        chunk: Optional[int] = None,
    ) -> None:
        _check_options(payload, pretty)
        n_workers = default_worker_count() if jobs is None else jobs
        if n_workers < 1:
            raise ValueError(f"jobs must be >= 1, got {n_workers!r}")
        if chunk is not None and chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk!r}")
        self.engine = engine
        self.jobs = n_workers
        self.payload = payload
        self.pretty = pretty
        self.collect_metrics = collect_metrics
        self.collect_spans = collect_spans
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.chunk = chunk
        self._mp_context = mp_context
        self._executor: Optional[ProcessPoolExecutor] = None
        self._local = None  # resolved engine for the jobs=1 path
        self._init_lock = threading.Lock()  # lazy warm-up / shutdown
        self._run_lock = threading.Lock()  # serializes jobs=1 runs

    @property
    def warm(self) -> bool:
        """Has a batch already built (and warmed) the executor?"""
        return self._executor is not None or self._local is not None

    def _ensure_executor(self) -> ProcessPoolExecutor:
        with self._init_lock:
            if self._executor is None:
                context = multiprocessing.get_context(
                    self._mp_context or _default_start_method()
                )
                self._executor = ProcessPoolExecutor(
                    max_workers=self.jobs,
                    mp_context=context,
                    initializer=_warm_worker,
                    initargs=(
                        self.engine, self.payload, self.pretty,
                        self.collect_metrics, self.collect_spans,
                        self.cache_dir,
                    ),
                )
            return self._executor

    def run(
        self, corpus: Sequence, *, window: Optional[int] = None
    ) -> Iterator[BatchOutcome]:
        """Lift ``corpus``, yielding outcomes in submission order (the
        :func:`lift_corpus_stream` contract).  Each run gets its own
        batch trace id when the pool collects spans."""
        jobs_list: List[LiftJob] = [as_job(entry) for entry in corpus]
        trace_id = uuid.uuid4().hex[:16] if self.collect_spans else None

        if self.jobs == 1:
            # The in-process engine's stepper is mutable; concurrent
            # runs take turns on it (released on exhaustion *and* when
            # an abandoned generator is closed).
            with self._run_lock:
                if self._local is None:
                    self._local = _attach_cache(
                        _resolve_engine(self.engine), self.cache_dir
                    )
                for index, job in enumerate(jobs_list):
                    yield _execute_job(
                        self._local, index, job, self.payload, self.pretty,
                        self.collect_metrics, self.collect_spans, trace_id,
                    )
            return

        if window is None:
            window = 4 * self.jobs
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window!r}")

        pool = self._ensure_executor()
        chunk = (
            self.chunk
            if self.chunk is not None
            else _auto_chunk(len(jobs_list), self.jobs)
        )
        pending: deque = deque()
        upcoming = iter(
            (start, jobs_list[start : start + chunk])
            for start in range(0, len(jobs_list), chunk)
        )

        def submit_next() -> bool:
            try:
                start, chunk_jobs = next(upcoming)
            except StopIteration:
                return False
            if len(chunk_jobs) == 1:
                future = pool.submit(_pool_run, start, chunk_jobs[0], trace_id)
            else:
                future = pool.submit(
                    _pool_run_chunk, start, chunk_jobs, trace_id
                )
            pending.append((start, len(chunk_jobs), future))
            return True

        try:
            for _ in range(window):
                if not submit_next():
                    break
            while pending:
                start, count, future = pending.popleft()
                submit_next()
                try:
                    result = future.result()
                    outcomes = (result,) if count == 1 else result
                except Exception as exc:
                    # The job function never raises; reaching here means
                    # the pool itself broke (a worker died, or a payload
                    # failed to pickle).  Contain it as a failure for
                    # every job the submission carried.
                    tb = _traceback.format_exc()
                    outcomes = tuple(
                        JobError(
                            job_index=start + offset,
                            error_type=type(exc).__name__,
                            error_message=str(exc),
                            traceback=tb,
                            worker=None,
                        )
                        for offset in range(count)
                    )
                yield from outcomes
        finally:
            # Early exit — the consumer closed the stream, SIGINT landed
            # in future.result(), or an exception escaped the loop.
            # Cancel the queued-but-unstarted tail so the batch stops at
            # the in-flight window instead of running the whole corpus.
            while pending:
                *_, future = pending.popleft()
                future.cancel()

    def map_engine(
        self, fn: Callable, payloads: Sequence, *, window: Optional[int] = None
    ) -> List[CallResult]:
        """Run ``fn(engine, payload)`` for each payload on the warm
        workers, returning :class:`CallResult` outcomes in submission
        order.

        This is the generic sibling of :meth:`run` for batch work that
        is not a lift — rule synthesis uses it to check candidate rules
        against the warmed reference engine without re-building rule
        tables per candidate.  ``fn`` must be a picklable module-level
        function; exceptions it raises are contained per call, exactly
        like job errors in :meth:`run`.
        """
        payloads = list(payloads)
        if self.jobs == 1:
            with self._run_lock:
                if self._local is None:
                    self._local = _attach_cache(
                        _resolve_engine(self.engine), self.cache_dir
                    )
                return [
                    _call_on_engine(self._local, i, fn, payload)
                    for i, payload in enumerate(payloads)
                ]
        if window is None:
            window = 4 * self.jobs
        pool = self._ensure_executor()
        results: List[CallResult] = []
        pending: deque = deque()
        upcoming = iter(enumerate(payloads))

        def submit_next() -> bool:
            try:
                index, payload = next(upcoming)
            except StopIteration:
                return False
            pending.append((index, pool.submit(_pool_call, index, fn, payload)))
            return True

        try:
            for _ in range(window):
                if not submit_next():
                    break
            while pending:
                index, future = pending.popleft()
                submit_next()
                try:
                    results.append(future.result())
                except Exception as exc:
                    # The call function never raises; the pool broke.
                    results.append(
                        CallResult(
                            index=index,
                            error_type=type(exc).__name__,
                            error_message=str(exc),
                        )
                    )
        finally:
            while pending:
                _, future = pending.popleft()
                future.cancel()
        return results

    def shutdown(
        self, wait: bool = True, cancel_pending: bool = True
    ) -> None:
        """Stop the pool: cancel queued jobs (``cancel_pending``), let
        in-flight jobs drain, and join the worker processes.  The pool
        can warm up again afterwards (a fresh executor on next use)."""
        with self._init_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait, cancel_futures=cancel_pending)

    def __enter__(self) -> "WarmPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown(wait=True, cancel_pending=True)


def lift_corpus_stream(
    engine,
    corpus: Sequence,
    *,
    jobs: Optional[int] = None,
    payload: str = "result",
    pretty: Optional[Callable] = None,
    collect_metrics: bool = False,
    collect_spans: bool = False,
    mp_context: Optional[str] = None,
    window: Optional[int] = None,
    pool: Optional[WarmPool] = None,
    cache_dir=None,
    chunk: Optional[int] = None,
) -> Iterator[BatchOutcome]:
    """Lift every program in ``corpus``, streaming outcomes back in
    submission order.

    ``engine`` is an engine spec (see :func:`_resolve_engine`'s
    docstring: a Confection, a ``(rules, stepper)`` pair, or a factory).
    ``corpus`` entries are :class:`LiftJob`, terms, or DSL source
    strings.  ``jobs`` is the worker-process count (default: CPU
    count); ``jobs=1`` runs in-process with no pool, bit-identical
    semantics.  ``payload`` selects what a :class:`BatchLifted` carries:
    the full ``result`` (default), just the ``rendered`` surface lines
    (smallest cross-process payload; requires ``pretty``), or ``both``.
    ``collect_spans`` additionally records each job's span tree under a
    batch-wide trace id (see the module docstring); merge the outcomes'
    ``spans`` with :func:`aggregate_trace`.  ``window`` bounds how many
    jobs are in flight at once (default ``4 * jobs``), so a long corpus
    never piles up in the call queue.

    ``cache_dir`` points every worker at one shared persistent
    :class:`~repro.cache.LiftCache` directory (only the path crosses
    the process boundary; each worker opens its own handle against the
    shared store).  ``chunk`` batches that many contiguous jobs per
    pool submission to amortize pickling and future overhead; the
    default is an automatic heuristic (:func:`_auto_chunk`) that keeps
    one-job submissions until the corpus is several windows deep.
    Chunking is invisible in results: outcomes still arrive one per
    job, in submission order, with per-job fault isolation.

    ``pool`` reuses an already-warm :class:`WarmPool` instead of
    building an ephemeral one: the pool's own engine and payload
    configuration govern the batch (``engine``/``jobs``/``payload``/
    ``pretty``/``collect_*``/``mp_context`` are ignored), and the pool
    stays warm afterwards.  Without it, workers are torn down — after
    draining the in-flight window and joining them, even on an early
    exit (see *Graceful shutdown* in the module docstring) — before the
    generator finishes.
    """
    if pool is not None:
        yield from pool.run(corpus, window=window)
        return
    owned = WarmPool(
        engine,
        jobs=jobs,
        payload=payload,
        pretty=pretty,
        collect_metrics=collect_metrics,
        collect_spans=collect_spans,
        mp_context=mp_context,
        cache_dir=cache_dir,
        chunk=chunk,
    )
    try:
        yield from owned.run(corpus, window=window)
    finally:
        owned.shutdown(wait=True, cancel_pending=True)


def lift_corpus(
    engine,
    corpus: Sequence,
    *,
    jobs: Optional[int] = None,
    payload: str = "result",
    pretty: Optional[Callable] = None,
    collect_metrics: bool = False,
    collect_spans: bool = False,
    mp_context: Optional[str] = None,
    window: Optional[int] = None,
    cache_dir=None,
    chunk: Optional[int] = None,
) -> List[BatchOutcome]:
    """Eagerly lift ``corpus`` and return outcomes in submission order
    (the list form of :func:`lift_corpus_stream`; same options)."""
    return list(
        lift_corpus_stream(
            engine,
            corpus,
            jobs=jobs,
            payload=payload,
            pretty=pretty,
            collect_metrics=collect_metrics,
            collect_spans=collect_spans,
            mp_context=mp_context,
            window=window,
            cache_dir=cache_dir,
            chunk=chunk,
        )
    )


def aggregate_metrics(outcomes) -> dict:
    """Merge the per-job metrics snapshots of a batch into one snapshot
    (equal to a single-process run's registry for the same corpus)."""
    from repro.obs.metrics import merge_snapshots

    return merge_snapshots(
        outcome.metrics
        for outcome in outcomes
        if isinstance(outcome, BatchLifted) and outcome.metrics is not None
    )


def aggregate_trace(outcomes) -> List[dict]:
    """Merge the per-job span records of a batch (collected with
    ``collect_spans=True``) into one coherent trace, in job-submission
    order — failed jobs contribute their partial spans too.  The result
    is a list of JSONL-schema record dicts, ready for
    :func:`repro.obs.export.write_trace` or
    :func:`repro.obs.export.build_tree`."""
    from repro.obs.export import merge_traces

    return merge_traces(
        outcome.spans
        for outcome in outcomes
        if getattr(outcome, "spans", None) is not None
    )
