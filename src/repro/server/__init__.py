"""Resugaring as a service: stream lift sessions to many clients.

The paper's deliverable is an *interactive* stepper — users watch the
surface evaluation sequence unfold — and interactivity at service scale
means a long-lived process multiplexing many concurrent sessions, each
receiving surface steps the moment the engine produces them.  This
package is that serving layer over the streaming engine:

* :class:`~repro.server.app.ReproServer` — the asyncio HTTP + WebSocket
  front end (``/lift``, ``/lift-batch``, ``/metrics``, ``/healthz``,
  ``/backends``);
* :mod:`~repro.server.protocol` — request validation, server-side
  budget clamping (budgets are the isolation boundary between
  sessions), and the NDJSON frame vocabulary;
* :mod:`~repro.server.sessions` — the session manager: admission
  control, backpressure-bounded frame queues, and the cooperative
  cancellation bridge into executor threads;
* :mod:`~repro.server.client` — blocking protocol clients for tests
  and CI.

The CLI front end is ``python -m repro serve``; ``docs/serving.md``
documents the protocol and the load-test methodology behind
``BENCH_serve.json``.  The server is a transport, never a semantics
fork: its streamed output is byte-identical to ``python -m repro
lift`` over the golden corpus (pinned by ``tests/server``).
"""

from repro.server.app import ReproServer
from repro.server.protocol import (
    BatchRequest,
    LiftRequest,
    ProtocolError,
    ServerLimits,
)
from repro.server.sessions import Session, SessionLimitError, SessionManager

__all__ = [
    "ReproServer",
    "ServerLimits",
    "LiftRequest",
    "BatchRequest",
    "ProtocolError",
    "Session",
    "SessionManager",
    "SessionLimitError",
]
