"""Blocking clients for the serving protocol (tests, CI smoke, tools).

These talk raw sockets so the tests exercise the real wire format —
chunked NDJSON and RFC 6455 frames — rather than a shortcut through the
server's internals.  :func:`lift_session` and :func:`lift_session_ws`
both return the decoded frame list for one session; byte-level access
(for the golden-equivalence guard) is :func:`lift_session_raw`.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, List, Optional, Tuple

from repro.server.http import parse_chunked
from repro.server.ws import (
    OP_CLOSE,
    OP_PING,
    OP_TEXT,
    encode_close,
    encode_text,
)

__all__ = [
    "request",
    "lift_session",
    "lift_session_raw",
    "lift_session_ws",
    "batch_session",
]


def _recv_all(sock: socket.socket) -> bytes:
    chunks = []
    while True:
        data = sock.recv(65536)
        if not data:
            return b"".join(chunks)
        chunks.append(data)


def _split_response(raw: bytes) -> Tuple[int, Dict[str, str], bytes]:
    head, _, rest = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    if headers.get("transfer-encoding") == "chunked":
        body, _complete = parse_chunked(rest)
    else:
        body = rest
    return status, headers, body


def request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: Optional[bytes] = None,
    timeout: float = 30.0,
) -> Tuple[int, Dict[str, str], bytes]:
    """One HTTP exchange; returns ``(status, headers, body)`` with any
    chunked body already decoded."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        payload = body or b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        sock.sendall(head + payload)
        return _split_response(_recv_all(sock))


def _frames(body: bytes) -> List[Dict[str, Any]]:
    return [
        json.loads(line)
        for line in body.decode("utf-8").splitlines()
        if line
    ]


def lift_session_raw(
    host: str, port: int, lift_request: Dict[str, Any], timeout: float = 30.0
) -> bytes:
    """One ``/lift`` session; the decoded NDJSON byte stream exactly as
    it crossed the wire."""
    status, _headers, body = request(
        host,
        port,
        "POST",
        "/lift",
        json.dumps(lift_request).encode("utf-8"),
        timeout=timeout,
    )
    if status != 200:
        raise RuntimeError(f"/lift returned {status}: {body[:200]!r}")
    return body


def lift_session(
    host: str, port: int, lift_request: Dict[str, Any], timeout: float = 30.0
) -> List[Dict[str, Any]]:
    """One ``/lift`` session over chunked HTTP, as decoded frames."""
    return _frames(lift_session_raw(host, port, lift_request, timeout))


def batch_session(
    host: str, port: int, batch_request: Dict[str, Any], timeout: float = 60.0
) -> List[Dict[str, Any]]:
    """One ``/lift-batch`` session, as decoded frames."""
    status, _headers, body = request(
        host,
        port,
        "POST",
        "/lift-batch",
        json.dumps(batch_request).encode("utf-8"),
        timeout=timeout,
    )
    if status != 200:
        raise RuntimeError(f"/lift-batch returned {status}: {body[:200]!r}")
    return _frames(body)


def _read_exact(sock: socket.socket, count: int) -> bytes:
    data = bytearray()
    while len(data) < count:
        part = sock.recv(count - len(data))
        if not part:
            raise ConnectionError("socket closed mid-frame")
        data += part
    return bytes(data)


def _read_ws_frame(sock: socket.socket) -> Tuple[int, bytes]:
    first = _read_exact(sock, 2)
    opcode = first[0] & 0x0F
    length = first[1] & 0x7F
    if length == 126:
        length = int.from_bytes(_read_exact(sock, 2), "big")
    elif length == 127:
        length = int.from_bytes(_read_exact(sock, 8), "big")
    payload = _read_exact(sock, length) if length else b""
    return opcode, payload


def lift_session_ws(
    host: str, port: int, lift_request: Dict[str, Any], timeout: float = 30.0
) -> List[Dict[str, Any]]:
    """One ``/lift`` session over WebSocket: handshake, send the request
    as the first text frame, collect one decoded frame per message until
    the server's close frame."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        key = "cmVwcm8td3Mta2V5LTEyMzQ="  # any base64 nonce
        sock.sendall(
            (
                f"GET /lift HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                f"Upgrade: websocket\r\n"
                f"Connection: Upgrade\r\n"
                f"Sec-WebSocket-Key: {key}\r\n"
                f"Sec-WebSocket-Version: 13\r\n\r\n"
            ).encode("latin-1")
        )
        # Read the 101 response head.
        head = bytearray()
        while not head.endswith(b"\r\n\r\n"):
            part = sock.recv(1)
            if not part:
                raise ConnectionError("handshake failed: socket closed")
            head += part
        status = int(head.decode("latin-1").split(" ")[1])
        if status != 101:
            raise RuntimeError(f"handshake failed: {status}")
        sock.sendall(
            encode_text(json.dumps(lift_request).encode("utf-8"), mask=True)
        )
        frames: List[Dict[str, Any]] = []
        while True:
            opcode, payload = _read_ws_frame(sock)
            if opcode == OP_CLOSE:
                sock.sendall(encode_close(mask=True))
                return frames
            if opcode == OP_PING:
                continue
            if opcode == OP_TEXT:
                frames.append(json.loads(payload.decode("utf-8")))
