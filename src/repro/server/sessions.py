"""Sessions: the bridge between blocking lift streams and the event loop.

One :class:`Session` per in-flight request.  The CPU-bound side — a
``lift_stream`` generator iterated on an executor thread — pushes frames
into the session's bounded :class:`asyncio.Queue` via
:meth:`Session.put_from_thread`; the asyncio side pops them and writes
to the socket.  The bounded queue is the backpressure boundary: a slow
client fills it, which blocks the *producer thread* (not the event
loop), which stops the stepper from racing ahead of the network.

Cancellation is cooperative and flows in the other direction.  A
generator being iterated by one thread cannot be ``close()``d from
another, so the session instead owns a :class:`threading.Event`; the
engine polls it once per core step through the ``should_stop`` hook of
:func:`repro.engine.stream.lift_stream`, and ``put_from_thread`` polls
it while blocked on a full queue.  Setting the event — on client
disconnect, shutdown, or timeout — therefore stops the producer within
one step or one poll interval, whichever side it is currently in.

Cancellation must also wake the *consumer*: once the flag is set,
``put_from_thread`` drops every frame including the :data:`DONE`
sentinel, so a handler parked in :meth:`Session.next_frame` would
otherwise wait forever (the shutdown deadlock: ``cancel_all`` during an
active session).  :meth:`Session.cancel` therefore schedules a
loop-side wake-up that guarantees a ``DONE`` lands in the queue,
evicting one undeliverable frame if the queue is full.

The :class:`SessionManager` enforces the ``max_sessions`` admission cap
(excess requests are *rejected* with a structured error, not queued
into oblivion) and keeps a registry of live sessions — the leak
assertions in ``tests/server`` check it drains to empty after every
scenario, including mid-stream disconnects.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import itertools
import threading
from typing import Any, Dict, Optional

from repro.obs.metrics import (
    SERVER_SESSIONS_ACTIVE,
    SERVER_SESSIONS_PEAK,
    SERVER_SESSIONS_REJECTED,
    SERVER_SESSIONS_STARTED,
)

__all__ = ["Session", "SessionManager", "SessionLimitError", "DONE"]

#: Sentinel the producer enqueues after its last frame; consumers stop
#: on identity (frames are dicts, never this object).
DONE = object()

#: How long ``put_from_thread`` blocks on a full queue before re-checking
#: the cancel event.  The worst-case latency between a client vanishing
#: and its producer thread noticing, when the producer is parked on
#: backpressure.
_PUT_POLL_SECONDS = 0.1


class SessionLimitError(RuntimeError):
    """The ``max_sessions`` admission cap is reached (an HTTP 503)."""


class Session:
    """One live lift session: a bounded frame queue plus a cancel flag.

    Created by :class:`SessionManager.open`; the asyncio side consumes
    :attr:`queue`, the producer thread calls :meth:`put_from_thread`.
    """

    def __init__(
        self,
        session_id: int,
        kind: str,
        loop: asyncio.AbstractEventLoop,
        maxsize: int,
    ) -> None:
        self.id = session_id
        self.kind = kind
        self._loop = loop
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=maxsize)
        self._cancel = threading.Event()

    # --- producer side (executor thread) -----------------------------

    def cancelled(self) -> bool:
        """The engine's ``should_stop`` hook (polled once per core
        step)."""
        return self._cancel.is_set()

    def put_from_thread(self, item: Any) -> bool:
        """Enqueue one frame from the producer thread, blocking under
        backpressure.  Returns ``False`` (dropping the frame) once the
        session is cancelled — the signal for the producer to stop."""
        if self._cancel.is_set():
            return False
        future = asyncio.run_coroutine_threadsafe(
            self.queue.put(item), self._loop
        )
        while True:
            try:
                future.result(timeout=_PUT_POLL_SECONDS)
                return True
            except concurrent.futures.TimeoutError:
                if self._cancel.is_set():
                    future.cancel()
                    return False
            except concurrent.futures.CancelledError:
                return False
            except RuntimeError:
                # The loop shut down underneath us mid-put.
                return False

    def finish_from_thread(self) -> None:
        """Mark the end of the stream (enqueues :data:`DONE`)."""
        self.put_from_thread(DONE)

    # --- consumer side (event loop) ----------------------------------

    def cancel(self) -> None:
        """Ask the producer to stop (idempotent; takes effect within one
        core step or one backpressure poll) and wake any consumer parked
        on the queue: a cancelled producer drops its :data:`DONE`, so
        the terminal sentinel is delivered from the loop side instead."""
        if self._cancel.is_set():
            return
        self._cancel.set()
        try:
            self._loop.call_soon_threadsafe(self._enqueue_done)
        except RuntimeError:
            pass  # the loop already shut down; nothing left to wake

    def _enqueue_done(self) -> None:
        """Loop-side: guarantee a :data:`DONE` lands so ``next_frame``
        returns.  The queue may be full of now-undeliverable frames —
        evict one to make room; nothing behind ``DONE`` is ever read."""
        try:
            self.queue.put_nowait(DONE)
        except asyncio.QueueFull:
            try:
                self.queue.get_nowait()
            except asyncio.QueueEmpty:
                pass
            try:
                self.queue.put_nowait(DONE)
            except asyncio.QueueFull:
                pass

    async def next_frame(self) -> Any:
        """The next frame, or :data:`DONE`."""
        return await self.queue.get()


class SessionManager:
    """Admission control plus the live-session registry.

    ``max_sessions`` bounds concurrently open sessions across all
    endpoints; ``queue_size`` is each session's frame-queue bound (the
    per-session backpressure window).
    """

    def __init__(self, max_sessions: int = 64, queue_size: int = 64) -> None:
        self.max_sessions = max_sessions
        self.queue_size = queue_size
        self._ids = itertools.count(1)
        self._active: Dict[int, Session] = {}
        self._peak = 0

    # --- registry ----------------------------------------------------

    @property
    def active_count(self) -> int:
        return len(self._active)

    @property
    def peak(self) -> int:
        return self._peak

    def active_sessions(self) -> Dict[int, Session]:
        """A snapshot of live sessions (test hook for leak assertions)."""
        return dict(self._active)

    # --- lifecycle ---------------------------------------------------

    def open(
        self,
        kind: str,
        loop: Optional[asyncio.AbstractEventLoop] = None,
    ) -> Session:
        """Admit one session or raise :class:`SessionLimitError`."""
        if len(self._active) >= self.max_sessions:
            SERVER_SESSIONS_REJECTED.inc()
            raise SessionLimitError(
                f"session limit reached ({self.max_sessions} active)"
            )
        session = Session(
            next(self._ids),
            kind,
            loop or asyncio.get_running_loop(),
            self.queue_size,
        )
        self._active[session.id] = session
        self._peak = max(self._peak, len(self._active))
        SERVER_SESSIONS_STARTED.inc()
        SERVER_SESSIONS_ACTIVE.set(len(self._active))
        SERVER_SESSIONS_PEAK.set(self._peak)
        return session

    def close(self, session: Session) -> None:
        """Retire a session (idempotent).  Always called from the
        handler's ``finally`` — a session missing from the registry
        afterwards is the no-leak guarantee the tests assert."""
        session.cancel()
        self._active.pop(session.id, None)
        SERVER_SESSIONS_ACTIVE.set(len(self._active))

    def cancel_all(self) -> None:
        """Shutdown path: ask every live producer to stop."""
        for session in list(self._active.values()):
            session.cancel()
