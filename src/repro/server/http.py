"""A deliberately small HTTP/1.1 layer over asyncio streams.

The server speaks just enough HTTP for its own protocol — request line,
headers, ``Content-Length`` bodies, fixed and ``chunked`` responses —
on the standard library alone (the no-new-dependencies constraint rules
out aiohttp et al.).  Streaming responses use chunked transfer encoding
with one flush per frame, so a surface step reaches the client the
moment the engine produces it; that per-frame flush is what the
time-to-first-step numbers in ``BENCH_serve.json`` measure.

Connections are single-request (``Connection: close``): session
streams are long-lived anyway, and one-shot connections keep the
handler lifecycle identical to the session lifecycle.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import urlsplit

__all__ = [
    "HttpError",
    "HttpRequest",
    "read_request",
    "write_response",
    "ChunkedWriter",
]

MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    503: "Service Unavailable",
    500: "Internal Server Error",
    101: "Switching Protocols",
}


class HttpError(Exception):
    """A malformed request; carries the status the server answers with."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    query: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    @property
    def wants_websocket(self) -> bool:
        return (
            "upgrade" in self.header("connection").lower()
            and self.header("upgrade").lower() == "websocket"
        )


async def read_request(reader: asyncio.StreamReader) -> Optional[HttpRequest]:
    """Parse one request from the stream; ``None`` on a clean EOF before
    any bytes, :class:`HttpError` on garbage."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request head")
    except asyncio.LimitOverrunError:
        raise HttpError(413, "request head too large")
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, "request head too large")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    split = urlsplit(target)

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "malformed Content-Length")
        if length < 0 or length > MAX_BODY_BYTES:
            raise HttpError(413, "request body too large")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "truncated request body")
    return HttpRequest(method, split.path, split.query, headers, body)


def _head(status: int, headers: Dict[str, str]) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def write_response(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: Optional[Dict[str, str]] = None,
) -> None:
    """One fixed-length response (always ``Connection: close``)."""
    headers = {
        "Content-Type": content_type,
        "Content-Length": str(len(body)),
        "Connection": "close",
    }
    if extra_headers:
        headers.update(extra_headers)
    writer.write(_head(status, headers) + body)
    await writer.drain()


class ChunkedWriter:
    """A chunked streaming response: one chunk (and one ``drain``) per
    frame, so backpressure from the socket propagates straight into the
    session queue."""

    def __init__(
        self,
        writer: asyncio.StreamWriter,
        content_type: str = "application/x-ndjson",
    ) -> None:
        self._writer = writer
        self._content_type = content_type
        self._started = False

    async def start(self, status: int = 200) -> None:
        self._writer.write(
            _head(
                status,
                {
                    "Content-Type": self._content_type,
                    "Transfer-Encoding": "chunked",
                    "Connection": "close",
                    "Cache-Control": "no-store",
                },
            )
        )
        await self._writer.drain()
        self._started = True

    async def send(self, payload: bytes) -> None:
        """One chunk, flushed.  Raises ``ConnectionError`` when the
        client is gone — the handler's cue to cancel the session."""
        self._writer.write(
            f"{len(payload):x}\r\n".encode("latin-1") + payload + b"\r\n"
        )
        await self._writer.drain()

    async def finish(self) -> None:
        if self._started:
            self._writer.write(b"0\r\n\r\n")
            await self._writer.drain()


def parse_chunked(data: bytes) -> Tuple[bytes, bool]:
    """Decode a chunked body from ``data`` (client-side helper).
    Returns ``(payload, complete)``."""
    out = bytearray()
    pos = 0
    while True:
        end = data.find(b"\r\n", pos)
        if end < 0:
            return bytes(out), False
        try:
            size = int(data[pos:end], 16)
        except ValueError:
            return bytes(out), False
        if size == 0:
            return bytes(out), True
        start = end + 2
        if len(data) < start + size + 2:
            return bytes(out), False
        out += data[start : start + size]
        pos = start + size + 2
