"""RFC 6455 WebSockets, the minimal server half.

The step-by-step stepper UI the paper envisions wants a push channel;
``/lift`` over WebSocket delivers exactly the NDJSON frames of the
chunked-HTTP stream, one frame per text message, then a close frame.
Only what the protocol needs is implemented: the ``Sec-WebSocket-Key``
handshake (version 13 only), unmasking of client frames (clients MUST
mask — the server enforces it), server text / close / pong frames, and
16-bit/64-bit extended payload lengths.  No extensions, no
fragmentation (frames are single NDJSON objects, far under the
fragmentation threshold), no compression.  What is not implemented is
*rejected*, not misparsed: a fragmented (FIN=0) frame, set RSV bits, an
unmasked client frame, or an oversized frame raises
:class:`FrameError`, which the server answers with close code 1002
instead of silently desynchronising the stream.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import struct
from typing import Optional, Tuple

from repro.server.http import HttpRequest

__all__ = [
    "accept_value",
    "handshake_response",
    "encode_text",
    "encode_close",
    "read_frame",
    "FrameError",
    "OP_TEXT",
    "OP_CLOSE",
    "OP_PING",
    "OP_PONG",
]


class FrameError(Exception):
    """A framing-level protocol violation by the peer (fragmentation,
    reserved bits, a missing mask, an oversized frame).  Callers answer
    with close code 1002 rather than attempting to re-synchronise."""

_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

MAX_FRAME_BYTES = 8 * 1024 * 1024


def accept_value(key: str) -> str:
    """``Sec-WebSocket-Accept`` for a client's ``Sec-WebSocket-Key``."""
    digest = hashlib.sha1((key + _GUID).encode("latin-1")).digest()
    return base64.b64encode(digest).decode("latin-1")


def handshake_response(request: HttpRequest) -> bytes:
    """The 101 response upgrading ``request``, or raises ``ValueError``
    when it is not a well-formed upgrade request."""
    key = request.header("sec-websocket-key")
    if not key:
        raise ValueError("missing Sec-WebSocket-Key")
    version = request.header("sec-websocket-version")
    if version is None or version.strip() != "13":
        raise ValueError(
            f"unsupported Sec-WebSocket-Version {version!r} (need 13)"
        )
    return (
        "HTTP/1.1 101 Switching Protocols\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Accept: {accept_value(key)}\r\n"
        "\r\n"
    ).encode("latin-1")


def _encode(opcode: int, payload: bytes, mask: bool = False) -> bytes:
    head = bytearray([0x80 | opcode])
    length = len(payload)
    if length < 126:
        head.append((0x80 if mask else 0) | length)
    elif length < 1 << 16:
        head.append((0x80 if mask else 0) | 126)
        head += struct.pack(">H", length)
    else:
        head.append((0x80 if mask else 0) | 127)
        head += struct.pack(">Q", length)
    if mask:
        # Client-side framing (used by the test/bench client).  A fixed
        # zero mask is valid per RFC 6455 — unpredictability guards
        # against proxy cache poisoning, irrelevant on loopback.
        head += b"\x00\x00\x00\x00"
    return bytes(head) + payload


def encode_text(payload: bytes, mask: bool = False) -> bytes:
    """One final text frame."""
    return _encode(OP_TEXT, payload, mask)


def encode_close(code: int = 1000, mask: bool = False) -> bytes:
    """A close frame with the given status code."""
    return _encode(OP_CLOSE, struct.pack(">H", code), mask)


def encode_ping(payload: bytes = b"", mask: bool = False) -> bytes:
    return _encode(OP_PING, payload, mask)


def encode_pong(payload: bytes, mask: bool = False) -> bytes:
    return _encode(OP_PONG, payload, mask)


async def read_frame(
    reader: asyncio.StreamReader,
    *,
    require_mask: bool = False,
) -> Optional[Tuple[int, bytes]]:
    """Read one frame, unmasking if needed; ``(opcode, payload)``, or
    ``None`` on EOF.

    ``require_mask`` is the server side of RFC 6455 §5.1 — client
    frames MUST be masked.  Violations (and FIN=0 fragmentation, RSV
    bits, oversized frames) raise :class:`FrameError` so the caller
    fails the connection with close 1002 instead of misparsing the
    byte stream."""
    try:
        first = await reader.readexactly(2)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    opcode = first[0] & 0x0F
    masked = bool(first[1] & 0x80)
    length = first[1] & 0x7F
    if not first[0] & 0x80:
        raise FrameError("fragmented frames (FIN=0) are not supported")
    if first[0] & 0x70:
        raise FrameError("RSV bits set without a negotiated extension")
    if require_mask and not masked:
        raise FrameError("client frames must be masked (RFC 6455 §5.1)")
    try:
        if length == 126:
            length = struct.unpack(">H", await reader.readexactly(2))[0]
        elif length == 127:
            length = struct.unpack(">Q", await reader.readexactly(8))[0]
        if length > MAX_FRAME_BYTES:
            raise FrameError(
                f"frame of {length} bytes exceeds the "
                f"{MAX_FRAME_BYTES}-byte cap"
            )
        mask_key = await reader.readexactly(4) if masked else b""
        payload = await reader.readexactly(length) if length else b""
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    if masked and payload:
        payload = bytes(
            b ^ mask_key[i % 4] for i, b in enumerate(payload)
        )
    return opcode, payload
