"""The wire protocol: lift requests in, NDJSON event frames out.

The server is a *transport*, never a semantics fork: every frame is a
direct image of a :mod:`repro.engine.events` event, and the ``text`` of
the ``step`` frames, joined with newlines, is byte-identical to what
``python -m repro lift`` prints for the same program and options (pinned
by the golden-equivalence tests).

A **lift request** is one JSON object::

    {"program": "(or (not #t) (not #f))",
     "lang": "lambda",            # backend name (default "lambda")
     "sugar": null,               # bundled sugar set (default: backend's)
     "transparent": false,        # lambda: transparent recursion marks
     "op": "naive",               # pyret: binary-operator desugaring
     "stepper": "refocus",        # core decomposition engine
     "tree": false,               # lift a nondeterministic tree instead
     "max_steps": 1000,           # step budget (nodes with tree=true)
     "max_seconds": 5.0,          # wall-clock budget
     "on_budget": "truncate",     # "truncate" (default) or "raise"
     "events": "surface"}         # "surface" (default) or "all"

Budgets are the isolation boundary: the server clamps each request's
budgets to its own caps (:class:`ServerLimits`), so one runaway program
cannot hold a session thread forever.  ``on_budget`` defaults to
``"truncate"`` server-side — a service should end a too-long session
with a well-formed partial trace, not an error.

**Frames** are one JSON object per line (NDJSON over HTTP chunked
responses; one frame per WebSocket text message):

``{"type": "step", "index": i, "text": "..."}``
    One surface evaluation step (a ``SurfaceEmitted`` event).  Tree
    lifts add ``node_id``/``parent_id`` so the client can rebuild the
    surface tree from the frames alone.
``{"type": "skipped", "index": i}`` / ``{"type": "deduped", "index": i}``
    Only with ``events: "all"`` — core steps with no (new) surface
    representation.
``{"type": "halted", "core_steps": n, "skipped": s, "emitted": e}``
    Terminal: evaluation finished.
``{"type": "budget", "budget": "steps", "limit": l, "core_steps": n,
"message": "..."}``
    Terminal: a budget ran out under ``"truncate"`` — everything
    streamed before it is a valid prefix of the full lift.
``{"type": "error", "error_type": "...", "error_message": "..."}``
    Terminal: the lift failed (including budget exhaustion under
    ``"raise"``).  Structured like a batch ``JobError`` — the
    connection is closed cleanly after the frame, never dropped.

Batch requests (``/lift-batch``) carry ``{"programs": [...], ...}``
with the same engine/budget fields, and stream one frame per job in
deterministic submission order: ``{"type": "job", "index": i, "steps":
[...]}`` or ``{"type": "job_error", "index": i, "error_type": ...,
"error_message": ...}``, closed by ``{"type": "batch_done", "jobs": n,
"failed": f}``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional

from repro.engine import events
from repro.engine.stream import ON_BUDGET_POLICIES
from repro.redex.reduction import STEPPER_MODES

__all__ = [
    "ProtocolError",
    "ServerLimits",
    "LiftRequest",
    "BatchRequest",
    "parse_lift_request",
    "parse_batch_request",
    "encode_frame",
    "error_frame",
    "FrameBuilder",
    "job_frames",
]

EVENT_MODES = ("surface", "all")


class ProtocolError(ValueError):
    """A malformed or out-of-contract request (an HTTP 400, never a
    server fault)."""


@dataclass(frozen=True)
class ServerLimits:
    """Server-side budget caps: the isolation boundary between sessions.

    Every request's ``max_steps``/``max_seconds`` is clamped to these
    caps (and the wall-clock cap applies even when the request asks for
    no budget at all), so a runaway program is truncated or errored by
    the engine's own budget machinery instead of monopolising a session
    thread.
    """

    max_steps_cap: int = 100_000
    max_seconds_cap: Optional[float] = 30.0

    def clamp_steps(self, requested: Optional[int]) -> int:
        if requested is None:
            return self.max_steps_cap
        return min(int(requested), self.max_steps_cap)

    def clamp_seconds(self, requested: Optional[float]) -> Optional[float]:
        if requested is None:
            return self.max_seconds_cap
        if self.max_seconds_cap is None:
            return float(requested)
        return min(float(requested), self.max_seconds_cap)


@dataclass(frozen=True)
class LiftRequest:
    """One validated, budget-clamped lift session request."""

    program: str
    lang: str = "lambda"
    sugar: Optional[str] = None
    transparent: bool = False
    op: str = "naive"
    stepper: str = "refocus"
    tree: bool = False
    max_steps: int = 100_000
    max_seconds: Optional[float] = None
    on_budget: str = "truncate"
    events: str = "surface"

    @property
    def engine_key(self) -> tuple:
        """The engine-cache key: requests with equal keys share rules."""
        return (self.lang, self.sugar, self.transparent, self.op)

    def backend_options(self) -> Dict[str, Any]:
        return {
            "transparent_recursion": self.transparent,
            "op_desugaring": self.op,
        }

    def lift_kwargs(self) -> Dict[str, Any]:
        """Keyword arguments for ``Confection.lift_stream`` /
        ``lift_tree_stream`` (budget names differ between the two)."""
        kwargs: Dict[str, Any] = dict(
            max_seconds=self.max_seconds,
            on_budget=self.on_budget,
            stepper_mode=self.stepper,
        )
        if self.tree:
            kwargs["max_nodes"] = self.max_steps
        else:
            kwargs["max_steps"] = self.max_steps
        return kwargs


@dataclass(frozen=True)
class BatchRequest:
    """One validated ``/lift-batch`` request: N programs, one engine."""

    programs: tuple
    lang: str = "lambda"
    sugar: Optional[str] = None
    transparent: bool = False
    op: str = "naive"
    max_steps: int = 100_000
    max_seconds: Optional[float] = None
    on_budget: str = "truncate"

    @property
    def engine_key(self) -> tuple:
        return (self.lang, self.sugar, self.transparent, self.op)

    def backend_options(self) -> Dict[str, Any]:
        return {
            "transparent_recursion": self.transparent,
            "op_desugaring": self.op,
        }


def _require(payload: Mapping, key: str, kind, what: str):
    value = payload.get(key)
    if not isinstance(value, kind) or (kind is str and not value):
        raise ProtocolError(f"{key!r} must be {what}")
    return value


def _choice(payload: Mapping, key: str, choices, default):
    value = payload.get(key, default)
    if value not in choices:
        raise ProtocolError(
            f"{key!r} must be one of {', '.join(map(repr, choices))}"
        )
    return value


def _flag(payload: Mapping, key: str) -> bool:
    value = payload.get(key, False)
    if not isinstance(value, bool):
        raise ProtocolError(f"{key!r} must be a boolean")
    return value


def _budget_fields(payload: Mapping, limits: ServerLimits) -> Dict[str, Any]:
    max_steps = payload.get("max_steps")
    if max_steps is not None and (
        not isinstance(max_steps, int) or max_steps < 1
    ):
        raise ProtocolError("'max_steps' must be a positive integer")
    max_seconds = payload.get("max_seconds")
    if max_seconds is not None and (
        not isinstance(max_seconds, (int, float)) or max_seconds <= 0
    ):
        raise ProtocolError("'max_seconds' must be a positive number")
    return dict(
        max_steps=limits.clamp_steps(max_steps),
        max_seconds=limits.clamp_seconds(max_seconds),
        on_budget=_choice(
            payload, "on_budget", ON_BUDGET_POLICIES, "truncate"
        ),
    )


def _decode_json(raw: bytes) -> Mapping:
    try:
        payload = json.loads(raw)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"request body is not valid JSON: {exc}")
    if not isinstance(payload, Mapping):
        raise ProtocolError("request body must be a JSON object")
    return payload


def _sugar(payload: Mapping) -> Optional[str]:
    sugar = payload.get("sugar")
    if sugar is not None and not isinstance(sugar, str):
        raise ProtocolError("'sugar' must be a string or null")
    return sugar


def parse_lift_request(
    raw: bytes, limits: ServerLimits, backends
) -> LiftRequest:
    """Decode, validate, and budget-clamp one ``/lift`` request body.

    ``backends`` is the set of resolvable backend names (from
    :func:`repro.engine.registry.available_backends`).  Raises
    :class:`ProtocolError` on any malformed field — the caller turns
    that into a 400 with an ``error`` frame.
    """
    payload = _decode_json(raw)
    return LiftRequest(
        program=_require(payload, "program", str, "a non-empty string"),
        lang=_choice(payload, "lang", tuple(backends), "lambda"),
        sugar=_sugar(payload),
        transparent=_flag(payload, "transparent"),
        op=_choice(payload, "op", ("naive", "object"), "naive"),
        stepper=_choice(payload, "stepper", STEPPER_MODES, "refocus"),
        tree=_flag(payload, "tree"),
        events=_choice(payload, "events", EVENT_MODES, "surface"),
        **_budget_fields(payload, limits),
    )


def parse_batch_request(
    raw: bytes, limits: ServerLimits, backends
) -> BatchRequest:
    """Decode, validate, and budget-clamp one ``/lift-batch`` body."""
    payload = _decode_json(raw)
    programs = payload.get("programs")
    if (
        not isinstance(programs, list)
        or not programs
        or not all(isinstance(p, str) and p for p in programs)
    ):
        raise ProtocolError(
            "'programs' must be a non-empty list of program strings"
        )
    return BatchRequest(
        programs=tuple(programs),
        lang=_choice(payload, "lang", tuple(backends), "lambda"),
        sugar=_sugar(payload),
        transparent=_flag(payload, "transparent"),
        op=_choice(payload, "op", ("naive", "object"), "naive"),
        **_budget_fields(payload, limits),
    )


def encode_frame(frame: Mapping[str, Any]) -> bytes:
    """One NDJSON line: compact JSON, stable key order, ``\\n``-closed."""
    return (
        json.dumps(frame, separators=(",", ":"), sort_keys=True) + "\n"
    ).encode("utf-8")


def error_frame(error_type: str, message: str) -> Dict[str, Any]:
    """The terminal frame of a failed session (a wire-level
    :class:`~repro.engine.events.JobError`)."""
    return {
        "type": "error",
        "error_type": error_type,
        "error_message": message,
    }


@dataclass
class FrameBuilder:
    """Fold a lift-event stream into wire frames, with the same
    bookkeeping the CLI keeps (core/skipped/emitted counts feed the
    terminal ``halted`` frame).

    ``pretty`` is the backend's renderer — called in the producer
    thread, so rendering cost never lands on the event loop.  With
    ``include_all`` the builder also emits ``skipped``/``deduped``
    frames; by default only displayable steps cross the wire.
    """

    pretty: Any
    include_all: bool = False
    core: int = 0
    skipped: int = 0
    emitted: int = 0
    terminal: Optional[Dict[str, Any]] = field(default=None)

    def frames_for(self, event: events.LiftEvent) -> Iterator[Dict[str, Any]]:
        if isinstance(event, events.CoreStepped):
            self.core += 1
        elif isinstance(event, events.SurfaceEmitted):
            self.emitted += 1
            frame: Dict[str, Any] = {
                "type": "step",
                "index": event.core_index,
                "text": self.pretty(event.surface_term),
            }
            if event.node_id is not None:
                frame["node_id"] = event.node_id
                frame["parent_id"] = event.parent_id
            yield frame
        elif isinstance(event, events.StepSkipped):
            self.skipped += 1
            if self.include_all:
                yield {"type": "skipped", "index": event.core_index}
        elif isinstance(event, events.Deduped):
            if self.include_all:
                yield {"type": "deduped", "index": event.core_index}
        elif isinstance(event, events.Halted):
            self.terminal = {
                "type": "halted",
                "core_steps": event.core_step_count,
                "skipped": self.skipped,
                "emitted": self.emitted,
            }
            yield self.terminal
        elif isinstance(event, events.BudgetExhausted):
            self.terminal = {
                "type": "budget",
                "budget": event.budget,
                "limit": event.limit,
                "core_steps": event.core_step_count,
                "message": event.describe(),
            }
            yield self.terminal


def job_frames(outcome, names: Optional[List[str]] = None) -> Dict[str, Any]:
    """One ``/lift-batch`` frame per batch outcome (submission order is
    the pool's guarantee, not re-sorted here)."""
    if isinstance(outcome, events.JobError):
        frame: Dict[str, Any] = {
            "type": "job_error",
            "index": outcome.job_index,
            "error_type": outcome.error_type,
            "error_message": outcome.error_message,
        }
    else:
        frame = {
            "type": "job",
            "index": outcome.job_index,
            "steps": list(outcome.rendered or ()),
        }
    if names is not None:
        frame["name"] = names[outcome.job_index]
    return frame
