"""The server: resugaring sessions over asyncio HTTP + WebSocket.

:class:`ReproServer` is the long-lived face of the engine — the
``repro serve`` CLI wraps it, the load test drives it, and the paper's
interactive stepper would sit on top of it.  The design splits each
session across the two worlds that must not block each other:

* **Event loop** — accepts connections, parses requests, writes frames.
  Never steps a program and never renders a term.
* **Executor threads** — iterate ``lift_stream`` (or a
  :class:`~repro.parallel.WarmPool` batch) and render frames, pushing
  them through the session's bounded queue
  (:mod:`repro.server.sessions`).  One thread per live session; a
  thread blocked on backpressure costs nothing.

Isolation between sessions is the engine's own budget machinery:
request budgets are clamped to :class:`~repro.server.protocol.
ServerLimits` caps, so a runaway program ends in a ``budget`` or
``error`` frame while its neighbours keep streaming (the load test
asserts the p99 time-to-first-step of well-behaved sessions survives
runaway neighbours).  Abandoned sessions stop promptly through the
``should_stop`` cancellation hook — a disconnect is noticed at the next
socket write, the cancel flag is set, and the producer thread exits
within one core step.

Endpoints::

    GET  /healthz     liveness (also reports active session count)
    GET  /metrics     Prometheus text exposition of the metrics registry
    GET  /backends    registered language backends and their sugar sets
    POST /lift        one lift session, NDJSON over chunked HTTP
    GET  /lift        same protocol over WebSocket (request = first text
                      frame; one NDJSON frame per message, then close)
    POST /lift-batch  corpus batch via the warm pool, one frame per job
                      in deterministic submission order

Engine state is cached across requests: rule tables per
``(lang, sugar, options)`` key, and one warm worker pool per key for
batches — a request pays rule construction and worker warm-up only the
first time its configuration is seen.
"""

from __future__ import annotations

import asyncio
import json
import socket as socket_module
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Awaitable, Callable, Dict, Optional, Tuple

from repro.confection import Confection
from repro.core.errors import ReproError
from repro.engine import events
from repro.engine.registry import available_backends, get_backend
from repro.obs.metrics import (
    SERVER_FRAMES_SENT,
    SERVER_REQUESTS,
    SERVER_SESSIONS_CANCELLED,
    SERVER_SESSIONS_ERRORED,
    SERVER_TTFS_SECONDS,
    render_prometheus,
)
from repro.parallel import LiftJob, WarmPool
from repro.server import http, ws
from repro.server.http import ChunkedWriter, HttpError, HttpRequest
from repro.server.protocol import (
    BatchRequest,
    FrameBuilder,
    LiftRequest,
    ProtocolError,
    ServerLimits,
    encode_frame,
    error_frame,
    job_frames,
    parse_batch_request,
    parse_lift_request,
)
from repro.server.sessions import (
    DONE,
    SessionLimitError,
    SessionManager,
)

__all__ = ["ReproServer"]

SendFrame = Callable[[bytes], Awaitable[None]]


class ReproServer:
    """One serving process: a socket, a session manager, warm engines.

    ``jobs`` sizes the batch worker pool (1 = in-process batches, the
    default — lift sessions always run on threads and are unaffected).
    ``max_sessions`` caps concurrently live sessions; requests beyond it
    get a structured 503, and it also sizes the session thread pool.
    ``limits`` are the server-side budget caps clamped onto every
    request.

    ``shutdown_grace`` bounds how long :meth:`aclose` waits for live
    connection handlers after cancelling their producers; handlers
    still running past it (e.g. parked on a write to a stalled client)
    are cancelled, so shutdown terminates even with misbehaving peers.

    ``stream_buffer_bytes`` bounds per-connection write buffering (the
    transport's high-water mark and the socket's ``SO_SNDBUF``).  With
    OS defaults a slow client can park a couple of hundred kilobytes of
    frames in kernel buffers before backpressure ever reaches the
    session queue; a small bound makes a stalled client block the
    producer within a few frames instead — which is what lets the load
    test hold hundreds of sessions open concurrently while their
    producers sit idle.  ``None`` keeps OS defaults.

    ``cache_dir`` attaches a persistent :class:`~repro.cache.LiftCache`
    (shared across sessions, and with batch workers via their
    :class:`~repro.parallel.WarmPool`): a repeated lift request replays
    its recorded frames instead of re-stepping.  See ``docs/caching.md``.

    Use as an async context manager (binds on enter, drains on exit) or
    via :meth:`start` / :meth:`aclose`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        jobs: int = 1,
        max_sessions: int = 64,
        queue_size: int = 64,
        limits: Optional[ServerLimits] = None,
        stream_buffer_bytes: Optional[int] = None,
        shutdown_grace: float = 5.0,
        cache_dir=None,
    ) -> None:
        self.host = host
        self.port = port
        self.jobs = jobs
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            from repro.cache import LiftCache

            # One handle per server: in-process sessions share it (and
            # its hydration bookkeeping); batch workers re-open their
            # own against the same directory (only the path crosses the
            # process boundary).
            self._lift_cache = LiftCache(self.cache_dir)
        else:
            self._lift_cache = None
        self.limits = limits or ServerLimits()
        self.stream_buffer_bytes = stream_buffer_bytes
        self.shutdown_grace = shutdown_grace
        self.manager = SessionManager(max_sessions, queue_size)
        self._executor = ThreadPoolExecutor(
            max_workers=max_sessions + 2, thread_name_prefix="repro-lift"
        )
        self._rules_cache: Dict[tuple, object] = {}
        self._pools: Dict[tuple, WarmPool] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._handlers: set = set()

    # --- lifecycle ---------------------------------------------------

    async def start(self) -> "ReproServer":
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def aclose(self) -> None:
        """Graceful shutdown: stop accepting, cancel live producers,
        wake and drain their handlers, drain the thread pool, reap
        batch workers.

        Cancelling a session delivers its terminal ``DONE`` from the
        loop side (:meth:`~repro.server.sessions.Session.cancel`), so
        handlers parked on a frame queue finish on their own; handlers
        that still have not returned after ``shutdown_grace`` seconds —
        e.g. blocked writing to a stalled client — are cancelled, so
        ``aclose`` terminates even with sessions active."""
        if self._server is not None:
            self._server.close()
        self.manager.cancel_all()
        handlers = {task for task in self._handlers if not task.done()}
        if handlers:
            _done, pending = await asyncio.wait(
                handlers, timeout=self.shutdown_grace
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.wait(pending, timeout=self.shutdown_grace)
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None
        await asyncio.get_running_loop().run_in_executor(
            None, self._shutdown_workers
        )

    def _shutdown_workers(self) -> None:
        self._executor.shutdown(wait=True)
        for pool in self._pools.values():
            pool.shutdown(wait=True, cancel_pending=True)
        self._pools.clear()

    async def __aenter__(self) -> "ReproServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # --- engine cache ------------------------------------------------

    def _make_engine(self, request) -> Tuple[Confection, object]:
        """A Confection for this request's configuration: cached rules,
        fresh stepper (steppers are per-session; rule tables are the
        expensive shared part)."""
        backend = get_backend(request.lang)
        key = request.engine_key
        rules = self._rules_cache.get(key)
        if rules is None:
            rules = backend.make_rules(
                request.sugar, **request.backend_options()
            )
            self._rules_cache[key] = rules
        return (
            Confection(rules, backend.make_stepper(), cache=self._lift_cache),
            backend,
        )

    def _make_pool(self, request: BatchRequest) -> Tuple[WarmPool, object]:
        backend = get_backend(request.lang)
        key = request.engine_key
        pool = self._pools.get(key)
        if pool is None:
            rules = self._rules_cache.get(key)
            if rules is None:
                rules = backend.make_rules(
                    request.sugar, **request.backend_options()
                )
                self._rules_cache[key] = rules
            pool = WarmPool(
                (rules, backend.make_stepper()),
                jobs=self.jobs,
                payload="rendered",
                pretty=backend.pretty,
                cache_dir=self.cache_dir,
            )
            self._pools[key] = pool
        return pool, backend

    # --- connection handling -----------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Registered so aclose() can bound-wait (then cancel) live
        # handlers; Server.wait_closed alone either ignores them (3.11)
        # or waits forever on them (3.12+).
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        try:
            await self._serve_connection(reader, writer)
        finally:
            if task is not None:
                self._handlers.discard(task)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self.stream_buffer_bytes is not None:
            writer.transport.set_write_buffer_limits(
                high=self.stream_buffer_bytes
            )
            sock = writer.get_extra_info("socket")
            if sock is not None:
                sock.setsockopt(
                    socket_module.SOL_SOCKET,
                    socket_module.SO_SNDBUF,
                    self.stream_buffer_bytes,
                )
        try:
            try:
                request = await http.read_request(reader)
            except HttpError as exc:
                await http.write_response(
                    writer,
                    exc.status,
                    encode_frame(error_frame("HttpError", str(exc))),
                )
                return
            if request is None:
                return
            SERVER_REQUESTS.inc()
            await self._route(request, reader, writer)
        except (ConnectionError, asyncio.CancelledError):
            # Dead peer or forced teardown (shutdown grace expired):
            # drop buffered writes — a stalled client's full receive
            # window must not block the graceful close below.
            transport = writer.transport
            if transport is not None:
                transport.abort()
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(
        self,
        request: HttpRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        route = (request.method, request.path)
        if route == ("GET", "/healthz"):
            await http.write_response(
                writer,
                200,
                encode_frame(
                    {
                        "status": "ok",
                        "active_sessions": self.manager.active_count,
                    }
                ),
            )
        elif route == ("GET", "/metrics"):
            await http.write_response(
                writer,
                200,
                render_prometheus().encode("utf-8"),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
        elif route == ("GET", "/backends"):
            await http.write_response(writer, 200, self._backends_body())
        elif route == ("POST", "/lift"):
            await self._handle_lift_http(request, writer)
        elif route == ("GET", "/lift") and request.wants_websocket:
            await self._handle_lift_ws(request, reader, writer)
        elif route == ("POST", "/lift-batch"):
            await self._handle_batch_http(request, writer)
        elif request.path in ("/lift", "/lift-batch"):
            await http.write_response(
                writer,
                405,
                encode_frame(
                    error_frame(
                        "MethodNotAllowed",
                        f"{request.method} not supported on {request.path}",
                    )
                ),
            )
        else:
            await http.write_response(
                writer,
                404,
                encode_frame(
                    error_frame("NotFound", f"no route {request.path!r}")
                ),
            )

    def _backends_body(self) -> bytes:
        info = {}
        for name in available_backends():
            backend = get_backend(name)
            info[name] = {
                "sugars": list(backend.sugar_names),
                "default_sugar": backend.default_sugar,
                "description": backend.description,
            }
        return json.dumps(info, indent=2, sort_keys=True).encode("utf-8")

    # --- /lift over chunked HTTP -------------------------------------

    async def _handle_lift_http(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> None:
        try:
            lift_request = parse_lift_request(
                request.body, self.limits, available_backends()
            )
            confection, backend = self._make_engine(lift_request)
        except (ProtocolError, ReproError) as exc:
            await http.write_response(
                writer,
                400,
                encode_frame(error_frame(type(exc).__name__, str(exc))),
            )
            return

        chunked = ChunkedWriter(writer)

        async def send(frame: bytes) -> None:
            await chunked.send(frame)

        try:
            session = self.manager.open("lift")
        except SessionLimitError as exc:
            await http.write_response(
                writer,
                503,
                encode_frame(error_frame("SessionLimitError", str(exc))),
            )
            return
        try:
            await chunked.start()
            await self._stream_session(
                session, lift_request, confection, backend, send
            )
            await chunked.finish()
        except (ConnectionError, OSError):
            SERVER_SESSIONS_CANCELLED.inc()
        finally:
            self.manager.close(session)

    # --- /lift over WebSocket ----------------------------------------

    async def _handle_lift_ws(
        self,
        request: HttpRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            writer.write(ws.handshake_response(request))
            await writer.drain()
        except ValueError as exc:
            await http.write_response(
                writer,
                400,
                encode_frame(error_frame("HandshakeError", str(exc))),
            )
            return

        try:
            frame = await ws.read_frame(reader, require_mask=True)
            while frame is not None and frame[0] == ws.OP_PING:
                writer.write(ws.encode_pong(frame[1]))
                await writer.drain()
                frame = await ws.read_frame(reader, require_mask=True)
        except ws.FrameError:
            frame = None
        if frame is None or frame[0] != ws.OP_TEXT:
            writer.write(ws.encode_close(1002))
            await writer.drain()
            return

        async def send(payload: bytes) -> None:
            writer.write(ws.encode_text(payload))
            await writer.drain()

        try:
            lift_request = parse_lift_request(
                frame[1], self.limits, available_backends()
            )
            confection, backend = self._make_engine(lift_request)
        except (ProtocolError, ReproError) as exc:
            await send(
                encode_frame(error_frame(type(exc).__name__, str(exc)))
            )
            writer.write(ws.encode_close(1008))
            await writer.drain()
            return

        try:
            session = self.manager.open("lift")
        except SessionLimitError as exc:
            await send(
                encode_frame(error_frame("SessionLimitError", str(exc)))
            )
            writer.write(ws.encode_close(1013))
            await writer.drain()
            return
        # Keep reading the client while streaming: answer pings, and
        # treat CLOSE / EOF / protocol violations as a disconnect so a
        # polite close cancels the session promptly instead of waiting
        # for backpressure plus a failed write to surface it.
        reader_task = asyncio.ensure_future(
            self._ws_reader(reader, writer, session)
        )
        try:
            await self._stream_session(
                session, lift_request, confection, backend, send
            )
            writer.write(ws.encode_close(1000))
            # A finished reader means the client already closed or broke
            # the protocol — it may have stopped reading too, so the
            # close echo is best-effort (draining could park forever on
            # its full receive window).
            if not reader_task.done():
                await writer.drain()
        except (ConnectionError, OSError):
            SERVER_SESSIONS_CANCELLED.inc()
        finally:
            self.manager.close(session)
            reader_task.cancel()
            await asyncio.gather(reader_task, return_exceptions=True)

    async def _ws_reader(self, reader, writer, session) -> None:
        """The client-to-server half of a streaming WebSocket.  Pong
        writes skip ``drain()`` — the send loop owns the transport's
        single drain waiter, and a pong is a handful of bytes."""
        while True:
            try:
                frame = await ws.read_frame(reader, require_mask=True)
            except ws.FrameError:
                break
            if frame is None or frame[0] == ws.OP_CLOSE:
                break
            if frame[0] == ws.OP_PING:
                writer.write(ws.encode_pong(frame[1]))
            # Mid-stream text/pong/binary frames are ignored.
        if not session.cancelled():
            session.cancel()
            # The peer is done with the stream (CLOSE, EOF, or a
            # protocol violation): buffered frames are undeliverable,
            # so abort rather than drain them — which also unparks a
            # send loop blocked on the peer's full receive window (the
            # resulting ConnectionError is counted there).
            transport = writer.transport
            if transport is not None:
                transport.abort()

    # --- the session core --------------------------------------------

    async def _stream_session(
        self,
        session,
        lift_request: LiftRequest,
        confection: Confection,
        backend,
        send: SendFrame,
    ) -> None:
        """Produce on a thread, consume on the loop, record TTFS.

        Raises ``ConnectionError``/``OSError`` out to the caller when
        the client vanishes (after cancelling the producer)."""
        loop = asyncio.get_running_loop()
        started = time.monotonic()
        builder = FrameBuilder(
            backend.pretty, include_all=lift_request.events == "all"
        )

        def produce() -> None:
            try:
                program = backend.parse(lift_request.program)
                make_stream = (
                    confection.lift_tree_stream
                    if lift_request.tree
                    else confection.lift_stream
                )
                stream = make_stream(
                    program,
                    should_stop=session.cancelled,
                    **lift_request.lift_kwargs(),
                )
                for event in stream:
                    for frame in builder.frames_for(event):
                        if not session.put_from_thread(frame):
                            return
            except Exception as exc:  # noqa: BLE001 — becomes a frame
                SERVER_SESSIONS_ERRORED.inc()
                session.put_from_thread(
                    error_frame(type(exc).__name__, str(exc))
                )
            finally:
                session.finish_from_thread()

        producer = loop.run_in_executor(self._executor, produce)
        first_step_seen = False
        try:
            while True:
                frame = await session.next_frame()
                if frame is DONE:
                    break
                if not first_step_seen and frame.get("type") == "step":
                    first_step_seen = True
                    SERVER_TTFS_SECONDS.observe(time.monotonic() - started)
                await send(encode_frame(frame))
                SERVER_FRAMES_SENT.inc()
        finally:
            # Either the stream finished or the client vanished; in both
            # cases stop the producer and wait for it to land (bounded:
            # the cancel flag is polled every core step and every 0.1 s
            # of backpressure).
            session.cancel()
            await producer

    # --- /lift-batch --------------------------------------------------

    async def _handle_batch_http(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> None:
        try:
            batch_request = parse_batch_request(
                request.body, self.limits, available_backends()
            )
            pool, backend = self._make_pool(batch_request)
        except (ProtocolError, ReproError) as exc:
            await http.write_response(
                writer,
                400,
                encode_frame(error_frame(type(exc).__name__, str(exc))),
            )
            return

        try:
            session = self.manager.open("batch")
        except SessionLimitError as exc:
            await http.write_response(
                writer,
                503,
                encode_frame(error_frame("SessionLimitError", str(exc))),
            )
            return

        def produce() -> None:
            try:
                jobs_list = [
                    LiftJob(
                        backend.parse(program),
                        name=f"programs[{index}]",
                        max_steps=batch_request.max_steps,
                        max_seconds=batch_request.max_seconds,
                        on_budget=batch_request.on_budget,
                    )
                    for index, program in enumerate(batch_request.programs)
                ]
                failed = 0
                stream = pool.run(jobs_list)
                try:
                    for outcome in stream:
                        if isinstance(outcome, events.JobError):
                            failed += 1
                        if not session.put_from_thread(job_frames(outcome)):
                            return
                finally:
                    stream.close()
                session.put_from_thread(
                    {
                        "type": "batch_done",
                        "jobs": len(jobs_list),
                        "failed": failed,
                    }
                )
            except Exception as exc:  # noqa: BLE001 — becomes a frame
                SERVER_SESSIONS_ERRORED.inc()
                session.put_from_thread(
                    error_frame(type(exc).__name__, str(exc))
                )
            finally:
                session.finish_from_thread()

        loop = asyncio.get_running_loop()
        chunked = ChunkedWriter(writer)
        producer = loop.run_in_executor(self._executor, produce)
        try:
            await chunked.start()
            while True:
                frame = await session.next_frame()
                if frame is DONE:
                    break
                await chunked.send(encode_frame(frame))
                SERVER_FRAMES_SENT.inc()
            await chunked.finish()
        except (ConnectionError, OSError):
            SERVER_SESSIONS_CANCELLED.inc()
        finally:
            session.cancel()
            await producer
            self.manager.close(session)
