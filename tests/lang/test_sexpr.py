"""Tests for the s-expression reader/writer."""

import pytest

from repro.core.errors import ParseError
from repro.core.terms import Symbol
from repro.lang.sexpr import read_sexpr, read_sexprs, write_sexpr


class TestRead:
    def test_atoms(self):
        assert read_sexpr("42") == 42
        assert read_sexpr("-1.5") == -1.5
        assert read_sexpr("#t") is True
        assert read_sexpr("#f") is False
        assert read_sexpr('"hi"') == "hi"
        assert read_sexpr("foo") == Symbol("foo")

    def test_nested_lists(self):
        assert read_sexpr("(let ((x 1)) x)") == [
            Symbol("let"),
            [[Symbol("x"), 1]],
            Symbol("x"),
        ]

    def test_square_brackets(self):
        assert read_sexpr("[1 2]") == [1, 2]

    def test_multiple_expressions(self):
        assert read_sexprs("1 2 (3)") == [1, 2, [3]]

    def test_comments(self):
        assert read_sexpr("(a ; comment\n b)") == [Symbol("a"), Symbol("b")]

    def test_unbalanced(self):
        with pytest.raises(ParseError):
            read_sexpr("(a (b)")
        with pytest.raises(ParseError):
            read_sexpr("a)")

    def test_exactly_one_required(self):
        with pytest.raises(ParseError):
            read_sexpr("1 2")

    def test_string_escapes(self):
        assert read_sexpr(r'"a\"b"') == 'a"b'

    def test_operator_symbols(self):
        assert read_sexpr("(+ 1 2)") == [Symbol("+"), 1, 2]
        assert read_sexpr("call/cc") == Symbol("call/cc")


class TestWrite:
    def test_roundtrip(self):
        for source in (
            "(let ((x 1)) (+ x 2))",
            '(if #t "yes" "no")',
            "(f)",
            "3",
        ):
            expr = read_sexpr(source)
            assert read_sexpr(write_sexpr(expr)) == expr

    def test_bool_is_not_int(self):
        assert write_sexpr(True) == "#t"
        assert write_sexpr(1) == "1"
