"""Unit tests for generic term rendering."""

from repro.core.tags import transparent
from repro.core.terms import (
    BodyTag,
    Const,
    HeadTag,
    Node,
    PList,
    PVar,
    Symbol,
    Tagged,
)
from repro.lang.render import render


class TestPlainRendering:
    def test_constants(self):
        assert render(Const(42)) == "42"
        assert render(Const(2.5)) == "2.5"
        assert render(Const(True)) == "true"
        assert render(Const(False)) == "false"
        assert render(Const(None)) == "none"
        assert render(Const("hi")) == '"hi"'
        assert render(Const(float("inf"))) == "infinity"
        assert render(Const(float("-inf"))) == "-infinity"

    def test_string_escaping(self):
        assert render(Const('a"b')) == '"a\\"b"'
        assert render(Const("a\\b")) == '"a\\\\b"'

    def test_symbols_keep_their_backtick(self):
        assert render(Const(Symbol("x"))) == "`x"

    def test_variables(self):
        assert render(PVar("xs")) == "xs"

    def test_nodes_and_lists(self):
        t = Node("Pair", (Const(1), PList((Const(2), Const(3)))))
        assert render(t) == "Pair(1, [2, 3])"

    def test_zero_arity_node(self):
        assert render(Node("Empty", ())) == "Empty()"

    def test_ellipsis(self):
        p = PList((PVar("x"),), PVar("ys"))
        assert render(p) == "[x, ys ...]"


class TestTagRendering:
    def test_head_tag(self):
        t = Tagged(HeadTag(3), Const(1))
        assert render(t) == "{#3: 1}"

    def test_opaque_body_tag(self):
        t = Tagged(BodyTag(False), Const(1))
        assert render(t) == "⟨1⟩"

    def test_transparent_body_tag(self):
        t = transparent(Node("Foo", ()))
        assert render(t) == "!⟨Foo()⟩"

    def test_show_tags_false_hides_everything(self):
        t = Tagged(
            HeadTag(0),
            Node("Foo", (Tagged(BodyTag(True), Const(1)),)),
        )
        assert render(t, show_tags=False) == "Foo(1)"
