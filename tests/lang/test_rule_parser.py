"""Tests for the rule-definition DSL parser."""

import pytest
from hypothesis import given

from repro.core.errors import ParseError, WellFormednessError
from repro.core.terms import (
    BodyTag,
    Const,
    Node,
    PList,
    PVar,
    Symbol,
    Tagged,
)
from repro.lang.render import render
from repro.lang.rule_parser import (
    parse_pattern,
    parse_rulelist,
    parse_rules,
    parse_term,
)

from tests.strategies import linear_patterns, terms


class TestPatterns:
    def test_variable(self):
        assert parse_pattern("x") == PVar("x")

    def test_zero_arity_node(self):
        assert parse_pattern("Empty") == Node("Empty", ())
        assert parse_pattern("Empty()") == Node("Empty", ())

    def test_node_with_children(self):
        assert parse_pattern("Pair(x, 1)") == Node("Pair", (PVar("x"), Const(1)))

    def test_nested(self):
        assert parse_pattern("If(Id(\"t\"), a, B())") == Node(
            "If", (Node("Id", (Const("t"),)), PVar("a"), Node("B", ()))
        )

    def test_list(self):
        assert parse_pattern("[1, x]") == PList((Const(1), PVar("x")))

    def test_empty_list(self):
        assert parse_pattern("[]") == PList(())

    def test_ellipsis(self):
        assert parse_pattern("[x, ys ...]") == PList((PVar("x"),), PVar("ys"))

    def test_ellipsis_alone(self):
        assert parse_pattern("[ys ...]") == PList((), PVar("ys"))

    def test_nested_ellipsis(self):
        p = parse_pattern("[State(n, [a ...]) ...]")
        assert p == PList(
            (), Node("State", (PVar("n"), PList((), PVar("a"))))
        )

    def test_constants(self):
        assert parse_pattern("42") == Const(42)
        assert parse_pattern("-3") == Const(-3)
        assert parse_pattern("2.5") == Const(2.5)
        assert parse_pattern("true") == Const(True)
        assert parse_pattern("false") == Const(False)
        assert parse_pattern("none") == Const(None)
        assert parse_pattern("infinity") == Const(float("inf"))
        assert parse_pattern("-infinity") == Const(float("-inf"))

    def test_string_with_escapes(self):
        assert parse_pattern(r'"a\"b"') == Const('a"b')

    def test_symbol(self):
        assert parse_pattern("`foo") == Const(Symbol("foo"))

    def test_transparency_mark(self):
        p = parse_pattern("!Or([x])")
        assert isinstance(p, Tagged)
        assert p.tag == BodyTag(transparent=True)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_pattern("x y")

    def test_unbalanced_rejected(self):
        with pytest.raises(ParseError):
            parse_pattern("Foo(x")

    def test_comments_skipped(self):
        rules = parse_rules(
            """
            # binary or
            Or([x, y]) -> Pair(x, y);  // trailing comment
            """
        )
        assert len(rules) == 1


class TestTerms:
    def test_parse_term_accepts_ground(self):
        assert parse_term("Pair(1, [2])") == Node(
            "Pair", (Const(1), PList((Const(2),)))
        )

    def test_parse_term_rejects_variables(self):
        with pytest.raises(ParseError):
            parse_term("Pair(x, 1)")

    def test_parse_term_rejects_ellipses(self):
        with pytest.raises(ParseError):
            parse_term("Pair([1 ...], 2)")


class TestRules:
    def test_rule_with_arrow_and_semicolon(self):
        rules = parse_rules('Not(x) -> If(x, False_(), True_());')
        assert len(rules) == 1
        assert rules[0].label == "Not"

    def test_multiple_rules(self):
        rules = parse_rules(
            """
            A(x) -> B(x);
            C(x) -> D(x);
            """
        )
        assert [r.label for r in rules] == ["A", "C"]

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_rules("A(x) -> B(x)")

    def test_illformed_rule_rejected_at_parse(self):
        with pytest.raises(WellFormednessError):
            parse_rules("A(x) -> B(y);")

    def test_parse_rulelist_runs_disjointness(self):
        from repro.core.errors import DisjointnessError
        from repro.core.wellformed import DisjointnessMode

        src = """
        Max([]) -> Raise("empty");
        Max(xs) -> MaxAcc(xs, -infinity);
        """
        with pytest.raises(DisjointnessError):
            parse_rulelist(src, DisjointnessMode.STRICT)


class TestRenderRoundTrip:
    @given(linear_patterns())
    def test_patterns_roundtrip(self, pattern):
        assert parse_pattern(render(pattern)) == pattern

    @given(terms(max_leaves=10))
    def test_terms_roundtrip(self, term):
        assert parse_term(render(term)) == term
