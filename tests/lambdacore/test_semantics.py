"""Unit tests for the stateful lambda core language."""

import pytest

from repro.core.errors import StuckError
from repro.core.terms import BodyTag, Const, Node, Tagged
from repro.lambdacore import (
    app,
    idref,
    lam,
    make_semantics,
    num,
    parse_program,
    pretty,
)
from repro.redex import MachineState


@pytest.fixture(scope="module")
def sem():
    return make_semantics()


def run(sem, source):
    return pretty(sem.normal_form(parse_program(source)))


class TestValues:
    def test_constants_are_values(self, sem):
        assert sem.is_value(num(3))
        assert sem.is_value(Const("s"))
        assert sem.is_value(Const(True))

    def test_lambdas_are_values(self, sem):
        assert sem.is_value(lam("x", idref("x")))

    def test_tagged_values(self, sem):
        assert sem.is_value(Tagged(BodyTag(), lam("x", idref("x"))))

    def test_applications_are_not_values(self, sem):
        assert not sem.is_value(app(lam("x", idref("x")), num(1)))

    def test_cells_are_values(self, sem):
        assert sem.is_value(Node("Cell", (Const("x"),)))


class TestEvaluation:
    def test_arithmetic(self, sem):
        assert run(sem, "(+ 1 (* 2 3))") == "7"
        assert run(sem, "(- 10 4)") == "6"
        assert run(sem, "(/ 9 3)") == "3.0"

    def test_comparison(self, sem):
        assert run(sem, "(< 1 2)") == "#t"
        assert run(sem, "(>= 2 2)") == "#t"
        assert run(sem, "(= 1 2)") == "#f"

    def test_beta(self, sem):
        assert run(sem, "((lambda (x) (+ x 1)) 41)") == "42"

    def test_shadowing(self, sem):
        assert run(sem, "((lambda (x) ((lambda (x) x) 2)) 1)") == "2"

    def test_if(self, sem):
        assert run(sem, "(if #t 1 2)") == "1"
        assert run(sem, "(if #f 1 2)") == "2"

    def test_if_does_not_evaluate_untaken_branch(self, sem):
        # The untaken branch would be stuck if evaluated.
        assert run(sem, '(if #t 1 (+ 1 "oops"))') == "1"

    def test_sequencing(self, sem):
        assert run(sem, "(begin 1 2 3)") == "3"

    def test_string_ops(self, sem):
        assert run(sem, '(first "abc")') == '"a"'
        assert run(sem, '(rest "abc")') == '"bc"'
        assert run(sem, '(empty? "")') == "#t"
        assert run(sem, '(equal? "a" "a")') == "#t"
        assert run(sem, '(string-append "ab" "cd")') == '"abcd"'

    def test_not_and_zero(self, sem):
        assert run(sem, "(not #f)") == "#t"
        assert run(sem, "(zero? 0)") == "#t"

    def test_stuck_on_type_error(self, sem):
        with pytest.raises(StuckError):
            sem.normal_form(parse_program('(+ 1 "two")'))

    def test_stuck_on_unbound_variable(self, sem):
        with pytest.raises(StuckError):
            sem.normal_form(parse_program("nonexistent-variable"))

    def test_stuck_on_applying_non_function(self, sem):
        with pytest.raises(StuckError):
            sem.normal_form(parse_program("(1 2)"))


class TestMutation:
    def test_set_and_read(self, sem):
        assert run(sem, "((lambda (x) (begin (set! x 10) (+ x 1))) 1)") == "11"

    def test_unassigned_parameter_substitutes_by_value(self, sem):
        states = sem.trace(parse_program("((lambda (x) (+ x 1)) 5)"))
        # One beta step straight to (+ 5 1): no cell machinery.
        assert pretty(states[1].term) == "(+ 5 1)"

    def test_assigned_parameter_becomes_named_cell(self, sem):
        states = sem.trace(
            parse_program("((lambda (x) (begin (set! x 2) x)) 1)")
        )
        assert "setcell" in pretty(states[1].term)
        assert states[-1].term == num(2)

    def test_set_returns_void(self, sem):
        assert run(sem, "((lambda (x) (set! x 9)) 1)") == "<void>"

    def test_cell_names_stay_readable(self, sem):
        program = parse_program(
            "((lambda (counter) (begin (set! counter 1) (+ counter 1))) 0)"
        )
        shown = [pretty(s.term) for s in sem.trace(program)]
        assert any("(+ counter 1)" in s for s in shown)

    def test_fresh_cell_names_on_reentry(self, sem):
        # Applying the same assigning function twice must not share cells.
        source = """
        ((lambda (f) (+ (f 1) (f 10)))
         (lambda (x) (begin (set! x (+ x 1)) x)))
        """
        assert run(sem, source) == "13"

    def test_set_on_free_variable_creates_global_cell(self, sem):
        assert run(sem, "(begin (set! g 5) (g-ref))" if False else
                   "(begin (set! g 5) (+ g 1))") == "6"


class TestCallCC:
    def test_escape(self, sem):
        assert run(sem, "(call/cc (lambda (k) (+ 1 (k 42))))") == "42"

    def test_unused_continuation(self, sem):
        assert run(sem, "(call/cc (lambda (k) 7))") == "7"

    def test_continuation_restores_context(self, sem):
        assert run(sem, "(+ 1 (call/cc (lambda (k) (k 5))))") == "6"

    def test_continuation_discards_context(self, sem):
        # The (* 100 _) around the invocation is discarded.
        assert (
            run(sem, "(+ 1 (call/cc (lambda (k) (* 100 (k 5)))))") == "6"
        )


class TestAmb:
    def test_amb_branches(self, sem):
        states, edges = sem.trace_tree(parse_program("(amb 1 (+ 1 1))"))
        finals = [s.term for s in states if not sem.step(s)]
        assert num(1) in finals and num(2) in finals

    def test_amb_choices_unevaluated_until_chosen(self, sem):
        (left, right) = sem.step(
            MachineState(parse_program("(amb (+ 1 1) (+ 2 2))"))
        )
        assert pretty(left.term) == "(+ 1 1)"
        assert pretty(right.term) == "(+ 2 2)"


class TestSyntaxRoundTrip:
    def test_pretty_inverts_parse(self, sem):
        for source in (
            "(+ 1 2)",
            "((lambda (x) x) 1)",
            "(if #t 1 2)",
            "(begin 1 2)",
            '(let ((x 1) (y 2)) (+ x y))',
            "(letrec ((f 1)) f)",
            "(or 1 2 3)",
            "(and #t #f)",
            "(cond ((< 1 2) 1) (else 2))",
            "(function (x y) (+ x y))",
            "(thunk 3)",
            "(force f)",
            "(return 3)",
            "(when #t 1)",
            "(amb 1 2)",
            '(set! x 3)',
        ):
            term = parse_program(source)
            assert parse_program(pretty(term)) == term

    def test_automaton_roundtrip(self, sem):
        source = (
            '(automaton init (init : ("c" -> more)) '
            '(more : ("a" -> more) accept))'
        )
        term = parse_program(source)
        assert parse_program(pretty(term)) == term
