"""Edge cases for the lambda language's s-expression syntax."""

import pytest

from repro.core.errors import ParseError
from repro.lambdacore import parse_program, pretty


class TestErrors:
    @pytest.mark.parametrize(
        "source, fragment",
        [
            ("()", "empty application"),
            ("(lambda (x y) x)", "single-argument"),
            ("(lambda x x)", "single-argument"),
            ("(if #t 1)", "expected 3"),
            ("(let ((x)) x)", "(name expr)"),
            ("(let x 1)", "binding list"),
            ("(set! 1 2)", "identifier"),
            ("(cond (1 2 3))", "(test expr)"),
            ("(begin)", "at least one"),
            ("(amb)", "at least one choice"),
            ("(f)", "needs an argument"),
            ('(automaton a (a : ("x" => b)))', "bad arm"),
        ],
    )
    def test_error_mentions_problem(self, source, fragment):
        with pytest.raises(ParseError) as exc:
            parse_program(source)
        assert fragment in str(exc.value)

    def test_unbalanced_parens(self):
        with pytest.raises(ParseError):
            parse_program("(+ 1 2")
        with pytest.raises(ParseError):
            parse_program("+ 1 2)")


class TestShapes:
    def test_curried_application(self):
        term = parse_program("(f a b c)")
        # ((f a) b) c — three nested Apps.
        assert term.label == "App"
        assert term.children[0].label == "App"

    def test_apply_is_application(self):
        assert parse_program("(apply f x)") == parse_program("(f x)")

    def test_nil_is_a_value_form(self):
        assert parse_program("nil").label == "Nil"

    def test_prims_are_ops_not_applications(self):
        assert parse_program("(+ 1 2)").label == "Op"
        assert parse_program("(unknown-fn 1 2)").label == "App"

    def test_shadowing_prims_is_not_possible_textually(self):
        # (+ ...) always parses as the primitive; this is a documented
        # simplification of the surface syntax.
        term = parse_program("((lambda (x) (+ x 1)) 2)")
        body = term.children[0].children[1]
        assert body.label == "Op"

    def test_multiline_sources(self):
        term = parse_program(
            """
            (let ((x 1)
                  (y 2))   ; a comment
              (+ x y))
            """
        )
        assert term.label == "Let"

    def test_roundtrip_with_lists_and_while(self):
        for source in (
            "(list 1 (+ 1 1))",
            "(cons 1 nil)",
            "(while (< 0 n) (set! n (- n 1)))",
            '(automaton a (a : ("x" -> b)) (b : accept))',
        ):
            term = parse_program(source)
            assert parse_program(pretty(term)) == term
