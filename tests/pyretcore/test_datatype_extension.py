"""Tests for the datatype extension (beyond the paper).

Figure 5 marks ``datatype`` as not expressible; the paper suggests it
"could be expressed by adding a block construct that does not introduce
a new scope".  Our store-based ``DefRec`` is such a construct, and
``make_pyret_rules(with_datatype=True)`` enables the sugar.
"""

import pytest

from repro.confection import Confection
from repro.core.errors import ParseError
from repro.pyretcore import make_stepper, parse_program, pretty
from repro.sugars.pyret_sugars import make_pyret_rules

SHAPES = """
datatype Shape:
  | circle(r)
  | square(s)
end
{body}
"""


@pytest.fixture(scope="module")
def conf():
    return Confection(make_pyret_rules(with_datatype=True), make_stepper())


def run(conf, body):
    program = parse_program(SHAPES.replace("{body}", body))
    result = conf.lift(program)
    return [pretty(t) for t in result.surface_sequence], result


class TestParsing:
    def test_datatype_structure(self):
        term = parse_program(SHAPES.replace("{body}", "1"))
        assert term.label == "Datatype"
        assert [v.children[0].value for v in term.children[1].items] == [
            "circle",
            "square",
        ]

    def test_pretty_roundtrip(self):
        term = parse_program(SHAPES.replace("{body}", "circle(1)"))
        assert parse_program(pretty(term)) == term

    def test_empty_datatype_rejected(self):
        with pytest.raises(ParseError):
            parse_program("datatype Void: end 1")

    def test_datatype_must_scope_over_something(self):
        with pytest.raises(ParseError):
            parse_program("datatype Shape: | circle(r) end")


class TestEvaluation:
    def test_constructors_build_data_values(self, conf):
        shown, _ = run(conf, "circle(5)")
        assert shown[-1] == "circle(5)"

    def test_zero_field_variants(self, conf):
        program = parse_program(
            "datatype Light: | red() | green() end green()"
        )
        result = conf.lift(program)
        assert pretty(result.surface_sequence[-1]) == "green()"

    def test_cases_dispatches_on_datatype(self, conf):
        shown, _ = run(
            conf,
            "cases(Shape) circle(5): "
            "| circle(r) => r | square(s) => 0 end",
        )
        assert shown[-1] == "5"

    def test_cases_else_on_datatype(self, conf):
        shown, _ = run(
            conf,
            "cases(Shape) square(3): | circle(r) => r | else => 99 end",
        )
        assert shown[-1] == "99"

    def test_area_example_trace(self, conf):
        shown, result = run(
            conf,
            "fun area(shape): cases(Shape) shape: "
            "| circle(r) => 3 * (r * r) | square(s) => s * s end end "
            "area(circle(5)) + area(square(2))",
        )
        assert shown[-1] == "79"
        assert "area(circle(5)) + area(square(2))" in shown
        # The constructor functions and _match dispatch stay hidden.
        assert not any("_match" in s or "%temp" in s for s in shown)
        assert result.skipped_count > result.shown_count

    def test_recursive_datatype(self, conf):
        shown, _ = run(
            conf,
            """
            fun depth(t):
              cases(Shape) t:
                | circle(r) => 1
                | square(s) => 1 + depth(s)
              end
            end
            depth(square(square(circle(0))))
            """,
        )
        assert shown[-1] == "3"

    def test_arity_mismatch_is_stuck(self, conf):
        from repro.core.errors import StuckError
        from repro.pyretcore import make_semantics

        sem = make_semantics()
        core = conf.desugar(
            parse_program(SHAPES.replace("{body}", "circle(1, 2)"))
        )
        with pytest.raises(StuckError):
            sem.normal_form(core)


class TestFaithfulModeStillRejects:
    def test_default_rules_do_not_include_datatype(self):
        conf = Confection(make_pyret_rules(), make_stepper())
        # Without the extension, the Datatype node is no rule's LHS: the
        # core gets stuck on the unexpanded surface node.
        program = parse_program(SHAPES.replace("{body}", "1"))
        result = conf.lift(program)
        last = pretty(result.surface_sequence[-1])
        assert last != "1"  # never reached the body
