"""Parser edge cases and error reporting for the Pyret-subset syntax."""

import pytest

from repro.core.errors import ParseError
from repro.pyretcore import parse_program, pretty


class TestErrorMessages:
    @pytest.mark.parametrize(
        "source, fragment",
        [
            ("", "empty block"),
            ("fun f(x): x end", "ends its block"),
            ("fun f(x) x end 1", "expected ':'"),
            ("fun f(x): x 1", "expected 'end'"),
            ("cases(List) x: | => 1 end", "constructor"),
            ("_ + _", "at most one operand"),
            ("{x 1}", "expected ':'"),
            ("1 +", "unexpected"),
            ("datatype D: end 1", "at least one variant"),
        ],
    )
    def test_message_mentions_problem(self, source, fragment):
        with pytest.raises(ParseError) as exc:
            parse_program(source)
        assert fragment in str(exc.value)

    def test_line_numbers_in_errors(self):
        with pytest.raises(ParseError, match="line 3"):
            parse_program("1\n2\nfun f(x) x end")


class TestNesting:
    def test_cases_inside_cases(self):
        source = (
            "cases(List) [1]: "
            "| empty() => 0 "
            "| link(f, r) => cases(List) r: | empty() => f "
            "| link(g, s) => g end end"
        )
        term = parse_program(source)
        assert parse_program(pretty(term)) == term

    def test_fun_inside_obj_field(self):
        term = parse_program('{"f": fun(x): x end}')
        assert parse_program(pretty(term)) == term

    def test_deeply_nested_parens(self):
        term = parse_program("(((((1)))))")
        assert pretty(term) == "(((((1)))))"

    def test_if_inside_operator(self):
        term = parse_program("(if true: 1 else: 2 end) + 3")
        assert parse_program(pretty(term)) == term

    def test_chained_postfix(self):
        term = parse_program('{"a": {"b": 7}}.a.b')
        assert parse_program(pretty(term)) == term

    def test_bracket_with_expression_key(self):
        term = parse_program('o.["a" + "b"]')
        assert parse_program(pretty(term)) == term


class TestStatementForms:
    def test_multiple_let_statements(self):
        term = parse_program("x = 1 y = x + 1 x + y")
        assert term.label == "LetDecl"

    def test_equality_not_confused_with_binding(self):
        # `x == 1` is a comparison, not a binding.
        term = parse_program("x == 1")
        assert term.label == "Op"

    def test_block_keyword(self):
        term = parse_program("block: 1 2 end")
        assert term.label == "Block"

    def test_comments_ignored(self):
        term = parse_program("# a comment\n1 + 2 # trailing\n")
        assert term.label == "Op"

    def test_mixed_declarations_scope_in_order(self):
        source = """
        fun double(n): n * 2 end
        x = double(4)
        datatype Box: | box(v) end
        cases(Box) box(x): | box(v) => v end
        """
        term = parse_program(source)
        assert term.label == "FunDecl"


class TestLexical:
    def test_names_with_hyphens(self):
        term = parse_program("is-empty(1)")
        assert pretty(term) == "is-empty(1)"

    def test_float_literals(self):
        assert pretty(parse_program("2.5")) == "2.5"

    def test_string_escapes(self):
        term = parse_program(r'"say \"hi\""')
        assert parse_program(pretty(term)) == term

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            parse_program("1 ~ 2")
