"""Tests for the Pyret-like core, its syntax, and the Figure 5 sugars."""

import pytest

from repro.confection import Confection
from repro.core.errors import ParseError, StuckError
from repro.pyretcore import make_semantics, make_stepper, parse_program, pretty
from repro.sugars.pyret_sugars import (
    FIGURE_5_ROWS,
    make_pyret_rules,
)


@pytest.fixture(scope="module")
def sem():
    return make_semantics()


@pytest.fixture(scope="module")
def conf():
    return Confection(make_pyret_rules(), make_stepper())


def final(conf, source):
    result = conf.lift(parse_program(source))
    return pretty(result.surface_sequence[-1])


def steps(conf, source):
    result = conf.lift(parse_program(source))
    return [pretty(t) for t in result.surface_sequence]


class TestParser:
    def test_literals(self):
        assert pretty(parse_program("42")) == "42"
        assert pretty(parse_program("true")) == "true"
        assert pretty(parse_program('"hi"')) == '"hi"'
        assert pretty(parse_program("nothing")) == "nothing"

    def test_roundtrip_core_shapes(self):
        for source in (
            "f(1, 2)",
            'o.["x"]',
            "o.x",
            "o:x",
            "[1, 2, 3]",
            "1 + 2",
            "not true",
            "(1 + 2)",
            "x ^ f(2)",
            "for map(x from lst): x + 1 end",
            "when true: 1 end",
            "if true: 1 else: 2 end",
            "fun(x): x end",
        ):
            term = parse_program(source)
            assert parse_program(pretty(term)) == term

    def test_fun_decl_structure(self):
        term = parse_program("fun f(x): x end f(1)")
        assert term.label == "FunDecl"

    def test_cases_structure(self):
        term = parse_program(
            "cases(List) x: | empty() => 0 | link(f, r) => 1 end"
        )
        assert term.label == "Cases"
        assert len(term.children[2].items) == 2

    def test_cases_else(self):
        term = parse_program("cases(List) x: | empty() => 0 | else => 9 end")
        assert term.label == "CasesElse"

    def test_op_currying(self):
        assert parse_program("_ + 3").label == "OpCurryL"
        assert parse_program("3 + _").label == "OpCurryR"

    def test_app_currying(self):
        assert parse_program("f(_, 3)").label == "CurryAppL"
        assert parse_program("f(3, _)").label == "CurryAppR"
        assert parse_program("f(_)").label == "CurryApp1"

    def test_double_blank_rejected(self):
        with pytest.raises(ParseError):
            parse_program("_ + _")

    def test_empty_block_rejected(self):
        with pytest.raises(ParseError):
            parse_program("")

    def test_declaration_must_have_scope(self):
        with pytest.raises(ParseError):
            parse_program("fun f(x): x end")


class TestCoreSemantics:
    def test_arithmetic_methods(self, conf):
        assert final(conf, "1 + 2") == "3"
        assert final(conf, "7 - 2") == "5"
        assert final(conf, "3 * 4") == "12"
        assert final(conf, "1 < 2") == "true"
        assert final(conf, "2 <= 1") == "false"
        assert final(conf, "2 == 2") == "true"

    def test_string_methods(self, conf):
        assert final(conf, '"ab" + "cd"') == '"abcd"'
        assert final(conf, '"x" == "x"') == "true"

    def test_not(self, conf):
        assert final(conf, "not true") == "false"
        assert final(conf, "not (1 < 2)") == "false"

    def test_objects(self, conf):
        assert final(conf, '{"x": 1, "y": 2}.["x"]') == "1"
        assert final(conf, '{"x": 1 + 1}.["x"]') == "2"

    def test_missing_field_is_stuck(self, sem):
        from repro.sugars.pyret_sugars import make_pyret_rules
        from repro.core.desugar import desugar

        core = desugar(make_pyret_rules(), parse_program('{"x": 1}.["y"]'))
        with pytest.raises(StuckError):
            sem.normal_form(core)

    def test_lambda_application(self, conf):
        assert final(conf, "fun(x, y): x + y end(3, 4)") == "7"

    def test_arity_mismatch_stuck(self, sem):
        from repro.core.desugar import desugar

        core = desugar(make_pyret_rules(), parse_program("fun(x): x end(1, 2)"))
        with pytest.raises(StuckError):
            sem.normal_form(core)

    def test_let_statement(self, conf):
        assert final(conf, "x = 5 x + 1") == "6"

    def test_blocks_sequence(self, conf):
        assert final(conf, "1 2 3") == "3"

    def test_raise_aborts(self, conf):
        assert final(conf, 'raise("boom")') == 'error: "boom"'
        assert final(conf, '1 + raise("boom")') == 'error: "boom"'

    def test_lists(self, conf):
        assert final(conf, '[1, 2].["first"]') == "1"
        assert final(conf, '[1, 2].["rest"]') == "[2]"


class TestSection4:
    LEN = """
    fun len(x):
      cases(List) x:
        | empty() => 0
        | link(f, tail) => len(tail) + 1
      end
    end
    len([1, 2])
    """

    def test_len_trace_shape(self, conf):
        shown = steps(conf, self.LEN)
        assert shown[-1] == "2"
        assert "len([1, 2])" in shown
        assert any(s.startswith("cases(List) [1, 2]:") for s in shown)
        assert any(s.startswith("cases(List) [2]:") for s in shown)
        assert any(s.startswith("cases(List) []:") for s in shown)
        assert "0 + 1 + 1" in shown
        assert "1 + 1" in shown

    def test_len_hides_core_machinery(self, conf):
        shown = steps(conf, self.LEN)
        # The _match dispatch, branch objects, and temp bindings never
        # leak into the surface trace (Abstraction).
        assert not any("_match" in s or "%temp" in s for s in shown)

    def test_substantial_hiding(self, conf):
        result = conf.lift(parse_program(self.LEN))
        assert result.skipped_count > result.shown_count


class TestSection83BinOps:
    def test_naive_desugaring_skips_intermediate(self):
        conf = Confection(make_pyret_rules("naive"), make_stepper())
        shown = steps(conf, "1 + (2 + 3)")
        assert shown == ["1 + (2 + 3)", "6"]

    def test_figure_6_desugaring_shows_intermediate(self):
        conf = Confection(make_pyret_rules("object"), make_stepper())
        shown = steps(conf, "1 + (2 + 3)")
        assert shown == ["1 + (2 + 3)", "1 + 5", "6"]

    def test_both_desugarings_agree_on_results(self):
        for source in ("1 + 2 * 3", "(1 + 2) * 3", "10 - 2 - 3"):
            results = []
            for mode in ("naive", "object"):
                conf = Confection(make_pyret_rules(mode), make_stepper())
                results.append(final(conf, source))
            assert results[0] == results[1]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            make_pyret_rules("fancy")


class TestFigure5Sugars:
    """One probe program per implemented Figure 5 row."""

    PROBES = {
        "fun": ("fun f(x): x + 1 end f(4)", "5"),
        "when": ("when 1 < 2: 9 end", "9"),
        "if": ("if 1 > 2: 1 else if 2 > 1: 2 else: 3 end", "2"),
        "cases": (
            "cases(List) [7]: | empty() => 0 | link(f, r) => f end",
            "7",
        ),
        "cases-else": (
            "cases(List) []: | link(f, r) => f | else => 99 end",
            "99",
        ),
        "for": (
            "fun apply2(f, v): f(v) end "
            "for apply2(x from 10): x + 5 end",
            "15",
        ),
        "op": ("2 * 21", "42"),
        "not": ("not false", "true"),
        "paren": ("(((5)))", "5"),
        "left-app": ("fun add(a, b): a + b end 1 ^ add(2)", "3"),
        "list": ('[1, 2, 3].["rest"]', "[2, 3]"),
        "dot": ('{"x": 8}.x', "8"),
        "colon": ('{"x": 8}:x', "8"),
        "(currying)": ("(_ + 3)(4)", "7"),
    }

    @pytest.mark.parametrize("row", [r for r in FIGURE_5_ROWS if r[2]])
    def test_implemented_row(self, conf, row):
        name = row[0]
        source, expected = self.PROBES[name]
        assert final(conf, source) == expected

    def test_unimplemented_rows_are_graph_and_datatype(self):
        missing = [name for name, _, ok in FIGURE_5_ROWS if not ok]
        assert missing == ["graph", "datatype"]

    def test_currying_variants(self, conf):
        assert final(conf, "(3 + _)(4)") == "7"
        assert final(conf, "fun add(a, b): a + b end add(_, 2)(5)") == "7"
        assert final(conf, "fun add(a, b): a + b end add(2, _)(5)") == "7"
        assert final(conf, "fun inc(a): a + 1 end inc(_)(5)") == "6"

    def test_when_false_is_nothing(self, conf):
        assert final(conf, "when 1 > 2: 9 end") == "nothing"

    def test_if_without_else_raises_when_unmatched(self, conf):
        assert final(conf, "if 1 > 2: 1 end").startswith("error:")

    def test_cases_without_match_raises(self, conf):
        out = final(
            conf, "cases(List) []: | link(f, r) => f end"
        )
        assert out == 'error: "cases: no cases matched"'


class TestRecursion:
    def test_mutual_recursion_via_fun_decls(self, conf):
        source = """
        fun even(n):
          if n == 0: true else: odd(n - 1) end
        end
        fun odd(n):
          if n == 0: false else: even(n - 1) end
        end
        even(10)
        """
        assert final(conf, source) == "true"

    def test_sum_list(self, conf):
        source = """
        fun sum(x):
          cases(List) x:
            | empty() => 0
            | link(f, r) => f + sum(r)
          end
        end
        sum([1, 2, 3, 4])
        """
        assert final(conf, source) == "10"


class TestSection4Desugaring:
    """The paper prints the *full desugaring* of the len program
    (section 4); check our core term has the same moving parts."""

    def test_desugared_len_matches_papers_shape(self, conf):
        from repro.core.terms import strip_tags
        from repro.lang.render import render

        core = conf.desugar(parse_program(TestSection4.LEN))
        text = render(strip_tags(core))
        # "the cases expression desugars into an application of the
        # matchee's _match method on an object containing code for each
        # branch"
        assert '"_match"' in text
        assert '"empty"' in text and '"link"' in text
        # "...and an else thunk that raises"
        assert "cases: no cases matched" in text
        # "the function declaration desugars into a ... binding to a
        # lambda" (recursive, via the named store in our core)
        assert "DefRec" in text and "Lam" in text
        # "addition desugars into an application of a _plus method"
        assert '"_plus"' in text
        # "the list [1, 2] desugars into a chain of list constructors"
        assert text.count('"link"') >= 2 and '"empty"' in text

    def test_desugared_core_runs_to_the_same_answer(self, conf, sem):
        core = conf.desugar(parse_program(TestSection4.LEN))
        assert pretty(sem.normal_form(core)) == "2"


class TestScoping:
    def test_lambda_parameter_shadows_outer(self, conf):
        assert final(conf, "x = 1 fun(x): x + 10 end(5)") == "15"

    def test_let_shadows_outer_let(self, conf):
        assert final(conf, "x = 1 y = x + 1 x = 10 x + y") == "12"

    def test_cases_branch_params_shadow(self, conf):
        source = """
        f = 100
        cases(List) [7]: | empty() => 0 | link(f, r) => f end
        """
        assert final(conf, source) == "7"

    def test_fun_decl_name_visible_in_later_decls(self, conf):
        source = """
        fun inc(n): n + 1 end
        fun twice(n): inc(inc(n)) end
        twice(5)
        """
        assert final(conf, source) == "7"
