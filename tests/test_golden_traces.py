"""Golden-trace regression tests.

``tests/golden/*.trace`` record the exact lifted surface sequences of a
corpus of programs covering every bundled sugar.  Any change to the
engine, the sugars, the interpreters, or the pretty-printers that
perturbs a trace fails here with a readable diff.

File format::

    # sugar: <config name>
    # options: max_steps=<n> on_budget=truncate      (optional line)
    # program:
    <program source>
    # trace:
    <surface step>
    ...
    # stats: core=<n> skipped=<m> [truncated=1]

The ``# options:`` line carries keyword arguments for the lift
(``max_steps``, ``max_seconds``, ``on_budget``) so the corpus can pin
budget-truncated traces; ``truncated=1`` in the stats line asserts the
result was cut off by its budget.
"""

from pathlib import Path

import pytest

from repro.confection import Confection

GOLDEN_DIR = Path(__file__).parent / "golden"


def _configs():
    from repro.lambdacore import make_stepper as lam_stepper
    from repro.lambdacore import parse_program as lam_parse
    from repro.lambdacore import pretty as lam_pretty
    from repro.pyretcore import make_stepper as py_stepper
    from repro.pyretcore import parse_program as py_parse
    from repro.pyretcore import pretty as py_pretty
    from repro.sugars.automaton import make_automaton_rules
    from repro.sugars.pyret_sugars import make_pyret_rules
    from repro.sugars.returns import make_return_rules
    from repro.sugars.scheme_sugars import make_scheme_rules

    return {
        "scheme": (make_scheme_rules, lam_stepper, lam_parse, lam_pretty),
        "scheme-transparent": (
            lambda: make_scheme_rules(transparent_recursion=True),
            lam_stepper,
            lam_parse,
            lam_pretty,
        ),
        "return": (make_return_rules, lam_stepper, lam_parse, lam_pretty),
        "automaton": (make_automaton_rules, lam_stepper, lam_parse, lam_pretty),
        "pyret": (make_pyret_rules, py_stepper, py_parse, py_pretty),
        "pyret-object": (
            lambda: make_pyret_rules("object"),
            py_stepper,
            py_parse,
            py_pretty,
        ),
        "pyret-datatype": (
            lambda: make_pyret_rules(with_datatype=True),
            py_stepper,
            py_parse,
            py_pretty,
        ),
    }


def parse_golden(path: Path):
    lines = path.read_text().splitlines()
    assert lines[0].startswith("# sugar: ")
    sugar = lines[0][len("# sugar: "):]
    at = 1
    options = {}
    if lines[at].startswith("# options: "):
        options = dict(
            part.split("=", 1)
            for part in lines[at][len("# options: "):].split()
        )
        at += 1
    assert lines[at] == "# program:"
    trace_at = lines.index("# trace:")
    program = "\n".join(lines[at + 1 : trace_at])
    stats_at = next(
        i for i, l in enumerate(lines) if l.startswith("# stats:")
    )
    trace = lines[trace_at + 1 : stats_at]
    stats = dict(
        part.split("=") for part in lines[stats_at][len("# stats: "):].split()
    )
    return sugar, program, trace, {k: int(v) for k, v in stats.items()}, options


def lift_kwargs(options):
    """Turn a trace file's ``# options:`` dict into ``Confection.lift``
    keyword arguments."""
    kwargs = {}
    if "max_steps" in options:
        kwargs["max_steps"] = int(options["max_steps"])
    if "max_seconds" in options:
        kwargs["max_seconds"] = float(options["max_seconds"])
    if "on_budget" in options:
        kwargs["on_budget"] = options["on_budget"]
    return kwargs


GOLDEN_FILES = sorted(GOLDEN_DIR.glob("*.trace"))


def test_corpus_is_present():
    assert len(GOLDEN_FILES) >= 33


@pytest.mark.parametrize(
    "path", GOLDEN_FILES, ids=[p.stem for p in GOLDEN_FILES]
)
def test_golden_trace(path):
    sugar, program, expected_trace, stats, options = parse_golden(path)
    make_rules, make_stepper, parse, pretty = _configs()[sugar]
    confection = Confection(make_rules(), make_stepper())
    result = confection.lift(parse(program), **lift_kwargs(options))
    assert [pretty(t) for t in result.surface_sequence] == expected_trace
    assert result.core_step_count == stats["core"]
    assert result.skipped_count == stats["skipped"]
    assert result.truncated == bool(stats.get("truncated", 0))
