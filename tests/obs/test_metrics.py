"""Unit tests for the metrics registry: counters, gauges, histograms."""

import pytest

from repro.obs.metrics import (
    DEFAULT_DEPTH_BUCKETS,
    MetricsRegistry,
    merge_snapshots,
)


def test_counter_and_gauge():
    registry = MetricsRegistry()
    counter = registry.counter("lift.steps_total")
    counter.inc()
    counter.inc(3)
    gauge = registry.gauge("queue.depth")
    gauge.set(7)
    snap = registry.snapshot()
    assert snap["lift.steps_total"] == 4
    assert snap["queue.depth"] == 7


def test_histogram_buckets_partition_observations():
    registry = MetricsRegistry()
    histogram = registry.histogram("desugar.depth", boundaries=(1, 4, 16))
    for value in (0, 1, 2, 5, 100):
        histogram.observe(value)
    snap = registry.snapshot()["desugar.depth"]
    assert snap["count"] == 5
    assert snap["sum"] == 108
    # Buckets are per-interval (not cumulative); le_inf is the overflow.
    assert snap["buckets"] == {"le_1": 2, "le_4": 1, "le_16": 1, "le_inf": 1}
    assert sum(snap["buckets"].values()) == snap["count"]


def test_histogram_rejects_bad_boundaries():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.histogram("bad", boundaries=(4, 4))


def test_registry_interns_by_name_and_checks_kind():
    registry = MetricsRegistry()
    a = registry.counter("x")
    assert registry.counter("x") is a
    with pytest.raises(ValueError):
        registry.gauge("x")


def test_reset_zeroes_in_place():
    registry = MetricsRegistry()
    counter = registry.counter("n")
    histogram = registry.histogram("h", boundaries=DEFAULT_DEPTH_BUCKETS)
    counter.inc(5)
    histogram.observe(3)
    registry.reset()
    # Pre-bound references keep working after a reset.
    counter.inc()
    snap = registry.snapshot()
    assert snap["n"] == 1
    assert snap["h"]["count"] == 0


def test_snapshot_is_sorted_and_detached():
    registry = MetricsRegistry()
    registry.counter("b").inc()
    registry.counter("a").inc()
    snap = registry.snapshot()
    assert list(snap) == ["a", "b"]
    snap["a"] = 999
    assert registry.snapshot()["a"] == 1


def _sample_registry(scale: int) -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("lift.steps_total").inc(10 * scale)
    registry.gauge("queue.depth").set(scale)
    histogram = registry.histogram("depth", boundaries=(1, 4))
    for value in (1, 3, 9):
        histogram.observe(value * scale)
    return registry


def test_merge_adds_counters_gauges_and_histograms():
    target = _sample_registry(1)
    target.merge(_sample_registry(2).snapshot())
    snap = target.snapshot()
    assert snap["lift.steps_total"] == 30
    assert snap["queue.depth"] == 3  # gauges accumulate on merge
    assert snap["depth"]["count"] == 6
    assert snap["depth"]["sum"] == (1 + 3 + 9) * 3
    # scale=1 observed (1, 3, 9); scale=2 observed (2, 6, 18).
    assert snap["depth"]["buckets"] == {"le_1": 1, "le_4": 2, "le_inf": 3}


def test_merge_into_empty_registry_reconstructs_instruments():
    source = _sample_registry(1).snapshot()
    merged = merge_snapshots([source, source])
    assert merged["lift.steps_total"] == 20
    assert merged["depth"]["count"] == 6
    assert merged["depth"]["buckets"]["le_inf"] == 2


def test_merge_rejects_mismatched_histogram_boundaries():
    target = MetricsRegistry()
    target.histogram("depth", boundaries=(1, 2))
    with pytest.raises(ValueError):
        target.merge(_sample_registry(1).snapshot())


def test_merge_snapshots_of_nothing_is_empty():
    assert merge_snapshots([]) == {}
