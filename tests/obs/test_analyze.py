"""The trace-analysis layer (``obs/analyze.py``) and its CLI face.

Unit tests drive the analysis functions over handcrafted record dicts
(where every number is known); the integration tests run the real
pipeline the acceptance criterion names — ``repro lift-batch --jobs N
--trace t.jsonl`` followed by ``repro obs skips t.jsonl`` — and check
the skip report names a rule and failure reason for every skipped core
step of the corpus.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.obs.analyze import (
    critical_path,
    format_hot_rules,
    format_report,
    format_skips,
    hot_rules,
    skip_report,
    summarize,
)


def _record(span_id, name, duration, parent_id=None, attrs=None, **context):
    record = {
        "span_id": span_id,
        "parent_id": parent_id,
        "name": name,
        "attrs": attrs or {},
        "start": 0.0,
        "duration": duration,
    }
    record.update(context)
    return record


SYNTHETIC = [
    _record(
        1,
        "lift.step",
        0.25,
        parent_id=3,
        attrs={"index": 0, "outcome": "emitted"},
    ),
    _record(
        2,
        "lift.step",
        0.5,
        parent_id=3,
        attrs={
            "index": 1,
            "outcome": "skipped",
            "provenance": [
                {
                    "event": "unexpand_failed",
                    "rule": "Or",
                    "rule_index": 3,
                    "path": "If.0",
                    "reason": "expected node 'Id', term is constant Const(1)",
                }
            ],
        },
    ),
    _record(
        3,
        "lift",
        1.0,
        attrs={
            "rule_stats": {
                "3:Or": {
                    "expansions": 2,
                    "unexpansions": 1,
                    "unexpand_failures": 1,
                }
            }
        },
    ),
]


class TestSummarize:
    def test_counts_and_outcomes(self):
        summary = summarize(SYNTHETIC)
        assert summary["spans"] == 3
        assert summary["core_steps"] == 2
        assert summary["outcomes"] == {"emitted": 1, "skipped": 1}
        assert summary["by_name"]["lift.step"] == {
            "count": 2,
            "total": 0.75,
        }
        assert summary["jobs"] == [] and summary["workers"] == 0

    def test_attribution_is_surfaced(self):
        records = [
            _record(1, "lift", 1.0, trace_id="abc", job=0, worker=11),
            _record(1, "lift", 2.0, trace_id="abc", job=1, worker=12),
        ]
        summary = summarize(records)
        assert summary["trace_ids"] == ["abc"]
        assert summary["jobs"] == [0, 1]
        assert summary["workers"] == 2


class TestCriticalPath:
    def test_follows_longest_child(self):
        path = critical_path(SYNTHETIC)
        assert [row["name"] for row in path] == ["lift", "lift.step"]
        assert path[0]["duration"] == 1.0
        assert path[0]["self"] == pytest.approx(0.25)
        assert path[1]["attrs"]["index"] == 1

    def test_picks_longest_root_across_jobs(self):
        records = [
            _record(1, "lift", 1.0, job=0, worker=5, trace_id="t"),
            _record(1, "lift", 3.0, job=1, worker=6, trace_id="t"),
        ]
        path = critical_path(records)
        assert len(path) == 1 and path[0]["job"] == 1

    def test_empty_trace(self):
        assert critical_path([]) == []


class TestHotRules:
    def test_merges_rule_stats_across_lift_spans(self):
        records = SYNTHETIC + [
            _record(
                9,
                "lift",
                1.0,
                attrs={
                    "rule_stats": {
                        "3:Or": {"expansions": 1},
                        "7:Let": {"expansions": 5, "unexpansions": 5},
                    }
                },
                job=1,
                worker=2,
                trace_id="t",
            )
        ]
        rows = dict(hot_rules(records))
        assert rows["3:Or"]["expansions"] == 3
        assert rows["7:Let"] == {"expansions": 5, "unexpansions": 5}
        # Sorted hottest first:
        assert hot_rules(records)[0][0] == "7:Let"

    def test_no_stats_anywhere(self):
        assert hot_rules([_record(1, "lift", 1.0)]) == []
        assert "no rule activity" in format_hot_rules([])


class TestSkipReport:
    def test_names_rule_path_and_reason(self):
        (row,) = skip_report(SYNTHETIC)
        assert row["index"] == 1
        assert "rule Or" in row["explanation"]
        assert "at If.0" in row["explanation"]
        assert "expected node 'Id'" in row["explanation"]

    def test_explains_tag_blocks_and_cached_failures(self):
        records = [
            _record(
                1,
                "lift.step",
                0.1,
                attrs={
                    "index": 0,
                    "outcome": "skipped",
                    "provenance": [
                        {"event": "tag_blocked", "kind": "opaque_body_tag"}
                    ],
                },
            ),
            _record(
                2,
                "lift.step",
                0.1,
                attrs={
                    "index": 1,
                    "outcome": "skipped",
                    "provenance": [
                        {"event": "unexpand_failed", "cached": True}
                    ],
                },
            ),
            _record(
                3,
                "lift.step",
                0.1,
                attrs={"index": 2, "outcome": "skipped"},
            ),
        ]
        explanations = [row["explanation"] for row in skip_report(records)]
        assert "opaque body tag" in explanations[0]
        assert "cached" in explanations[1]
        assert "no provenance recorded" in explanations[2]

    def test_rows_sort_by_job_then_index(self):
        records = [
            _record(
                1,
                "lift.step",
                0.1,
                attrs={"index": 4, "outcome": "skipped"},
                job=1,
                worker=9,
                trace_id="t",
            ),
            _record(
                1,
                "lift.step",
                0.1,
                attrs={"index": 2, "outcome": "skipped"},
                job=0,
                worker=8,
                trace_id="t",
            ),
        ]
        rows = skip_report(records)
        assert [(row["job"], row["index"]) for row in rows] == [
            (0, 2),
            (1, 4),
        ]


class TestFormatting:
    def test_report_renders_tables_and_path(self):
        text = format_report(summarize(SYNTHETIC))
        assert "core steps: 2 (emitted=1, skipped=1)" in text
        assert "lift.step" in text
        assert "critical path" in text

    def test_hot_rules_table(self):
        text = format_hot_rules(hot_rules(SYNTHETIC))
        assert "3:Or" in text and "unexpand_failures" in text

    def test_skips_lists_every_row(self):
        text = format_skips(skip_report(SYNTHETIC), core_steps=2)
        assert "1 of 2 core steps skipped" in text
        assert "step 1: rule Or" in text
        assert (
            format_skips([], core_steps=2)
            == "no skipped steps: every core step resugared"
        )


# --- the CLI, end to end ----------------------------------------------


@pytest.fixture()
def batch_trace(tmp_path):
    """Run the acceptance pipeline: lift-batch a small corpus across 4
    workers, writing a merged trace."""
    corpus = tmp_path / "corpus.scm"
    corpus.write_text(
        "(or (not #t) (not #f))\n"
        "(let ((x (not #t)) (y #f)) (or x y))\n"
        "(cond ((not #t) 1) (#t (+ 1 2)))\n"
    )
    trace = tmp_path / "t.jsonl"
    code = main(
        [
            "lift-batch",
            "--lang",
            "lambda",
            "--jobs",
            "4",
            "--per-line",
            "--trace",
            str(trace),
            str(corpus),
        ]
    )
    assert code == 0
    assert trace.exists()
    return trace


def test_cli_obs_report(batch_trace, capsys):
    assert main(["obs", "report", str(batch_trace)]) == 0
    out = capsys.readouterr().out
    assert "spans:" in out and "jobs: 3" in out
    assert "critical path" in out


def test_cli_obs_hot_rules(batch_trace, capsys):
    assert main(["obs", "hot-rules", str(batch_trace)]) == 0
    out = capsys.readouterr().out
    assert "expansions" in out
    assert ":Or" in out or ":Let" in out


def test_cli_obs_skips_explains_every_skip(batch_trace, capsys):
    """The acceptance criterion: after a 4-worker batch, ``repro obs
    skips`` names a rule + failure reason (or the blocking tag check)
    for every skipped core step in the corpus."""
    from repro.obs import read_trace

    records = read_trace(batch_trace)
    skipped = sum(
        1
        for r in records
        if r["name"] == "lift.step" and r["attrs"].get("outcome") == "skipped"
    )
    assert skipped, "this corpus is chosen to skip steps"

    assert main(["obs", "skips", str(batch_trace)]) == 0
    out = capsys.readouterr().out
    lines = [l for l in out.splitlines() if l.strip().startswith(("job", "step"))]
    assert len(lines) == skipped
    for line in lines:
        assert ("rule " in line) or ("tag check blocked" in line)
    assert "no provenance recorded" not in out


def test_cli_obs_rejects_missing_file(tmp_path, capsys):
    assert main(["obs", "report", str(tmp_path / "nope.jsonl")]) == 1
    assert "error:" in capsys.readouterr().err


def test_cli_obs_strict_rejects_truncated_trace(batch_trace, tmp_path, capsys):
    mangled = tmp_path / "mangled.jsonl"
    mangled.write_text(batch_trace.read_text() + '{"span_id": 1, "na')
    assert main(["obs", "report", str(mangled), "--strict"]) == 1
    assert "error:" in capsys.readouterr().err
    # Tolerant mode (the default) drops the partial line and reports.
    assert main(["obs", "report", str(mangled)]) == 0


def test_cli_single_process_lift_trace_roundtrip(tmp_path, capsys):
    trace = tmp_path / "solo.jsonl"
    code = main(
        [
            "lift",
            "--lang",
            "lambda",
            "--trace",
            str(trace),
            "(or (not #t) (not #f))",
        ]
    )
    assert code == 0
    capsys.readouterr()
    assert main(["obs", "skips", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "skipped" in out and "tag check blocked" in out
