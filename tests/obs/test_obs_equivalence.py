"""Metamorphic tests: observability never changes what a lift computes.

Over the whole golden corpus, in both resugaring modes, a lift run with
observability enabled must be byte-identical to one run with it disabled
— same surface sequence, same per-step bookkeeping, same truncation.
And the numbers it reports must *agree with the events*:
``lift.steps_total`` equals the :class:`CoreStepped` event count (which
equals the committed ``core=`` stat), skip/dedup/emit counters partition
it, and a JSONL trace of the run carries exactly one ``lift.step`` span
per core step.
"""

import io

import pytest

from repro import obs
from repro.confection import Confection
from repro.engine.events import CoreStepped
from repro.obs.export import JsonlExporter, build_tree, read_trace
from tests.test_golden_traces import (
    GOLDEN_FILES,
    _configs,
    lift_kwargs,
    parse_golden,
)

MODES = pytest.mark.parametrize(
    "incremental", [True, False], ids=["inc", "naive"]
)
CORPUS = pytest.mark.parametrize(
    "path", GOLDEN_FILES, ids=[p.stem for p in GOLDEN_FILES]
)


@MODES
@CORPUS
def test_observed_lift_is_byte_identical(path, incremental):
    sugar, program, expected_trace, stats, options = parse_golden(path)
    make_rules, make_stepper, parse, pretty = _configs()[sugar]
    term = parse(program)
    kwargs = lift_kwargs(options)

    plain = Confection(make_rules(), make_stepper())
    baseline = plain.lift(term, incremental=incremental, **kwargs)

    observability = obs.Observability()
    observed_conf = Confection(
        make_rules(), make_stepper(), obs=observability
    )
    observed = observed_conf.lift(term, incremental=incremental, **kwargs)
    snapshot = observability.snapshot()
    assert not obs.enabled()

    # Byte-identical output (and both match the committed golden trace).
    rendered = [pretty(t) for t in observed.surface_sequence]
    assert rendered == [pretty(t) for t in baseline.surface_sequence]
    assert rendered == expected_trace
    assert observed.steps == baseline.steps
    assert observed.truncated == baseline.truncated

    # The counters agree with the result's own bookkeeping and the
    # committed stats line.
    assert snapshot["lift.steps_total"] == stats["core"]
    assert snapshot["lift.steps_total"] == observed.core_step_count
    assert snapshot["lift.steps_skipped"] == observed.skipped_count
    assert snapshot["lift.steps_emitted"] == observed.shown_count
    assert snapshot["lift.steps_emitted"] + snapshot[
        "lift.steps_deduped"
    ] + snapshot["lift.steps_skipped"] == snapshot["lift.steps_total"]
    assert snapshot["lift.runs"] == 1


@MODES
@CORPUS
def test_steps_total_equals_core_stepped_event_count(path, incremental):
    sugar, program, _expected, stats, options = parse_golden(path)
    make_rules, make_stepper, parse, _pretty = _configs()[sugar]
    term = parse(program)

    observability = obs.Observability()
    confection = Confection(make_rules(), make_stepper(), obs=observability)
    events = list(
        confection.lift_stream(term, incremental=incremental, **lift_kwargs(options))
    )
    core_events = sum(isinstance(e, CoreStepped) for e in events)
    snapshot = observability.snapshot()

    assert snapshot["lift.steps_total"] == core_events == stats["core"]


@MODES
def test_trace_carries_one_step_span_per_core_step(incremental):
    """The exported JSONL agrees with the metrics: one ``lift.step``
    child span under the ``lift`` span per counted core step."""
    from repro.lambdacore import make_stepper, parse_program
    from repro.sugars.scheme_sugars import make_scheme_rules

    buffer = io.StringIO()
    observability = obs.Observability(sinks=[JsonlExporter(buffer)])
    confection = Confection(
        make_scheme_rules(), make_stepper(), obs=observability
    )
    result = confection.lift(
        parse_program("(or (not #t) (not #f))"), incremental=incremental
    )
    snapshot = observability.snapshot()

    records = read_trace(io.StringIO(buffer.getvalue()))
    build_tree(records)  # validates acyclicity
    by_name = {}
    for record in records:
        by_name.setdefault(record["name"], []).append(record)

    steps = by_name["lift.step"]
    assert len(steps) == snapshot["lift.steps_total"] == result.core_step_count
    (lift_span,) = by_name["lift"]
    assert all(s["parent_id"] == lift_span["span_id"] for s in steps)
    assert [s["attrs"]["index"] for s in steps] == list(range(len(steps)))
    outcomes = [s["attrs"]["outcome"] for s in steps]
    assert outcomes.count("emitted") == snapshot["lift.steps_emitted"]
    assert outcomes.count("skipped") == snapshot["lift.steps_skipped"]
    assert outcomes.count("deduped") == snapshot["lift.steps_deduped"]
    assert lift_span["attrs"]["core_steps"] == result.core_step_count
