"""Unit tests for the Prometheus text exposition renderer — the format
the server's ``/metrics`` endpoint speaks."""

from repro.obs.metrics import MetricsRegistry, render_prometheus


def test_counter_gets_total_suffix_and_type_line():
    registry = MetricsRegistry()
    registry.counter("lift.steps_total").inc(4)
    text = render_prometheus(registry)
    assert "# TYPE repro_lift_steps_total counter\n" in text
    assert "repro_lift_steps_total 4\n" in text
    # The _total suffix is not doubled when the name already carries it.
    assert "total_total" not in text


def test_counter_without_total_suffix_gains_one():
    registry = MetricsRegistry()
    registry.counter("server.requests").inc()
    text = render_prometheus(registry)
    assert "repro_server_requests_total 1\n" in text


def test_gauge_renders_without_suffix():
    registry = MetricsRegistry()
    registry.gauge("server.sessions_active").set(3)
    text = render_prometheus(registry)
    assert "# TYPE repro_server_sessions_active gauge\n" in text
    assert "repro_server_sessions_active 3\n" in text


def test_histogram_buckets_are_cumulative_with_inf():
    registry = MetricsRegistry()
    histogram = registry.histogram("ttfs", boundaries=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 0.7, 5.0, 100.0):
        histogram.observe(value)
    lines = render_prometheus(registry).splitlines()
    assert "# TYPE repro_ttfs histogram" in lines
    # Internal storage is per-interval; exposition must be cumulative.
    assert 'repro_ttfs_bucket{le="0.1"} 1' in lines
    assert 'repro_ttfs_bucket{le="1"} 3' in lines
    assert 'repro_ttfs_bucket{le="10"} 4' in lines
    assert 'repro_ttfs_bucket{le="+Inf"} 5' in lines
    assert "repro_ttfs_sum 106.25" in lines
    assert "repro_ttfs_count 5" in lines


def test_per_rule_counters_become_labelled_series():
    # The interned naming scheme of RuleCounters
    # (rule.<event>.<index>:<rule name>) renders as labelled series.
    registry = MetricsRegistry()
    registry.counter("rule.expansions.0:Or").inc(2)
    registry.counter("rule.expansions.1:And").inc()
    registry.counter("rule.unexpand_failures.1:And").inc()
    lines = render_prometheus(registry).splitlines()
    assert "# TYPE repro_rule_expansions_total counter" in lines
    assert 'repro_rule_expansions_total{index="0",rule="Or"} 2' in lines
    assert 'repro_rule_expansions_total{index="1",rule="And"} 1' in lines
    assert (
        'repro_rule_unexpand_failures_total{index="1",rule="And"} 1' in lines
    )
    # The raw interned names (rule.expansions.0:Or) never leak through.
    assert not any("rule.expansions" in line for line in lines)


def test_rule_label_values_are_escaped():
    registry = MetricsRegistry()
    registry.counter('rule.expansions.0:Weird"Rule\\Name').inc()
    text = render_prometheus(registry)
    assert 'rule="Weird\\"Rule\\\\Name"' in text


def test_metric_names_are_sanitized():
    registry = MetricsRegistry()
    registry.counter("resugar.cache-hits@weird").inc()
    text = render_prometheus(registry)
    assert "repro_resugar_cache_hits_weird_total 1\n" in text


def test_float_and_int_formatting():
    registry = MetricsRegistry()
    registry.gauge("ratio").set(0.25)
    registry.gauge("whole").set(2.0)
    text = render_prometheus(registry)
    assert "repro_ratio 0.25\n" in text
    # Integral floats render without a trailing .0.
    assert "repro_whole 2\n" in text


def test_empty_registry_renders_empty_exposition():
    assert render_prometheus(MetricsRegistry()) == "\n"


def test_default_registry_includes_server_instruments():
    # The module-level instruments the server observes must be present
    # in the default exposition even before any traffic.
    text = render_prometheus()
    assert "repro_server_sessions_started_total" in text
    assert "repro_server_ttfs_seconds_bucket" in text
