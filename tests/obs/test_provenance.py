"""Resugar-decision provenance: every skip has a recorded *why*.

The provenance layer (:mod:`repro.obs.provenance`) attaches, per core
step, structured events explaining each resugar decision to the step's
``lift.step`` span, and per-rule totals to the run's ``lift`` span.
These tests pin the event vocabulary, the cache-replay path (a
memoized failure re-reports the original diagnosis, ``cached: true``),
the per-rule counters, and the end-to-end guarantee the ``repro obs
skips`` CLI builds on: every skipped step in a traced lift carries a
diagnosis naming either the failing rule (and where/why unification
failed) or the tag check that blocked the term.
"""

from __future__ import annotations

import pytest

from repro.confection import Confection
from repro.lambdacore import make_stepper, parse_program
from repro.obs import Observability, SpanCollector, metrics_snapshot
from repro.obs import provenance as prov
from repro.obs.metrics import per_rule_counters
from repro.sugars.automaton import make_automaton_rules
from repro.sugars.scheme_sugars import make_scheme_rules

AUTOMATON_PROGRAM = (
    '(let ((M (automaton s0 (s0 : ("a" -> s1)) (s1 : accept)))) (M "a"))'
)


def _traced_lift(rules, source):
    confection = Confection(rules, make_stepper())
    collector = SpanCollector()
    with Observability(sinks=[collector]):
        result = confection.lift(parse_program(source))
    return result, collector.records


def _step_spans(records):
    return [r for r in records if r["name"] == "lift.step"]


def _skip_events(records):
    for record in _step_spans(records):
        if record["attrs"].get("outcome") == "skipped":
            yield record, record["attrs"].get("provenance") or []


# --- the scope API -----------------------------------------------------


class TestScopes:
    def test_note_outside_a_step_scope_is_dropped(self):
        prov.note({"event": "deduped"})
        assert prov.current_events() is None

    def test_step_scope_attaches_events_to_the_span(self):
        class FakeSpan:
            attrs = {}

        span = FakeSpan()
        with prov.step_scope(span) as events:
            prov.on_tag_blocked("opaque_body_tag")
            assert prov.current_events() is events
        assert span.attrs["provenance"] == [
            {"event": "tag_blocked", "kind": "opaque_body_tag"}
        ]

    def test_empty_step_scope_attaches_nothing(self):
        class FakeSpan:
            attrs = {}

        span = FakeSpan()
        with prov.step_scope(span):
            pass
        assert "provenance" not in span.attrs

    def test_cached_fail_replays_the_original_diagnosis(self):
        original = {
            "event": "unexpand_failed",
            "rule": "Or",
            "rule_index": 3,
            "path": "If.0",
            "reason": "expected node 'Id', term is constant Const(1)",
        }
        with prov.step_scope(None):
            prov.on_cached_fail(original)
            prov.on_cached_fail(None)
            events = list(prov.current_events())
        assert events[0] == {**original, "cached": True}
        assert "cached" not in original  # the stored event is not mutated
        assert events[1] == {"event": "unexpand_failed", "cached": True}

    def test_run_scope_accumulates_rule_stats(self):
        rules = make_scheme_rules()
        run = prov.begin_run(rules)
        try:
            prov.on_expand(rules, 0)
            prov.on_expand(rules, 0)
        finally:
            prov.end_run(run)
        name = rules.rules[0].name
        assert run.rule_stats() == {
            f"0:{name}": {
                "expansions": 2,
                "unexpansions": 0,
                "unexpand_failures": 0,
            }
        }


# --- per-rule counters -------------------------------------------------


class TestPerRuleCounters:
    def test_counters_are_interned_per_rulelist(self):
        rules = make_scheme_rules()
        assert per_rule_counters(rules) is per_rule_counters(rules)

    def test_counter_names_carry_index_and_rule_name(self):
        rules = make_scheme_rules()
        counters = per_rule_counters(rules)
        name = rules.rules[2].name
        assert counters.expansions[2].name == f"rule.expansions.2:{name}"
        assert (
            counters.unexpand_failures[2].name
            == f"rule.unexpand_failures.2:{name}"
        )

    def test_expansions_move_the_named_counter(self):
        rules = make_scheme_rules()
        _result, _records = _traced_lift(rules, "(or (not #t) (not #f))")
        snapshot = metrics_snapshot()
        expanded = {
            name: value
            for name, value in snapshot.items()
            if name.startswith("rule.expansions.") and value
        }
        assert expanded, "a lift that expands sugar moves rule counters"
        assert all(
            name.split(".", 2)[2].split(":", 1)[1] for name in expanded
        )


# --- end-to-end: every skip is explained -------------------------------


class TestSkipProvenance:
    def test_tag_blocked_skips_name_the_kind(self):
        _result, records = _traced_lift(
            make_scheme_rules(), "(or (not #t) (not #f))"
        )
        skips = list(_skip_events(records))
        assert skips
        for _record, events in skips:
            kinds = {e["event"] for e in events}
            assert "tag_blocked" in kinds or "unexpand_failed" in kinds

    def test_unexpand_failures_carry_rule_path_and_reason(self):
        _result, records = _traced_lift(
            make_automaton_rules(), AUTOMATON_PROGRAM
        )
        failures = [
            event
            for _record, events in _skip_events(records)
            for event in events
            if event["event"] == "unexpand_failed" and not event.get("cached")
        ]
        assert failures
        for event in failures:
            assert event["rule"]
            assert isinstance(event["rule_index"], int)
            assert event["path"] is not None
            assert event["reason"]

    def test_cached_skips_replay_their_diagnosis(self):
        _result, records = _traced_lift(
            make_automaton_rules(), AUTOMATON_PROGRAM
        )
        cached = [
            event
            for _record, events in _skip_events(records)
            for event in events
            if event.get("cached")
        ]
        assert cached, "the automaton lift re-skips memoized failures"
        for event in cached:
            assert event["event"] == "unexpand_failed"

    def test_every_skipped_step_has_provenance(self):
        for rules, source in (
            (make_scheme_rules(), "(or (not #t) (not #f))"),
            (make_automaton_rules(), AUTOMATON_PROGRAM),
        ):
            result, records = _traced_lift(rules, source)
            skips = list(_skip_events(records))
            assert len(skips) == result.skipped_count
            for _record, events in skips:
                assert events, "a skipped step without a recorded cause"

    def test_lift_span_carries_merged_rule_stats(self):
        _result, records = _traced_lift(
            make_scheme_rules(), "(or (not #t) (not #f))"
        )
        (lift_span,) = [r for r in records if r["name"] == "lift"]
        stats = lift_span["attrs"]["rule_stats"]
        assert stats
        for key, row in stats.items():
            index, _, name = key.partition(":")
            assert index.isdigit() and name
            assert set(row) == {
                "expansions",
                "unexpansions",
                "unexpand_failures",
            }
        assert any(row["expansions"] for row in stats.values())

    def test_disabled_lift_records_nothing(self):
        confection = Confection(make_scheme_rules(), make_stepper())
        collector = SpanCollector()
        result = confection.lift(parse_program("(or (not #t) (not #f))"))
        assert collector.records == []
        assert result.skipped_count  # the program does skip; we just
        # did not pay to find out why


# --- naive mode agrees -------------------------------------------------


@pytest.mark.parametrize("incremental", [True, False], ids=["inc", "naive"])
def test_skip_provenance_is_mode_independent(incremental):
    """The naive (reference) resugar path diagnoses every skip the same
    way the incremental one does: same failing rule, same mismatch path
    and reason (or the same blocking tag check) at every skipped step.
    Only bookkeeping events differ — the incremental cache elides
    re-recording successful unexpansions and flags replays ``cached``.
    """

    def diagnoses(records):
        out = []
        for _record, events in _skip_events(records):
            out.append(
                sorted(
                    (
                        e["event"],
                        e.get("rule"),
                        e.get("path"),
                        e.get("reason"),
                        e.get("kind"),
                    )
                    for e in events
                    if e["event"] in ("unexpand_failed", "tag_blocked")
                )
            )
        return out

    confection = Confection(make_automaton_rules(), make_stepper())
    runs = {}
    for mode in (True, False):
        collector = SpanCollector()
        with Observability(sinks=[collector]):
            confection.lift(
                parse_program(AUTOMATON_PROGRAM), incremental=mode
            )
        runs[mode] = diagnoses(collector.records)
    assert runs[True] == runs[False]
