"""Property tests: the JSONL trace round-trips exactly.

Hypothesis generates random span trees (names, JSON-primitive attrs,
arbitrary nesting); executing them through the real :func:`repro.obs.span`
API with a :class:`JsonlExporter` sink and reading the file back through
:func:`read_trace`/:func:`build_tree` must reconstruct the *exact* tree:

* every emitted line is independently ``json.loads``-parseable and
  carries the full schema;
* parent ids are acyclic and reconstruction recovers names, attrs, and
  child order;
* timing nests: a child's duration never exceeds its parent's, and a
  child starts no earlier than its parent.
"""

import io
import json

from hypothesis import given
from hypothesis import strategies as st

from repro import obs
from repro.obs.export import JsonlExporter, build_tree, read_trace

SPAN_NAMES = ["lift", "lift.step", "desugar", "resugar", "match"]

_attr_values = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.booleans(),
    st.sampled_from(["sequence", "tree", "emitted", "skipped"]),
)

_attrs = st.dictionaries(
    keys=st.sampled_from(["index", "mode", "outcome", "ok", "n"]),
    values=_attr_values,
    max_size=3,
)


def _tree(children):
    return st.fixed_dictionaries(
        {
            "name": st.sampled_from(SPAN_NAMES),
            "attrs": _attrs,
            "children": st.lists(children, max_size=3),
        }
    )


span_trees = st.recursive(
    st.fixed_dictionaries(
        {
            "name": st.sampled_from(SPAN_NAMES),
            "attrs": _attrs,
            "children": st.just([]),
        }
    ),
    _tree,
    max_leaves=12,
)

span_forests = st.lists(span_trees, min_size=1, max_size=3)


def _run(tree):
    """Execute one generated span tree through the real API."""
    with obs.span(tree["name"], **tree["attrs"]):
        for child in tree["children"]:
            _run(child)


def _execute_forest(forest) -> str:
    """Run a forest with a JSONL sink attached; return the raw JSONL."""
    buffer = io.StringIO()
    with obs.Observability(sinks=[JsonlExporter(buffer)]):
        for tree in forest:
            _run(tree)
    assert not obs.enabled()
    return buffer.getvalue()


def _expected_shape(tree):
    return (
        tree["name"],
        dict(tree["attrs"]),
        [_expected_shape(child) for child in tree["children"]],
    )


def _reconstructed_shape(span_id, children, by_id):
    record = by_id[span_id]
    return (
        record["name"],
        record["attrs"],
        [
            _reconstructed_shape(child, children, by_id)
            for child in children.get(span_id, [])
        ],
    )


@given(span_forests)
def test_jsonl_reconstructs_exact_tree(forest):
    raw = _execute_forest(forest)

    # Every line parses on its own and carries the full schema.
    lines = raw.splitlines()
    for line in lines:
        record = json.loads(line)
        assert set(record) == {
            "span_id",
            "parent_id",
            "name",
            "attrs",
            "start",
            "duration",
        }

    records = read_trace(io.StringIO(raw))
    assert len(records) == len(lines)

    # build_tree validates acyclicity (unique ids, no self-parenting, no
    # cycles) and yields the forest structure.
    roots, children = build_tree(records)
    by_id = {record["span_id"]: record for record in records}
    assert len(roots) == len(forest)

    # Exact reconstruction: names, attrs, and child order all survive.
    # Spans are emitted post-order, so siblings appear in execution order
    # at every level and roots in execution order at the top.
    reconstructed = [
        _reconstructed_shape(root, children, by_id) for root in roots
    ]
    assert reconstructed == [_expected_shape(tree) for tree in forest]


@given(span_forests)
def test_child_timing_nests_inside_parent(forest):
    records = read_trace(io.StringIO(_execute_forest(forest)))
    by_id = {record["span_id"]: record for record in records}
    for record in records:
        assert record["duration"] >= 0.0
        parent_id = record["parent_id"]
        if parent_id is not None:
            parent = by_id[parent_id]
            assert record["duration"] <= parent["duration"]
            assert record["start"] >= parent["start"]


@given(span_trees)
def test_span_ids_are_fresh_across_runs(tree):
    first = read_trace(io.StringIO(_execute_forest([tree])))
    second = read_trace(io.StringIO(_execute_forest([tree])))
    assert not {r["span_id"] for r in first} & {r["span_id"] for r in second}


_GOOD_LINE = (
    '{"span_id": 1, "parent_id": null, "name": "a", '
    '"attrs": {}, "start": 0.0, "duration": 0.1}\n'
)


def test_read_trace_rejects_garbage_lines():
    import pytest

    # Strict mode: a malformed final line raises like any other.
    with pytest.raises(ValueError, match="line 2"):
        read_trace(
            io.StringIO(_GOOD_LINE + "not json\n"),
            tolerate_truncation=False,
        )
    # Garbage *before* the final line always raises: only the last line
    # can be a partial write, so anything earlier is real corruption.
    with pytest.raises(ValueError, match="line 2"):
        read_trace(io.StringIO(_GOOD_LINE + "not json\n" + _GOOD_LINE))


def test_read_trace_tolerates_truncated_final_line():
    from repro.obs.metrics import TRACE_TRUNCATED_LINES

    before = TRACE_TRUNCATED_LINES.value
    # A worker killed mid-write leaves one partial trailing line; by
    # default it is dropped and counted, not fatal.
    records = read_trace(io.StringIO(_GOOD_LINE + '{"span_id": 2, "par'))
    assert [r["span_id"] for r in records] == [1]
    assert TRACE_TRUNCATED_LINES.value == before + 1

    # A complete-but-schema-incomplete final line (cut mid-record yet
    # still valid JSON) is dropped the same way.
    records = read_trace(io.StringIO(_GOOD_LINE + '{"span_id": 2}\n'))
    assert [r["span_id"] for r in records] == [1]
    assert TRACE_TRUNCATED_LINES.value == before + 2


def test_build_tree_rejects_cycles():
    import pytest

    base = {"attrs": {}, "start": 0.0, "duration": 0.0}
    records = [
        {"span_id": 1, "parent_id": 2, "name": "a", **base},
        {"span_id": 2, "parent_id": 1, "name": "b", **base},
    ]
    with pytest.raises(ValueError):
        build_tree(records)
