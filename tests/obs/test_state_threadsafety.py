"""The observability flag's thread-safety contract (``obs/_state.py``).

Reads of ``_state.enabled`` are lock-free; transitions serialize on a
module lock and derive the flag from a scope refcount plus a
process-wide pin.  These tests pin the contract's observable
consequences: scopes compose instead of stomping each other, a
``disable()`` under active scopes drops only the pin, and hammering
acquire/release from many threads never strands the flag on.
"""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.obs import _state


@pytest.fixture(autouse=True)
def _pristine_state():
    assert _state._scopes == 0 and not _state._pinned and not _state.enabled
    yield
    # A failure here means a test (or the code under test) leaked state
    # that would silently enable instrumentation for the rest of the
    # session.
    assert _state._scopes == 0 and not _state._pinned and not _state.enabled


def test_scopes_compose():
    _state.acquire()
    _state.acquire()
    assert _state.enabled
    _state.release()
    assert _state.enabled, "the flag drops only at the last scope exit"
    _state.release()
    assert not _state.enabled


def test_release_without_acquire_is_harmless():
    _state.release()
    assert not _state.enabled and _state._scopes == 0


def test_disable_under_an_active_scope_drops_only_the_pin():
    _state.pin(True)
    _state.acquire()
    _state.pin(False)
    assert _state.enabled, "an active scope outlives obs.disable()"
    _state.release()
    assert not _state.enabled


def test_pin_outlives_scopes():
    _state.acquire()
    _state.pin(True)
    _state.release()
    assert _state.enabled, "the pin keeps the flag up with no scopes"
    _state.pin(False)
    assert not _state.enabled


def test_concurrent_scope_churn_never_strands_the_flag():
    """N threads each enter and exit many scopes concurrently; when all
    have finished, the flag must be down — the refcount cannot have
    been torn by a lost update."""
    threads = 8
    rounds = 200
    barrier = threading.Barrier(threads)
    seen_disabled = []

    def churn():
        barrier.wait()
        for _ in range(rounds):
            _state.acquire()
            # Inside a scope the flag is visibly up, no matter what the
            # other threads are doing.
            if not _state.enabled:
                seen_disabled.append(True)
            _state.release()

    workers = [threading.Thread(target=churn) for _ in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    assert not seen_disabled
    assert not _state.enabled
    assert _state._scopes == 0


def test_concurrent_observability_contexts_compose():
    """The public face of the contract: overlapping Observability
    activations on different threads keep instrumentation on until the
    last one exits."""
    first_active = threading.Event()
    second_done = threading.Event()
    states = {}

    def second_scope():
        first_active.wait(5)
        with obs.Observability(reset_metrics=False):
            states["during_second"] = obs.enabled()
        states["after_second"] = obs.enabled()
        second_done.set()

    worker = threading.Thread(target=second_scope)
    worker.start()
    with obs.Observability(reset_metrics=False):
        first_active.set()
        assert second_done.wait(5)
        states["first_still_active"] = obs.enabled()
    worker.join()

    assert states == {
        "during_second": True,
        # The first scope is still open when the second exits:
        "after_second": True,
        "first_still_active": True,
    }
    assert not obs.enabled()


def test_observability_scope_is_reentrant():
    scope = obs.Observability(reset_metrics=False)
    with scope:
        with scope:
            assert obs.enabled()
        assert obs.enabled()
    assert not obs.enabled()
