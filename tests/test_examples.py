"""Smoke tests: every example script runs to completion and prints the
headline results its docstring promises."""

import importlib.util
from pathlib import Path


EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart", capsys)
    assert "(or #f (not #f))" in out
    assert "coverage 80%" in out
    assert "(or #f #t)" in out  # the transparent variant


def test_automaton(capsys):
    out = run_example("automaton", capsys)
    assert '(more "adr")' in out
    assert '(end "")' in out
    assert "#t" in out
    assert "#f" in out  # the rejecting run


def test_pyret_len(capsys):
    out = run_example("pyret_len", capsys)
    assert "cases(List) [1, 2]:" in out
    assert "0 + 1 + 1" in out
    assert "1 + 5" in out  # the Figure 6 comparison


def test_return_callcc(capsys):
    out = run_example("return_callcc", capsys)
    assert "(+ 1 (+ 1 (return 9)))" in out
    assert "(+ 1 9)" in out


def test_amb_tree(capsys):
    out = run_example("amb_tree", capsys)
    assert "outcomes:" in out
    assert "12" in out and "30" in out


def test_max_pitfall(capsys):
    out = run_example("max_pitfall", capsys)
    assert "DisjointnessError" in out
    assert "EmulationViolation" in out
    assert "Max([-infinity])" in out


def test_custom_language(capsys):
    out = run_example("custom_language", capsys)
    assert "Abs(-5)" in out
    assert "Clamp(0, -7, 100)" in out


def test_surface_debugger(capsys):
    out = run_example("surface_debugger", capsys)
    assert "(+ 1 (+ 2 (+ 3 0)))" in out or "6" in out
    assert "core | surface" in out
    assert "HTML report written" in out
