"""Hypothesis strategies for terms, patterns, and well-formed rules.

These power the property-based tests that stand in for the paper's Coq
development: matching/substitution correctness, unification correctness,
the lens laws, and the desugar/resugar inverse theorems.
"""

from __future__ import annotations

from hypothesis import assume
from hypothesis import strategies as st

from repro.core.rules import Rule, RuleList
from repro.core.terms import Const, Node, Pattern, PList, PVar, Symbol
from repro.core.wellformed import DisjointnessMode

LABELS = ["Foo", "Bar", "Baz", "Pair", "Triple", "Wrap"]
VAR_NAMES = ["a", "b", "c", "d", "e", "f", "g", "h"]

atoms = st.one_of(
    st.integers(min_value=-100, max_value=100),
    st.booleans(),
    st.sampled_from(["s", "t", "hello"]),
    st.sampled_from([Symbol("x"), Symbol("y"), Symbol("z")]),
)

consts = atoms.map(Const)


def terms(max_leaves: int = 12) -> st.SearchStrategy[Pattern]:
    """Random tag-free terms."""
    return st.recursive(
        consts,
        lambda children: st.one_of(
            st.builds(
                Node,
                st.sampled_from(LABELS),
                st.lists(children, min_size=0, max_size=3).map(tuple),
            ),
            st.lists(children, min_size=0, max_size=3).map(
                lambda items: PList(tuple(items))
            ),
        ),
        max_leaves=max_leaves,
    )


def _linear_patterns(var_pool: list[str], allow_ellipsis: bool):
    """Build a strategy for linear patterns drawing variables from a
    shared mutable pool (each draw consumes a name)."""

    def fresh_var(_):
        if var_pool:
            return PVar(var_pool.pop())
        return Const(0)

    base = st.one_of(consts, st.integers(0, 0).map(fresh_var))

    def extend(children):
        options = [
            st.builds(
                Node,
                st.sampled_from(LABELS),
                st.lists(children, min_size=0, max_size=3).map(tuple),
            ),
            st.lists(children, min_size=0, max_size=3).map(
                lambda items: PList(tuple(items))
            ),
        ]
        if allow_ellipsis:
            options.append(
                st.tuples(
                    st.lists(children, min_size=0, max_size=2),
                    st.integers(0, 0).map(fresh_var),
                ).map(lambda t: PList(tuple(t[0]), t[1]))
            )
        return st.one_of(options)

    return st.recursive(base, extend, max_leaves=8)


@st.composite
def linear_patterns(draw, allow_ellipsis: bool = True) -> Pattern:
    """A pattern in which no variable repeats (criterion 2)."""
    pool = list(VAR_NAMES)
    return draw(_linear_patterns(pool, allow_ellipsis))


@st.composite
def matching_pairs(draw):
    """A (term, pattern) pair such that the term matches the pattern.

    Built by generating a pattern and then instantiating it: variables
    become random terms, ellipses are repeated 0-3 times.
    """
    from repro.core.substitution import subst
    from repro.core.bindings import ListBinding
    from repro.core.terms import pattern_variables, variable_depths

    pattern = draw(linear_patterns())
    depths = variable_depths(pattern)

    def binding_at_depth(depth):
        if depth == 0:
            return draw(terms(max_leaves=4))
        k = draw(st.integers(min_value=0, max_value=3))
        return ListBinding(tuple(binding_at_depth(depth - 1) for _ in range(k)))

    env = {}
    for name in pattern_variables(pattern):
        env[name] = binding_at_depth(depths[name])

    # Ellipses with variables at mismatched sibling depths can make the
    # instantiation ill-defined; retry via hypothesis' assume mechanism.
    from repro.core.errors import SubstitutionError

    try:
        term = subst(env, pattern)
    except SubstitutionError:
        assume(False)
        raise
    return term, pattern, env


@st.composite
def wellformed_rules(draw) -> Rule:
    """A random rule satisfying the well-formedness criteria.

    The LHS is a node over fresh variables (possibly under one ellipsis);
    the RHS reuses a subset of those variables inside random structure.
    """
    label = draw(st.sampled_from(LABELS))
    n_vars = draw(st.integers(min_value=0, max_value=4))
    names = VAR_NAMES[:n_vars]
    use_ellipsis = draw(st.booleans()) and n_vars >= 1

    lhs_children: list[Pattern] = [PVar(name) for name in names]
    if use_ellipsis:
        ell_var = lhs_children.pop()
        lhs = Node(label, (PList(tuple(lhs_children), ell_var),))
        depths = {name: 0 for name in names[:-1]}
        depths[names[-1]] = 1
    else:
        lhs = Node(label, tuple(lhs_children))
        depths = {name: 0 for name in names}

    kept = [name for name in names if draw(st.booleans())]

    def rhs_for(name):
        if depths[name] == 0:
            return PVar(name)
        return PList((), PVar(name))

    rhs_parts = tuple(rhs_for(name) for name in kept)
    shape = draw(st.integers(min_value=0, max_value=2))
    # RHS labels are disjoint from LHS labels ("Out..."/"Shell"), so a
    # generated rulelist can never diverge.
    if shape == 0:
        rhs: Pattern = Node("Out" + label, rhs_parts)
    elif shape == 1:
        rhs = Node("Out" + label, (PList(rhs_parts),))
    else:
        rhs = Node("Shell", (Node("Out" + label, rhs_parts),))
    return Rule(lhs, rhs)


@st.composite
def backend_examples(draw, backend_name: str = "lambda", n_pairs: int = 3):
    """(surface, core) example pairs, all instances of ONE hand-written
    rule of a real backend — ground truth for the synthesis tests.

    Each pair instantiates the rule's LHS with fresh leaves (every draw
    distinct, so no position accidentally looks constant) and asks the
    full reference ruleset to desugar it one step; the pair is therefore
    exactly what :mod:`repro.synth.harvest` would have mined, without
    the mining.  Returns ``(examples, rules)``.
    """
    from repro.core.bindings import ListBinding
    from repro.core.errors import SubstitutionError
    from repro.core.substitution import subst
    from repro.core.terms import (
        pattern_variables,
        strip_tags,
        variable_depths,
    )
    from repro.engine.registry import get_backend

    backend = get_backend(backend_name)
    rules = backend.make_rules(None)
    rule = draw(st.sampled_from(list(rules.rules)))
    depths = variable_depths(rule.lhs)
    counter = draw(st.integers(min_value=0, max_value=10_000))

    def fresh_leaf():
        nonlocal counter
        counter += 1
        if draw(st.booleans()):
            return Const(counter)
        return Node("Id", (Const(f"v{counter}"),))

    def binding_at_depth(depth):
        if depth == 0:
            return fresh_leaf()
        k = draw(st.integers(min_value=0, max_value=3))
        return ListBinding(
            tuple(binding_at_depth(depth - 1) for _ in range(k))
        )

    examples = []
    for _ in range(n_pairs):
        env = {
            name: binding_at_depth(depths[name])
            for name in pattern_variables(rule.lhs)
        }
        try:
            surface = subst(env, rule.lhs)
        except SubstitutionError:
            assume(False)
            raise
        expansion = rules.expand(surface)
        assume(expansion is not None)
        examples.append((surface, strip_tags(expansion.term)))
    return tuple(examples), rules


@st.composite
def disjoint_rulelists(draw) -> RuleList:
    """A rulelist whose rules have pairwise-distinct outer labels (hence
    trivially disjoint LHSs)."""
    n = draw(st.integers(min_value=1, max_value=4))
    rules = []
    seen = set()
    for _ in range(n):
        rule = draw(wellformed_rules())
        if rule.label in seen:
            continue
        seen.add(rule.label)
        rules.append(rule)
    assume(rules)
    return RuleList(rules, DisjointnessMode.STRICT)
