"""Property-based tests of the lens laws and inverse theorems — the
stand-in for the paper's Coq development (section 6.4).

1. Matching is correct w.r.t. substitution      (test_matching.py)
2. Unification is correct w.r.t. matching       (test_unification.py)
3. Expansion/unexpansion of well-formed, disjoint rules obey the lens
   laws                                          (this file)
"""

from hypothesis import given, settings

from repro.core.desugar import desugar, resugar
from repro.core.lenses import (
    check_desugar_resugar_inverse,
    check_get_put,
    check_put_get,
    emulates,
)
from repro.core.rules import RuleList
from repro.core.tags import is_surface_term
from repro.core.wellformed import DisjointnessMode
from repro.lang.rule_parser import parse_rules, parse_term

from tests.strategies import disjoint_rulelists, terms


class TestLensLawsOnPaperRules:
    OR = RuleList(
        parse_rules(
            """
            Or([x, y]) -> Let([Binding("t", x)], If(Id("t"), Id("t"), y));
            Or([x, y, ys ...]) ->
                Let([Binding("t", x)], If(Id("t"), Id("t"), Or([y, ys ...])));
            """
        ),
        DisjointnessMode.PRIORITIZED,
    )

    def test_getput_on_or(self):
        for source in ("Or([A(), B()])", "Or([A(), B(), C()])"):
            assert check_get_put(self.OR, parse_term(source)) is True

    def test_getput_vacuous_when_no_rule_applies(self):
        assert check_get_put(self.OR, parse_term("Plain()")) is None

    def test_putget_on_freshly_expanded_terms(self):
        for source in ("Or([A(), B()])", "Or([A(), B(), C()])"):
            e = self.OR.expand(parse_term(source))
            assert check_put_get(self.OR, e.index, e.term, e.stand_in) is True

    def test_putget_violation_with_overlapping_max(self):
        rules = RuleList(
            parse_rules(
                """
                Max([]) -> Raise("empty list");
                Max(xs) -> MaxAcc(xs, -infinity);
                """
            ),
            DisjointnessMode.OFF,
        )
        reduced = parse_term("MaxAcc([], -infinity)")
        assert check_put_get(rules, 1, reduced) is False


class TestLensLawProperties:
    @given(disjoint_rulelists(), terms(max_leaves=10))
    @settings(max_examples=150)
    def test_getput_holds(self, rules, term):
        result = check_get_put(rules, term)
        assert result is not False

    @given(disjoint_rulelists(), terms(max_leaves=10))
    @settings(max_examples=150)
    def test_putget_holds_on_expansions(self, rules, term):
        e = rules.expand(term)
        if e is None:
            return
        result = check_put_get(rules, e.index, e.term, e.stand_in)
        assert result is not False

    @given(disjoint_rulelists(), terms(max_leaves=10))
    @settings(max_examples=150)
    def test_theorem_2_desugar_then_resugar(self, rules, term):
        assert check_desugar_resugar_inverse(rules, term)

    @given(disjoint_rulelists(), terms(max_leaves=10))
    @settings(max_examples=150)
    def test_theorem_2_resugar_then_desugar(self, rules, term):
        core = desugar(rules, term)
        surface = resugar(rules, core)
        if surface is None:
            return
        assert desugar(rules, surface) == core

    @given(disjoint_rulelists(), terms(max_leaves=10))
    @settings(max_examples=150)
    def test_resugared_terms_are_surface_terms(self, rules, term):
        # Lemma 2: resugaring produces surface terms.
        surface = resugar(rules, desugar(rules, term))
        if surface is not None:
            assert is_surface_term(surface)

    @given(disjoint_rulelists(), terms(max_leaves=10))
    @settings(max_examples=150)
    def test_emulation_of_resugared_terms(self, rules, term):
        # Theorem 3 at a single term.
        core = desugar(rules, term)
        surface = resugar(rules, core)
        if surface is not None:
            assert emulates(rules, surface, core)


class TestLemma3Idempotence:
    @given(disjoint_rulelists(), terms(max_leaves=10))
    @settings(max_examples=100)
    def test_desugar_idempotent_on_core_terms(self, rules, term):
        core = desugar(rules, term)
        assert desugar(rules, core) == core
