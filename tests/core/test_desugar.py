"""Unit tests for recursive desugaring and resugaring (section 5.2.2),
tracing the paper's section 3 examples step by step."""

import pytest

from repro.core.desugar import desugar, resugar, resugar_raw
from repro.core.errors import ExpansionError
from repro.core.rules import Rule, RuleList
from repro.core.tags import is_surface_term
from repro.core.terms import (
    Const,
    HeadTag,
    Node,
    PVar,
    Tagged,
    strip_tags,
)
from repro.core.wellformed import DisjointnessMode
from repro.lang.rule_parser import parse_rules, parse_term

OR_BINARY = """
Or([x, y]) -> Let([Binding("t", x)], If(Id("t"), Id("t"), y));
"""

OR_MULTI = """
Or([x, y]) -> Let([Binding("t", x)], If(Id("t"), Id("t"), y));
Or([x, y, ys ...]) -> Let([Binding("t", x)], If(Id("t"), Id("t"), Or([y, ys ...])));
"""

OR_MULTI_TRANSPARENT = """
Or([x, y]) -> Let([Binding("t", x)], If(Id("t"), Id("t"), y));
Or([x, y, ys ...]) -> Let([Binding("t", x)], If(Id("t"), Id("t"), !Or([y, ys ...])));
"""


def rules_of(source):
    return RuleList(parse_rules(source), DisjointnessMode.PRIORITIZED)


class TestDesugar:
    def test_desugar_produces_core_shape(self):
        rules = rules_of(OR_BINARY)
        t = parse_term("Or([Not(true), Not(false)])")
        core = desugar(rules, t)
        assert strip_tags(core) == parse_term(
            'Let([Binding("t", Not(true))], '
            'If(Id("t"), Id("t"), Not(false)))'
        )

    def test_desugar_tags_head(self):
        rules = rules_of(OR_BINARY)
        core = desugar(rules, parse_term("Or([A(), B()])"))
        assert isinstance(core, Tagged)
        assert isinstance(core.tag, HeadTag)
        assert core.tag.index == 0

    def test_desugar_is_identity_on_core_terms(self):
        # Lemma 3: desugaring is idempotent over core terms.
        rules = rules_of(OR_BINARY)
        core = desugar(rules, parse_term("Or([A(), B()])"))
        assert desugar(rules, core) == core

    def test_desugar_recursive_sugar(self):
        rules = rules_of(OR_MULTI)
        core = desugar(rules, parse_term("Or([A(), B(), C()])"))
        stripped = strip_tags(core)
        # The inner Or([B(), C()]) must itself be expanded.
        assert stripped == parse_term(
            'Let([Binding("t", A())], If(Id("t"), Id("t"), '
            'Let([Binding("t", B())], If(Id("t"), Id("t"), C()))))'
        )

    def test_desugar_under_lists_and_other_nodes(self):
        rules = rules_of(OR_BINARY)
        t = parse_term("Wrap([Or([A(), B()]), C()])")
        core = desugar(rules, t)
        assert strip_tags(core) == parse_term(
            'Wrap([Let([Binding("t", A())], If(Id("t"), Id("t"), B())), C()])'
        )

    def test_diverging_sugar_raises(self):
        loop = Rule(Node("Loop", (PVar("x"),)), Node("Loop", (PVar("x"),)))
        rules = RuleList([loop])
        with pytest.raises(ExpansionError, match="expansions"):
            desugar(rules, Node("Loop", (Const(1),)), max_expansions=50)

    def test_bottomup_order_agrees_on_simple_sugar(self):
        rules = rules_of(OR_MULTI)
        t = parse_term("Or([A(), B(), C()])")
        td = desugar(rules, t, order="topdown")
        bu = desugar(rules, t, order="bottomup")
        assert strip_tags(td) == strip_tags(bu)

    def test_unknown_order_rejected(self):
        rules = rules_of(OR_BINARY)
        with pytest.raises(ValueError):
            desugar(rules, Const(1), order="sideways")


class TestResugar:
    def test_resugar_inverts_desugar(self):
        # Theorem 2, forward direction.
        rules = rules_of(OR_MULTI)
        for source in (
            "Or([A(), B()])",
            "Or([A(), B(), C(), D()])",
            "Wrap([Or([A(), B()]), Or([C(), D(), E()])])",
            "Plain(1, 2)",
        ):
            t = parse_term(source)
            assert resugar(rules, desugar(rules, t)) == t

    def test_resugar_output_is_surface_term(self):
        rules = rules_of(OR_MULTI)
        core = desugar(rules, parse_term("Or([A(), B(), C()])"))
        out = resugar(rules, core)
        assert is_surface_term(out)

    def test_resugar_is_identity_on_surface_terms(self):
        # Lemma 3: resugaring is idempotent over surface terms.
        rules = rules_of(OR_BINARY)
        t = parse_term("Plain(Or2(1), [2, 3])")
        assert resugar(rules, t) == t

    def test_reduced_core_term_skips(self):
        # Third core step of section 3.2: the let is gone, so the term no
        # longer matches the Or RHS and must be skipped.
        rules = rules_of(OR_BINARY)
        core = desugar(rules, parse_term("Or([Not(true), Not(false)])"))
        # Simulate the evaluator reducing the let away: replace the tagged
        # body with the if-term (tags on the if survive evaluation).
        head_tag = core.tag
        let_body = core.term  # Tagged(Body, Let(...))
        if_term = let_body.term.children[1]  # Tagged(Body, If(...))
        reduced = Tagged(head_tag, if_term)
        assert resugar(rules, reduced) is None

    def test_user_written_core_code_is_not_unexpanded(self):
        # Section 3.2's Abstraction example: a user-written let/if of the
        # right shape must NOT resugar into Or.
        rules = rules_of(OR_BINARY)
        user_term = parse_term(
            'Let([Binding("t", Not(true))], If(Id("t"), Id("t"), Not(false)))'
        )
        # No tags: resugaring leaves it alone rather than inventing an Or.
        assert resugar(rules, user_term) == user_term


class TestTransparency:
    """Section 3.4: the Abstraction/Coverage trade-off."""

    def _after_outer_consumed(self, rules):
        """Build the core term that remains after evaluation consumes the
        outer Or's let and if, leaving only the (tagged) inner Or."""
        core = desugar(rules, parse_term("Or([A(), B(), C()])"))
        # core = Head1(Body(Let [..] (Body(If .. .. <inner>))))
        let_node = core.term.term
        if_tagged = let_node.children[1]
        inner = if_tagged.term.children[2]
        return inner

    def test_opaque_inner_or_is_hidden(self):
        rules = rules_of(OR_MULTI)
        inner = self._after_outer_consumed(rules)
        # The inner Or is wrapped in an *opaque* body tag: resugaring
        # must fail (skip), hiding the recursive invocation.
        assert resugar(rules, inner) is None

    def test_transparent_inner_or_is_shown(self):
        rules = rules_of(OR_MULTI_TRANSPARENT)
        inner = self._after_outer_consumed(rules)
        out = resugar(rules, inner)
        assert out == parse_term("Or([B(), C()])")

    def test_raw_resugar_keeps_body_tags(self):
        rules = rules_of(OR_MULTI_TRANSPARENT)
        inner = self._after_outer_consumed(rules)
        raw = resugar_raw(rules, inner)
        assert isinstance(raw, Tagged)  # transparent body tag retained
