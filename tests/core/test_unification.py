"""Unit and property tests for unification (the Coq development's second
theorem: unification is correct with respect to matching)."""

from hypothesis import given

from repro.core.matching import matches
from repro.core.terms import BodyTag, Const, Node, PList, PVar, Tagged
from repro.core.unification import rename_variables, subsumes, unify

from tests.strategies import linear_patterns, terms


class TestUnifyBasics:
    def test_equal_constants_unify(self):
        assert unify(Const(1), Const(1)) == Const(1)

    def test_unequal_constants_do_not(self):
        assert unify(Const(1), Const(2)) is None

    def test_variable_unifies_with_anything(self):
        t = Node("Foo", (Const(1),))
        assert unify(PVar("x"), t) == t
        assert unify(t, PVar("x")) == t

    def test_nodes_unify_componentwise(self):
        p = Node("Pair", (PVar("x"), Const(2)))
        q = Node("Pair", (Const(1), PVar("y")))
        assert unify(p, q) == Node("Pair", (Const(1), Const(2)))

    def test_label_mismatch(self):
        assert unify(Node("Foo", ()), Node("Bar", ())) is None

    def test_shared_variable_names_are_renamed_apart(self):
        # x in p and x in q are *different* variables (different rules).
        p = Node("Pair", (PVar("x"), Const(1)))
        q = Node("Pair", (Const(2), PVar("x")))
        assert unify(p, q) == Node("Pair", (Const(2), Const(1)))


class TestUnifyLists:
    def test_fixed_lists(self):
        p = PList((PVar("x"), Const(2)))
        q = PList((Const(1), PVar("y")))
        assert unify(p, q) == PList((Const(1), Const(2)))

    def test_fixed_length_mismatch(self):
        assert unify(PList((PVar("x"),)), PList(())) is None

    def test_fixed_vs_ellipsis(self):
        p = PList((Const(1),), PVar("rest"))  # [1, rest ...]
        q = PList((PVar("a"), PVar("b"), PVar("c")))  # length 3
        u = unify(p, q)
        assert isinstance(u, PList) and u.ellipsis is None
        assert len(u.items) == 3
        assert u.items[0] == Const(1)

    def test_fixed_too_short_for_ellipsis_prefix(self):
        p = PList((PVar("x"), PVar("y")), PVar("rest"))  # length >= 2
        q = PList((Const(1),))  # length 1
        assert unify(p, q) is None

    def test_ellipsis_vs_ellipsis(self):
        p = PList((Const(1),), PVar("xs"))  # [1, xs ...]
        q = PList((PVar("a"), Const(2)), PVar("ys"))  # [a, 2, ys ...]
        u = unify(p, q)
        assert isinstance(u, PList)
        assert u.items[:2] == (Const(1), Const(2))
        assert u.ellipsis is not None

    def test_incompatible_tails_leave_fixed_overlap(self):
        # [1 ...] vs [x, 2 ...]: lists of length exactly 1 starting with 1
        # match both; longer lists would need an element equal to both
        # 1 and 2.
        p = PList((), Const(1))
        q = PList((PVar("x"),), Const(2))
        u = unify(p, q)
        assert u == PList((Const(1),))


class TestUnifyTags:
    def test_equal_tags_unify(self):
        p = Tagged(BodyTag(), PVar("x"))
        q = Tagged(BodyTag(), Const(1))
        assert unify(p, q) == Tagged(BodyTag(), Const(1))

    def test_tagged_vs_untagged_disjoint(self):
        p = Tagged(BodyTag(), Const(1))
        assert unify(p, Const(1)) is None


class TestSubsumes:
    def test_variable_subsumes_everything(self):
        assert subsumes(PVar("x"), Node("Foo", (Const(1),)))

    def test_nothing_subsumes_a_variable_except_a_variable(self):
        assert not subsumes(Const(1), PVar("x"))
        assert subsumes(PVar("y"), PVar("x"))

    def test_or_rules_from_the_paper(self):
        # Or([x, y]) is subsumed by Or([x, y, ys ...]): every binary Or
        # also matches the variadic pattern.  This is the PRIORITIZED
        # disjointness case.
        binary = Node("Or", (PList((PVar("x"), PVar("y"))),))
        variadic = Node(
            "Or", (PList((PVar("x"), PVar("y")), PVar("ys")),)
        )
        assert subsumes(variadic, binary)
        assert not subsumes(binary, variadic)

    def test_ellipsis_subsumes_shorter_ellipsis(self):
        shorter = PList((PVar("a"),), PVar("xs"))  # length >= 1
        longer = PList((PVar("a"), PVar("b")), PVar("xs"))  # length >= 2
        assert subsumes(shorter, longer)
        assert not subsumes(longer, shorter)


class TestUnificationProperties:
    """Soundness: any term matching the unifier matches both inputs.
    Completeness on sampled terms: a term matching both inputs matches
    the unifier (so unify never wrongly reports disjointness)."""

    @given(linear_patterns(), linear_patterns(), terms(max_leaves=6))
    def test_sound_and_complete_on_samples(self, p, q, t):
        u = unify(p, q)
        both = matches(t, p) and matches(t, rename_variables(q, "~q"))
        if u is None:
            assert not both
        elif both:
            assert matches(t, u)

    @given(linear_patterns(), terms(max_leaves=6))
    def test_unifier_matches_imply_input_matches(self, p, t):
        q = PVar("anything")
        u = unify(p, q)
        assert u is not None
        if matches(t, u):
            assert matches(t, p)

    @given(linear_patterns(), linear_patterns())
    def test_subsumption_implies_unifiability(self, p, q):
        if subsumes(p, q):
            # q's language is nonempty only if q can be instantiated;
            # unify(p, q) must exist because q itself is in both languages
            # whenever it is instantiable.  We only check coherence:
            # subsumption with a ground q means q matches p.
            from repro.core.terms import is_term

            if is_term(q):
                assert matches(q, p)
