"""Tests for the hygiene linter."""

from repro.core.hygiene import lint_hygiene
from repro.lang.rule_parser import parse_rules
from repro.sugars.automaton import make_automaton_rules
from repro.sugars.pyret_sugars import make_pyret_rules
from repro.sugars.returns import make_return_rules
from repro.sugars.scheme_sugars import make_scheme_rules


class TestLinting:
    def test_reserved_binders_are_clean(self):
        rules = parse_rules(
            'Or2(x, y) -> Let([Binding("%t", x)], If(Id("%t"), Id("%t"), y));'
        )
        assert lint_hygiene(rules) == []

    def test_capturable_binder_flagged(self):
        # The paper's own Or rule binds plain "t": a user program with a
        # variable t under the Or would be captured.
        rules = parse_rules(
            'Or2(x, y) -> Let([Binding("t", x)], If(Id("t"), Id("t"), y));'
        )
        warnings = lint_hygiene(rules)
        assert [w.kind for w in warnings] == ["capturable-binder"]
        assert warnings[0].name == "t"
        assert "captured" in str(warnings[0])

    def test_free_internal_reference_flagged(self):
        # Referencing %RET without binding it is the Return sugar's
        # cross-rule contract; the linter surfaces it.
        rules = parse_rules('Ret(x) -> App(Id("%RET"), x);')
        warnings = lint_hygiene(rules)
        assert [w.kind for w in warnings] == ["free-internal-reference"]
        assert warnings[0].name == "%RET"

    def test_lambda_parameter_lists_handled(self):
        rules = parse_rules('F(b) -> Lam(["user_name"], b);')
        warnings = lint_hygiene(rules)
        assert [w.name for w in warnings] == ["user_name"]

    def test_binder_from_pattern_variable_is_not_flagged(self):
        # A binder name that comes from the *user's* program (a pattern
        # variable) is not rule-introduced.
        rules = parse_rules("F(name, e, b) -> Let(name, e, b);")
        assert lint_hygiene(rules) == []


class TestBundledSugars:
    def test_scheme_tower_is_convention_clean(self):
        warnings = lint_hygiene(make_scheme_rules())
        assert [w for w in warnings if w.kind == "capturable-binder"] == []

    def test_automaton_is_convention_clean(self):
        warnings = lint_hygiene(make_automaton_rules())
        assert [w for w in warnings if w.kind == "capturable-binder"] == []

    def test_pyret_suite_is_convention_clean(self):
        warnings = lint_hygiene(make_pyret_rules(with_datatype=True))
        assert [w for w in warnings if w.kind == "capturable-binder"] == []

    def test_return_sugar_flags_its_known_contract(self):
        # %RET flows between the Fun and Return rules by design; the
        # linter reports it as a free internal reference, documenting
        # the unhygienic contract the module docstring describes.
        warnings = lint_hygiene(make_return_rules())
        frees = {w.name for w in warnings if w.kind == "free-internal-reference"}
        assert "%RET" in frees
