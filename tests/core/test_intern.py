"""Hash-consing (:mod:`repro.core.intern`): canonicalization semantics.

Interning must be transparent — the canonical term is structurally equal
to its input — while making structural equality coincide with pointer
identity for ground terms, across rebuilds and against lookalike values
(``True`` vs ``1``, ``1`` vs ``1.0``, symbols vs strings).
"""

import pytest

from repro.core import clear_intern_caches, intern, intern_stats, is_interned
from repro.core.errors import ExpansionError
from repro.core.incremental import ResugarCache
from repro.core.rules import Rule, RuleList
from repro.core.terms import (
    BodyTag,
    Const,
    Node,
    PList,
    PVar,
    Symbol,
    Tagged,
)


def _tree():
    return Node(
        "Add",
        (
            Node("Num", (Const(1),)),
            Node(
                "Mul",
                (Node("Num", (Const(2),)), Node("Num", (Const(3),))),
            ),
        ),
    )


class TestCanonicalization:
    def test_structurally_equal_terms_become_identical(self):
        a, b = intern(_tree()), intern(_tree())
        assert a is b

    def test_interning_preserves_equality(self):
        t = _tree()
        assert intern(t) == t

    def test_idempotent(self):
        t = intern(_tree())
        assert intern(t) is t
        assert is_interned(t)

    def test_shared_subterms_are_shared_objects(self):
        a = intern(Node("Pair", (_tree(), _tree())))
        assert a.children[0] is a.children[1]

    def test_plists_intern(self):
        a = intern(PList((Const(1), Const(2))))
        b = intern(PList((Const(1), Const(2))))
        assert a is b

    def test_tagged_interns_by_tag_and_body(self):
        a = intern(Tagged(BodyTag(), Const(1)))
        b = intern(Tagged(BodyTag(), Const(1)))
        assert a is b
        other = intern(Tagged(BodyTag(transparent=True), Const(1)))
        assert other is not a


class TestValueDistinctions:
    """Const equality is type-aware; interning must not blur it."""

    @pytest.mark.parametrize(
        "left, right",
        [
            (True, 1),
            (False, 0),
            (1, 1.0),
            (Symbol("x"), "x"),
            (0, 0.0),
        ],
    )
    def test_lookalike_consts_stay_distinct(self, left, right):
        assert intern(Const(left)) is not intern(Const(right))

    def test_equal_symbols_unify(self):
        assert intern(Const(Symbol("x"))) is intern(Const(Symbol("x")))


class TestPatternPassthrough:
    def test_pvar_is_not_interned(self):
        v = PVar("x")
        assert intern(v) is v
        assert not is_interned(v)

    def test_node_containing_pvar_passes_through(self):
        pattern = Node("Or", (PVar("x"),))
        assert intern(pattern) is pattern
        assert not is_interned(pattern)

    def test_ground_subterms_of_patterns_still_canonicalize(self):
        ground = Node("Num", (Const(7),))
        intern(Node("Or", (ground, PVar("x"))))
        # The ground subterm entered the table during the pattern walk:
        # re-interning an equal fresh term is pure hits, no new entries.
        misses = intern_stats()["misses"]
        canon = intern(Node("Num", (Const(7),)))
        assert intern_stats()["misses"] == misses
        assert is_interned(canon)
        assert canon == ground

    def test_ellipsis_plist_passes_through(self):
        pattern = PList((PVar("x"),), ellipsis=PVar("xs"))
        assert intern(pattern) is pattern


class TestGenerations:
    def test_clear_invalidates_stamps(self):
        canon = intern(_tree())
        assert is_interned(canon)
        clear_intern_caches()
        assert not is_interned(canon)
        fresh = intern(_tree())
        assert fresh == canon
        assert is_interned(fresh)

    def test_stats_track_table_and_generation(self):
        clear_intern_caches()
        before = intern_stats()
        intern(_tree())
        after = intern_stats()
        assert after["generation"] == before["generation"]
        assert after["size"] > before["size"]
        assert after["misses"] > before["misses"]
        intern(_tree())
        assert intern_stats()["hits"] > after["hits"]

    def test_resugar_cache_refuses_stale_generation(self):
        rules = RuleList([Rule(Node("Two", ()), Node("Num", (Const(2),)))])
        cache = ResugarCache(rules)
        cache.resugar(intern(Node("Num", (Const(1),))))
        clear_intern_caches()
        with pytest.raises(ExpansionError):
            cache.resugar(intern(Node("Num", (Const(1),))))
