"""Unit tests for the static checks (sections 5.1.3 and 5.1.5)."""

import pytest

from repro.core.errors import DisjointnessError, WellFormednessError
from repro.core.rules import Rule, RuleList
from repro.core.terms import Const, Node, PList, PVar
from repro.core.wellformed import (
    DisjointnessMode,
    check_disjointness,
    check_rule_wellformed,
    ellipsis_variable_sets,
)


def node(label, *children):
    return Node(label, tuple(children))


class TestCriterion1:
    def test_rhs_variable_must_appear_in_lhs(self):
        with pytest.raises(WellFormednessError, match="criterion 1"):
            check_rule_wellformed(node("Foo", PVar("x")), PVar("y"))

    def test_lhs_may_drop_variables(self):
        # Rules may "forget" information (section 5.1.4).
        check_rule_wellformed(node("Foo", PVar("x"), PVar("y")), PVar("x"))


class TestCriterion2:
    def test_duplicate_lhs_variable_rejected(self):
        with pytest.raises(WellFormednessError, match="criterion 2"):
            check_rule_wellformed(node("Foo", PVar("x"), PVar("x")), PVar("x"))

    def test_duplicate_rhs_variable_rejected(self):
        with pytest.raises(WellFormednessError, match="criterion 2"):
            check_rule_wellformed(
                node("Foo", PVar("x")), node("Bar", PVar("x"), PVar("x"))
            )

    def test_declared_atomic_variables_may_duplicate(self):
        check_rule_wellformed(
            node("Foo", PVar("x")),
            node("Bar", PVar("x"), PVar("x")),
            atomic_vars=("x",),
        )


class TestCriterion3:
    def test_ellipsis_without_variables_rejected(self):
        # The paper's (3 ...) example.
        with pytest.raises(WellFormednessError, match="criterion 3"):
            check_rule_wellformed(
                node("Foo", PList((), Const(3))), node("Bar")
            )

    def test_rhs_ellipsis_variable_at_too_shallow_lhs_depth(self):
        # x is at depth 0 in the LHS but under an ellipsis (depth 1) in
        # the RHS: the repetition count is undetermined.
        with pytest.raises(WellFormednessError, match="criterion 3"):
            check_rule_wellformed(
                node("Foo", PVar("x")),
                node("Bar", PList((), PVar("x"))),
            )

    def test_matching_depths_accepted(self):
        check_rule_wellformed(
            node("Foo", PList((), PVar("x"))),
            node("Bar", PList((), PVar("x"))),
        )

    def test_one_qualifying_variable_suffices(self):
        # The LHS ellipsis contains x and y; only x reappears in the RHS
        # (at the right depth), and that one qualifying variable is
        # enough — y rides in the stand-in environment.
        check_rule_wellformed(
            node("Foo", PList((), node("Pair", PVar("x"), PVar("y")))),
            node("Bar", PList((), PVar("x"))),
        )

    def test_shallower_on_other_side_rejected(self):
        # x sits at depth 2 in the LHS but depth 1 in the RHS: matching
        # the RHS in reverse binds x one level too shallow for the LHS
        # template, so the rule must be rejected.
        with pytest.raises(WellFormednessError, match="criterion 3"):
            check_rule_wellformed(
                node("Foo", PList((), PList((), PVar("x")))),
                node("Bar", PList((), PVar("x"))),
            )

    def test_dropped_ellipsis_variable_accepted(self):
        # An LHS ellipsis variable absent from the RHS is fine: it is
        # carried by the stand-in environment.
        check_rule_wellformed(
            node("Foo", PList((), PVar("x"))), node("Bar")
        )

    def test_ellipsis_variable_sets(self):
        p = node("Foo", PList((PVar("a"),), node("B", PVar("x"))))
        assert ellipsis_variable_sets(p) == ((1, ("x",)),)


class TestCriterion4:
    def test_lhs_must_be_labeled_node(self):
        with pytest.raises(WellFormednessError, match="criterion 4"):
            check_rule_wellformed(PVar("x"), PVar("x"))
        with pytest.raises(WellFormednessError, match="criterion 4"):
            check_rule_wellformed(PList((PVar("x"),)), PVar("x"))


class TestDisjointness:
    max_rules = [
        # The paper's problematic Max pair (section 5.1.5).
        Node("Max", (PList(()),)),
        Node("Max", (PVar("xs"),)),
    ]
    fixed_max_rules = [
        Node("Max", (PList(()),)),
        Node("Max", (PList((PVar("x"),), PVar("xs")),)),
    ]

    def test_overlapping_max_rules_rejected(self):
        with pytest.raises(DisjointnessError):
            check_disjointness(self.max_rules, DisjointnessMode.STRICT)

    def test_fixed_max_rules_accepted(self):
        check_disjointness(self.fixed_max_rules, DisjointnessMode.STRICT)

    def test_off_mode_accepts_anything(self):
        check_disjointness(self.max_rules, DisjointnessMode.OFF)

    def test_prioritized_rejects_max(self):
        # Max's overlap is not the subsumption pattern: Max(xs) subsumes
        # Max([]) but the *range* of rule 2's unexpansion includes
        # Max([]).  PRIORITIZED accepts it (subsumption holds), so the
        # dynamic emulation check is the real guard; STRICT rejects.
        check_disjointness(self.max_rules, DisjointnessMode.PRIORITIZED)
        with pytest.raises(DisjointnessError):
            check_disjointness(self.max_rules, DisjointnessMode.STRICT)

    def test_prioritized_accepts_or(self):
        or_rules = [
            Node("Or", (PList((PVar("x"), PVar("y"))),)),
            Node("Or", (PList((PVar("x"), PVar("y")), PVar("ys")),)),
        ]
        with pytest.raises(DisjointnessError):
            check_disjointness(or_rules, DisjointnessMode.STRICT)
        check_disjointness(or_rules, DisjointnessMode.PRIORITIZED)

    def test_prioritized_rejects_non_subsuming_overlap(self):
        rules = [
            Node("F", (PVar("x"), Const(1))),
            Node("F", (Const(2), PVar("y"))),
        ]
        with pytest.raises(DisjointnessError):
            check_disjointness(rules, DisjointnessMode.PRIORITIZED)

    def test_different_labels_are_disjoint(self):
        check_disjointness(
            [Node("A", (PVar("x"),)), Node("B", (PVar("x"),))],
            DisjointnessMode.STRICT,
        )


class TestRuleListConstruction:
    def test_rulelist_runs_checks(self):
        rules = [
            Rule(Node("Max", (PList(()),)), Node("RaiseEmpty")),
            Rule(
                Node("Max", (PVar("xs"),)),
                Node("MaxAcc", (PVar("xs"), Const(float("-inf")))),
            ),
        ]
        with pytest.raises(DisjointnessError):
            RuleList(rules, DisjointnessMode.STRICT)
        RuleList(rules, DisjointnessMode.OFF)
