"""Unit tests for the term/pattern representation."""

import pytest

from repro.core.errors import PatternError
from repro.core.terms import (
    BodyTag,
    Const,
    HeadTag,
    Node,
    PList,
    PVar,
    Symbol,
    Tagged,
    is_atomic,
    is_term,
    pattern_variables,
    strip_body_tags,
    strip_tags,
    subterms,
    term_depth,
    term_size,
    variable_depths,
)


class TestConst:
    def test_accepts_atoms(self):
        for value in (1, 2.5, "s", True, None, Symbol("x")):
            assert Const(value).value == value

    def test_rejects_non_atoms(self):
        with pytest.raises(PatternError):
            Const([1, 2])

    def test_bool_is_not_int(self):
        assert Const(True) != Const(1)
        assert Const(False) != Const(0)

    def test_int_is_not_float(self):
        assert Const(1) != Const(1.0)

    def test_symbol_is_not_string(self):
        assert Const(Symbol("x")) != Const("x")

    def test_equal_consts_hash_equal(self):
        assert hash(Const(3)) == hash(Const(3))
        assert Const(3) == Const(3)


class TestStructure:
    def test_node_children_normalized_to_tuple(self):
        n = Node("Foo", [Const(1), Const(2)])
        assert isinstance(n.children, tuple)

    def test_node_label_must_be_nonempty(self):
        with pytest.raises(PatternError):
            Node("", ())

    def test_plist_equality(self):
        assert PList((Const(1),)) == PList((Const(1),))
        assert PList((Const(1),)) != PList((Const(1),), PVar("x"))

    def test_tagged_requires_tag(self):
        with pytest.raises(PatternError):
            Tagged("not a tag", Const(1))


class TestIsTerm:
    def test_constants_are_terms(self):
        assert is_term(Const(1))
        assert is_atomic(Const(1))

    def test_variables_are_not_terms(self):
        assert not is_term(PVar("x"))
        assert not is_term(Node("Foo", (PVar("x"),)))

    def test_ellipses_are_not_terms(self):
        assert not is_term(PList((), Const(1)))

    def test_tagged_term(self):
        assert is_term(Tagged(BodyTag(), Node("Foo", ())))
        assert not is_term(Tagged(BodyTag(), PVar("x")))


class TestVariables:
    def test_pattern_variables_in_order_with_duplicates(self):
        p = Node("Foo", (PVar("x"), PList((PVar("y"),), PVar("x"))))
        assert pattern_variables(p) == ("x", "y", "x")

    def test_variable_depths(self):
        p = Node(
            "Foo",
            (
                PVar("a"),
                PList((), Node("Bar", (PVar("b"), PList((), PVar("c"))))),
            ),
        )
        assert variable_depths(p) == {"a": 0, "b": 1, "c": 2}


class TestStripTags:
    def test_strip_all_tags(self):
        t = Tagged(
            HeadTag(0),
            Node("Foo", (Tagged(BodyTag(), Const(1)),)),
        )
        assert strip_tags(t) == Node("Foo", (Const(1),))

    def test_strip_transparent_only(self):
        t = Node(
            "Foo",
            (
                Tagged(BodyTag(transparent=True), Const(1)),
                Tagged(BodyTag(transparent=False), Const(2)),
            ),
        )
        stripped = strip_body_tags(t, transparent_only=True)
        assert stripped == Node(
            "Foo", (Const(1), Tagged(BodyTag(transparent=False), Const(2)))
        )

    def test_strip_all_body_tags(self):
        t = Node("Foo", (Tagged(BodyTag(False), Const(2)),))
        assert strip_body_tags(t, transparent_only=False) == Node("Foo", (Const(2),))


class TestMetrics:
    def test_term_size_ignores_tags(self):
        t = Tagged(BodyTag(), Node("Foo", (Const(1), Const(2))))
        assert term_size(t) == 3

    def test_term_depth(self):
        assert term_depth(Const(1)) == 1
        assert term_depth(Node("Foo", (Node("Bar", (Const(1),)),))) == 3

    def test_subterms_preorder(self):
        t = Node("Foo", (Const(1), PList((Const(2),))))
        listed = list(subterms(t))
        assert listed[0] == t
        assert Const(2) in listed
        assert len(listed) == 4
