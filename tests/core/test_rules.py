"""Unit tests for rule expansion and unexpansion (section 5.1.4),
including the paper's running Or and Max examples."""

import pytest

from repro.core.errors import ExpansionError
from repro.core.rules import Rule, RuleList
from repro.core.terms import (
    BodyTag,
    Const,
    Node,
    PVar,
    strip_tags,
)
from repro.core.wellformed import DisjointnessMode
from repro.lang.rule_parser import parse_rules, parse_term


OR_SOURCE = """
Or([x, y]) -> Let([Binding("t", x)], If(Id("t"), Id("t"), y));
Or([x, y, ys ...]) -> Let([Binding("t", x)], If(Id("t"), Id("t"), Or([y, ys ...])));
"""


@pytest.fixture
def or_rules():
    return RuleList(parse_rules(OR_SOURCE), DisjointnessMode.PRIORITIZED)


class TestExpansion:
    def test_binary_or_uses_first_rule(self, or_rules):
        t = parse_term('Or([True_(), False_()])')
        expansion = or_rules.expand(t)
        assert expansion is not None
        assert expansion.index == 0
        expected = parse_term(
            'Let([Binding("t", True_())], If(Id("t"), Id("t"), False_()))'
        )
        assert strip_tags(expansion.term) == expected

    def test_variadic_or_uses_second_rule(self, or_rules):
        t = parse_term('Or([A(), B(), C()])')
        expansion = or_rules.expand(t)
        assert expansion is not None
        assert expansion.index == 1
        expected = parse_term(
            'Let([Binding("t", A())], If(Id("t"), Id("t"), Or([B(), C()])))'
        )
        assert strip_tags(expansion.term) == expected

    def test_matching_example_from_section_5_1_2(self):
        # Or([true, Not(true), false, true]) against Or([x, y, ys ...]).
        rules = RuleList(parse_rules(OR_SOURCE), DisjointnessMode.PRIORITIZED)
        t = parse_term("Or([true, Not(true), false, true])")
        expansion = rules.expand(t)
        assert expansion is not None
        expected = parse_term(
            'Let([Binding("t", true)], '
            "If(Id(\"t\"), Id(\"t\"), Or([Not(true), false, true])))"
        )
        assert strip_tags(expansion.term) == expected

    def test_no_rule_applies(self, or_rules):
        assert or_rules.expand(parse_term("And([A(), B()])")) is None
        assert or_rules.expand(Const(3)) is None

    def test_expansion_result_carries_body_tags(self, or_rules):
        expansion = or_rules.expand(parse_term("Or([A(), B()])"))
        assert isinstance(expansion.term.tag, BodyTag)


class TestUnexpansion:
    def test_unexpand_inverts_expand(self, or_rules):
        t = parse_term("Or([A(), B()])")
        e = or_rules.expand(t)
        assert or_rules.unexpand(e.index, e.term, e.stand_in) == t

    def test_unexpand_fails_on_reduced_term(self, or_rules):
        # After the let reduces away, the term no longer matches the RHS.
        reduced = parse_term('If(False_(), False_(), B())')
        assert or_rules.unexpand(0, reduced) is None

    def test_unexpand_bad_index_raises(self, or_rules):
        with pytest.raises(ExpansionError):
            or_rules.unexpand(99, Const(1))


class TestStandIn:
    def test_dropped_variables_restored_from_stand_in(self):
        # Ignore(x, y) -> Keep(x): y is dropped and must come back.
        rule = Rule(
            Node("Ignore", (PVar("x"), PVar("y"))),
            Node("Keep", (PVar("x"),)),
        )
        rules = RuleList([rule])
        t = Node("Ignore", (Const(1), Const(2)))
        e = rules.expand(t)
        assert e.stand_in == (("y", Const(2)),)
        assert rules.unexpand(e.index, e.term, e.stand_in) == t

    def test_dropped_vars_listed_on_rule(self):
        rule = Rule(
            Node("Ignore", (PVar("x"), PVar("y"))),
            Node("Keep", (PVar("x"),)),
        )
        assert rule.dropped_vars == ("y",)


class TestMaxExample:
    """Section 5.1.5: overlapping rules break Emulation; the disjoint
    rewrite fixes it."""

    BROKEN = """
    Max([]) -> Raise("empty list");
    Max(xs) -> MaxAcc(xs, -infinity);
    """
    FIXED = """
    Max([]) -> Raise("Max: given empty list");
    Max([x, xs ...]) -> MaxAcc([x, xs ...], -infinity);
    """

    def test_broken_rules_violate_putget(self):
        rules = RuleList(parse_rules(self.BROKEN), DisjointnessMode.OFF)
        # Core term after one reduction step: MaxAcc([], -infinity).
        reduced = parse_term("MaxAcc([], -infinity)")
        # Tag-wise, unexpansion is attempted through rule 1's RHS.
        surface = rules.unexpand(1, reduced)
        assert surface == parse_term("Max([])")
        # Re-expanding that surface term picks rule 0 -- a different core
        # term.  PutGet (and with it Emulation) is violated.
        e = rules.expand(surface)
        assert e.index == 0
        assert strip_tags(e.term) == parse_term('Raise("empty list")')

    def test_fixed_rules_skip_the_step(self):
        rules = RuleList(parse_rules(self.FIXED), DisjointnessMode.STRICT)
        reduced = parse_term("MaxAcc([], -infinity)")
        # [] does not match [x, xs ...] (length >= 1): unexpansion fails,
        # the step is skipped, Emulation preserved.
        assert rules.unexpand(1, reduced) is None

    def test_fixed_rules_unexpand_nonempty(self):
        rules = RuleList(parse_rules(self.FIXED), DisjointnessMode.STRICT)
        t = parse_term("Max([1, 2, 3])")
        e = rules.expand(t)
        assert e.index == 1
        assert rules.unexpand(e.index, e.term, e.stand_in) == t
