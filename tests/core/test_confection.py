"""Tests for the Confection facade: the user-facing API surface."""

import pytest

from repro import Confection
from repro.core import DisjointnessMode, RuleList
from repro.core.errors import DisjointnessError
from repro.lambdacore import make_stepper, parse_program
from repro.lang import parse_rules, parse_term
from repro.sugars.scheme_sugars import make_scheme_rules

OR_DSL = """
Or([x, y]) -> Let([Binding("t", x)], If(Id("t"), Id("t"), y));
"""


class TestConstruction:
    def test_from_dsl_source(self):
        conf = Confection(OR_DSL)
        assert isinstance(conf.rules, RuleList)
        assert conf.rules.rewrites_label("Or")

    def test_from_rule_list(self):
        conf = Confection(make_scheme_rules())
        assert conf.rules.rewrites_label("Letrec")

    def test_from_rule_objects(self):
        conf = Confection(parse_rules(OR_DSL))
        assert len(conf.rules) == 1

    def test_disjointness_mode_forwarded(self):
        overlapping = """
        Max([]) -> Raise("empty");
        Max(xs) -> MaxAcc(xs, -infinity);
        """
        with pytest.raises(DisjointnessError):
            Confection(overlapping, disjointness=DisjointnessMode.STRICT)
        Confection(overlapping, disjointness=DisjointnessMode.OFF)


class TestTermCoercion:
    def test_string_terms_parse(self):
        conf = Confection(OR_DSL)
        core = conf.desugar("Or([A(), B()])")
        assert conf.resugar(core) == parse_term("Or([A(), B()])")

    def test_pattern_terms_pass_through(self):
        conf = Confection(OR_DSL)
        t = parse_term("Or([A(), B()])")
        assert conf.term(t) is t

    def test_show_hides_tags(self):
        conf = Confection(OR_DSL)
        core = conf.desugar("Or([A(), B()])")
        shown = Confection.show(core)
        assert "⟨" not in shown and "#" not in shown


class TestLifting:
    def test_lift_requires_stepper(self):
        conf = Confection(OR_DSL)
        with pytest.raises(ValueError, match="no stepper"):
            conf.lift("Or([A(), B()])")

    def test_surface_steps_and_show_steps(self):
        conf = Confection(make_scheme_rules(), make_stepper())
        program = parse_program("(or #t #f)")
        steps = conf.surface_steps(program)
        shown = conf.show_steps(program)
        assert len(steps) == len(shown)
        assert all(isinstance(s, str) for s in shown)

    def test_lift_tree_requires_stepper(self):
        conf = Confection(OR_DSL)
        with pytest.raises(ValueError):
            conf.lift_tree("Or([A(), B()])")

    def test_lift_tree_over_amb(self):
        conf = Confection(make_scheme_rules(), make_stepper())
        tree = conf.lift_tree(parse_program("(or (amb #t #f) #t)"))
        leaves = {str(tree.nodes[n]) for n in tree.leaves()}
        # Both branches end in #t (amb #f falls through the or).
        assert leaves == {"true"}
        assert tree.root is not None

    def test_kwargs_forwarded(self):
        conf = Confection(make_scheme_rules(), make_stepper())
        result = conf.lift(parse_program("(or #t #f)"), dedup=False)
        assert result.shown_count >= 2
