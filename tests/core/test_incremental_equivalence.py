"""The optimized lifter is *observably identical* to the naive one.

``lift_evaluation``/``lift_evaluation_tree`` take an ``incremental``
flag; the default (True) routes resugaring and emulation checking
through a :class:`~repro.core.incremental.ResugarCache`.  These tests
pin the contract that the flag is invisible in the output: byte-identical
surface sequences and trees over the whole golden corpus (Or, Automaton,
return/callcc, and the Pyret sugars), the nondeterministic ``amb`` tree,
plus unit tests for the cache's reuse and invalidation behaviour.
"""

from pathlib import Path

import pytest

from repro.confection import Confection
from repro.core.desugar import resugar
from repro.core.incremental import ResugarCache
from repro.core.intern import intern
from repro.lambdacore import make_stepper, parse_program
from repro.sugars.scheme_sugars import make_scheme_rules
from tests.test_golden_traces import (
    GOLDEN_FILES,
    _configs,
    lift_kwargs,
    parse_golden,
)


@pytest.mark.parametrize(
    "path", GOLDEN_FILES, ids=[p.stem for p in GOLDEN_FILES]
)
def test_incremental_lift_matches_naive_on_golden_corpus(path: Path):
    sugar, program, _expected, _stats, options = parse_golden(path)
    make_rules, make_stepper_, parse, _pretty = _configs()[sugar]
    confection = Confection(make_rules(), make_stepper_())
    term = parse(program)
    kwargs = lift_kwargs(options)

    naive = confection.lift(term, incremental=False, **kwargs)
    inc = confection.lift(term, incremental=True, **kwargs)

    assert inc.surface_sequence == naive.surface_sequence
    assert len(inc.steps) == len(naive.steps)
    for a, b in zip(inc.steps, naive.steps):
        assert a.emitted == b.emitted
        assert a.skipped == b.skipped
        assert a.surface_term == b.surface_term
    assert naive.cache_stats is None
    assert inc.cache_stats is not None


def test_incremental_tree_matches_naive_on_amb():
    confection = Confection(make_scheme_rules(), make_stepper())
    program = parse_program("(+ (amb 1 10) (amb 2 (or #f 20)))")

    naive = confection.lift_tree(program, incremental=False)
    inc = confection.lift_tree(program, incremental=True)

    assert inc.root == naive.root
    assert inc.edges == naive.edges
    assert set(inc.nodes) == set(naive.nodes)
    for node_id in naive.nodes:
        assert inc.nodes[node_id] == naive.nodes[node_id]
    assert inc.core_node_count == naive.core_node_count
    assert inc.skipped_count == naive.skipped_count
    assert inc.depth() == naive.depth()
    assert sorted(inc.leaves()) == sorted(naive.leaves())


class TestResugarCacheReuse:
    """A reduction step rewrites one spine; the cache must recompute only
    that spine and still answer correctly."""

    def _setup(self):
        rules = make_scheme_rules()
        stepper = make_stepper()
        program = parse_program("(or " + " ".join(["#f"] * 8) + " #t)")
        confection = Confection(rules, stepper)
        core = confection.desugar(program)
        return rules, stepper, core

    def test_rewritten_subterm_invalidates_only_its_spine(self):
        rules, stepper, core = self._setup()
        cache = ResugarCache(rules)

        first = cache.resugar(core)
        assert first == resugar(rules, core)
        visits_after_first = cache.stats.resugar_visits

        # Step the core term: one spine rewritten, the rest shared.
        state = stepper.load(core)
        (state,) = stepper.step(state)
        stepped = stepper.term(state)

        second = cache.resugar(stepped)
        assert second == resugar(rules, stepped)
        new_visits = cache.stats.resugar_visits - visits_after_first
        # Recomputation is localized: far fewer fresh visits than the
        # first (whole-term) pass, and real sharing was exploited.
        assert 0 < new_visits < visits_after_first
        assert cache.stats.resugar_hits > 0

    def test_repeat_resugar_is_pure_cache_hit(self):
        rules, _stepper, core = self._setup()
        cache = ResugarCache(rules)
        first = cache.resugar(core)
        visits = cache.stats.resugar_visits
        again = cache.resugar(core)
        assert again == first
        assert cache.stats.resugar_visits == visits

    def test_emulates_agrees_with_reference(self):
        from repro.core.lenses import emulates

        rules, _stepper, core = self._setup()
        cache = ResugarCache(rules)
        surface = cache.resugar(core)
        assert surface is not None
        assert cache.emulates(surface, core)
        assert emulates(rules, surface, core)
        # A surface term that does not desugar to this core term.
        wrong = intern(parse_program("(or #t)"))
        assert not cache.emulates(wrong, core)
        assert not emulates(rules, wrong, core)

    def test_desugar_agrees_with_reference(self):
        from repro.core.desugar import desugar

        rules, _stepper, _core = self._setup()
        cache = ResugarCache(rules)
        program = parse_program("(or #f (and #t #f))")
        assert cache.desugar(program) == desugar(rules, program)
        # Second desugar of a shared subprogram reuses the memo.
        hits_before = cache.stats.desugar_hits
        cache.desugar(parse_program("(or #f (and #t #f))"))
        assert cache.stats.desugar_hits > hits_before
