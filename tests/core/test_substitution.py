"""Unit tests for substitution and bindings (Figures 2-3)."""

import pytest

from repro.core.bindings import (
    EllipsisBinding,
    ListBinding,
    merge,
    restrict,
    right_biased_union,
    split,
    to_term,
    union,
    without,
)
from repro.core.errors import PatternError, SubstitutionError
from repro.core.substitution import subst
from repro.core.terms import BodyTag, Const, Node, PList, PVar, Tagged


class TestSubst:
    def test_constant_is_fixed(self):
        assert subst({}, Const(5)) == Const(5)

    def test_variable_replaced(self):
        assert subst({"x": Const(1)}, PVar("x")) == Const(1)

    def test_unbound_variable_raises(self):
        with pytest.raises(SubstitutionError):
            subst({}, PVar("x"))

    def test_node_and_list(self):
        p = Node("Foo", (PVar("x"), PList((PVar("y"),))))
        out = subst({"x": Const(1), "y": Const(2)}, p)
        assert out == Node("Foo", (Const(1), PList((Const(2),))))

    def test_list_binding_becomes_list_term(self):
        sigma = {"x": ListBinding((Const(1), Const(2)))}
        assert subst(sigma, PVar("x")) == PList((Const(1), Const(2)))

    def test_ellipsis_expands_repetitions(self):
        p = PList((Const(0),), Node("W", (PVar("x"),)))
        sigma = {"x": ListBinding((Const(1), Const(2)))}
        assert subst(sigma, p) == PList(
            (Const(0), Node("W", (Const(1),)), Node("W", (Const(2),)))
        )

    def test_ellipsis_zero_repetitions(self):
        p = PList((), PVar("x"))
        assert subst({"x": ListBinding(())}, p) == PList(())

    def test_ellipsis_depth_mismatch_raises(self):
        p = PList((), PVar("x"))
        with pytest.raises(SubstitutionError):
            subst({"x": Const(1)}, p)

    def test_ellipsis_without_variables_raises(self):
        # The paper's (3 ...) example: repetition count undetermined.
        p = PList((), Const(3))
        with pytest.raises(SubstitutionError):
            subst({}, p)

    def test_nested_ellipses(self):
        p = PList((), PList((), PVar("x")))
        sigma = {
            "x": ListBinding(
                (
                    ListBinding((Const(1), Const(2))),
                    ListBinding((Const(3),)),
                )
            )
        }
        assert subst(sigma, p) == PList(
            (PList((Const(1), Const(2))), PList((Const(3),)))
        )

    def test_tags_pass_through(self):
        p = Tagged(BodyTag(), Node("Foo", (PVar("x"),)))
        out = subst({"x": Const(1)}, p)
        assert out == Tagged(BodyTag(), Node("Foo", (Const(1),)))

    def test_unequal_repetition_counts_raise(self):
        p = PList((), Node("P", (PVar("x"), PVar("y"))))
        sigma = {
            "x": ListBinding((Const(1),)),
            "y": ListBinding((Const(1), Const(2))),
        }
        with pytest.raises(SubstitutionError):
            subst(sigma, p)


class TestBindingOps:
    def test_merge_zips_environments(self):
        envs = [{"x": Const(1)}, {"x": Const(2)}]
        assert merge(envs, ["x"]) == {"x": ListBinding((Const(1), Const(2)))}

    def test_merge_empty_produces_empty_list_bindings(self):
        assert merge([], ["x", "y"]) == {
            "x": ListBinding(()),
            "y": ListBinding(()),
        }

    def test_merge_missing_variable_raises(self):
        with pytest.raises(PatternError):
            merge([{}], ["x"])

    def test_split_unzips(self):
        sigma = {"x": ListBinding((Const(1), Const(2)))}
        assert split(sigma, ["x"]) == ({"x": Const(1)}, {"x": Const(2)})

    def test_split_requires_variables(self):
        with pytest.raises(SubstitutionError):
            split({}, [])

    def test_to_term_on_ellipsis_binding_raises(self):
        b = EllipsisBinding((Const(1),), Const(2))
        with pytest.raises(SubstitutionError):
            to_term(b)

    def test_union_conflict_raises(self):
        with pytest.raises(PatternError):
            union({"x": Node("A", ())}, {"x": Node("B", ())})

    def test_union_allows_agreeing_atoms(self):
        assert union({"x": Const(1)}, {"x": Const(1)}) == {"x": Const(1)}

    def test_right_biased_union(self):
        out = right_biased_union({"x": Const(1)}, {"x": Const(2)})
        assert out == {"x": Const(2)}

    def test_restrict_and_without(self):
        sigma = {"x": Const(1), "y": Const(2)}
        assert restrict(sigma, ["x"]) == {"x": Const(1)}
        assert without(sigma, ["x"]) == {"y": Const(2)}
