"""Unit tests for tag insertion and inspection (section 5.2.1)."""

from repro.core.tags import (
    has_head_tags,
    has_opaque_body_tags,
    insert_body_tags,
    is_surface_term,
    transparent,
)
from repro.core.terms import (
    BodyTag,
    Const,
    HeadTag,
    Node,
    PList,
    PVar,
    Tagged,
)

OPAQUE = BodyTag(False)
TRANSPARENT = BodyTag(True)


class TestInsertBodyTags:
    def test_variables_untouched(self):
        assert insert_body_tags(PVar("x")) == PVar("x")

    def test_constants_untouched(self):
        assert insert_body_tags(Const(1)) == Const(1)

    def test_node_wrapped_and_children_recursed(self):
        rhs = Node("Foo", (PVar("x"), Node("Bar", ())))
        tagged = insert_body_tags(rhs)
        assert tagged == Tagged(
            OPAQUE, Node("Foo", (PVar("x"), Tagged(OPAQUE, Node("Bar", ()))))
        )

    def test_lists_wrapped(self):
        rhs = PList((PVar("x"),))
        assert insert_body_tags(rhs) == Tagged(OPAQUE, PList((PVar("x"),)))

    def test_ellipsis_patterns_recursed(self):
        rhs = PList((), Node("W", (PVar("x"),)))
        tagged = insert_body_tags(rhs)
        assert isinstance(tagged, Tagged)
        inner = tagged.term
        assert isinstance(inner.ellipsis, Tagged)

    def test_transparent_mark_respected(self):
        rhs = Node("Foo", (transparent(Node("Bar", ())),))
        tagged = insert_body_tags(rhs)
        bar = tagged.term.children[0]
        assert isinstance(bar.tag, BodyTag) and bar.tag.transparent

    def test_transparent_mark_on_variable_dropped(self):
        # !x is meaningless: the subterm is user code, not constructed.
        rhs = Node("Foo", (transparent(PVar("x")),))
        tagged = insert_body_tags(rhs)
        assert tagged.term.children[0] == PVar("x")

    def test_double_transparent_idempotent(self):
        p = transparent(transparent(Node("Bar", ())))
        assert isinstance(p, Tagged)
        assert p.tag.transparent
        assert not isinstance(p.term, Tagged)


class TestInspection:
    def test_opaque_detection(self):
        t = Node("Foo", (Tagged(OPAQUE, Const(1)),))
        assert has_opaque_body_tags(t)
        assert not has_opaque_body_tags(Node("Foo", (Const(1),)))

    def test_transparent_is_not_opaque(self):
        t = Tagged(TRANSPARENT, Node("Foo", ()))
        assert not has_opaque_body_tags(t)

    def test_opaque_under_ellipsis(self):
        t = PList((), Tagged(OPAQUE, Const(1)))
        assert has_opaque_body_tags(t)

    def test_head_detection(self):
        t = Node("Foo", (Tagged(HeadTag(0), Const(1)),))
        assert has_head_tags(t)
        assert not has_head_tags(Node("Foo", ()))

    def test_surface_term_definition(self):
        # Definition 2: a surface term has no tags at all.
        assert is_surface_term(Node("Foo", (Const(1), PList((Const(2),)))))
        assert not is_surface_term(Tagged(TRANSPARENT, Const(1)))
        assert not is_surface_term(
            Node("Foo", (Tagged(HeadTag(1), Const(1)),))
        )


class TestHeadTagIdentity:
    def test_head_tags_compare_by_index_and_stand_in(self):
        assert HeadTag(1, ()) == HeadTag(1, ())
        assert HeadTag(1) != HeadTag(2)
        assert HeadTag(1, (("x", Const(1)),)) != HeadTag(1, (("x", Const(2)),))

    def test_head_tags_hashable(self):
        tags = {HeadTag(1), HeadTag(1), HeadTag(2)}
        assert len(tags) == 2
