"""Tests for evaluation-sequence lifting (section 5.3) using a tiny
call-by-value term-rewriting stepper, reproducing the paper's section 3
traces exactly."""

import pytest

from repro.core.errors import ReproError
from repro.core.lift import (
    EmulationViolation,
    FunctionStepper,
    lift_evaluation,
    lift_evaluation_tree,
)
from repro.core.rules import RuleList
from repro.core.terms import Const, Node, Pattern, PList, Tagged
from repro.core.wellformed import DisjointnessMode
from repro.lang.rule_parser import parse_rules, parse_term


def is_value(t: Pattern) -> bool:
    return isinstance(t, Const)


def subst_id(term: Pattern, name: str, value: Pattern) -> Pattern:
    """Replace references Id(name) by value, consuming their tags (that
    is what real evaluators do: the reference disappears)."""
    if isinstance(term, Tagged):
        inner = subst_id(term.term, name, value)
        if inner is not term.term and not isinstance(inner, (Node, PList, Tagged)):
            # The whole tagged reference was replaced by the value.
            return inner
        if (
            isinstance(term.term, Node)
            and term.term.label == "Id"
            and term.term.children == (Const(name),)
        ):
            return value
        return Tagged(term.tag, inner)
    if isinstance(term, Node):
        if term.label == "Id" and term.children == (Const(name),):
            return value
        if term.label == "Let" and any(
            _binding_name(b) == name for b in _bindings_of(term)
        ):
            return term  # shadowed
        return Node(term.label, tuple(subst_id(c, name, value) for c in term.children))
    if isinstance(term, PList):
        return PList(tuple(subst_id(c, name, value) for c in term.items))
    return term


def _bindings_of(let_node: Node):
    first = let_node.children[0]
    while isinstance(first, Tagged):
        first = first.term
    items = []
    for b in first.items if isinstance(first, PList) else ():
        while isinstance(b, Tagged):
            b = b.term
        items.append(b)
    return items


def _binding_name(binding: Node) -> str:
    name = binding.children[0]
    while isinstance(name, Tagged):
        name = name.term
    return name.value


def step_toy(term: Pattern):
    """One leftmost call-by-value step of the toy core language:
    Not / If / Let over boolean constants.  Returns None at a value or a
    stuck term.  Tags ride along; a consumed redex drops its tags."""

    def step(t: Pattern):
        if isinstance(t, Tagged):
            inner = step(t.term)
            if inner is None:
                return None
            kind, new = inner
            if kind == "reduced-here":
                # The tagged node itself was the redex: its tag is consumed.
                return ("reduced-here", new)
            return ("child", Tagged(t.tag, new))
        if isinstance(t, PList):
            for i, c in enumerate(t.items):
                r = step(c)
                if r is not None:
                    items = list(t.items)
                    items[i] = r[1]
                    return ("child", PList(tuple(items)))
            return None
        if not isinstance(t, Node):
            return None

        label = t.label
        if label == "Not":
            (arg,) = t.children
            bare = _strip(arg)
            if isinstance(bare, Const) and isinstance(bare.value, bool):
                return ("reduced-here", Const(not bare.value))
        if label == "If":
            cond, then, els = t.children
            bare = _strip(cond)
            if isinstance(bare, Const) and isinstance(bare.value, bool):
                chosen = then if bare.value else els
                return ("reduced-here", _strip_outer(chosen))
        if label == "Let":
            bindings = _bindings_of(t)
            if bindings and all(is_value(_strip(b.children[1])) for b in bindings):
                body = t.children[1]
                out = _strip_outer(body)
                for b in bindings:
                    out = subst_id(out, _binding_name(b), _strip(b.children[1]))
                return ("reduced-here", out)
        # Otherwise reduce the leftmost reducible child.
        for i, c in enumerate(t.children):
            r = step(c)
            if r is not None:
                children = list(t.children)
                children[i] = r[1]
                return ("child", Node(label, tuple(children)))
        return None

    r = step(term)
    return None if r is None else r[1]


def _strip(t: Pattern) -> Pattern:
    while isinstance(t, Tagged):
        t = t.term
    return t


def _strip_outer(t: Pattern) -> Pattern:
    # Keep inner tags; the chosen branch itself keeps its own tags.
    return t


def step_maxacc(t: Pattern):
    """One MaxAcc core step: pop the list, keep the accumulator.  The
    MaxAcc node persists across the step, so its tags are preserved (as a
    real evaluator would preserve them)."""
    if isinstance(t, Tagged):
        inner = step_maxacc(t.term)
        return None if inner is None else Tagged(t.tag, inner)
    if isinstance(t, Node) and t.label == "MaxAcc":
        lst = _strip(t.children[0])
        if isinstance(lst, PList) and lst.items:
            return Node("MaxAcc", (PList(lst.items[1:]), t.children[1]))
    return None


OR_RULES = RuleList(
    parse_rules(
        """
        Or([x, y]) -> Let([Binding("t", x)], If(Id("t"), Id("t"), y));
        Or([x, y, ys ...]) ->
            Let([Binding("t", x)], If(Id("t"), Id("t"), Or([y, ys ...])));
        """
    ),
    DisjointnessMode.PRIORITIZED,
)

OR_RULES_TRANSPARENT = RuleList(
    parse_rules(
        """
        Or([x, y]) -> Let([Binding("t", x)], If(Id("t"), Id("t"), y));
        Or([x, y, ys ...]) ->
            Let([Binding("t", x)], If(Id("t"), Id("t"), !Or([y, ys ...])));
        """
    ),
    DisjointnessMode.PRIORITIZED,
)


def lift(rules, source, **kwargs):
    return lift_evaluation(
        rules, FunctionStepper(step_toy), parse_term(source), **kwargs
    )


class TestSection31Trace:
    """The paper's first example: not(true) OR not(false)."""

    def test_surface_sequence(self):
        result = lift(OR_RULES, "Or([Not(true), Not(false)])")
        expected = [
            "Or([Not(true), Not(false)])",
            "Or([false, Not(false)])",
            "Not(false)",
            "true",
        ]
        assert [str(parse_term(e)) for e in expected] == [
            str(t) for t in result.surface_sequence
        ]

    def test_exactly_one_step_skipped(self):
        # The core's "if false then false else not(false)" step has no
        # surface representation.
        result = lift(OR_RULES, "Or([Not(true), Not(false)])")
        assert result.skipped_count == 1
        assert result.core_step_count == 5

    def test_coverage_metric(self):
        result = lift(OR_RULES, "Or([Not(true), Not(false)])")
        assert result.coverage == pytest.approx(4 / 5)


class TestSection34Trace:
    """false OR false OR true, with and without transparency."""

    def test_opaque_hides_recursive_invocation(self):
        result = lift(OR_RULES, "Or([false, false, true])")
        shown = [str(t) for t in result.surface_sequence]
        assert shown == [
            "Or([false, false, true])",
            "true",
        ]

    def test_transparent_shows_recursive_invocation(self):
        result = lift(OR_RULES_TRANSPARENT, "Or([false, false, true])")
        shown = [str(t) for t in result.surface_sequence]
        assert shown == [
            "Or([false, false, true])",
            "Or([false, true])",
            "true",
        ]


class TestEmulationGuard:
    def test_max_violation_raises(self):
        # The paper's Max example (section 5.1.5): with overlapping rules,
        # MaxAcc([], -infinity) unexpands to Max([]), which desugars to
        # Raise(...) — a different core term.  The lifting loop's dynamic
        # emulation check must catch this.
        rules = RuleList(
            parse_rules(
                """
                Max([]) -> Raise("empty list");
                Max(xs) -> MaxAcc(xs, -infinity);
                """
            ),
            DisjointnessMode.OFF,
        )

        with pytest.raises(EmulationViolation):
            lift_evaluation(
                rules,
                FunctionStepper(step_maxacc),
                parse_term("Max([-infinity])"),
            )

    def test_max_fixed_rules_skip_instead(self):
        rules = RuleList(
            parse_rules(
                """
                Max([]) -> Raise("Max: given empty list");
                Max([x, xs ...]) -> MaxAcc([x, xs ...], -infinity);
                """
            ),
            DisjointnessMode.STRICT,
        )

        result = lift_evaluation(
            rules, FunctionStepper(step_maxacc), parse_term("Max([-infinity])")
        )
        shown = [str(t) for t in result.surface_sequence]
        # The MaxAcc([], -infinity) step is safely skipped.
        assert shown == ["Max([-infinity])"]
        assert result.skipped_count == 1

    def test_check_can_be_disabled(self):
        result = lift(
            OR_RULES, "Or([Not(true), Not(false)])", check_emulation=False
        )
        assert result.shown_count == 4


class TestLiftMechanics:
    def test_max_steps_exceeded(self):
        looping = FunctionStepper(lambda t: t)  # never terminates
        with pytest.raises(ReproError, match="did not finish"):
            lift_evaluation(OR_RULES, looping, parse_term("true"), max_steps=10)

    def test_value_program_emits_itself(self):
        result = lift(OR_RULES, "true")
        assert [str(t) for t in result.surface_sequence] == ["true"]

    def test_dedup_drops_identical_consecutive_steps(self):
        # A stepper that rewrites an invisible annotation produces core
        # steps with identical surface forms.
        states = [parse_term("A()"), parse_term("A()"), parse_term("true")]

        def step(t):
            if t == states[0] and step.count < 1:
                step.count += 1
                return states[1]
            if t == states[1] or (t == states[0] and step.count >= 1):
                return states[2]
            return None

        step.count = 0
        result = lift_evaluation(
            OR_RULES, FunctionStepper(step), parse_term("A()")
        )
        shown = [str(t) for t in result.surface_sequence]
        assert shown == ["A()", "true"]


class TestLiftTree:
    def test_amb_tree(self):
        # A two-way nondeterministic stepper: Amb(a, b) -> a or b.
        class AmbStepper:
            def load(self, core):
                return core

            def term(self, state):
                return state

            def step(self, state):
                bare = _strip(state)
                if isinstance(bare, Node) and bare.label == "Amb":
                    return list(bare.children)
                return []

        tree = lift_evaluation_tree(
            OR_RULES, AmbStepper(), parse_term("Amb(true, false)")
        )
        assert tree.root is not None
        assert len(tree.nodes) == 3
        assert sorted(str(tree.nodes[n]) for n in tree.leaves()) == [
            "false",
            "true",
        ]
