"""Unit and property tests for matching (Figure 3)."""

from hypothesis import given

from repro.core.bindings import ListBinding
from repro.core.matching import match, match_explain, matches
from repro.core.substitution import subst
from repro.core.terms import (
    BodyTag,
    Const,
    HeadTag,
    Node,
    PList,
    PVar,
    Tagged,
)

from tests.strategies import matching_pairs, terms


def test_constant_matches_itself():
    assert match(Const(3), Const(3)) == {}


def test_constant_mismatch_fails():
    assert match(Const(3), Const(4)) is None
    assert match(Const(True), Const(1)) is None


def test_variable_binds_term():
    t = Node("Foo", (Const(1),))
    assert match(t, PVar("x")) == {"x": t}


def test_node_match_binds_children():
    t = Node("Pair", (Const(1), Const(2)))
    p = Node("Pair", (PVar("x"), PVar("y")))
    assert match(t, p) == {"x": Const(1), "y": Const(2)}


def test_node_label_mismatch():
    assert match(Node("Foo", ()), Node("Bar", ())) is None


def test_node_arity_mismatch():
    assert match(Node("Foo", (Const(1),)), Node("Foo", ())) is None


def test_fixed_list_length_must_agree():
    t = PList((Const(1), Const(2)))
    assert match(t, PList((PVar("x"),))) is None
    assert match(t, PList((PVar("x"), PVar("y")))) is not None


def test_ellipsis_matches_zero_repetitions():
    t = PList((Const(1),))
    p = PList((PVar("x"),), PVar("rest"))
    sigma = match(t, p)
    assert sigma == {"x": Const(1), "rest": ListBinding(())}


def test_ellipsis_merges_repetitions():
    t = PList((Const(1), Const(2), Const(3)))
    p = PList((PVar("x"),), PVar("rest"))
    sigma = match(t, p)
    assert sigma == {
        "x": Const(1),
        "rest": ListBinding((Const(2), Const(3))),
    }


def test_ellipsis_with_structure():
    t = PList((Node("B", (Const(1), Const(10))), Node("B", (Const(2), Const(20)))))
    p = PList((), Node("B", (PVar("k"), PVar("v"))))
    sigma = match(t, p)
    assert sigma == {
        "k": ListBinding((Const(1), Const(2))),
        "v": ListBinding((Const(10), Const(20))),
    }


def test_list_too_short_for_ellipsis_prefix():
    t = PList((Const(1),))
    p = PList((PVar("x"), PVar("y")), PVar("rest"))
    assert match(t, p) is None


def test_duplicate_atomic_variable_must_agree():
    p = Node("Eq", (PVar("x"), PVar("x")))
    assert match(Node("Eq", (Const(1), Const(1))), p) == {"x": Const(1)}
    assert match(Node("Eq", (Const(1), Const(2))), p) is None


def test_duplicate_variable_with_equal_bindings_matches():
    # Well-formedness rejects duplicate non-atomic variables statically;
    # the matcher itself only demands that duplicates agree (Letrec's
    # repeated binding-name variable relies on this).
    p = Node("Eq", (PVar("x"), PVar("x")))
    t = Node("Eq", (Node("A", ()), Node("A", ())))
    assert match(t, p) == {"x": Node("A", ())}
    t2 = Node("Eq", (Node("A", ()), Node("B", ())))
    assert match(t2, p) is None


class TestTags:
    opaque = BodyTag(False)

    def test_tagged_term_matches_equal_tagged_pattern(self):
        t = Tagged(self.opaque, Const(1))
        p = Tagged(self.opaque, PVar("x"))
        assert match(t, p) == {"x": Const(1)}

    def test_tag_mismatch_fails(self):
        t = Tagged(BodyTag(True), Const(1))
        p = Tagged(self.opaque, PVar("x"))
        assert match(t, p) is None

    def test_tagged_term_fails_against_plain_pattern_by_default(self):
        t = Tagged(self.opaque, Const(1))
        assert match(t, Const(1)) is None

    def test_see_through_tags(self):
        t = Node("Foo", (Tagged(self.opaque, Const(1)),))
        p = Node("Foo", (Const(1),))
        assert match(t, p) is None
        assert match(t, p, see_through_tags=True) == {}

    def test_variable_captures_tags_even_when_seeing_through(self):
        inner = Tagged(self.opaque, Const(1))
        t = Node("Foo", (inner,))
        p = Node("Foo", (PVar("x"),))
        assert match(t, p, see_through_tags=True) == {"x": inner}

    def test_lenient_pattern_tags(self):
        p = Tagged(self.opaque, Node("Foo", ()))
        t = Node("Foo", ())
        assert match(t, p) is None
        assert match(t, p, lenient_pattern_tags=True) == {}

    def test_lenient_does_not_apply_to_head_tags(self):
        p = Tagged(HeadTag(0), Node("Foo", ()))
        assert match(Node("Foo", ()), p, lenient_pattern_tags=True) is None


class TestMatchSubstProperty:
    """The Coq development's first theorem: matching is correct with
    respect to substitution — ``(T/P)P = T`` whenever ``T/P`` exists."""

    @given(matching_pairs())
    def test_match_then_subst_restores_term(self, pair):
        term, pattern, _ = pair
        sigma = match(term, pattern)
        assert sigma is not None
        assert subst(sigma, pattern) == term

    @given(matching_pairs())
    def test_instantiating_env_matches(self, pair):
        term, pattern, env = pair
        assert matches(term, pattern)

    @given(terms(max_leaves=8))
    def test_every_term_matches_a_variable(self, term):
        assert match(term, PVar("x")) == {"x": term}


class TestMatchExplain:
    """``match_explain`` is ``match`` plus a failure diagnosis: same
    verdict and bindings, and on failure a path naming the innermost
    mismatched pattern position."""

    @given(matching_pairs())
    def test_agrees_with_match_on_success(self, pair):
        term, pattern, _ = pair
        env, path, reason = match_explain(term, pattern)
        assert env == match(term, pattern)
        assert path is None and reason is None

    def test_root_mismatch_has_empty_path(self):
        env, path, reason = match_explain(Const(2), Node("If", ()))
        assert env is None
        assert path == ""
        assert "'If'" in reason

    def test_locates_innermost_mismatch(self):
        pattern = Node(
            "If", (PVar("c"), Node("Not", (PVar("x"),)), PVar("e"))
        )
        term = Node("If", (Const(1), Node("Or", (Const(2),)), Const(3)))
        env, path, reason = match_explain(term, pattern)
        assert env is None
        assert path == "If.1"
        assert "'Not'" in reason and "'Or'" in reason

    def test_diagnosis_descends_through_tags(self):
        tag = BodyTag(False)
        pattern = Tagged(tag, Node("Pair", (Const(1), Const(2))))
        term = Tagged(tag, Node("Pair", (Const(1), Const(9))))
        env, path, reason = match_explain(term, pattern)
        assert env is None
        assert path == "Tag/Pair.1"
        assert "constant" in reason

    def test_lenient_pattern_tags_match_like_match(self):
        tag = BodyTag(False)
        pattern = Tagged(tag, PVar("x"))
        env, path, reason = match_explain(
            Const(5), pattern, lenient_pattern_tags=True
        )
        assert env == {"x": Const(5)}
        assert path is None and reason is None
