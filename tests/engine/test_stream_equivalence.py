"""Streaming/batch equivalence over the whole golden corpus.

The batch entry points are folds over the streams, but these tests do
not trust that plumbing: they *replay* the event stream with an
independent reconstruction written here and require it to rebuild the
batch ``LiftResult`` exactly — for every golden program, both bundled
languages, incremental and naive resugaring — plus the event-grammar
invariants every stream must satisfy.
"""

import pytest

from repro.confection import Confection
from repro.core.lift import LiftedStep, LiftResult
from repro.engine.events import (
    BudgetExhausted,
    CoreStepped,
    Deduped,
    Halted,
    StepSkipped,
    SurfaceEmitted,
)
from repro.engine.stream import fold_tree
from tests.test_golden_traces import (
    GOLDEN_FILES,
    _configs,
    lift_kwargs,
    parse_golden,
)


def _replay(events):
    """An independent (test-local) reconstruction of a LiftResult from a
    lift event stream — deliberately not engine.stream.fold_lift."""
    result = LiftResult()
    for event in events:
        if isinstance(event, SurfaceEmitted):
            result.surface_sequence.append(event.surface_term)
            result.steps.append(
                LiftedStep(
                    event.core_index, event.core_term, event.surface_term, True
                )
            )
        elif isinstance(event, Deduped):
            result.steps.append(
                LiftedStep(
                    event.core_index,
                    event.core_term,
                    event.surface_term,
                    False,
                )
            )
        elif isinstance(event, StepSkipped):
            result.steps.append(
                LiftedStep(event.core_index, event.core_term, None, False)
            )
        elif isinstance(event, Halted):
            result.cache_stats = event.cache_stats
        elif isinstance(event, BudgetExhausted):
            result.cache_stats = event.cache_stats
            result.truncated = True
    return result


@pytest.mark.parametrize("incremental", [True, False], ids=["inc", "naive"])
@pytest.mark.parametrize(
    "path", GOLDEN_FILES, ids=[p.stem for p in GOLDEN_FILES]
)
def test_stream_replay_reconstructs_batch(path, incremental):
    sugar, program, expected_trace, stats, options = parse_golden(path)
    make_rules, make_stepper, parse, pretty = _configs()[sugar]
    confection = Confection(make_rules(), make_stepper())
    term = parse(program)
    kwargs = lift_kwargs(options)

    batch = confection.lift(term, incremental=incremental, **kwargs)
    events = list(
        confection.lift_stream(term, incremental=incremental, **kwargs)
    )
    replayed = _replay(iter(events))

    # Exact reconstruction of the batch result...
    assert replayed.surface_sequence == batch.surface_sequence
    assert replayed.steps == batch.steps
    truncated = bool(stats.get("truncated", 0))
    assert replayed.truncated == batch.truncated == truncated
    assert replayed.core_step_count == batch.core_step_count == stats["core"]
    assert replayed.skipped_count == batch.skipped_count == stats["skipped"]
    # ...and of the committed golden trace, byte for byte.
    assert [pretty(t) for t in replayed.surface_sequence] == expected_trace

    _check_event_grammar(events, stats["core"], truncated)


def _check_event_grammar(events, core_steps, truncated=False):
    """Every CoreStepped is followed by exactly one classification event
    for the same index; the stream ends with one terminal event
    (:class:`Halted`, or :class:`BudgetExhausted` on a truncated lift)."""
    if truncated:
        assert isinstance(events[-1], BudgetExhausted)
    else:
        assert isinstance(events[-1], Halted)
    assert events[-1].core_step_count == core_steps
    body = events[:-1]
    assert len(body) == 2 * core_steps
    for i in range(0, len(body), 2):
        stepped, classified = body[i], body[i + 1]
        assert isinstance(stepped, CoreStepped)
        assert isinstance(
            classified, (SurfaceEmitted, Deduped, StepSkipped)
        )
        assert classified.core_index == stepped.core_index == i // 2
        assert classified.core_term == stepped.core_term


@pytest.mark.parametrize("incremental", [True, False], ids=["inc", "naive"])
def test_tree_stream_replay_reconstructs_batch(incremental):
    from repro.lambdacore import make_stepper, parse_program
    from repro.sugars.scheme_sugars import make_scheme_rules

    confection = Confection(make_scheme_rules(), make_stepper())
    term = parse_program("(+ (amb 1 2) (amb 10 20))")

    batch = confection.lift_tree(term, incremental=incremental)
    folded = fold_tree(confection.lift_tree_stream(term, incremental=incremental))

    assert folded.nodes == batch.nodes
    assert folded.edges == batch.edges
    assert folded.root == batch.root
    assert folded.core_node_count == batch.core_node_count
    assert folded.skipped_count == batch.skipped_count
    assert folded.truncated == batch.truncated is False
    assert folded == batch


def test_viz_renders_event_streams_directly():
    """The visualizers accept a live event stream and agree with the
    batch rendering."""
    from repro.lambdacore import make_stepper, parse_program, pretty
    from repro.sugars.scheme_sugars import make_scheme_rules
    from repro.viz import render_html, render_text, render_tree_text

    confection = Confection(make_scheme_rules(), make_stepper())
    term = parse_program("(or (not #t) (not #f))")
    assert render_text(confection.lift_stream(term), pretty) == render_text(
        confection.lift(term), pretty
    )
    assert render_html(confection.lift_stream(term), pretty) == render_html(
        confection.lift(term), pretty
    )
    amb = parse_program("(amb 1 2)")
    assert render_tree_text(
        confection.lift_tree_stream(amb), pretty
    ) == render_tree_text(confection.lift_tree(amb), pretty)


@pytest.mark.parametrize("incremental", [True, False], ids=["inc", "naive"])
def test_emulation_violation_propagates_through_stream(incremental):
    """The dynamic emulation backstop (the paper's Max example, section
    5.1.5) fires identically on the streaming path."""
    from repro.core.lift import EmulationViolation, FunctionStepper
    from repro.core.rules import RuleList
    from repro.core.wellformed import DisjointnessMode
    from repro.engine.stream import lift_stream
    from repro.lang.rule_parser import parse_rules, parse_term
    from tests.core.test_lift import step_maxacc

    rules = RuleList(
        parse_rules(
            """
            Max([]) -> Raise("empty list");
            Max(xs) -> MaxAcc(xs, -infinity);
            """
        ),
        DisjointnessMode.OFF,
    )
    with pytest.raises(EmulationViolation):
        list(
            lift_stream(
                rules,
                FunctionStepper(step_maxacc),
                parse_term("Max([-infinity])"),
                incremental=incremental,
            )
        )
