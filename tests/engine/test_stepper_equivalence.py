"""Stepper-mode equivalence over the full golden corpus.

The acceptance bar for the refocusing machine: for every golden trace,
lifting with ``stepper_mode="refocus"`` and ``stepper_mode="naive"``
produces *byte-identical* results — same rendered surface sequence, same
per-step bookkeeping (emitted/deduped/skipped and the core terms
themselves), same truncation — in both resugaring modes (incremental and
naive).  Combined with the golden-trace suite this pins the machine
against the reference engine across every bundled sugar and backend.
"""

import pytest

from tests.test_golden_traces import (
    GOLDEN_FILES,
    _configs,
    lift_kwargs,
    parse_golden,
)

from repro.confection import Confection


@pytest.mark.parametrize(
    "path", GOLDEN_FILES, ids=[p.stem for p in GOLDEN_FILES]
)
@pytest.mark.parametrize("incremental", [True, False], ids=["inc", "naive-resugar"])
def test_stepper_modes_agree(path, incremental):
    sugar, program, expected_trace, stats, options = parse_golden(path)
    make_rules, make_stepper, parse, pretty = _configs()[sugar]
    kwargs = lift_kwargs(options)
    kwargs["incremental"] = incremental

    confection = Confection(make_rules(), make_stepper())
    term = parse(program)
    refocused = confection.lift(term, stepper_mode="refocus", **kwargs)
    naive = confection.lift(term, stepper_mode="naive", **kwargs)

    rendered = [pretty(t) for t in refocused.surface_sequence]
    assert rendered == [pretty(t) for t in naive.surface_sequence]
    assert rendered == expected_trace
    # Byte-identical bookkeeping, core terms included.
    assert refocused.steps == naive.steps
    assert refocused.core_step_count == naive.core_step_count == stats["core"]
    assert refocused.skipped_count == naive.skipped_count == stats["skipped"]
    assert refocused.truncated == naive.truncated
