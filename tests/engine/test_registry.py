"""Tests for the language-backend registry."""

import pytest

from repro.core.errors import ReproError
from repro.core.lift import FunctionStepper
from repro.core.rules import RuleList
from repro.engine.registry import (
    Backend,
    UnknownBackendError,
    available_backends,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.lang.render import render
from repro.lang.rule_parser import parse_term


def _toy_backend(name="toy", **overrides):
    fields = dict(
        name=name,
        parse=parse_term,
        pretty=lambda t: render(t, show_tags=False),
        make_stepper=lambda: FunctionStepper(lambda t: None),
        sugar_factories={"none": lambda **options: RuleList([])},
        default_sugar="none",
    )
    fields.update(overrides)
    return Backend(**fields)


@pytest.fixture
def toy():
    backend = register_backend(_toy_backend())
    yield backend
    unregister_backend("toy")


class TestBundledBackends:
    def test_available_includes_bundled_without_import(self):
        names = available_backends()
        assert "lambda" in names and "pyret" in names

    def test_get_backend_imports_on_demand(self):
        backend = get_backend("lambda")
        assert backend.name == "lambda"
        assert backend.sugar_names == ("scheme", "automaton", "return")
        assert backend.default_sugar == "scheme"
        assert get_backend("pyret").sugar_names == ("pyret",)

    def test_bundled_backend_lifts_end_to_end(self):
        backend = get_backend("lambda")
        confection = backend.make_confection()
        steps = confection.surface_steps(backend.parse("(or #t #f)"))
        assert backend.pretty(steps[-1]) == "#t"

    def test_factories_ignore_foreign_options(self):
        """The registry contract: every factory sees the full option
        set and picks out what it understands."""
        for name in ("lambda", "pyret"):
            rules = get_backend(name).make_rules(
                transparent_recursion=True, op_desugaring="object"
            )
            assert len(rules) > 0

    def test_unknown_backend_lists_known_names(self):
        with pytest.raises(UnknownBackendError, match="lambda"):
            get_backend("cobol")
        with pytest.raises(ReproError):  # it is also a ReproError
            get_backend("cobol")


class TestRegistration:
    def test_register_and_get(self, toy):
        assert get_backend("toy") is toy
        assert "toy" in available_backends()

    def test_unregister(self):
        register_backend(_toy_backend("ephemeral"))
        unregister_backend("ephemeral")
        assert "ephemeral" not in available_backends()
        with pytest.raises(UnknownBackendError):
            get_backend("ephemeral")
        unregister_backend("ephemeral")  # no-op, no raise

    def test_duplicate_name_rejected(self, toy):
        with pytest.raises(ValueError, match="already registered"):
            register_backend(_toy_backend())

    def test_same_object_reregistration_is_idempotent(self, toy):
        assert register_backend(toy) is toy

    def test_replace_overrides(self, toy):
        other = _toy_backend(description="v2")
        register_backend(other, replace=True)
        assert get_backend("toy").description == "v2"


class TestSugarResolution:
    def test_default_sugar_used_when_unspecified(self, toy):
        assert isinstance(toy.make_rules(), RuleList)

    def test_unknown_sugar_lists_choices(self, toy):
        with pytest.raises(ReproError, match="none"):
            toy.make_rules("bogus")

    def test_first_factory_is_fallback_default(self):
        backend = _toy_backend("nodefault", default_sugar=None)
        assert isinstance(backend.make_rules(), RuleList)

    def test_no_sugar_sets_is_an_error(self):
        backend = _toy_backend(
            "bare", sugar_factories={}, default_sugar=None
        )
        with pytest.raises(ReproError, match="no sugar sets"):
            backend.make_rules()

    def test_make_confection_with_explicit_rules(self, toy):
        confection = toy.make_confection(rules=RuleList([]))
        term = parse_term("Pair(1, 2)")
        assert confection.desugar(term) == term


class TestTopLevelExports:
    def test_engine_names_reachable_from_repro(self):
        import repro

        assert repro.get_backend("lambda").name == "lambda"
        assert callable(repro.register_backend)
        assert callable(repro.lift_stream)
        assert "lambda" in repro.available_backends()
