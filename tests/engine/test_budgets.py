"""Step-count and wall-clock budgets, and the on_budget policies.

``on_budget="raise"`` must keep the historical batch behaviour
(``ReproError`` with the historical messages); ``"truncate"`` must yield
a terminal ``BudgetExhausted`` event and produce a well-formed partial
result flagged ``truncated`` — never an exception.
"""

import time

import pytest

from repro.confection import Confection
from repro.core.errors import ReproError
from repro.core.lift import FunctionStepper, lift_evaluation
from repro.engine.events import BudgetExhausted, Halted, SurfaceEmitted
from repro.engine.stream import fold_lift, lift_stream, lift_tree_stream
from repro.lambdacore import make_stepper, parse_program
from repro.sugars.scheme_sugars import make_scheme_rules

RULES = make_scheme_rules()


def _confection():
    return Confection(RULES, make_stepper())


def _or_chain(n):
    return parse_program("(or " + " ".join(["#f"] * n) + " #t)")


class TestStepBudget:
    def test_truncate_yields_budget_exhausted(self):
        events = list(
            lift_stream(
                RULES,
                make_stepper(),
                _or_chain(8),
                max_steps=3,
                on_budget="truncate",
            )
        )
        last = events[-1]
        assert isinstance(last, BudgetExhausted)
        assert last.budget == "steps"
        assert last.limit == 3
        # Indices 0..3 were processed before the budget tripped.
        assert last.core_step_count == 4
        assert not any(isinstance(e, Halted) for e in events)

    def test_truncated_result_is_wellformed_prefix(self):
        confection = _confection()
        full = confection.lift(_or_chain(8))
        partial = confection.lift(_or_chain(8), max_steps=3, on_budget="truncate")
        assert partial.truncated
        assert not full.truncated
        assert partial.core_step_count == 4
        assert partial.steps == full.steps[:4]
        assert (
            partial.surface_sequence
            == full.surface_sequence[: partial.shown_count]
        )
        assert 0.0 <= partial.coverage <= 1.0
        assert partial.cache_stats is not None  # incremental default

    def test_raise_policy_keeps_historical_error(self):
        with pytest.raises(
            ReproError, match="did not finish within 3 steps"
        ):
            lift_evaluation(RULES, make_stepper(), _or_chain(8), max_steps=3)

    def test_zero_budget_truncates_after_initial_state(self):
        result = lift_evaluation(
            RULES,
            make_stepper(),
            _or_chain(8),
            max_steps=0,
            on_budget="truncate",
        )
        assert result.truncated
        assert result.core_step_count == 1  # just the desugared program

    def test_invalid_policy_rejected_before_work(self):
        with pytest.raises(ValueError, match="on_budget"):
            next(
                lift_stream(
                    RULES, make_stepper(), _or_chain(2), on_budget="explode"
                )
            )


class TestTimeBudget:
    def test_zero_seconds_truncates_immediately(self):
        events = list(
            lift_stream(
                RULES,
                make_stepper(),
                _or_chain(4),
                max_seconds=0.0,
                on_budget="truncate",
            )
        )
        assert len(events) == 1
        assert isinstance(events[0], BudgetExhausted)
        assert events[0].budget == "seconds"
        assert events[0].core_step_count == 0
        result = fold_lift(iter(events))
        assert result.truncated and result.core_step_count == 0

    def test_slow_stepper_trips_wall_clock(self):
        ticks = iter(range(1000))

        def slow_step(term):
            time.sleep(0.02)
            next(ticks)
            return term  # never terminates on its own

        events = []
        for event in lift_stream(
            RULES,
            FunctionStepper(slow_step),
            parse_program("(+ 1 2)"),
            max_seconds=0.05,
            on_budget="truncate",
            check_emulation=False,
            dedup=False,
        ):
            events.append(event)
        assert isinstance(events[-1], BudgetExhausted)
        assert events[-1].budget == "seconds"
        # It made *some* progress before the deadline.
        assert events[-1].core_step_count >= 1

    def test_raise_policy_raises_on_wall_clock(self):
        with pytest.raises(ReproError, match="time budget"):
            list(
                lift_stream(
                    RULES,
                    make_stepper(),
                    _or_chain(4),
                    max_seconds=0.0,
                )
            )

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="max_seconds"):
            next(
                lift_stream(
                    RULES, make_stepper(), _or_chain(2), max_seconds=-1.0
                )
            )


class TestTreeBudget:
    AMB = "(+ (amb 1 2) (amb 10 20))"

    def test_truncate_yields_partial_tree(self):
        confection = _confection()
        full = confection.lift_tree(parse_program(self.AMB))
        partial = confection.lift_tree(
            parse_program(self.AMB), max_nodes=3, on_budget="truncate"
        )
        assert partial.truncated and not full.truncated
        assert partial.core_node_count == 3
        assert partial.root == full.root
        # A breadth-first prefix: every partial edge is a full edge.
        assert partial.edges == full.edges[: len(partial.edges)]

    def test_truncate_event_kind_is_nodes(self):
        events = list(
            lift_tree_stream(
                RULES,
                make_stepper(),
                parse_program(self.AMB),
                max_nodes=2,
                on_budget="truncate",
            )
        )
        assert isinstance(events[-1], BudgetExhausted)
        assert events[-1].budget == "nodes"
        assert events[-1].limit == 2

    def test_raise_policy_keeps_historical_error(self):
        with pytest.raises(ReproError, match="exceeded 2 core nodes"):
            _confection().lift_tree(parse_program(self.AMB), max_nodes=2)

    def test_wall_clock_applies_to_trees(self):
        events = list(
            lift_tree_stream(
                RULES,
                make_stepper(),
                parse_program(self.AMB),
                max_seconds=0.0,
                on_budget="truncate",
            )
        )
        assert isinstance(events[-1], BudgetExhausted)
        assert events[-1].budget == "seconds"


class TestStreamLaziness:
    def test_first_step_available_before_evaluation_finishes(self):
        """Pull exactly the first emission and abandon the stream: the
        engine must not have evaluated the whole program."""
        pulls = 0
        inner = make_stepper()

        class CountingStepper:
            def load(self, core):
                return inner.load(core)

            def step(self, state):
                nonlocal pulls
                pulls += 1
                return inner.step(state)

            def term(self, state):
                return inner.term(state)

        stream = lift_stream(RULES, CountingStepper(), _or_chain(64))
        for event in stream:
            if isinstance(event, SurfaceEmitted):
                break
        stream.close()
        assert pulls == 0  # first surface step is the program itself

    def test_describe_is_human_readable(self):
        event = BudgetExhausted(7, None, "steps", 5)
        assert "7" in event.describe() and "steps" in event.describe()
