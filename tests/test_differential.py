"""Differential testing: the small-step reduction semantics and the
big-step evaluator must agree on the pure lambda-core fragment.

Two independently written interpreters over the same language are a
classic oracle: any disagreement is a bug in one of them.  Random
programs are generated closed and well-typed-enough (by construction)
so both sides terminate without sticking.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.terms import Const, Node, PList
from repro.lambdacore import make_semantics, pretty
from repro.stepper.bigstep import evaluate

SEMANTICS = make_semantics()


def _op(name, *args):
    return Node("Op", (Const(name), PList(tuple(args))))


def _num_leaf(env):
    options = [st.integers(-9, 9).map(Const)]
    if env:
        options.append(
            st.sampled_from(env).map(lambda n: Node("Id", (Const(n),)))
        )
    return st.one_of(options)


@st.composite
def _num_expr(draw, depth, env):
    if depth <= 0:
        return draw(_num_leaf(env))
    choice = draw(st.integers(0, 4))
    if choice == 0:
        return draw(_num_leaf(env))
    if choice == 1:
        op = draw(st.sampled_from(["+", "-", "*"]))
        return _op(
            op,
            draw(_num_expr(depth - 1, env)),
            draw(_num_expr(depth - 1, env)),
        )
    if choice == 2:
        cond_op = draw(st.sampled_from(["<", "<=", "="]))
        cond = _op(
            cond_op,
            draw(_num_expr(depth - 1, env)),
            draw(_num_expr(depth - 1, env)),
        )
        return Node(
            "If",
            (cond, draw(_num_expr(depth - 1, env)), draw(_num_expr(depth - 1, env))),
        )
    if choice == 3:
        exprs = tuple(
            draw(_num_expr(depth - 1, env))
            for _ in range(draw(st.integers(1, 3)))
        )
        return Node("Seq", (PList(exprs),))
    # Immediately-applied lambda: ((lambda (v) body) arg).
    name = f"v{len(env)}"
    body = draw(_num_expr(depth - 1, env + [name]))
    arg = draw(_num_expr(depth - 1, env))
    return Node("App", (Node("Lam", (Const(name), body)), arg))


def pure_programs():
    return _num_expr(3, [])


class TestDifferential:
    @given(pure_programs())
    @settings(max_examples=200, deadline=None)
    def test_small_step_agrees_with_big_step(self, program):
        small = SEMANTICS.normal_form(program)
        big = evaluate(program)
        assert isinstance(small, Const)
        assert small.value == big, pretty(program)

    @given(pure_programs())
    @settings(max_examples=100, deadline=None)
    def test_instrumented_agrees_with_both(self, program):
        from repro.stepper import InstrumentedEvaluator

        small = SEMANTICS.normal_form(program)
        instrumented = InstrumentedEvaluator().evaluate(program)
        assert small.value == instrumented

    @given(pure_programs())
    @settings(max_examples=100, deadline=None)
    def test_anf_preserves_small_step_semantics(self, program):
        from repro.confection import Confection
        from repro.stepper import anf
        from repro.sugars.scheme_sugars import make_scheme_rules

        conf = Confection(make_scheme_rules())
        original = SEMANTICS.normal_form(program)
        normalized = SEMANTICS.normal_form(conf.desugar(anf(program)))
        assert original == normalized
