"""Whole-pipeline property tests: random sugared programs, lifted.

For arbitrary programs over the section 8.1 sugar tower, lifting must
finish without an Emulation violation (the check is on), every emitted
step must be a surface term, the first step must be the program itself,
and the final step must be the program's value (independently computed
by a reference evaluator over the surface language).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.confection import Confection
from repro.core.tags import is_surface_term
from repro.core.terms import Const, Node, Pattern, PList
from repro.lambdacore import make_stepper, pretty
from repro.sugars.scheme_sugars import make_scheme_rules

CONF = Confection(make_scheme_rules(), make_stepper())

# --- a reference evaluator for the surface fragment we generate -------


def reference_eval(t: Pattern, env=()):
    if isinstance(t, Const):
        return t.value
    assert isinstance(t, Node), t
    label = t.label
    if label == "Id":
        name = t.children[0].value
        scope = env
        while scope:
            if scope[0] == name:
                return scope[1]
            scope = scope[2]
        raise AssertionError(f"unbound {name}")
    if label == "Op":
        op = t.children[0].value
        args = [reference_eval(a, env) for a in t.children[1].items]
        return {
            "+": lambda: args[0] + args[1],
            "*": lambda: args[0] * args[1],
            "<": lambda: args[0] < args[1],
            "not": lambda: not args[0],
        }[op]()
    if label == "Or":
        result = False
        for item in t.children[0].items:
            result = reference_eval(item, env)
            if result is not False:
                return result
        return result if t.children[0].items else False
    if label == "And":
        result = True
        for item in t.children[0].items:
            result = reference_eval(item, env)
            if result is False:
                return False
        return result
    if label == "If":
        if reference_eval(t.children[0], env):
            return reference_eval(t.children[1], env)
        return reference_eval(t.children[2], env)
    if label == "Cond":
        for clause in t.children[0].items:
            if clause.label == "Else":
                return reference_eval(clause.children[0], env)
            if reference_eval(clause.children[0], env):
                return reference_eval(clause.children[1], env)
        raise AssertionError("cond fell through")
    if label == "Let":
        scope = env
        for binding in t.children[0].items:
            scope = (
                binding.children[0].value,
                reference_eval(binding.children[1], scope),
                scope,
            )
        return reference_eval(t.children[1], scope)
    raise AssertionError(label)


# --- program generator -------------------------------------------------

VAR_NAMES = ["a", "b", "c"]


@st.composite
def programs(draw, depth: int = 3, env=()):
    """A closed (term, expected-type) over Or/And/Cond/If/Let/Op."""
    want_bool = draw(st.booleans())
    return draw(_expr(depth, env, "bool" if want_bool else "num"))


def _leaf(env, kind):
    options = []
    if kind == "bool":
        options.append(st.booleans().map(Const))
    else:
        options.append(st.integers(-9, 9).map(Const))
    in_scope = [name for name, k in env if k == kind]
    if in_scope:
        options.append(
            st.sampled_from(in_scope).map(
                lambda n: Node("Id", (Const(n),))
            )
        )
    return st.one_of(options)


@st.composite
def _expr(draw, depth, env, kind):
    if depth <= 0:
        return draw(_leaf(env, kind))
    choice = draw(st.integers(0, 5))
    if choice == 0:
        return draw(_leaf(env, kind))
    if choice == 1 and kind == "bool":
        n = draw(st.integers(0, 3))
        label = draw(st.sampled_from(["Or", "And"]))
        items = tuple(
            draw(_expr(depth - 1, env, "bool")) for _ in range(n)
        )
        return Node(label, (PList(items),))
    if choice == 2 and kind == "bool":
        left = draw(_expr(depth - 1, env, "num"))
        right = draw(_expr(depth - 1, env, "num"))
        return Node("Op", (Const("<"), PList((left, right))))
    if choice == 3:
        cond = draw(_expr(depth - 1, env, "bool"))
        then = draw(_expr(depth - 1, env, kind))
        els = draw(_expr(depth - 1, env, kind))
        return Node("If", (cond, then, els))
    if choice == 4:
        n = draw(st.integers(0, 2))
        clauses = []
        for _ in range(n):
            c = draw(_expr(depth - 1, env, "bool"))
            e = draw(_expr(depth - 1, env, kind))
            clauses.append(Node("Clause", (c, e)))
        clauses.append(Node("Else", (draw(_expr(depth - 1, env, kind)),)))
        return Node("Cond", (PList(tuple(clauses)),))
    # let-binding: extend scope with a fresh numeric or boolean variable.
    name = VAR_NAMES[len(env) % len(VAR_NAMES)] + str(len(env))
    bound_kind = draw(st.sampled_from(["bool", "num"]))
    bound = draw(_expr(depth - 1, env, bound_kind))
    body = draw(_expr(depth - 1, env + ((name, bound_kind),), kind))
    return Node(
        "Let",
        (PList((Node("Binding", (Const(name), bound)),)), body),
    )


# --- the properties -----------------------------------------------------


class TestEndToEnd:
    @given(programs())
    @settings(max_examples=120, deadline=None)
    def test_lift_is_sound_and_complete_on_random_programs(self, program):
        expected = reference_eval(program)
        result = CONF.lift(program)  # EmulationViolation would raise here

        sequence = result.surface_sequence
        assert sequence, "at least the initial program is shown"
        assert sequence[0] == program
        final = sequence[-1]
        assert isinstance(final, Const)
        assert final == Const(expected)

    @given(programs())
    @settings(max_examples=120, deadline=None)
    def test_every_emitted_step_is_a_surface_term(self, program):
        result = CONF.lift(program)
        for term in result.surface_sequence:
            assert is_surface_term(term)

    @given(programs())
    @settings(max_examples=60, deadline=None)
    def test_transparency_never_changes_the_answer(self, program):
        transparent = Confection(
            make_scheme_rules(transparent_recursion=True), make_stepper()
        )
        opaque_result = CONF.lift(program)
        transparent_result = transparent.lift(program)
        assert (
            opaque_result.surface_sequence[-1]
            == transparent_result.surface_sequence[-1]
        )
        # Transparency can only widen the trace.
        assert transparent_result.shown_count >= opaque_result.shown_count

    @given(programs())
    @settings(max_examples=60, deadline=None)
    def test_no_sugar_internals_leak(self, program):
        result = CONF.lift(program)
        for term in result.surface_sequence:
            # %t is the Or sugar's internal binder; lambda only ever
            # appears through sugar in this fragment.
            text = pretty(term)
            assert "%t" not in text
            assert "lambda" not in text
