"""Tests for the mini reduction-semantics engine, using a small
arithmetic/boolean language and a store-based counter language."""

import pytest

from repro.core.errors import StuckError
from repro.core.terms import BodyTag, Const, HeadTag, Node, PList, PVar, Tagged
from repro.redex import (
    AtomPred,
    EvalStrategy,
    Grammar,
    MachineState,
    NTRef,
    RedexStepper,
    ReductionRule,
    ReductionSemantics,
    redex_match,
)


def num(n):
    return Const(n)


def add(a, b):
    return Node("Add", (a, b))


def iff(c, t, e):
    return Node("If", (c, t, e))


@pytest.fixture
def arith():
    grammar = Grammar()
    grammar.define("v", AtomPred("number"), AtomPred("boolean"))
    grammar.define(
        "e",
        NTRef("v"),
        Node("Add", (NTRef("e"), NTRef("e"))),
        Node("If", (NTRef("e"), NTRef("e"), NTRef("e"))),
        Node("Amb", (NTRef("e"), NTRef("e"))),
    )
    strategy = (
        EvalStrategy()
        .congruence("Add", 0, 1)
        .congruence("If", 0)
        .congruence("Amb")  # no positions: immediate redex
    )
    rules = [
        ReductionRule(
            "add",
            Node("Add", (AtomPred("number", "a"), AtomPred("number", "b"))),
            lambda env, store: Const(env["a"].value + env["b"].value),
        ),
        ReductionRule(
            "if-true", Node("If", (Const(True), PVar("t"), PVar("e"))), PVar("t")
        ),
        ReductionRule(
            "if-false", Node("If", (Const(False), PVar("t"), PVar("e"))), PVar("e")
        ),
        ReductionRule(
            "amb",
            Node("Amb", (PVar("a"), PVar("b"))),
            lambda env, store: [env["a"], env["b"]],
        ),
    ]
    return ReductionSemantics(grammar, strategy, rules, name="arith")


class TestGrammar:
    def test_value_recognition(self, arith):
        assert arith.is_value(num(3))
        assert arith.is_value(Const(True))
        assert not arith.is_value(add(num(1), num(2)))

    def test_values_see_through_tags(self, arith):
        assert arith.is_value(Tagged(BodyTag(), num(3)))

    def test_expression_nonterminal(self, arith):
        assert arith.grammar.matches(add(num(1), iff(Const(True), num(2), num(3))), "e")
        assert not arith.grammar.matches(Node("Junk", ()), "e")

    def test_memoization_is_safe_after_redefinition(self):
        g = Grammar()
        g.define("v", AtomPred("number"))
        assert not g.matches(Const("s"), "v")
        g.define("v", AtomPred("string"))
        assert g.matches(Const("s"), "v")

    def test_cyclic_nonterminals_terminate(self):
        g = Grammar()
        g.define("a", NTRef("b"))
        g.define("b", NTRef("a"), AtomPred("number"))
        assert g.matches(Const(1), "a")
        assert not g.matches(Const("x"), "a")


class TestRedexMatch:
    def test_ntref_binds(self, arith):
        env = redex_match(
            add(num(1), num(2)),
            Node("Add", (NTRef("v", "x"), NTRef("v", "y"))),
            arith.grammar,
        )
        assert env == {"x": num(1), "y": num(2)}

    def test_ntref_rejects_nonmember(self, arith):
        assert (
            redex_match(
                add(add(num(1), num(2)), num(3)),
                Node("Add", (NTRef("v", "x"), PVar("y"))),
                arith.grammar,
            )
            is None
        )

    def test_atompred_binds_bare_constant(self, arith):
        env = redex_match(
            Tagged(BodyTag(), num(7)), AtomPred("number", "n"), arith.grammar
        )
        assert env == {"n": num(7)}

    def test_tags_transparent_in_structure(self, arith):
        t = Tagged(HeadTag(0), add(Tagged(BodyTag(), num(1)), num(2)))
        env = redex_match(
            t, Node("Add", (AtomPred("number", "a"), PVar("b"))), arith.grammar
        )
        assert env == {"a": num(1), "b": num(2)}


class TestStepping:
    def test_single_step(self, arith):
        (s,) = arith.step(MachineState(add(num(1), num(2))))
        assert s.term == num(3)

    def test_leftmost_innermost_order(self, arith):
        t = add(add(num(1), num(2)), add(num(3), num(4)))
        (s,) = arith.step(MachineState(t))
        assert s.term == add(num(3), add(num(3), num(4)))

    def test_right_operand_waits_for_left(self, arith):
        t = add(num(1), add(num(2), num(3)))
        (s,) = arith.step(MachineState(t))
        assert s.term == add(num(1), num(5))

    def test_if_does_not_evaluate_branches(self, arith):
        t = iff(Const(True), num(1), add(num(2), num(3)))
        (s,) = arith.step(MachineState(t))
        assert s.term == num(1)

    def test_value_has_no_successors(self, arith):
        assert arith.step(MachineState(num(42))) == []

    def test_stuck_term_raises(self, arith):
        with pytest.raises(StuckError):
            arith.step(MachineState(add(num(1), Const(True))))

    def test_trace(self, arith):
        states = arith.trace(add(add(num(1), num(2)), num(4)))
        assert [s.term for s in states] == [
            add(add(num(1), num(2)), num(4)),
            add(num(3), num(4)),
            num(7),
        ]

    def test_normal_form(self, arith):
        assert arith.normal_form(
            iff(Const(False), num(0), add(num(2), num(3)))
        ) == num(5)

    def test_nondeterministic_trace_tree(self, arith):
        t = Node("Amb", (num(1), add(num(1), num(1))))
        states, edges = arith.trace_tree(t)
        terms = [s.term for s in states]
        assert num(1) in terms and num(2) in terms
        assert len(edges) == 3  # root->1, root->Add, Add->2

    def test_trace_rejects_nondeterminism(self, arith):
        with pytest.raises(StuckError, match="nondeterministic"):
            arith.trace(Node("Amb", (num(1), num(2))))


class TestTagsThroughReduction:
    def test_context_tags_preserved(self, arith):
        # A tag above the redex survives the step.
        tag = BodyTag()
        t = Tagged(tag, add(add(num(1), num(2)), num(4)))
        (s,) = arith.step(MachineState(t))
        assert s.term == Tagged(tag, add(num(3), num(4)))

    def test_redex_tags_consumed(self, arith):
        # A tag on the redex itself disappears with it.
        t = Tagged(BodyTag(), add(num(1), num(2)))
        (s,) = arith.step(MachineState(t))
        assert s.term == num(3)

    def test_captured_subterm_tags_survive(self, arith):
        # if-true returns its captured branch, tags intact.
        branch = Tagged(BodyTag(), num(1))
        t = iff(Const(True), branch, num(0))
        (s,) = arith.step(MachineState(t))
        assert s.term == branch

    def test_tagged_operands_reduce(self, arith):
        t = add(Tagged(BodyTag(), num(1)), num(2))
        (s,) = arith.step(MachineState(t))
        assert s.term == num(3)


class TestStore:
    @pytest.fixture
    def counter(self):
        grammar = Grammar()
        grammar.define("v", AtomPred("number"))
        rules = [
            ReductionRule(
                "incr",
                Node("Incr", ()),
                lambda env, store: (
                    Const(store.get("n", 0) + 1),
                    __import__("types").MappingProxyType(
                        {**store, "n": store.get("n", 0) + 1}
                    ),
                ),
            ),
            ReductionRule(
                "pair",
                Node("Pair", (AtomPred("number", "a"), AtomPred("number", "b"))),
                lambda env, store: PList((env["a"], env["b"])),
            ),
        ]
        strategy = EvalStrategy().congruence("Pair", 0, 1)
        grammar.define("v", PList((), NTRef("v")))
        return ReductionSemantics(grammar, strategy, rules, name="counter")

    def test_store_threads_through_steps(self, counter):
        t = Node("Pair", (Node("Incr", ()), Node("Incr", ())))
        states = counter.trace(t)
        assert states[-1].term == PList((Const(1), Const(2)))
        assert states[-1].store["n"] == 2


class TestStepperAdapter:
    def test_halts_on_stuck_by_default(self, arith):
        stepper = RedexStepper(arith)
        state = stepper.load(add(num(1), Const(True)))
        assert stepper.step(state) == []

    def test_raise_mode(self, arith):
        stepper = RedexStepper(arith, on_stuck="raise")
        with pytest.raises(StuckError):
            stepper.step(stepper.load(add(num(1), Const(True))))

    def test_term_extraction(self, arith):
        stepper = RedexStepper(arith)
        state = stepper.load(num(1))
        assert stepper.term(state) == num(1)
