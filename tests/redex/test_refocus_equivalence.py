"""Refocusing equivalence: the machine stepper is observably identical
to root-restart stepping.

Two property families over random programs in both backends:

* *split equivalence* — at every reachable machine state, resuming
  decomposition from the kept context (:func:`repro.redex.refocus.refocus`)
  finds exactly the split that decomposing the plugged snapshot from the
  root finds: same redex, and both contexts plug the redex back to the
  same whole term;
* *run equivalence* — an N-step machine run yields the same term
  sequence (and the same branching, halting, and stuck behaviour,
  including :class:`~repro.core.errors.StuckError` messages) as N
  root-restart steps.

Programs are generated as random surface strings and desugared through
the bundled sugar sets, so the cores carry origin tags — exercising the
tag-transparent frames — and cover control rules (``call/cc`` via the
return sugar), ``preserve_redex_tags`` rules (``begin``), mutation, and
nondeterminism (``amb``).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.desugar import desugar
from repro.core.errors import StuckError
from repro.redex.reduction import MachineState, RedexStepper
from repro.redex.refocus import plug_context, refocus

MAX_STATES = 40


# ---------------------------------------------------------------------------
# Random surface programs
# ---------------------------------------------------------------------------

scheme_atoms = st.sampled_from(["#t", "#f", "0", "1", "2", "5"])


def scheme_exprs():
    return st.recursive(
        scheme_atoms,
        lambda e: st.one_of(
            st.builds("(or {} {})".format, e, e),
            st.builds("(and {} {} {})".format, e, e, e),
            st.builds("(not {})".format, e),
            st.builds("(if {} {} {})".format, e, e, e),
            st.builds("(let ((x {})) {})".format, e, e),
            st.builds("(+ {} {})".format, e, e),
            st.builds("(< {} {})".format, e, e),
            st.builds("(begin {} {})".format, e, e),
            st.builds("((lambda (x) {}) {})".format, e, e),
            st.builds("((lambda (x) (begin (set! x {}) x)) {})".format, e, e),
            st.builds("(amb {} {})".format, e, e),
        ),
        max_leaves=8,
    )


pyret_atoms = st.sampled_from(["1", "2", "true", "false", '"s"'])


def pyret_exprs():
    return st.recursive(
        pyret_atoms,
        lambda e: st.one_of(
            st.builds("{} + {}".format, e, e),
            st.builds("(if {}: {} else: {} end)".format, e, e, e),
            st.builds("block: {} {} end".format, e, e),
            st.builds("fun(x): x end({})".format, e),
            st.builds("raise({})".format, e),
            st.builds("{} or {}".format, e, e),
        ),
        max_leaves=6,
    )


def _scheme_core(source):
    from repro.lambdacore import make_semantics, parse_program
    from repro.sugars.scheme_sugars import make_scheme_rules

    rules = make_scheme_rules()
    return make_semantics(), desugar(rules, parse_program(source))


def _pyret_core(source):
    from repro.pyretcore import make_semantics, parse_program
    from repro.sugars.pyret_sugars import make_pyret_rules

    rules = make_pyret_rules()
    return make_semantics(), desugar(rules, parse_program(source))


def _return_core(source):
    from repro.lambdacore import make_semantics, parse_program
    from repro.sugars.returns import make_return_rules

    rules = make_return_rules()
    return make_semantics(), desugar(rules, parse_program(source))


# ---------------------------------------------------------------------------
# The two equivalence walks
# ---------------------------------------------------------------------------


def assert_split_equivalence(semantics, core, max_states=MAX_STATES):
    """At every reachable machine state, refocusing from the kept
    context finds the split that root decomposition of the snapshot
    finds."""
    stepper = RedexStepper(semantics, on_stuck="halt", mode="refocus")
    machine = stepper._machine
    queue = [stepper.load(core)]
    seen = 0
    while queue and seen < max_states:
        state = queue.pop(0)
        seen += 1
        if isinstance(state, MachineState):
            continue  # non-ground fallback state; nothing to compare
        snapshot = machine.term(state)
        ctx, focus, done, _moves = refocus(
            semantics.strategy, state.context, state.focus, semantics.is_value
        )
        root = semantics.strategy.decompose(snapshot, semantics.is_value)
        if done:
            assert root is None
            assert focus == snapshot
        else:
            assert root is not None
            assert root.redex == focus
            assert plug_context(ctx, focus) == snapshot
            assert root.plug(root.redex) == snapshot
        queue.extend(stepper.step(state))


def assert_run_equivalence(semantics, core, max_states=MAX_STATES):
    """Lockstep breadth-first comparison of the machine run against
    root-restart stepping: same snapshots, same branching, same stuck
    errors."""
    naive = RedexStepper(semantics, on_stuck="raise", mode="naive")
    machine = RedexStepper(semantics, on_stuck="raise", mode="refocus")
    queue = [(naive.load(core), machine.load(core))]
    seen = 0
    while queue and seen < max_states:
        n_state, m_state = queue.pop(0)
        seen += 1
        assert naive.term(n_state) == machine.term(m_state)
        n_err = m_err = None
        try:
            n_succ = naive.step(n_state)
        except StuckError as err:
            n_err = str(err)
        try:
            m_succ = machine.step(m_state)
        except StuckError as err:
            m_err = str(err)
        assert n_err == m_err
        if n_err is not None:
            continue
        assert len(n_succ) == len(m_succ)
        queue.extend(zip(n_succ, m_succ))


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(scheme_exprs())
def test_scheme_split_matches_root_decomposition(source):
    assert_split_equivalence(*_scheme_core(source))


@settings(max_examples=40, deadline=None)
@given(scheme_exprs())
def test_scheme_machine_matches_root_restart(source):
    assert_run_equivalence(*_scheme_core(source))


@settings(max_examples=30, deadline=None)
@given(pyret_exprs())
def test_pyret_split_matches_root_decomposition(source):
    assert_split_equivalence(*_pyret_core(source))


@settings(max_examples=30, deadline=None)
@given(pyret_exprs())
def test_pyret_machine_matches_root_restart(source):
    assert_run_equivalence(*_pyret_core(source))


# ---------------------------------------------------------------------------
# Targeted control-flow cases (call/cc, deep contexts, objects)
# ---------------------------------------------------------------------------


RETURN_PROGRAMS = [
    "(+ 1 ((function (x) (+ 1 (return (+ x 2)))) (+ 3 4)))",
    "((function (x) (return x)) 5)",
    "(+ 1 ((function (x) (if (< x 3) (return 0) (return 1))) 2))",
]


def test_callcc_control_rules_match_root_restart():
    for source in RETURN_PROGRAMS:
        semantics, core = _return_core(source)
        assert_run_equivalence(semantics, core)
        assert_split_equivalence(semantics, core)


def test_deep_let_in_or_arm_matches_root_restart():
    source = "(or #f (let ((x (let ((y 2)) (+ y 3)))) (< x 2)) (not #f))"
    semantics, core = _scheme_core(source)
    assert_run_equivalence(semantics, core, max_states=100)
    assert_split_equivalence(semantics, core, max_states=100)


def test_pyret_object_fields_match_root_restart():
    semantics, core = _pyret_core(
        "cases(List) []: | link(f, r) => f | else => 1 + 2 end"
    )
    assert_run_equivalence(semantics, core, max_states=100)
    assert_split_equivalence(semantics, core, max_states=100)
