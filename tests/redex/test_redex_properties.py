"""Property-based tests for the reduction-semantics engine.

Invariants:
* decompose/plug is the identity: plugging the redex back into its
  context reproduces the original term;
* evaluation of random arithmetic terms agrees with a reference
  evaluator;
* tags never change *what* a term evaluates to, only what resugaring
  sees.
"""

from hypothesis import given, strategies as st

from repro.core.terms import BodyTag, Const, Node, Pattern, PVar, Tagged
from repro.redex import (
    AtomPred,
    EvalStrategy,
    Grammar,
    ReductionRule,
    ReductionSemantics,
)


def make_arith():
    grammar = Grammar()
    grammar.define("v", AtomPred("number"), AtomPred("boolean"))
    strategy = (
        EvalStrategy()
        .congruence("Add", 0, 1)
        .congruence("Mul", 0, 1)
        .congruence("If", 0)
        .congruence("Less", 0, 1)
    )
    rules = [
        ReductionRule(
            "add",
            Node("Add", (AtomPred("number", "a"), AtomPred("number", "b"))),
            lambda env, store: Const(env["a"].value + env["b"].value),
        ),
        ReductionRule(
            "mul",
            Node("Mul", (AtomPred("number", "a"), AtomPred("number", "b"))),
            lambda env, store: Const(env["a"].value * env["b"].value),
        ),
        ReductionRule(
            "less",
            Node("Less", (AtomPred("number", "a"), AtomPred("number", "b"))),
            lambda env, store: Const(env["a"].value < env["b"].value),
        ),
        ReductionRule(
            "if-true", Node("If", (Const(True), PVar("t"), PVar("e"))), PVar("t")
        ),
        ReductionRule(
            "if-false", Node("If", (Const(False), PVar("t"), PVar("e"))), PVar("e")
        ),
    ]
    return ReductionSemantics(grammar, strategy, rules, name="arith-prop")


ARITH = make_arith()


def arith_terms():
    numbers = st.integers(min_value=-20, max_value=20).map(Const)

    def extend(children):
        return st.one_of(
            st.builds(lambda a, b: Node("Add", (a, b)), children, children),
            st.builds(lambda a, b: Node("Mul", (a, b)), children, children),
            st.builds(
                lambda a, b, t, e: Node(
                    "If", (Node("Less", (a, b)), t, e)
                ),
                children, children, children, children,
            ),
        )

    return st.recursive(numbers, extend, max_leaves=12)


def reference_eval(t: Pattern):
    while isinstance(t, Tagged):
        t = t.term
    if isinstance(t, Const):
        return t.value
    assert isinstance(t, Node)
    if t.label == "Add":
        return reference_eval(t.children[0]) + reference_eval(t.children[1])
    if t.label == "Mul":
        return reference_eval(t.children[0]) * reference_eval(t.children[1])
    if t.label == "Less":
        return reference_eval(t.children[0]) < reference_eval(t.children[1])
    if t.label == "If":
        if reference_eval(t.children[0]):
            return reference_eval(t.children[1])
        return reference_eval(t.children[2])
    raise AssertionError(t.label)


def sprinkle_tags(t: Pattern, salt: int) -> Pattern:
    """Deterministically wrap some subterms in body tags."""
    if isinstance(t, Node):
        children = tuple(
            sprinkle_tags(c, salt + i + 1) for i, c in enumerate(t.children)
        )
        rebuilt = Node(t.label, children)
        if salt % 3 == 0:
            return Tagged(BodyTag(salt % 2 == 0), rebuilt)
        return rebuilt
    if isinstance(t, Const) and salt % 5 == 0:
        return Tagged(BodyTag(), t)
    return t


class TestDecomposePlug:
    @given(arith_terms())
    def test_plugging_redex_back_is_identity(self, term):
        decomposition = ARITH.strategy.decompose(term, ARITH.is_value)
        if decomposition is None:
            assert ARITH.is_value(term)
            return
        assert decomposition.plug(decomposition.redex) == term

    @given(arith_terms())
    def test_values_do_not_decompose(self, term):
        if ARITH.is_value(term):
            assert ARITH.strategy.decompose(term, ARITH.is_value) is None

    @given(arith_terms().map(lambda t: sprinkle_tags(t, 1)))
    def test_plug_identity_with_tags(self, term):
        decomposition = ARITH.strategy.decompose(term, ARITH.is_value)
        if decomposition is not None:
            assert decomposition.plug(decomposition.redex) == term


class TestEvaluationAgreement:
    @given(arith_terms())
    def test_normal_form_matches_reference(self, term):
        expected = reference_eval(term)
        result = ARITH.normal_form(term)
        assert isinstance(result, Const)
        assert result.value == expected

    @given(arith_terms().map(lambda t: sprinkle_tags(t, 1)))
    def test_tags_do_not_change_results(self, term):
        from repro.core.terms import strip_tags

        expected = reference_eval(strip_tags(term))
        result = ARITH.normal_form(term)
        while isinstance(result, Tagged):
            result = result.term
        assert result.value == expected

    @given(arith_terms())
    def test_trace_is_connected(self, term):
        states = ARITH.trace(term)
        for before, after in zip(states, states[1:]):
            successors = ARITH.step(before)
            assert [after] == successors

    @given(arith_terms())
    def test_step_count_bounded_by_node_count(self, term):
        from repro.core.terms import term_size

        states = ARITH.trace(term)
        # Each step consumes at least one redex node.
        assert len(states) <= term_size(term) + 1
