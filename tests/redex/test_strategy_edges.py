"""Edge cases for evaluation strategies and grammars."""

import pytest

from repro.core.errors import LanguageError
from repro.core.terms import BodyTag, Const, Node, PList, PVar, Tagged
from repro.redex import (
    AtomPred,
    EvalStrategy,
    Grammar,
    MachineState,
    ReductionRule,
    ReductionSemantics,
)


def is_num(t):
    while isinstance(t, Tagged):
        t = t.term
    return isinstance(t, Const)


class TestPositions:
    def test_out_of_range_position_raises(self):
        strategy = EvalStrategy().congruence("Foo", 5)
        with pytest.raises(LanguageError, match="out of range"):
            strategy.decompose(Node("Foo", (Const(1),)), is_num)

    def test_unknown_position_kind_raises(self):
        strategy = EvalStrategy().congruence("Foo", ("sideways", 0))
        with pytest.raises(LanguageError, match="unknown evaluation position"):
            strategy.decompose(Node("Foo", (Node("Bar", ()),)), is_num)

    def test_undeclared_label_is_immediate_redex(self):
        strategy = EvalStrategy()
        d = strategy.decompose(Node("Mystery", (Node("Inner", ()),)), is_num)
        assert d.redex == Node("Mystery", (Node("Inner", ()),))

    def test_nth_with_min_len_skips_short_lists(self):
        strategy = EvalStrategy().congruence("Seq", ("nth", 0, 0, 2))
        term = Node("Seq", (PList((Node("Work", ()),)),))
        d = strategy.decompose(term, is_num)
        # One element: the Seq itself is the redex, not the element.
        assert d.redex == term

    def test_list_child_skips_non_matching_elements(self):
        strategy = EvalStrategy().congruence("Obj", ("list_child", 0, 1))
        field = Node("Field", (Const("a"), Node("Work", ())))
        term = Node("Obj", (PList((Const(7), field)),))
        d = strategy.decompose(term, is_num)
        assert d.redex == Node("Work", ())
        rebuilt = d.plug(Const(9))
        assert rebuilt == Node(
            "Obj", (PList((Const(7), Node("Field", (Const("a"), Const(9))))),)
        )

    def test_list_child_on_non_list_is_no_position(self):
        strategy = EvalStrategy().congruence("Obj", ("list_child", 0, 1))
        term = Node("Obj", (Const(1),))
        d = strategy.decompose(term, is_num)
        assert d.redex == term


class TestRuleApplication:
    def test_control_rule_requires_callable_rhs(self):
        from repro.core.errors import StuckError

        rule = ReductionRule("bad", Node("Foo", ()), PVar("x"), control=True)
        with pytest.raises(StuckError, match="callable"):
            rule.apply({}, {}, plug=lambda t: t)

    def test_rule_order_respected(self):
        grammar = Grammar()
        grammar.define("v", AtomPred("number"))
        rules = [
            ReductionRule("first", Node("Foo", ()), Const(1)),
            ReductionRule("second", Node("Foo", ()), Const(2)),
        ]
        sem = ReductionSemantics(grammar, EvalStrategy(), rules)
        (s,) = sem.step(MachineState(Node("Foo", ())))
        assert s.term == Const(1)

    def test_preserve_redex_tags(self):
        grammar = Grammar()
        grammar.define("v", AtomPred("number"))
        rules = [
            ReductionRule(
                "tick",
                Node("Box", (AtomPred("number", "n"),)),
                lambda env, store: Node("Box2", (env["n"],)),
                preserve_redex_tags=True,
            ),
        ]
        sem = ReductionSemantics(grammar, EvalStrategy(), rules)
        tag = BodyTag()
        (s,) = sem.step(MachineState(Tagged(tag, Node("Box", (Const(1),)))))
        assert s.term == Tagged(tag, Node("Box2", (Const(1),)))


class TestGrammarErrors:
    def test_empty_nonterminal_rejected(self):
        with pytest.raises(LanguageError, match=">= 1 production"):
            Grammar().define("v")

    def test_undefined_nonterminal_raises(self):
        g = Grammar()
        with pytest.raises(LanguageError, match="undefined"):
            g.matches(Const(1), "ghost")
