"""Tests for the section 7 stepper machinery: big-step evaluation,
A-normalization, and shadow-stack instrumentation."""

import pytest

from repro.core.errors import StuckError
from repro.lambdacore import parse_program, pretty
from repro.stepper import (
    InstrumentedEvaluator,
    anf,
    evaluate,
    is_anf,
    measure_overhead,
)


def ev(source):
    return evaluate(parse_program(source))


class TestBigStep:
    def test_arithmetic(self):
        assert ev("(+ 1 (* 2 3))") == 7

    def test_closures(self):
        assert ev("((lambda (x) (+ x 1)) 41)") == 42

    def test_higher_order(self):
        assert ev("(((lambda (f) (lambda (x) (f (f x)))) (lambda (y) (* y 2))) 3)") == 12

    def test_if(self):
        assert ev("(if (< 1 2) 10 20)") == 10

    def test_seq(self):
        assert ev("(begin 1 2 3)") == 3

    def test_strings(self):
        assert ev('(rest "abc")') == "bc"

    def test_unbound_variable(self):
        with pytest.raises(StuckError):
            ev("mystery")

    def test_apply_non_function(self):
        with pytest.raises(StuckError):
            ev("(1 2)")

    def test_recursion_via_self_application(self):
        # Z-combinator-free recursion through self-application.
        source = """
        (((lambda (f) (lambda (n) ((f f) n)))
          (lambda (self)
            (lambda (n) (if (zero? n) 1 (* n ((self self) (- n 1)))))))
         5)
        """
        assert ev(source) == 120

    def test_hook_counts_steps(self):
        count = [0]
        evaluate(parse_program("(+ 1 2)"), hook=lambda: count.__setitem__(0, count[0] + 1))
        assert count[0] > 1


class TestANF:
    def test_trivial_terms_unchanged(self):
        for source in ("1", "x", "(lambda (x) x)"):
            term = parse_program(source)
            assert anf(term) == term or is_anf(anf(term))

    def test_nested_application_is_named(self):
        out = anf(parse_program("(f (g 1))"))
        assert is_anf(out)
        assert "%anf" in pretty(out)

    def test_nested_ops_are_named(self):
        out = anf(parse_program("(+ 1 (* 2 3))"))
        assert is_anf(out)

    def test_if_test_is_named(self):
        out = anf(parse_program("(if (< (+ 1 1) 3) 1 2)"))
        assert is_anf(out)

    def test_already_anf_is_stable(self):
        term = parse_program("(f x)")
        assert anf(term) == term

    def test_anf_preserves_meaning(self):
        # Evaluate the original and the A-normalized term; same value.
        # ANF introduces Let sugar, so desugar the result first.
        from repro.confection import Confection
        from repro.lambdacore import make_semantics
        from repro.sugars.scheme_sugars import make_scheme_rules

        conf = Confection(make_scheme_rules())
        sem = make_semantics()
        for source in (
            "(+ 1 (* 2 3))",
            "((lambda (x) (+ x 1)) (+ 20 21))",
            "(if (< (+ 1 1) 3) (+ 1 9) 2)",
        ):
            original = sem.normal_form(conf.desugar(parse_program(source)))
            normalized = sem.normal_form(conf.desugar(anf(parse_program(source))))
            assert original == normalized

    def test_deep_nesting(self):
        source = "(+ 1 (+ 2 (+ 3 (+ 4 (+ 5 6)))))"
        out = anf(parse_program(source))
        assert is_anf(out)


FIB = """
(((lambda (f) (lambda (n) ((f f) n)))
  (lambda (self)
    (lambda (n)
      (if (< n 2) n (+ ((self self) (- n 1)) ((self self) (- n 2)))))))
 10)
"""


class TestInstrumentation:
    def test_instrumented_agrees_with_plain(self):
        term = parse_program(FIB)
        assert InstrumentedEvaluator().evaluate(term) == evaluate(term)

    def test_step_count_positive(self):
        inst = InstrumentedEvaluator()
        inst.evaluate(parse_program("(+ 1 (* 2 3))"))
        assert inst.steps > 3

    def test_stack_depth_tracks_nesting(self):
        shallow = InstrumentedEvaluator()
        shallow.evaluate(parse_program("(+ 1 2)"))
        deep = InstrumentedEvaluator()
        deep.evaluate(parse_program(FIB))
        assert deep.stack.max_depth > shallow.stack.max_depth

    def test_continuation_reconstruction(self):
        seen = []
        inst = InstrumentedEvaluator(on_step=seen.append)
        inst.evaluate(parse_program("(+ 1 (* 2 3))"))
        # The first pause sees the whole program as the continuation.
        assert pretty(seen[0]) == "(+ 1 (* 2 3))"
        # Some later pause focuses inside the multiplication.
        assert any("(* 2 3)" in pretty(t) for t in seen)

    def test_reconstruction_has_no_holes_at_root_focus(self):
        seen = []
        inst = InstrumentedEvaluator(on_step=seen.append)
        inst.evaluate(parse_program("((lambda (x) x) 5)"))
        assert all("<hole>" not in pretty(t) for t in seen)

    def test_overhead_report_shape(self):
        report = measure_overhead("fib(10)", parse_program(FIB), repetitions=2)
        assert report.steps > 100
        assert report.plain_seconds > 0
        # Instrumentation costs more than nothing; the magnitude is
        # asserted (loosely) in the benchmark, not here.
        assert report.full_seconds >= report.stack_only_seconds * 0.5
