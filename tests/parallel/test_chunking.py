"""Chunked fan-out is invisible except in throughput.

``WarmPool`` may batch several jobs into one pool submission to
amortize pickling; the chunk size must never leak into results.  These
tests sweep explicit chunk sizes (including sizes that do not divide
the corpus) against the unchunked baseline, pin the auto heuristic,
and check that a fault inside a chunk is contained to its own job —
the chunk's healthy neighbours still complete.
"""

from __future__ import annotations

import pytest

from repro.core.terms import Const
from repro.engine.events import BatchLifted, JobError
from repro.parallel import lift_corpus
from repro.parallel.pool import MAX_AUTO_CHUNK, WarmPool, _auto_chunk
from repro.engine.registry import get_backend

from tests.parallel.faulty import (
    POISON_VALUE,
    make_exploding_confection,
)

PROGRAMS = [
    "(or (not #t) (not #f))",
    "(and #t (or #f #t))",
    "(let ((x 1) (y 2)) (+ x y))",
    "(cond ((not #t) 1) (#t 2))",
    "(+ 1 (* 2 3))",
    "(if (not #f) (or #t #f) #f)",
    "(or #f (and #t #t))",
]


def _render(outcomes):
    return [(o.job_index, list(o.rendered)) for o in outcomes]


@pytest.mark.parametrize("chunk", [1, 2, 3, len(PROGRAMS), None])
def test_chunk_size_is_invisible_in_results(chunk):
    """Every chunk size — unit, uneven, whole-corpus, and the auto
    heuristic — yields the same outcomes in submission order."""
    backend = get_backend("lambda")
    spec = (backend.make_rules(None), backend.make_stepper())
    corpus = [backend.parse(p) for p in PROGRAMS]
    baseline = lift_corpus(
        spec, corpus, jobs=1, payload="rendered", pretty=backend.pretty
    )
    outcomes = lift_corpus(
        spec,
        corpus,
        jobs=2,
        chunk=chunk,
        payload="rendered",
        pretty=backend.pretty,
    )
    assert _render(outcomes) == _render(baseline)


@pytest.mark.parametrize("chunk", [2, 3])
def test_fault_inside_chunk_is_contained_to_its_job(chunk):
    """One poisoned job mid-corpus: with multi-job chunks, the poisoned
    job's chunk-mates must still return real results, and the JobError
    must carry the poisoned job's own index."""
    engine = make_exploding_confection()
    corpus = [
        Const(POISON_VALUE - 1),
        Const(POISON_VALUE + 3),  # steps through the poison value
        Const(1),
        Const(0),
        Const(1),
    ]
    outcomes = lift_corpus(engine, corpus, jobs=2, chunk=chunk)
    kinds = [type(o) for o in outcomes]
    assert kinds == [BatchLifted, JobError, BatchLifted, BatchLifted,
                     BatchLifted]
    assert [o.job_index for o in outcomes] == list(range(len(corpus)))
    assert outcomes[1].error_type == "InjectedFault"


def test_auto_chunk_heuristic_bounds():
    """Small corpora stay unchunked (latency), large ones batch up to
    the cap (pickling amortization)."""
    assert _auto_chunk(1, 4) == 1
    assert _auto_chunk(8, 4) == 1
    assert _auto_chunk(64, 4) == 4
    assert _auto_chunk(10_000, 4) == MAX_AUTO_CHUNK
    # Never zero, even for degenerate inputs.
    assert _auto_chunk(0, 4) == 1


def test_invalid_chunk_rejected():
    with pytest.raises(ValueError):
        WarmPool((None, None), jobs=2, chunk=0)


def test_chunked_and_unit_results_agree_with_cache(tmp_path):
    """Chunking composes with the shared cache: a chunked cold pass and
    an unchunked warm pass over the same directory agree byte for
    byte."""
    backend = get_backend("lambda")
    spec = (backend.make_rules(None), backend.make_stepper())
    corpus = [backend.parse(p) for p in PROGRAMS]
    cold = lift_corpus(
        spec, corpus, jobs=2, chunk=3, payload="rendered",
        pretty=backend.pretty, cache_dir=tmp_path,
    )
    warm = lift_corpus(
        spec, corpus, jobs=1, payload="rendered",
        pretty=backend.pretty, cache_dir=tmp_path,
    )
    assert _render(warm) == _render(cold)
