"""Fault isolation: one poisoned job never aborts the batch.

The fixtures in :mod:`tests.parallel.faulty` provide a stepper that
raises mid-evaluation and one that loops past any step budget.  The
batch engine must contain both failure modes as structured
:class:`~repro.engine.events.JobError` results — original exception
type and message preserved — while sibling jobs' outputs are exactly
what a solo sequential lift produces.
"""

from __future__ import annotations

import os

import pytest

from repro.core.terms import Const
from repro.engine.events import BatchLifted, JobError
from repro.parallel import LiftJob, lift_corpus

from tests.parallel.faulty import (
    POISON_VALUE,
    make_exploding_confection,
    make_looping_confection,
)

JOBS_COUNTS = [1, 2]


def _corpus():
    """Healthy, poisoned, healthy: the poisoned job starts above the
    poison value and must step through it; its siblings start below."""
    return [Const(POISON_VALUE - 1), Const(POISON_VALUE + 3), Const(1)]


@pytest.mark.parametrize("n_jobs", JOBS_COUNTS)
def test_raising_stepper_is_contained(n_jobs):
    engine = make_exploding_confection()
    solo = [engine.lift(Const(POISON_VALUE - 1)), None, engine.lift(Const(1))]

    outcomes = lift_corpus(engine, _corpus(), jobs=n_jobs)

    assert [type(o) for o in outcomes] == [BatchLifted, JobError, BatchLifted]
    error = outcomes[1]
    assert error.job_index == 1
    assert error.error_type == "InjectedFault"
    assert (
        f"injected stepper fault at state {POISON_VALUE}"
        in error.error_message
    )
    assert "InjectedFault" in error.traceback
    for index in (0, 2):
        assert outcomes[index].job_index == index
        assert (
            outcomes[index].result.surface_sequence
            == solo[index].surface_sequence
        )
        assert outcomes[index].result.steps == solo[index].steps


@pytest.mark.parametrize("n_jobs", JOBS_COUNTS)
def test_budget_exhaustion_is_contained(n_jobs):
    engine = make_looping_confection()
    corpus = [
        LiftJob(Const(0), max_steps=25, on_budget="raise"),
        LiftJob(Const(0), max_steps=25, on_budget="truncate"),
    ]

    outcomes = lift_corpus(engine, corpus, jobs=n_jobs)

    error, truncated = outcomes
    assert isinstance(error, JobError)
    assert error.error_type == "ReproError"
    assert "did not finish within 25 steps" in error.error_message
    assert isinstance(truncated, BatchLifted)
    assert truncated.result.truncated
    assert truncated.result.core_step_count == 26


def test_pool_jobs_run_in_child_processes():
    engine = make_exploding_confection()
    outcomes = lift_corpus(engine, _corpus(), jobs=2)
    assert all(o.worker is not None and o.worker != os.getpid() for o in outcomes)


def test_serial_jobs_run_in_this_process():
    engine = make_exploding_confection()
    outcomes = lift_corpus(engine, _corpus(), jobs=1)
    assert all(o.worker == os.getpid() for o in outcomes)


def test_every_job_poisoned_still_completes():
    engine = make_exploding_confection()
    corpus = [Const(POISON_VALUE + i) for i in range(5)]
    outcomes = lift_corpus(engine, corpus, jobs=2)
    assert [o.job_index for o in outcomes] == list(range(5))
    assert all(isinstance(o, JobError) for o in outcomes)
    assert {o.error_type for o in outcomes} == {"InjectedFault"}
