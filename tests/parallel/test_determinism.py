"""Batch-lift determinism over the golden corpus.

The parallel engine's headline guarantee: lifting the whole golden
corpus at ``jobs=1`` (in-process), ``jobs=2``, and ``jobs=4`` (process
pools), in both incremental and naive resugaring modes, produces output
byte-identical to the sequential :func:`repro.core.lift.lift_evaluation`
path — the rendered surface sequence, the per-step event ordering
(every :class:`~repro.core.lift.LiftedStep`, emitted/deduped/skipped
flags included), truncation status, and even the per-run cache
statistics.  Worker scheduling must be completely invisible.
"""

from __future__ import annotations

import pytest

from repro.core.lift import lift_evaluation
from repro.parallel import BatchLifted, LiftJob, lift_corpus

from tests.test_golden_traces import (
    GOLDEN_FILES,
    _configs,
    lift_kwargs,
    parse_golden,
)


def _grouped_corpus():
    """The golden corpus grouped by sugar configuration: one batch per
    rule table, mirroring how a worker is warmed once per pool."""
    groups = {}
    for path in GOLDEN_FILES:
        sugar, program, trace, stats, options = parse_golden(path)
        groups.setdefault(sugar, []).append(
            (path.stem, program, trace, lift_kwargs(options))
        )
    return groups


GROUPS = _grouped_corpus()


@pytest.mark.parametrize(
    "incremental", [True, False], ids=["incremental", "naive"]
)
@pytest.mark.parametrize("n_jobs", [1, 2, 4])
def test_batch_lift_matches_sequential(n_jobs, incremental):
    configs = _configs()
    for sugar, entries in GROUPS.items():
        make_rules, make_stepper, parse, pretty = configs[sugar]
        rules = make_rules()
        stepper = make_stepper()
        jobs = [
            LiftJob(parse(program), name=name, incremental=incremental, **kw)
            for name, program, _trace, kw in entries
        ]
        sequential = [
            lift_evaluation(
                rules, stepper, parse(program), incremental=incremental, **kw
            )
            for _name, program, _trace, kw in entries
        ]

        outcomes = lift_corpus((rules, stepper), jobs, jobs=n_jobs)

        assert [o.job_index for o in outcomes] == list(range(len(jobs)))
        for (name, _program, trace, _kw), outcome, expected in zip(
            entries, outcomes, sequential
        ):
            assert isinstance(outcome, BatchLifted), (sugar, name, outcome)
            got = outcome.result
            # Rendered output is byte-identical to the sequential lift
            # (and therefore to the golden trace file itself).
            rendered = [pretty(t) for t in got.surface_sequence]
            assert rendered == [
                pretty(t) for t in expected.surface_sequence
            ], (sugar, name)
            assert rendered == trace, (sugar, name)
            # Event ordering: the full per-step record matches, flag
            # for flag, term for term.
            assert got.steps == expected.steps, (sugar, name)
            assert got.truncated == expected.truncated, (sugar, name)
            # Fresh per-job caches make even the work counters
            # deterministic.
            if incremental:
                assert (
                    got.cache_stats.as_dict()
                    == expected.cache_stats.as_dict()
                ), (sugar, name)
            else:
                assert got.cache_stats is None and expected.cache_stats is None


def test_stream_order_is_submission_order_with_skewed_durations():
    """Jobs with wildly different run times still come back in
    submission order: the longest job first in, first out."""
    configs = _configs()
    make_rules, make_stepper, parse, pretty = configs["scheme"]
    long_program = "(or " + " ".join(["(not #t)"] * 24) + " (not #f))"
    corpus = [parse(long_program)] + [parse("(or #f #t)")] * 5

    outcomes = lift_corpus(
        (make_rules(), make_stepper()),
        corpus,
        jobs=2,
        payload="both",
        pretty=pretty,
    )

    assert [o.job_index for o in outcomes] == list(range(len(corpus)))
    assert outcomes[0].rendered[0] == pretty(corpus[0])
    for late in outcomes[1:]:
        assert late.rendered == outcomes[1].rendered
