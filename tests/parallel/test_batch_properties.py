"""Hypothesis equivalence properties: batch lifting is a loop.

For any corpus, ``lift_corpus`` must be observationally equal to the
obvious ``for`` loop over :func:`~repro.core.lift.lift_evaluation` —
same surface sequences, same per-step records, same order — and
sprinkling poisoned jobs anywhere in the corpus must replace exactly
those entries with :class:`~repro.engine.events.JobError` while leaving
every healthy entry untouched.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.terms import Const
from repro.engine.events import BatchLifted, JobError
from repro.engine.registry import get_backend
from repro.parallel import lift_corpus

from tests.parallel.faulty import POISON_VALUE, make_exploding_confection

_backend = get_backend("lambda")
_scheme = _backend.make_confection()


def programs():
    """Small boolean surface programs over the scheme sugar set."""
    leaves = st.sampled_from(["#t", "#f", "(not #t)", "(not #f)"])
    return st.recursive(
        leaves,
        lambda inner: st.one_of(
            st.tuples(inner, inner).map(lambda ab: f"(or {ab[0]} {ab[1]})"),
            st.tuples(inner, inner).map(lambda ab: f"(and {ab[0]} {ab[1]})"),
            inner.map(lambda a: f"(not {a})"),
        ),
        max_leaves=6,
    ).map(_backend.parse)


@given(st.lists(programs(), min_size=1, max_size=6))
@settings(max_examples=25, deadline=None)
def test_batch_equals_loop(corpus):
    expected = [_scheme.lift(program) for program in corpus]
    outcomes = lift_corpus(
        (_scheme.rules, _scheme.stepper), corpus, jobs=1
    )
    assert [o.job_index for o in outcomes] == list(range(len(corpus)))
    for outcome, result in zip(outcomes, expected):
        assert isinstance(outcome, BatchLifted)
        assert outcome.result.surface_sequence == result.surface_sequence
        assert outcome.result.steps == result.steps
        assert outcome.result.truncated == result.truncated


@given(st.lists(programs(), min_size=1, max_size=4))
@settings(max_examples=5, deadline=None)
def test_pooled_batch_equals_loop(corpus):
    expected = [_scheme.lift(program) for program in corpus]
    outcomes = lift_corpus(
        (_scheme.rules, _scheme.stepper), corpus, jobs=2
    )
    for outcome, result in zip(outcomes, expected):
        assert isinstance(outcome, BatchLifted)
        assert outcome.result.surface_sequence == result.surface_sequence
        assert outcome.result.steps == result.steps


@given(
    st.lists(st.booleans(), min_size=1, max_size=8).filter(any)
)
@settings(max_examples=25, deadline=None)
def test_poison_placement_is_exact(poison_mask):
    """Wherever the poisoned jobs sit, exactly those indices fail."""
    engine = make_exploding_confection()
    corpus = [
        Const(POISON_VALUE + 1 if poisoned else POISON_VALUE - 1)
        for poisoned in poison_mask
    ]
    healthy = engine.lift(Const(POISON_VALUE - 1))

    outcomes = lift_corpus(engine, corpus, jobs=1)

    for outcome, poisoned in zip(outcomes, poison_mask):
        if poisoned:
            assert isinstance(outcome, JobError)
            assert outcome.error_type == "InjectedFault"
        else:
            assert isinstance(outcome, BatchLifted)
            assert (
                outcome.result.surface_sequence == healthy.surface_sequence
            )
