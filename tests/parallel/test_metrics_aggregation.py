"""Cross-worker metrics aggregation equals single-process metrics.

Each pool worker owns a process-local metrics registry, so batch lifts
ship per-job snapshots back with their results.  Merging those
snapshots (:func:`repro.parallel.aggregate_metrics`, built on
:meth:`repro.obs.metrics.MetricsRegistry.merge`) must reproduce exactly
the registry a single-process run of the same corpus produces — every
counter and every histogram bucket — and the ``lift.steps_total``
census must match the summed per-job ``CoreStepped`` counts.
"""

from __future__ import annotations

import pytest

from repro.engine.events import CoreStepped
from repro.engine.registry import get_backend
from repro.obs import Observability
from repro.parallel import aggregate_metrics, lift_corpus

PROGRAMS = [
    "(or (not #t) (not #f))",
    "(and #t #t #f)",
    "(let ((x 1) (y 2)) (+ x y))",
    "(cond ((not #t) 1) (#t (+ 1 2)))",
    "(or #f #t)",
]


@pytest.fixture()
def scheme():
    backend = get_backend("lambda")
    confection = backend.make_confection()
    programs = [backend.parse(source) for source in PROGRAMS]
    return backend, confection, programs


def _single_process_snapshot(confection, programs):
    obs = Observability(reset_metrics=True)
    with obs:
        results = [confection.lift(p) for p in programs]
    return obs.snapshot(), results


@pytest.mark.parametrize("n_jobs", [1, 2])
def test_aggregated_metrics_equal_single_process(scheme, n_jobs):
    _backend, confection, programs = scheme
    expected, _results = _single_process_snapshot(confection, programs)

    outcomes = lift_corpus(
        (confection.rules, confection.stepper),
        programs,
        jobs=n_jobs,
        collect_metrics=True,
    )

    assert aggregate_metrics(outcomes) == expected


def test_steps_total_census_matches_core_stepped_counts(scheme):
    _backend, confection, programs = scheme
    outcomes = lift_corpus(
        (confection.rules, confection.stepper),
        programs,
        jobs=2,
        collect_metrics=True,
    )
    aggregated = aggregate_metrics(outcomes)

    # Census one way: each job's per-step record.
    assert aggregated["lift.steps_total"] == sum(
        outcome.result.core_step_count for outcome in outcomes
    )
    # Census the other way: the raw CoreStepped events of the
    # sequential streams.
    core_stepped = sum(
        sum(
            1
            for event in confection.lift_stream(program)
            if isinstance(event, CoreStepped)
        )
        for program in programs
    )
    assert aggregated["lift.steps_total"] == core_stepped
    assert aggregated["lift.runs"] == len(programs)


def test_every_job_carries_its_own_snapshot(scheme):
    _backend, confection, programs = scheme
    outcomes = lift_corpus(
        (confection.rules, confection.stepper),
        programs,
        jobs=2,
        collect_metrics=True,
    )
    for outcome in outcomes:
        assert outcome.metrics is not None
        assert outcome.metrics["lift.runs"] == 1
        assert (
            outcome.metrics["lift.steps_total"]
            == outcome.result.core_step_count
        )


def test_metrics_off_by_default(scheme):
    _backend, confection, programs = scheme
    outcomes = lift_corpus(
        (confection.rules, confection.stepper), programs[:2], jobs=2
    )
    assert all(outcome.metrics is None for outcome in outcomes)
    assert aggregate_metrics(outcomes) == {}
