"""WarmPool reuse and graceful shutdown.

Pins the serving-layer contract on the batch engine: a warm pool is
reusable across batches (workers warmed once), abandoning a batch
mid-stream cancels its queued tail while the pool stays warm, shutdown
reaps every worker process, and a SIGINT in ``lift-batch`` exits 130
with the partial results already streamed.
"""

import multiprocessing
import time

import pytest

from repro.engine.events import BatchLifted, JobError
from repro.lambdacore import make_stepper, parse_program, pretty
from repro.parallel import LiftJob, WarmPool, lift_corpus_stream
from repro.sugars.scheme_sugars import make_scheme_rules

PROGRAMS = ["(or #f #t)", "(not #t)", "(or (not #t) (not #f))", "(not #f)"]


def _engine():
    return (make_scheme_rules(), make_stepper())


def _jobs(programs=PROGRAMS):
    return [
        LiftJob(parse_program(p), name=f"job{i}")
        for i, p in enumerate(programs)
    ]


def _steps(outcome):
    assert isinstance(outcome, BatchLifted)
    return list(outcome.rendered)


def _wait_for_no_children(timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not multiprocessing.active_children():
            return
        time.sleep(0.05)
    raise AssertionError(
        f"orphaned workers: {multiprocessing.active_children()}"
    )


class TestWarmPoolReuse:
    def test_pool_survives_across_batches(self):
        with WarmPool(
            _engine(), jobs=2, payload="rendered", pretty=pretty
        ) as pool:
            first = [_steps(o) for o in pool.run(_jobs())]
            assert pool.warm
            executor = pool._executor
            second = [_steps(o) for o in pool.run(_jobs())]
            # Same outcomes, same executor — no per-batch teardown.
            assert second == first
            assert pool._executor is executor
        _wait_for_no_children()

    def test_jobs_1_path_caches_resolved_engine(self):
        pool = WarmPool(_engine(), jobs=1, payload="rendered", pretty=pretty)
        first = [_steps(o) for o in pool.run(_jobs())]
        assert pool.warm
        assert [_steps(o) for o in pool.run(_jobs())] == first
        assert first[1] == ["(not #t)", "#f"]

    def test_lift_corpus_stream_routes_through_given_pool(self):
        with WarmPool(
            _engine(), jobs=2, payload="rendered", pretty=pretty
        ) as pool:
            direct = [_steps(o) for o in pool.run(_jobs())]
            # The pool's own config governs; engine/jobs args are the
            # ephemeral-path fallback and must be ignored here.
            routed = [
                _steps(o)
                for o in lift_corpus_stream(
                    None, _jobs(), jobs=99, pool=pool
                )
            ]
            assert routed == direct
            assert pool.warm

    def test_abandoned_run_leaves_pool_warm(self):
        with WarmPool(
            _engine(), jobs=2, payload="rendered", pretty=pretty
        ) as pool:
            stream = pool.run(_jobs())
            first = next(stream)
            assert isinstance(first, (BatchLifted, JobError))
            stream.close()  # abandon mid-batch: cancels the queued tail
            # The pool is still warm and a fresh run works end to end.
            outcomes = list(pool.run(_jobs()))
            assert len(outcomes) == len(PROGRAMS)
        _wait_for_no_children()


class TestGracefulShutdown:
    def test_shutdown_reaps_workers(self):
        pool = WarmPool(_engine(), jobs=2, payload="rendered", pretty=pretty)
        list(pool.run(_jobs()))
        assert multiprocessing.active_children()
        pool.shutdown()
        _wait_for_no_children()
        assert not pool.warm

    def test_ephemeral_stream_reaps_workers_on_early_exit(self):
        stream = lift_corpus_stream(
            _engine(),
            _jobs(PROGRAMS * 4),
            jobs=2,
            payload="rendered",
            pretty=pretty,
        )
        next(stream)
        stream.close()
        _wait_for_no_children()


class TestCliInterrupt:
    def _patch_stream(self, monkeypatch, outcomes_then_interrupt):
        import repro.parallel as parallel

        def fake_stream(engine, corpus, **kwargs):
            yield from outcomes_then_interrupt[:-1]
            raise outcomes_then_interrupt[-1]

        monkeypatch.setattr(parallel, "lift_corpus_stream", fake_stream)

    def test_sigint_exits_130_with_partial_results(
        self, monkeypatch, tmp_path, capsys
    ):
        from repro.cli import main

        source = tmp_path / "corpus.scm"
        source.write_text("(or #f #t)\n(not #t)\n")
        self._patch_stream(
            monkeypatch,
            [
                BatchLifted(job_index=0, rendered=("(or #f #t)", "#t")),
                KeyboardInterrupt(),
            ],
        )
        code = main(
            ["lift-batch", "--lang", "lambda", "--per-line", str(source)]
        )
        out = capsys.readouterr().out
        assert code == 130
        # The partial results already streamed stay on stdout.
        assert "== job 0: " in out
        assert "#t" in out

    def test_sigint_summary_reports_partial_count(
        self, monkeypatch, tmp_path, capsys
    ):
        from repro.cli import main

        source = tmp_path / "corpus.scm"
        source.write_text("(or #f #t)\n(not #t)\n(not #f)\n")
        self._patch_stream(
            monkeypatch,
            [
                BatchLifted(job_index=0, rendered=("#t",)),
                BatchLifted(job_index=1, rendered=("#f",)),
                KeyboardInterrupt(),
            ],
        )
        code = main(
            ["lift-batch", "--lang", "lambda", "--per-line", str(source)]
        )
        captured = capsys.readouterr()
        assert code == 130
        assert "[2/3 jobs, 0 failed" in captured.err
        assert "interrupted" in captured.err

    def test_uninterrupted_batch_keeps_exit_semantics(self, tmp_path, capsys):
        from repro.cli import main

        source = tmp_path / "corpus.scm"
        source.write_text("(or #f #t)\n")
        code = main(
            [
                "lift-batch",
                "--lang",
                "lambda",
                "--per-line",
                "--jobs",
                "1",
                str(source),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "[1/1 jobs, 0 failed, jobs=1]" in captured.err


class TestThreadSafety:
    """A WarmPool is shared across server request threads: lazy warm-up
    must not double-build executors, and the jobs=1 in-process path must
    not interleave concurrent runs on its one mutable stepper."""

    def test_racy_first_use_builds_one_executor(self, monkeypatch):
        import threading

        from repro.parallel import pool as pool_module

        created = []

        class FakeExecutor:
            def __init__(self, **kwargs):
                created.append(self)

            def shutdown(self, wait=True, cancel_futures=False):
                pass

        monkeypatch.setattr(
            pool_module, "ProcessPoolExecutor", FakeExecutor
        )
        pool = WarmPool(_engine(), jobs=2, payload="rendered", pretty=pretty)
        barrier = threading.Barrier(4)

        def race():
            barrier.wait()
            pool._ensure_executor()

        threads = [threading.Thread(target=race) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(created) == 1
        pool.shutdown()

    def test_jobs1_concurrent_runs_stay_deterministic(self):
        import threading

        pool = WarmPool(_engine(), jobs=1, payload="rendered", pretty=pretty)
        expected = [_steps(o) for o in pool.run(_jobs())]
        results = [None] * 6

        def run(slot):
            results[slot] = [_steps(o) for o in pool.run(_jobs())]

        threads = [
            threading.Thread(target=run, args=(slot,)) for slot in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results == [expected] * 6
