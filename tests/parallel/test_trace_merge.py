"""Cross-process trace merging equals the in-process trace.

A batch lift with ``collect_spans=True`` ships every job's span tree
back on its outcome event; :func:`repro.parallel.aggregate_trace`
merges them into one trace.  Because jobs=1 and jobs=N run the *same*
job path (``_execute_job``), the merged multi-worker trace must be
structurally identical to the single-process one — same spans, same
names, same attrs (outcomes, provenance, rule stats), same tree shape
— differing only in span ids, timings, worker pids, and the batch's
random trace id.  The Hypothesis test pins exactly that, over random
small corpora; the deterministic tests pin the attribution fields and
the failed-job partial-trace behavior.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.terms import Const
from repro.engine.events import BatchLifted, JobError
from repro.engine.registry import get_backend
from repro.obs.export import build_tree
from repro.parallel import LiftJob, aggregate_trace, lift_corpus
from tests.parallel.faulty import POISON_VALUE, make_exploding_confection

PROGRAMS = [
    "(or (not #t) (not #f))",
    "(and #t #t #f)",
    "(let ((x 1) (y 2)) (+ x y))",
    "(cond ((not #t) 1) (#t (+ 1 2)))",
    "(or #f #t)",
]

_backend = get_backend("lambda")
_confection = _backend.make_confection()
ENGINE = (_confection.rules, _confection.stepper)
PARSED = [_backend.parse(source) for source in PROGRAMS]

ATTRIBUTION_FIELDS = ("trace_id", "worker")


def _normalize(records):
    """A trace modulo ids, timings, and process attribution: per record
    ``(job, name, attrs)`` in merge (= per-job emission) order."""
    return [
        (record.get("job"), record["name"], record["attrs"])
        for record in records
    ]


def _tree_shape(records):
    """The span forest as nested ``(job, name)`` tuples, per root."""
    by_key = {}
    for record in records:
        by_key[(record.get("job"), record.get("worker"), record["span_id"])] = (
            record
        )
    roots, children = build_tree(records)

    def shape(key):
        record = by_key[key]
        return (
            record.get("job"),
            record["name"],
            tuple(shape(child) for child in children[key]),
        )

    return [shape(root) for root in roots]


def _merged(corpus, n_jobs):
    outcomes = lift_corpus(ENGINE, corpus, jobs=n_jobs, collect_spans=True)
    assert all(isinstance(o, BatchLifted) for o in outcomes)
    return aggregate_trace(outcomes)


@given(
    corpus=st.lists(
        st.sampled_from(range(len(PROGRAMS))), min_size=1, max_size=3
    )
)
@settings(max_examples=5, deadline=None)
def test_merged_worker_trace_equals_in_process_trace(corpus):
    programs = [PARSED[i] for i in corpus]
    single = _merged(programs, 1)
    merged = _merged(programs, 2)
    assert _normalize(merged) == _normalize(single)
    assert _tree_shape(merged) == _tree_shape(single)


def test_attribution_fields_are_stamped():
    merged = _merged(PARSED[:3], 2)
    assert merged
    trace_ids = {record["trace_id"] for record in merged}
    assert len(trace_ids) == 1, "one batch, one trace id"
    assert {record["job"] for record in merged} == {0, 1, 2}
    for record in merged:
        assert isinstance(record["worker"], int)


def test_batches_get_distinct_trace_ids():
    first = _merged(PARSED[:1], 1)
    second = _merged(PARSED[:1], 1)
    assert first[0]["trace_id"] != second[0]["trace_id"]


def test_span_ids_are_globally_unique_after_merge():
    merged = _merged(PARSED, 2)
    ids = [record["span_id"] for record in merged]
    assert len(ids) == len(set(ids))
    # ... which is what lets build_tree treat the merged trace as one.
    roots, children = build_tree(merged)
    assert len(roots) == len(PARSED)


def test_without_collect_spans_no_spans_ride_the_outcomes():
    outcomes = lift_corpus(ENGINE, PARSED[:2], jobs=2)
    for outcome in outcomes:
        assert outcome.spans is None
    assert aggregate_trace(outcomes) == []


def test_failed_job_contributes_a_partial_trace():
    engine = make_exploding_confection()
    corpus = [
        LiftJob(Const(POISON_VALUE - 1), name="fine"),
        LiftJob(Const(POISON_VALUE + 3), name="poisoned"),
    ]
    outcomes = lift_corpus(engine, corpus, jobs=2, collect_spans=True)
    assert isinstance(outcomes[0], BatchLifted)
    assert isinstance(outcomes[1], JobError)
    assert outcomes[1].spans is not None
    merged = aggregate_trace(outcomes)
    assert {record["job"] for record in merged} == {0, 1}
    # The poisoned job died mid-lift, but the spans it finished before
    # the fault (the steps up to the poison value) still made it back
    # and merge into an analyzable tree alongside the healthy job's.
    failed_spans = [r for r in merged if r["job"] == 1]
    assert any(r["name"] == "lift.step" for r in failed_spans)
    roots, _children = build_tree(merged)
    assert len(roots) >= 2
